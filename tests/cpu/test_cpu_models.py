"""Tests for the workload profiles and Xeon timing models."""

import pytest

from repro.cpu.counters import (
    bfs_profile,
    dmr_profile,
    lu_profile,
    mst_profile,
    sssp_profile,
)
from repro.cpu.timing import (
    _miss_fraction,
    parallel_seconds,
    sequential_seconds,
    speedup_over,
)
from repro.eval.platforms import EVAL_XEON, XEON_E5_2680V2, XeonPlatform
from repro.substrates.graphs import random_graph, road_network
from repro.substrates.sparse.block import make_sparselu_instance

GRAPH = random_graph(80, 240, seed=17)


class TestProfiles:
    def test_bfs_counts_all_edges(self):
        profile = bfs_profile(GRAPH, 0)
        # Connected graph: every directed edge is examined exactly once.
        assert profile.notes["edges_examined"] == GRAPH.num_edges
        assert profile.notes["visited"] == GRAPH.num_vertices

    def test_bfs_rounds_equal_levels(self):
        road = road_network(10, 6, seed=2, shortcut_fraction=0.0)
        from repro.substrates.graphs.algorithms import INF, bfs_levels

        levels = bfs_levels(road, 0)
        profile = bfs_profile(road, 0)
        assert profile.rounds == int(levels[levels < INF].max())

    def test_sssp_counts_relaxations(self):
        profile = sssp_profile(GRAPH, 0)
        assert profile.notes["relaxations"] >= GRAPH.num_edges
        assert profile.tasks == profile.notes["pops"]

    def test_mst_counts_unions(self):
        profile = mst_profile(GRAPH)
        assert profile.notes["unions"] == GRAPH.num_vertices - 1

    def test_dmr_counts_refinements(self):
        profile = dmr_profile(60, seed=5)
        assert profile.tasks == profile.notes["refinements"]
        assert profile.notes["avg_cavity"] >= 1.0

    def test_lu_flops_scale_with_block(self):
        small = lu_profile(make_sparselu_instance(4, 4, 0.4, seed=1))
        big = lu_profile(make_sparselu_instance(4, 8, 0.4, seed=1))
        assert big.flops > 4 * small.flops

    def test_profiles_deterministic(self):
        assert bfs_profile(GRAPH, 0).instructions == \
            bfs_profile(GRAPH, 0).instructions


class TestMissFraction:
    def test_small_working_set_low_misses(self):
        assert _miss_fraction(1024, 16 * 1024) < 0.15

    def test_large_working_set_high_misses(self):
        assert _miss_fraction(10 * 16 * 1024, 16 * 1024) > 0.5

    def test_monotone_in_working_set(self):
        llc = 16 * 1024
        values = [_miss_fraction(ws, llc)
                  for ws in (1024, 8192, 16384, 65536, 1 << 20)]
        assert values == sorted(values)

    def test_capped_below_one(self):
        assert _miss_fraction(1 << 30, 1024) <= 0.85


class TestTiming:
    def test_sequential_positive(self):
        assert sequential_seconds(bfs_profile(GRAPH, 0), EVAL_XEON) > 0

    def test_parallel_faster_than_sequential(self):
        profile = sssp_profile(GRAPH, 0)
        assert parallel_seconds(profile, EVAL_XEON) < \
            sequential_seconds(profile, EVAL_XEON)

    def test_parallel_not_superlinear(self):
        profile = sssp_profile(GRAPH, 0)
        ratio = sequential_seconds(profile, EVAL_XEON) / parallel_seconds(
            profile, EVAL_XEON
        )
        assert ratio <= EVAL_XEON.cores

    def test_bandwidth_roof_binds_for_streaming(self):
        from repro.cpu.counters import WorkloadProfile

        profile = WorkloadProfile(
            name="stream", tasks=10, instructions=100,
            random_accesses=0, sequential_bytes=10 ** 9,
            rounds=1, working_set_bytes=10 ** 9,
        )
        roof = 10 ** 9 / (EVAL_XEON.dram_bandwidth_gbps * 1e9)
        assert parallel_seconds(profile, EVAL_XEON) >= roof

    def test_bigger_llc_is_faster(self):
        profile = bfs_profile(GRAPH, 0)
        small = sequential_seconds(profile, EVAL_XEON)
        big = sequential_seconds(profile, XEON_E5_2680V2)
        assert big <= small

    def test_core_count_parameter(self):
        profile = sssp_profile(GRAPH, 0)
        five = parallel_seconds(profile, EVAL_XEON, cores=5)
        ten = parallel_seconds(profile, EVAL_XEON, cores=10)
        assert ten <= five

    def test_speedup_over(self):
        assert speedup_over(2.0, 1.0) == 2.0
        with pytest.raises(ValueError):
            speedup_over(1.0, 0.0)

    def test_flops_charged(self):
        lu = lu_profile(make_sparselu_instance(6, 16, 0.4, seed=1))
        no_flops = lu.__class__(**{**lu.__dict__, "flops": 0.0})
        assert sequential_seconds(lu, EVAL_XEON) > \
            sequential_seconds(no_flops, EVAL_XEON)


class TestHlsBaseline:
    def test_time_scales_with_levels(self):
        from repro.hls_baseline.opencl_model import OpenClBfsModel

        model = OpenClBfsModel()
        shallow = random_graph(60, 400, seed=2)   # low diameter
        deep = road_network(40, 4, seed=2, shortcut_fraction=0.0)
        assert model.level_count(deep, 0) > model.level_count(shallow, 0)
        assert model.seconds(deep, 0) > model.seconds(shallow, 0)

    def test_launch_overhead_dominates_small_graphs(self):
        from repro.hls_baseline.opencl_model import OpenClBfsModel

        model = OpenClBfsModel()
        graph = road_network(10, 4, seed=1, shortcut_fraction=0.0)
        levels = model.level_count(graph, 0)
        assert model.seconds(graph, 0) >= 2 * levels * \
            model.launch_overhead_s

    def test_zero_overhead_model_cheaper(self):
        from repro.hls_baseline.opencl_model import OpenClBfsModel

        graph = road_network(10, 6, seed=1)
        cheap = OpenClBfsModel(launch_overhead_s=0.0)
        assert cheap.seconds(graph, 0) < OpenClBfsModel().seconds(graph, 0)
