"""Every benchmark through the cycle-level accelerator, verified.

The simulator computes real answers; these tests run each benchmark on a
small input, let `run()` verify the functional result against the oracle,
and assert basic sanity of the reported statistics.
"""

import pytest

from repro.apps.registry import build_app
from repro.eval.platforms import EVAL_HARP, HARP
from repro.sim import simulate_app
from repro.sim.accelerator import SimConfig
from repro.substrates.graphs import random_graph

GRAPH = random_graph(80, 240, seed=13)

CASES = [
    ("SPEC-BFS", lambda: build_app("SPEC-BFS", GRAPH, 0)),
    ("COOR-BFS", lambda: build_app("COOR-BFS", GRAPH, 0)),
    ("SPEC-SSSP", lambda: build_app("SPEC-SSSP", GRAPH, 0)),
    ("SPEC-MST", lambda: build_app("SPEC-MST", GRAPH)),
    ("SPEC-DMR", lambda: build_app("SPEC-DMR", n_points=40, seed=6)),
    ("COOR-LU", lambda: build_app("COOR-LU", grid=4, block_size=5,
                                  density=0.4, seed=2)),
]


@pytest.mark.parametrize("name,builder", CASES)
def test_app_simulates_and_verifies(name, builder):
    result = simulate_app(builder(), platform=HARP)
    assert result.cycles > 0
    assert result.stats.commits > 0
    assert 0.0 <= result.utilization <= 1.0
    assert result.seconds == pytest.approx(result.cycles / HARP.clock_hz)


@pytest.mark.parametrize("name,builder", CASES)
def test_app_simulates_on_scaled_platform(name, builder):
    result = simulate_app(builder(), platform=EVAL_HARP.scaled(4.0))
    assert result.bandwidth_scale == 4.0


def test_more_pipelines_not_slower():
    one = simulate_app(build_app("SPEC-SSSP", GRAPH, 0),
                       replicas={"relax": 1})
    four = simulate_app(build_app("SPEC-SSSP", GRAPH, 0),
                        replicas={"relax": 4})
    assert four.cycles <= one.cycles

def test_bandwidth_scaling_never_hurts_lu():
    slow = simulate_app(build_app("COOR-LU", grid=4, block_size=8,
                                  density=0.4, seed=2),
                        platform=EVAL_HARP)
    fast = simulate_app(build_app("COOR-LU", grid=4, block_size=8,
                                  density=0.4, seed=2),
                        platform=EVAL_HARP.scaled(8.0))
    assert fast.cycles < slow.cycles


def test_memory_statistics_populated():
    result = simulate_app(build_app("SPEC-BFS", GRAPH, 0), platform=HARP)
    assert result.memory_loads > 0
    assert result.memory_bytes > 0
    assert 0.0 <= result.memory_hit_rate <= 1.0


def test_determinism_across_runs():
    a = simulate_app(build_app("SPEC-DMR", n_points=40, seed=6))
    b = simulate_app(build_app("SPEC-DMR", n_points=40, seed=6))
    assert a.cycles == b.cycles
    assert a.stats.squashes == b.stats.squashes


def test_max_cycles_guard():
    from repro.errors import SimulationError

    spec = build_app("SPEC-BFS", GRAPH, 0)
    with pytest.raises(SimulationError):
        simulate_app(spec, config=SimConfig(max_cycles=10))


def test_utilization_definition_bounds():
    """Utilization is active-stages over total stage-cycles (Section 6.3)."""
    result = simulate_app(build_app("SPEC-BFS", GRAPH, 0))
    stats = result.stats
    assert stats.active_stage_cycles <= stats.cycles * stats.total_stages
