"""Tests for the COOR-SSSP extension benchmark (delta-stepping)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.coor_sssp import coor_sssp
from repro.apps.registry import build_app
from repro.core.futures_runtime import FuturesRuntime
from repro.core.runtime import AggressiveRuntime, SequentialRuntime
from repro.errors import SimulationError
from repro.sim import simulate_app
from repro.substrates.graphs import random_graph

GRAPH = random_graph(80, 240, seed=81)


def test_registered():
    assert build_app("COOR-SSSP", GRAPH, 0).name == "COOR-SSSP"


def test_sequential():
    SequentialRuntime(coor_sssp(GRAPH, 0)).run()


def test_aggressive():
    AggressiveRuntime(coor_sssp(GRAPH, 0), workers=8).run()


def test_threads():
    FuturesRuntime(coor_sssp(GRAPH, 0), threads=4).run()


def test_simulator():
    result = simulate_app(coor_sssp(GRAPH, 0))
    assert result.stats.commits > 0


def test_invalid_delta():
    with pytest.raises(SimulationError):
        coor_sssp(GRAPH, 0, delta=0)


@pytest.mark.parametrize("delta", [1, 16, 256, 10_000])
def test_any_bucket_width_is_correct(delta):
    """The gate only orders work; every delta converges to Dijkstra."""
    SequentialRuntime(coor_sssp(GRAPH, 0, delta=delta)).run()


def test_coordination_improves_work_efficiency():
    """Delta-stepping wastes fewer relaxations than speculation."""
    coor = simulate_app(build_app("COOR-SSSP", GRAPH, 0))
    spec = simulate_app(build_app("SPEC-SSSP", GRAPH, 0))
    assert coor.stats.tasks_activated < spec.stats.tasks_activated


@settings(deadline=None, max_examples=6)
@given(st.integers(0, 10_000))
def test_property_random_graphs(seed):
    graph = random_graph(30, 80, seed=seed)
    simulate_app(build_app("COOR-SSSP", graph, 0))
