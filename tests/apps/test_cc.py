"""Tests for the SPEC-CC extension benchmark."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.cc import spec_cc
from repro.apps.registry import build_app
from repro.core.runtime import AggressiveRuntime, SequentialRuntime
from repro.ir import check_graph, lower_spec
from repro.sim import simulate_app
from repro.substrates.graphs import random_graph
from repro.substrates.graphs.csr import CSRGraph


def test_registered():
    spec = build_app("SPEC-CC", random_graph(20, 30, seed=1))
    assert spec.name == "SPEC-CC"


def test_sequential_runtime():
    graph = random_graph(80, 160, seed=2, connected=False)
    SequentialRuntime(spec_cc(graph)).run()


def test_aggressive_runtime():
    graph = random_graph(80, 160, seed=3, connected=False)
    AggressiveRuntime(spec_cc(graph), workers=8).run()


def test_simulator():
    graph = random_graph(60, 120, seed=4, connected=False)
    result = simulate_app(spec_cc(graph))
    assert result.stats.commits > 0


def test_lowering():
    graph = random_graph(20, 30, seed=5)
    ir = lower_spec(spec_cc(graph))
    check_graph(ir)


def test_disconnected_islands():
    # Two disjoint triangles: labels must be each triangle's minimum.
    edges = [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]
    graph = CSRGraph(6, edges, directed=False)
    runtime = SequentialRuntime(spec_cc(graph))
    runtime.run()
    comp = np.asarray(runtime.state.region("comp").storage)
    assert comp.tolist() == [0, 0, 0, 3, 3, 3]


def test_single_vertex_components():
    graph = CSRGraph(4, [], directed=False)
    runtime = SequentialRuntime(spec_cc(graph))
    runtime.run()
    comp = np.asarray(runtime.state.region("comp").storage)
    assert comp.tolist() == [0, 1, 2, 3]


@settings(deadline=None, max_examples=8)
@given(st.integers(0, 10_000))
def test_property_random_graphs_verify_in_simulator(seed):
    """Functional equivalence property: the accelerator's answer matches
    the oracle on arbitrary (possibly disconnected) random graphs."""
    graph = random_graph(30, 45, seed=seed, connected=False)
    simulate_app(spec_cc(graph))  # verifies internally
