"""Every benchmark, on both software runtimes, verified against its oracle.

These are the Definition-4.3 correctness checks: aggressive parallel
execution must be equivalent to sequential execution for every application,
under several worker counts and inputs.
"""

import pytest

from repro.apps.registry import APP_BUILDERS, build_app
from repro.core.runtime import AggressiveRuntime, SequentialRuntime
from repro.substrates.graphs import random_graph, road_network

GRAPH = random_graph(120, 360, seed=21)
ROAD = road_network(14, 10, seed=4)

CASES = [
    ("SPEC-BFS", lambda: build_app("SPEC-BFS", GRAPH, 0)),
    ("COOR-BFS", lambda: build_app("COOR-BFS", GRAPH, 0)),
    ("SPEC-SSSP", lambda: build_app("SPEC-SSSP", GRAPH, 0)),
    ("SPEC-MST", lambda: build_app("SPEC-MST", GRAPH)),
    ("SPEC-DMR", lambda: build_app("SPEC-DMR", n_points=50, seed=6)),
    ("COOR-LU", lambda: build_app("COOR-LU", grid=5, block_size=5,
                                  density=0.4, seed=2)),
]


@pytest.mark.parametrize("name,builder", CASES)
def test_sequential_runtime_verifies(name, builder):
    stats = SequentialRuntime(builder()).run()
    assert stats.tasks_executed > 0


@pytest.mark.parametrize("name,builder", CASES)
def test_aggressive_runtime_verifies(name, builder):
    stats = AggressiveRuntime(builder(), workers=8).run()
    assert stats.tasks_executed > 0


@pytest.mark.parametrize("workers", [1, 2, 5, 16])
def test_worker_count_does_not_affect_correctness(workers):
    spec = build_app("SPEC-SSSP", GRAPH, 0)
    AggressiveRuntime(spec, workers=workers).run()  # verifies internally


@pytest.mark.parametrize("name,builder", CASES)
def test_registry_contains_all(name, builder):
    assert name in APP_BUILDERS or name in (
        "SPEC-BFS", "COOR-BFS", "SPEC-SSSP", "SPEC-MST", "SPEC-DMR",
        "COOR-LU",
    )


def test_speculation_actually_squashes_somewhere():
    """At least one benchmark exercises the squash path in parallel."""
    total = 0
    for name, builder in CASES[:4]:
        stats = AggressiveRuntime(builder(), workers=8).run()
        total += stats.tasks_squashed
    assert total > 0


def test_road_graph_bfs_on_runtimes():
    spec = build_app("SPEC-BFS", ROAD, 0)
    SequentialRuntime(spec).run()
    AggressiveRuntime(spec, workers=4).run()


def test_unknown_app_rejected():
    from repro.errors import InputError

    with pytest.raises(InputError):
        build_app("NO-SUCH-APP")


def test_coor_lu_gates_release_in_parallel():
    """The LU gates must release via events, not only via the minimum."""
    spec = build_app("COOR-LU", grid=5, block_size=5, density=0.5, seed=1)
    runtime = AggressiveRuntime(spec, workers=8)
    stats = runtime.run()
    assert stats.clause_fired > 0  # requires-flag releases happened
