"""Property-based end-to-end tests: random inputs, all execution engines.

The framework's correctness criterion (Definition 4.3) is equivalence with
sequential execution.  These properties run randomly generated inputs
through the aggressive software runtime and the cycle-level accelerator —
both verify internally against the oracle — over many seeds.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.registry import build_app
from repro.core.runtime import AggressiveRuntime
from repro.sim import simulate_app
from repro.substrates.graphs import random_graph, rmat_graph


@settings(deadline=None, max_examples=10)
@given(st.integers(0, 10_000), st.integers(2, 12))
def test_spec_bfs_any_graph_any_workers(seed, workers):
    graph = random_graph(40, 90, seed=seed)
    AggressiveRuntime(build_app("SPEC-BFS", graph, 0),
                      workers=workers).run()


@settings(deadline=None, max_examples=10)
@given(st.integers(0, 10_000))
def test_spec_sssp_simulator_matches_dijkstra(seed):
    graph = random_graph(30, 70, seed=seed)
    simulate_app(build_app("SPEC-SSSP", graph, 0))


@settings(deadline=None, max_examples=8)
@given(st.integers(0, 10_000))
def test_coor_bfs_simulator_matches_oracle(seed):
    graph = random_graph(30, 70, seed=seed)
    simulate_app(build_app("COOR-BFS", graph, 0))


@settings(deadline=None, max_examples=8)
@given(st.integers(0, 10_000))
def test_spec_mst_simulator_matches_kruskal(seed):
    graph = random_graph(35, 90, seed=seed)
    simulate_app(build_app("SPEC-MST", graph))


@settings(deadline=None, max_examples=6)
@given(st.integers(2, 4), st.integers(3, 6), st.integers(0, 100))
def test_coor_lu_simulator_any_shape(grid, block, seed):
    simulate_app(build_app("COOR-LU", grid=grid, block_size=block,
                           density=0.5, seed=seed))


@settings(deadline=None, max_examples=5)
@given(st.integers(0, 1000))
def test_spec_dmr_simulator_any_cloud(seed):
    simulate_app(build_app("SPEC-DMR", n_points=30, seed=seed))


@settings(deadline=None, max_examples=5)
@given(st.integers(0, 1000), st.floats(1.0, 8.0))
def test_bandwidth_never_breaks_correctness(seed, bandwidth):
    """Timing knobs must never change functional results."""
    from repro.eval.platforms import EVAL_HARP

    graph = rmat_graph(6, 6, seed=seed)
    simulate_app(build_app("SPEC-BFS", graph, 0),
                 platform=EVAL_HARP.scaled(bandwidth))


@settings(deadline=None, max_examples=5)
@given(st.integers(1, 3), st.booleans(), st.integers(2, 16))
def test_microarch_knobs_never_break_correctness(replicas, ooo, station):
    from repro.sim.accelerator import SimConfig

    graph = random_graph(25, 60, seed=99)
    simulate_app(
        build_app("SPEC-SSSP", graph, 0),
        config=SimConfig(out_of_order=ooo, station_depth=station),
        replicas={"relax": replicas},
    )
