"""Tests for templates, datapath construction, resources and tuning."""

import pytest

from repro.apps.registry import build_app
from repro.errors import SynthesisError
from repro.eval.platforms import STRATIX_V
from repro.ir.bdfg import ActorKind
from repro.substrates.graphs import random_graph
from repro.synthesis.datapath import build_datapath, linearize
from repro.synthesis.resources import (
    estimate_datapath,
    require_fit,
)
from repro.synthesis.templates import (
    Footprint,
    MemorySubsystemTemplate,
    RuleEngineTemplate,
    StageTemplate,
    TaskQueueTemplate,
)
from repro.synthesis.tuning import build_tuned_datapath, tune_parameters

GRAPH = random_graph(40, 100, seed=3)


def _bfs_spec():
    return build_app("SPEC-BFS", GRAPH, 0)


class TestFootprint:
    def test_addition(self):
        total = Footprint(1, 2, 3, 4) + Footprint(10, 20, 30, 40)
        assert total == Footprint(11, 22, 33, 44)

    def test_scaling(self):
        assert Footprint(1, 2, 3, 4).scaled(3) == Footprint(3, 6, 9, 12)


class TestTemplates:
    def test_out_of_order_stage_costs_more(self):
        in_order = StageTemplate(ActorKind.ALU)
        ooo = StageTemplate(ActorKind.LOAD, station_depth=8)
        assert ooo.footprint().registers > in_order.footprint().registers

    def test_station_depth_scales_ooo_cost(self):
        shallow = StageTemplate(ActorKind.LOAD, station_depth=4)
        deep = StageTemplate(ActorKind.LOAD, station_depth=32)
        assert deep.footprint().registers > shallow.footprint().registers

    def test_call_profiles_ordered(self):
        light = StageTemplate(ActorKind.CALL, call_profile="light")
        geo = StageTemplate(ActorKind.CALL, call_profile="geometry")
        macc = StageTemplate(ActorKind.CALL, call_profile="macc")
        assert light.footprint().alms < geo.footprint().alms \
            < macc.footprint().alms
        assert macc.footprint().dsps > 0

    def test_queue_bram_scales_with_depth(self):
        small = TaskQueueTemplate(depth_per_bank=128)
        big = TaskQueueTemplate(depth_per_bank=4096)
        assert big.footprint().m20k > small.footprint().m20k

    def test_queue_capacity(self):
        queue = TaskQueueTemplate(banks=4, depth_per_bank=256)
        assert queue.capacity == 1024

    def test_rule_engine_cost_scales_with_lanes(self):
        few = RuleEngineTemplate(lanes=8)
        many = RuleEngineTemplate(lanes=64)
        assert many.footprint().registers > few.footprint().registers

    def test_rule_engine_subscriptions_cost(self):
        one = RuleEngineTemplate(lanes=16, subscriptions=1)
        four = RuleEngineTemplate(lanes=16, subscriptions=4)
        assert four.footprint().registers > one.footprint().registers

    def test_memory_subsystem_bram(self):
        assert MemorySubsystemTemplate().footprint().m20k >= 25


class TestDatapath:
    def test_programs_per_task_set(self):
        datapath = build_datapath(_bfs_spec())
        assert set(datapath.programs) == {"visit", "update"}

    def test_replicas_default_one(self):
        datapath = build_datapath(_bfs_spec())
        assert datapath.replicas == {"visit": 1, "update": 1}

    def test_replicas_respected(self):
        datapath = build_datapath(_bfs_spec(),
                                  replicas={"visit": 2, "update": 3})
        assert datapath.total_pipelines == 5

    def test_unknown_replica_rejected(self):
        with pytest.raises(SynthesisError):
            build_datapath(_bfs_spec(), replicas={"nope": 1})

    def test_linearize_excludes_source_and_sink(self):
        datapath = build_datapath(_bfs_spec())
        for program in datapath.programs.values():
            kinds = [s.kind for s in program.stages]
            assert ActorKind.SOURCE not in kinds
            assert ActorKind.SINK not in kinds

    def test_epilogue_attached_to_steering_stage(self):
        spec = build_app("SPEC-MST", GRAPH)
        datapath = build_datapath(spec)
        program = datapath.programs["mstedge"]
        rendezvous = [
            s for s in program.stages if s.kind is ActorKind.RENDEZVOUS
        ]
        assert rendezvous and rendezvous[0].epilogue  # retry enqueue

    def test_queue_entry_bits_include_index_tag(self):
        datapath = build_datapath(_bfs_spec())
        decl_bits = _bfs_spec().task_sets["visit"].entry_bits
        assert datapath.queues["visit"].entry_bits == decl_bits + 32

    def test_rule_engines_present(self):
        datapath = build_datapath(_bfs_spec())
        assert "update_conflict" in datapath.rule_engines


class TestResources:
    def test_estimate_breakdown_positive(self):
        estimate = estimate_datapath(build_datapath(_bfs_spec()))
        assert estimate.pipelines.registers > 0
        assert estimate.queues.m20k > 0
        assert estimate.rule_engines.registers > 0
        assert estimate.memory.registers > 0

    def test_more_replicas_more_area(self):
        one = estimate_datapath(build_datapath(_bfs_spec()))
        four = estimate_datapath(
            build_datapath(_bfs_spec(), replicas={"visit": 4, "update": 4})
        )
        assert four.pipelines.registers > one.pipelines.registers

    def test_require_fit_passes_small_design(self):
        require_fit(build_datapath(_bfs_spec()))

    def test_utilization_fractions(self):
        estimate = estimate_datapath(build_datapath(_bfs_spec()))
        for value in estimate.utilization(STRATIX_V).values():
            assert 0.0 <= value < 1.0


class TestTuning:
    def test_tuner_grows_design(self):
        params = tune_parameters(_bfs_spec())
        assert params.total_pipelines > 2

    def test_tuned_design_fits(self):
        datapath = build_tuned_datapath(_bfs_spec())
        require_fit(datapath)

    def test_tuned_design_near_target(self):
        datapath = build_tuned_datapath(_bfs_spec())
        usage = estimate_datapath(datapath).utilization(STRATIX_V)
        assert max(usage.values()) <= 0.8 + 1e-9

    def test_rule_engine_share_reasonable(self):
        estimate = estimate_datapath(build_tuned_datapath(_bfs_spec()))
        assert 0.02 <= estimate.rule_engine_register_share <= 0.15

    def test_lane_count_divided_among_engines(self):
        lu = build_app("COOR-LU", grid=4, block_size=4)
        params = tune_parameters(lu)
        assert params.rule_lanes >= 8
