"""Tests for the SystemVerilog emitter."""

import re

import pytest

from repro.apps.registry import build_app
from repro.substrates.graphs import random_graph
from repro.synthesis.datapath import build_datapath
from repro.synthesis.rtl import emit_rtl, emit_rtl_for_spec, _sanitize

GRAPH = random_graph(30, 60, seed=71)


@pytest.fixture(scope="module")
def bfs_rtl():
    return emit_rtl_for_spec(build_app("SPEC-BFS", GRAPH, 0),
                             replicas={"visit": 2, "update": 2})


class TestSanitize:
    def test_plain_name(self):
        assert _sanitize("visit") == "visit"

    def test_special_characters(self):
        assert _sanitize("a.b-c") == "a_b_c"

    def test_leading_digit(self):
        assert _sanitize("1st") == "m1st"


class TestEmission:
    def test_balanced_modules(self, bfs_rtl):
        assert bfs_rtl.count("module ") - bfs_rtl.count("endmodule") \
            == bfs_rtl.count("endmodule")  # "module" appears in both
        assert bfs_rtl.count("endmodule") >= 5

    def test_header_names_the_app(self, bfs_rtl):
        assert "Application: SPEC-BFS" in bfs_rtl
        assert "`default_nettype none" in bfs_rtl

    def test_token_interface_emitted(self, bfs_rtl):
        assert "interface token_if" in bfs_rtl

    def test_queue_modules_per_task_set(self, bfs_rtl):
        assert "module task_queue_visit" in bfs_rtl
        assert "module task_queue_update" in bfs_rtl

    def test_rule_engine_module(self, bfs_rtl):
        assert "module rule_engine_update_conflict" in bfs_rtl
        assert "LANES" in bfs_rtl

    def test_stage_modules_for_used_kinds(self, bfs_rtl):
        for kind in ("load", "store", "rendezvous", "expand", "enqueue"):
            assert f"module stage_{kind}" in bfs_rtl

    def test_top_instantiates_all_replicas(self, bfs_rtl):
        # 2 visit + 2 update pipelines, each with a source instance.
        sources = re.findall(r"stage_source \w+_source", bfs_rtl)
        assert len(sources) == 4

    def test_top_wires_engine_ports(self, bfs_rtl):
        assert ".engine()" in bfs_rtl

    def test_instance_names_unique(self, bfs_rtl):
        names = re.findall(r"^\s+stage_\w+ (\w+) \(", bfs_rtl, re.M)
        assert len(names) == len(set(names))


class TestAcrossApps:
    @pytest.mark.parametrize("name,args,kwargs", [
        ("COOR-BFS", (GRAPH, 0), {}),
        ("SPEC-MST", (GRAPH,), {}),
        ("SPEC-DMR", (), {"n_points": 20}),
        ("COOR-LU", (), {"grid": 3, "block_size": 4}),
    ])
    def test_every_app_emits_wellformed_rtl(self, name, args, kwargs):
        spec = build_app(name, *args, **kwargs)
        text = emit_rtl(build_datapath(spec))
        assert text.count("endmodule") >= 4
        assert f"Application: {name}" in text
        # Every rule engine of the spec appears as a module.
        for rule in spec.rules:
            assert f"rule_engine_{_sanitize(rule)}" in text

    def test_epilogue_stages_emitted(self):
        spec = build_app("SPEC-MST", GRAPH)
        text = emit_rtl(build_datapath(spec))
        # The MST retry enqueue lives on the rendezvous abort path.
        assert re.search(r"_sep\d+_enqueue", text) or "ep" in text
