"""Tests for the design-space exploration module."""

import pytest

from repro.apps.registry import build_app
from repro.eval.platforms import EVAL_HARP
from repro.substrates.graphs import random_graph
from repro.synthesis.dse import (
    DesignPoint,
    DseResult,
    explore,
    format_frontier,
)

GRAPH = random_graph(50, 150, seed=41)


def _point(cycles, registers, label=1):
    return DesignPoint(
        replicas_per_set=label, rule_lanes=16, station_depth=8,
        cycles=cycles, registers=registers, alms=0, utilization=0.1,
    )


class TestPareto:
    def test_dominates(self):
        assert _point(100, 100).dominates(_point(200, 200))
        assert _point(100, 200).dominates(_point(100, 300))
        assert not _point(100, 300).dominates(_point(200, 200))
        assert not _point(100, 100).dominates(_point(100, 100))

    def test_frontier_excludes_dominated(self):
        result = DseResult(points=[
            _point(100, 300), _point(200, 200), _point(300, 100),
            _point(250, 250),  # dominated by (200, 200)
        ])
        frontier = result.frontier
        assert len(frontier) == 3
        assert all(p.cycles != 250 for p in frontier)

    def test_best_and_smallest(self):
        result = DseResult(points=[_point(100, 300), _point(300, 100)])
        assert result.best_performance().cycles == 100
        assert result.smallest().registers == 100


@pytest.fixture(scope="module")
def dse_result():
    return explore(
        lambda: build_app("SPEC-SSSP", GRAPH, 0),
        replica_options=(1, 2),
        lane_options=(16, 64),
        station_options=(8,),
        platform=EVAL_HARP,
    )


class TestExplore:
    def test_all_fitting_points_evaluated(self, dse_result):
        assert len(dse_result.points) + dse_result.skipped_overflow == 4

    def test_every_point_verified_and_measured(self, dse_result):
        for point in dse_result.points:
            assert point.cycles > 0
            assert point.registers > 0
            assert 0.0 <= point.utilization <= 1.0

    def test_more_resources_not_slower(self, dse_result):
        by_config = {
            (p.replicas_per_set, p.rule_lanes): p.cycles
            for p in dse_result.points
        }
        assert by_config[(2, 64)] <= by_config[(1, 16)]

    def test_frontier_non_empty(self, dse_result):
        assert dse_result.frontier
        # The fastest point is always on the frontier.
        assert dse_result.best_performance() in dse_result.frontier

    def test_format_frontier(self, dse_result):
        text = format_frontier(dse_result)
        assert "Pareto" in text
        assert "*" in text
