"""Tests for rule instances, verdicts, and event patterns."""

import pytest

from repro.core.eca import compile_rule
from repro.core.events import Event, EventKind
from repro.core.indexing import TaskIndex
from repro.core.rule import EventPattern, RuleVerdict


def _reach(task_set, label, index=(0,), **payload):
    return Event(EventKind.REACH, task_set, label, TaskIndex(index), payload)


def _activate(task_set, index=(0,), **payload):
    return Event(EventKind.ACTIVATE, task_set, "", TaskIndex(index), payload)


class TestEventPattern:
    def test_reach_matches_kind_set_label(self):
        pattern = EventPattern(EventKind.REACH, "t", "commit")
        assert pattern.matches(_reach("t", "commit"))
        assert not pattern.matches(_reach("t", "other"))
        assert not pattern.matches(_reach("u", "commit"))
        assert not pattern.matches(_activate("t"))

    def test_empty_label_matches_any_reach(self):
        pattern = EventPattern(EventKind.REACH, "t", "")
        assert pattern.matches(_reach("t", "anything"))

    def test_empty_task_set_matches_any(self):
        pattern = EventPattern(EventKind.ACTIVATE, "", "")
        assert pattern.matches(_activate("whatever"))


RULE = """
rule r(my_index, a):
    on reach t.commit if event.x == a do return false
    otherwise return true
"""


class TestVerdicts:
    def test_pending_initially(self):
        inst = compile_rule(RULE).instantiate(TaskIndex((0,)), {"a": 1})
        assert inst.verdict is RuleVerdict.PENDING
        assert not inst.returned

    def test_clause_verdict(self):
        inst = compile_rule(RULE).instantiate(TaskIndex((0,)), {"a": 1})
        inst.observe(_reach("t", "commit", x=1))
        assert inst.verdict is RuleVerdict.CLAUSE
        assert inst.value is False

    def test_otherwise_verdict(self):
        inst = compile_rule(RULE).instantiate(TaskIndex((0,)), {"a": 1})
        inst.trigger_otherwise()
        assert inst.verdict is RuleVerdict.OTHERWISE
        assert inst.value is True

    def test_requires_verdict(self):
        source = (
            "rule g() requires done:\n"
            "  on reach t.c do satisfy done\n"
            "  otherwise return true"
        )
        inst = compile_rule(source).instantiate(TaskIndex((0,)), {})
        inst.observe(_reach("t", "c"))
        assert inst.verdict is RuleVerdict.REQUIRES
        assert inst.value is True

    def test_observe_after_return_is_stable(self):
        inst = compile_rule(RULE).instantiate(TaskIndex((0,)), {"a": 1})
        inst.trigger_otherwise()
        inst.observe(_reach("t", "commit", x=1))
        assert inst.value is True  # verdict does not flip

    def test_events_ignored_by_wrong_label(self):
        inst = compile_rule(RULE).instantiate(TaskIndex((0,)), {"a": 1})
        assert inst.observe(_reach("t", "nope", x=1)) is None

    def test_clause_order_first_match_wins(self):
        source = (
            "rule r(a):\n"
            "  on reach t.c if event.x == a do return false\n"
            "  on reach t.c do return true\n"
            "  otherwise return false"
        )
        rule_type = compile_rule(source)
        hit = rule_type.instantiate(TaskIndex((0,)), {"a": 7})
        assert hit.observe(_reach("t", "c", x=7)) is False
        miss = rule_type.instantiate(TaskIndex((0,)), {"a": 7})
        assert miss.observe(_reach("t", "c", x=8)) is True

    def test_index_comparison_in_condition(self):
        source = (
            "rule r(my_index):\n"
            "  on reach t.c if event.index < my_index do return false\n"
            "  otherwise return true"
        )
        inst = compile_rule(source).instantiate(TaskIndex((5,)), {})
        assert inst.observe(_reach("t", "c", index=(9,))) is None
        assert inst.observe(_reach("t", "c", index=(3,))) is False


class TestImmediateRules:
    def test_immediate_flag_compiled(self):
        rule_type = compile_rule(
            "rule r():\n  otherwise immediately return true"
        )
        assert rule_type.immediate

    def test_non_immediate_by_default(self):
        assert not compile_rule(RULE).immediate
