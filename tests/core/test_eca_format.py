"""Round-trip tests for the ECA pretty-printer."""

import pytest
from hypothesis import given, strategies as st

from repro.core.eca import (
    BinaryOp,
    EventField,
    Literal,
    ParamRef,
    UnaryOp,
    parse_rule,
)
from repro.core.eca_format import format_expr, format_rule

RULES = [
    """
rule conflict(my_index, addr):
    on reach update.setLevel
        if event.addr == addr and event.index < my_index
        do return false
    otherwise return true
""",
    """
rule gate(k) requires ready:
    on reach t.commit if event.k == k do satisfy ready
    otherwise return true
""",
    """
rule fast():
    otherwise immediately return true
""",
    """
rule multi(a, b) requires x, y:
    on activate t or reach u.done
        if event.v + 1 < a * 2 or not b
        do satisfy x
    on reach u.done if event.cavity overlaps a do satisfy y
    otherwise return false
""",
]


@pytest.mark.parametrize("source", RULES)
def test_round_trip_parse_format_parse(source):
    first = parse_rule(source)
    rendered = format_rule(first)
    second = parse_rule(rendered)
    assert first.name == second.name
    assert first.params == second.params
    assert first.requires == second.requires
    assert first.otherwise == second.otherwise
    assert first.immediate == second.immediate
    assert len(first.clauses) == len(second.clauses)
    for a, b in zip(first.clauses, second.clauses):
        assert a.events == b.events
        assert a.action == b.action
        assert a.condition == b.condition


class TestFormatExpr:
    def test_literal_booleans(self):
        assert format_expr(Literal(True)) == "true"
        assert format_expr(Literal(False)) == "false"

    def test_numbers(self):
        assert format_expr(Literal(42)) == "42"

    def test_event_field(self):
        assert format_expr(EventField("addr")) == "event.addr"

    def test_parenthesization_or_under_and(self):
        expr = BinaryOp("and", BinaryOp("or", ParamRef("a"), ParamRef("b")),
                        ParamRef("c"))
        assert format_expr(expr) == "(a or b) and c"

    def test_no_spurious_parens(self):
        expr = BinaryOp("or", ParamRef("a"),
                        BinaryOp("and", ParamRef("b"), ParamRef("c")))
        assert format_expr(expr) == "a or b and c"

    def test_not_precedence(self):
        expr = UnaryOp("not", BinaryOp("or", ParamRef("a"), ParamRef("b")))
        assert format_expr(expr) == "not (a or b)"


# -- property: random expressions round-trip through the parser -------------

_names = st.sampled_from(["a", "b", "c", "zz"])


def _exprs(depth: int):
    leaf = st.one_of(
        st.integers(0, 99).map(Literal),
        _names.map(ParamRef),
        st.sampled_from(["addr", "index", "v"]).map(EventField),
    )
    if depth == 0:
        return leaf
    sub = _exprs(depth - 1)
    return st.one_of(
        leaf,
        st.tuples(st.sampled_from(["+", "*", "<", "==", "and", "or"]),
                  sub, sub).map(lambda t: BinaryOp(*t)),
        sub.map(lambda e: UnaryOp("not", e)),
    )


@given(_exprs(3))
def test_random_expr_round_trips(expr):
    source = (
        "rule r(a, b, c, zz):\n"
        f"    on reach t.x if {format_expr(expr)} do return false\n"
        "    otherwise return true"
    )
    ast = parse_rule(source)
    assert ast.clauses[0].condition == expr
