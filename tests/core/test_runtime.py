"""Tests for the software runtimes: sequential and aggressive interpreters."""

import pytest

from repro.core.eca import compile_rule
from repro.core.kernel import (
    AllocRule,
    Alu,
    Call,
    Const,
    Enqueue,
    Expand,
    Guard,
    Kernel,
    Load,
    Rendezvous,
    Store,
)
from repro.core.runtime import AggressiveRuntime, SequentialRuntime
from repro.core.spec import ApplicationSpec, make_task_sets
from repro.core.state import MemorySpace
from repro.errors import SchedulingError

ALWAYS_TRUE = compile_rule("rule ok():\n  otherwise return true")
ALWAYS_FALSE = compile_rule("rule nope():\n  otherwise return false")


def _simple_spec(ops, fields=("x",), initial=None, rules=None, verify=None,
                 **spec_kwargs):
    """One-task-set spec over a tiny array state."""
    import numpy as np

    def make_state():
        state = MemorySpace()
        state.add_array("mem", np.zeros(64, dtype=np.int64))
        return state

    return ApplicationSpec(
        name="toy",
        mode="speculative",
        task_sets=make_task_sets([("t", "for-each", fields)]),
        kernels={"t": Kernel("t", list(ops))},
        rules=rules or {"ok": ALWAYS_TRUE},
        make_state=make_state,
        initial_tasks=lambda state: initial or [("t", {"x": 1})],
        verify=verify or (lambda state: None),
        **spec_kwargs,
    )


class TestSequential:
    def test_const_and_store(self):
        spec = _simple_spec([
            Const("v", 42),
            Store("mem", lambda env: 0, lambda env: env["v"]),
        ])
        runtime = SequentialRuntime(spec)
        runtime.run()
        assert runtime.state.load("mem", 0) == 42

    def test_alu_computation(self):
        spec = _simple_spec([
            Alu("y", lambda env: env["x"] * 3 + 1),
            Store("mem", lambda env: 1, lambda env: env["y"]),
        ])
        runtime = SequentialRuntime(spec)
        runtime.run()
        assert runtime.state.load("mem", 1) == 4

    def test_load_reads_state(self):
        spec = _simple_spec([
            Store("mem", lambda env: 5, lambda env: 99),
            Load("got", "mem", lambda env: 5),
            Store("mem", lambda env: 6, lambda env: env["got"] + 1),
        ])
        runtime = SequentialRuntime(spec)
        runtime.run()
        assert runtime.state.load("mem", 6) == 100

    def test_guard_true_continues(self):
        spec = _simple_spec([
            Guard(lambda env: env["x"] == 1),
            Store("mem", lambda env: 0, lambda env: 7),
        ])
        runtime = SequentialRuntime(spec)
        stats = runtime.run()
        assert runtime.state.load("mem", 0) == 7
        assert stats.tasks_guard_dropped == 0

    def test_guard_false_drops(self):
        spec = _simple_spec([
            Guard(lambda env: env["x"] == 2),
            Store("mem", lambda env: 0, lambda env: 7),
        ])
        runtime = SequentialRuntime(spec)
        stats = runtime.run()
        assert runtime.state.load("mem", 0) == 0
        assert stats.tasks_guard_dropped == 1

    def test_guard_else_ops_run(self):
        spec = _simple_spec([
            Guard(lambda env: False, else_ops=(
                Store("mem", lambda env: 2, lambda env: 11),
            )),
            Store("mem", lambda env: 0, lambda env: 7),
        ])
        runtime = SequentialRuntime(spec)
        runtime.run()
        assert runtime.state.load("mem", 2) == 11
        assert runtime.state.load("mem", 0) == 0

    def test_expand_multiplies_work(self):
        spec = _simple_spec([
            Expand(lambda env, state: [{"i": k} for k in range(4)]),
            Store("mem", lambda env: env["i"], lambda env: 1),
        ])
        runtime = SequentialRuntime(spec)
        runtime.run()
        assert [runtime.state.load("mem", i) for i in range(4)] == [1] * 4

    def test_expand_empty_kills_token(self):
        spec = _simple_spec([
            Expand(lambda env, state: []),
            Store("mem", lambda env: 0, lambda env: 1),
        ])
        runtime = SequentialRuntime(spec)
        runtime.run()
        assert runtime.state.load("mem", 0) == 0

    def test_enqueue_chains_tasks(self):
        spec = _simple_spec([
            Store("mem", lambda env: env["x"], lambda env: 1),
            Enqueue("t", lambda env: {"x": env["x"] + 1},
                    when=lambda env: env["x"] < 5),
        ])
        runtime = SequentialRuntime(spec)
        stats = runtime.run()
        assert stats.tasks_executed == 5
        assert [runtime.state.load("mem", i) for i in range(1, 6)] == [1] * 5

    def test_rendezvous_commits_via_otherwise(self):
        spec = _simple_spec([
            AllocRule("ok", lambda env: {}),
            Rendezvous("rv"),
            Store("mem", lambda env: 0, lambda env: 1),
        ])
        runtime = SequentialRuntime(spec)
        runtime.run()
        assert runtime.state.load("mem", 0) == 1

    def test_rendezvous_abort_path(self):
        spec = _simple_spec(
            [
                AllocRule("nope", lambda env: {}),
                Rendezvous("rv", abort_ops=(
                    Store("mem", lambda env: 3, lambda env: 8),
                )),
                Store("mem", lambda env: 0, lambda env: 1),
            ],
            rules={"nope": ALWAYS_FALSE},
        )
        runtime = SequentialRuntime(spec)
        stats = runtime.run()
        assert runtime.state.load("mem", 3) == 8
        assert runtime.state.load("mem", 0) == 0
        assert stats.tasks_squashed == 1

    def test_combining_store(self):
        spec = _simple_spec([
            Store("mem", lambda env: 0, lambda env: 5, combine=max,
                  dst="old"),
            Store("mem", lambda env: 1, lambda env: env["old"]),
        ])
        runtime = SequentialRuntime(spec)
        runtime.run()
        assert runtime.state.load("mem", 0) == 5
        assert runtime.state.load("mem", 1) == 0

    def test_call_updates_env(self):
        spec = _simple_spec([
            Call(lambda env, state: {"y": env["x"] + 10}),
            Store("mem", lambda env: 0, lambda env: env["y"]),
        ])
        runtime = SequentialRuntime(spec)
        runtime.run()
        assert runtime.state.load("mem", 0) == 11

    def test_verify_runs(self):
        flagged = []
        spec = _simple_spec(
            [Store("mem", lambda env: 0, lambda env: 1)],
            verify=lambda state: flagged.append(True),
        )
        SequentialRuntime(spec).run()
        assert flagged == [True]


class TestAggressive:
    def test_matches_sequential_result(self):
        def build():
            return _simple_spec([
                Store("mem", lambda env: env["x"], lambda env: env["x"] * 2),
                Enqueue("t", lambda env: {"x": env["x"] + 1},
                        when=lambda env: env["x"] < 10),
            ])

        seq = SequentialRuntime(build())
        seq.run()
        agg = AggressiveRuntime(build(), workers=4)
        agg.run()
        for i in range(1, 11):
            assert agg.state.load("mem", i) == seq.state.load("mem", i)

    def test_workers_must_be_positive(self):
        spec = _simple_spec([Const("v", 1)])
        with pytest.raises(SchedulingError):
            AggressiveRuntime(spec, workers=0)

    def test_stats_count_commits(self):
        spec = _simple_spec([
            Store("mem", lambda env: 0, lambda env: 1),
        ])
        agg = AggressiveRuntime(spec, workers=2)
        stats = agg.run()
        assert stats.tasks_committed == 1
        assert stats.squash_fraction == 0.0

    def test_immediate_rule_resolves_without_minimum(self):
        immediate = compile_rule(
            "rule fast():\n  otherwise immediately return true"
        )
        spec = _simple_spec(
            [
                AllocRule("fast", lambda env: {}),
                Rendezvous("rv"),
                Store("mem", lambda env: 0, lambda env: 1),
            ],
            rules={"fast": immediate},
        )
        agg = AggressiveRuntime(spec, workers=2)
        agg.run()
        assert agg.state.load("mem", 0) == 1
