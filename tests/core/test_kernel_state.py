"""Tests for kernel validation, op metadata, memory space, tasks, events."""

import numpy as np
import pytest

from repro.core.events import Event, EventKind
from repro.core.indexing import TaskIndex
from repro.core.kernel import (
    AllocRule,
    Alu,
    Call,
    Const,
    Enqueue,
    Expand,
    Guard,
    Kernel,
    Label,
    Load,
    Rendezvous,
    Store,
)
from repro.core.state import MemorySpace
from repro.core.task import (
    LoopKind,
    TaskInstance,
    TaskSetDecl,
    validate_task_data,
)
from repro.errors import SimulationError, SpecificationError


class TestKernelValidation:
    def test_valid_kernel(self):
        Kernel("t", [
            AllocRule("r", lambda env: {}),
            Rendezvous("rv"),
        ]).validate()

    def test_rendezvous_without_alloc_rejected(self):
        with pytest.raises(SpecificationError):
            Kernel("t", [Rendezvous("rv")]).validate()

    def test_duplicate_rendezvous_labels_rejected(self):
        kernel = Kernel("t", [
            AllocRule("r", lambda env: {}),
            Rendezvous("rv"),
            AllocRule("r", lambda env: {}),
            Rendezvous("rv"),
        ])
        with pytest.raises(SpecificationError):
            kernel.validate()

    def test_control_op_in_epilogue_rejected(self):
        kernel = Kernel("t", [
            Guard(lambda env: True, else_ops=(
                Expand(lambda env, state: []),
            )),
        ])
        with pytest.raises(SpecificationError):
            kernel.validate()

    def test_op_counts(self):
        kernel = Kernel("t", [
            Const("c", 1),
            Guard(lambda env: True, else_ops=(Const("d", 2),)),
        ])
        counts = kernel.op_counts()
        assert counts["const"] == 2
        assert counts["guard"] == 1

    def test_alloc_rule_resolve(self):
        static = AllocRule("fixed", lambda env: {})
        assert static.resolve({}) == "fixed"
        dynamic = AllocRule(lambda env: f"gate{env['k']}", lambda env: {})
        assert dynamic.resolve({"k": 3}) == "gate3"

    def test_op_names(self):
        assert Const("c", 1).op_name() == "const"
        assert Load("d", "r", lambda env: 0).op_name() == "load"
        assert Label("x").op_name() == "label"
        assert Call(lambda env, state: None).op_name() == "call"
        assert Store("r", lambda env: 0, lambda env: 1).op_name() == "store"
        assert Alu("d", lambda env: 1).op_name() == "alu"
        assert Enqueue("t", lambda env: {}).op_name() == "enqueue"


class TestMemorySpace:
    def test_array_region_load_store(self):
        state = MemorySpace()
        state.add_array("a", np.zeros(8, dtype=np.int64))
        state.store("a", 3, 7)
        assert state.load("a", 3) == 7

    def test_region_addresses_disjoint(self):
        state = MemorySpace()
        state.add_array("a", np.zeros(8))
        state.add_array("b", np.zeros(8))
        assert state.address("b", 0) > state.address("a", 7)

    def test_address_arithmetic(self):
        state = MemorySpace()
        state.add_array("a", np.zeros(8), element_bytes=4)
        assert state.address("a", 2) - state.address("a", 0) == 8

    def test_duplicate_region_rejected(self):
        state = MemorySpace()
        state.add_array("a", np.zeros(2))
        with pytest.raises(SimulationError):
            state.add_array("a", np.zeros(2))

    def test_object_region(self):
        state = MemorySpace()
        payload = {"k": 1}
        state.add_object("obj", payload)
        assert state.object("obj") is payload

    def test_unknown_region(self):
        with pytest.raises(SimulationError):
            MemorySpace().load("ghost", 0)

    def test_contains_and_names(self):
        state = MemorySpace()
        state.add_array("a", np.zeros(2))
        assert "a" in state
        assert "zz" not in state
        assert state.names() == ["a"]


class TestTaskDecl:
    def test_entry_bits_default(self):
        decl = TaskSetDecl("t", LoopKind.FOR_EACH, ("a", "b"))
        assert decl.entry_bits == 64

    def test_entry_bits_explicit(self):
        decl = TaskSetDecl("t", LoopKind.FOR_ALL, ("a", "b"),
                           field_bits=(16, 48))
        assert decl.entry_bits == 64

    def test_duplicate_fields_rejected(self):
        with pytest.raises(SpecificationError):
            TaskSetDecl("t", LoopKind.FOR_EACH, ("a", "a"))

    def test_mismatched_field_bits_rejected(self):
        with pytest.raises(SpecificationError):
            TaskSetDecl("t", LoopKind.FOR_EACH, ("a",), field_bits=(8, 8))

    def test_loop_kind_parse(self):
        assert LoopKind.parse("for-all") is LoopKind.FOR_ALL
        with pytest.raises(SpecificationError):
            LoopKind.parse("while")

    def test_validate_task_data(self):
        decl = TaskSetDecl("t", LoopKind.FOR_EACH, ("a",))
        validate_task_data(decl, {"a": 1})
        with pytest.raises(SpecificationError):
            validate_task_data(decl, {"b": 1})


class TestTaskInstance:
    def test_sort_key_orders_by_index(self):
        early = TaskInstance("t", TaskIndex((0,)), {})
        late = TaskInstance("t", TaskIndex((1,)), {})
        assert early.sort_key() < late.sort_key()

    def test_uid_breaks_ties(self):
        a = TaskInstance("t", TaskIndex((0,)), {})
        b = TaskInstance("t", TaskIndex((0,)), {})
        assert a.sort_key() != b.sort_key()

    def test_with_fields(self):
        task = TaskInstance("t", TaskIndex((0,)), {"x": 1})
        clone = task.with_fields(x=2, y=3)
        assert clone.data == {"x": 2, "y": 3}
        assert clone.uid == task.uid
        assert task.data == {"x": 1}

    def test_getitem(self):
        task = TaskInstance("t", TaskIndex((0,)), {"x": 9})
        assert task["x"] == 9


class TestEvents:
    def test_matches_semantics(self):
        event = Event(EventKind.REACH, "t", "commit", TaskIndex((0,)), {})
        assert event.matches(EventKind.REACH, "t", "commit")
        assert event.matches(EventKind.REACH, "", "commit")
        assert event.matches(EventKind.REACH, "t", "")
        assert not event.matches(EventKind.ACTIVATE, "t", "commit")

    def test_field_access(self):
        event = Event(EventKind.ACTIVATE, "t", "", TaskIndex((0,)),
                      {"x": 3})
        assert event.field("x") == 3
