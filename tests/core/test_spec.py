"""Tests for ApplicationSpec validation and the index minter."""

import numpy as np
import pytest

from repro.core.eca import compile_rule
from repro.core.indexing import TaskIndex
from repro.core.kernel import Const, Kernel
from repro.core.spec import ApplicationSpec, IndexMinter, make_task_sets
from repro.core.state import MemorySpace
from repro.errors import SpecificationError

OK_RULE = compile_rule("rule ok():\n  otherwise return true")


def _spec(**overrides):
    kwargs = dict(
        name="toy",
        mode="speculative",
        task_sets=make_task_sets([("t", "for-each", ("x",))]),
        kernels={"t": Kernel("t", [Const("v", 1)])},
        rules={"ok": OK_RULE},
        make_state=MemorySpace,
        initial_tasks=lambda state: [("t", {"x": 0})],
        verify=lambda state: None,
    )
    kwargs.update(overrides)
    return ApplicationSpec(**kwargs)


class TestValidation:
    def test_valid_spec_builds(self):
        assert _spec().name == "toy"

    def test_bad_mode_rejected(self):
        with pytest.raises(SpecificationError):
            _spec(mode="optimistic")

    def test_bad_otherwise_scope_rejected(self):
        with pytest.raises(SpecificationError):
            _spec(otherwise_scope="engine")

    def test_kernels_must_match_task_sets(self):
        with pytest.raises(SpecificationError):
            _spec(kernels={"other": Kernel("other", [])})

    def test_priority_field_must_exist(self):
        with pytest.raises(SpecificationError):
            _spec(priority_fields={"t": "nope"})

    def test_priority_field_unknown_set_rejected(self):
        with pytest.raises(SpecificationError):
            _spec(priority_fields={"zz": "x"})

    def test_make_task_sets_order_preserved(self):
        sets = make_task_sets([
            ("a", "for-each", ("f",)),
            ("b", "for-all", ("g",)),
        ])
        assert list(sets) == ["a", "b"]

    def test_rule_for_rendezvous_mapping(self):
        from repro.core.kernel import AllocRule, Rendezvous

        kernel = Kernel("t", [
            AllocRule("ok", lambda env: {}),
            Rendezvous("rv"),
        ])
        spec = _spec(kernels={"t": kernel})
        assert spec.rule_for_rendezvous(kernel) == {"rv": "ok"}


class TestIndexMinter:
    def test_for_each_counter(self):
        minter = _spec().make_loop_nest()
        a = minter.mint("t", {"x": 0}, None)
        b = minter.mint("t", {"x": 0}, None)
        assert a.earlier_than(b)

    def test_priority_override(self):
        spec = _spec(priority_fields={"t": "x"})
        minter = spec.make_loop_nest()
        high = minter.mint("t", {"x": 9}, None)
        low = minter.mint("t", {"x": 2}, None)
        assert low.earlier_than(high)
        assert low == TaskIndex((2,))

    def test_priority_ties(self):
        spec = _spec(priority_fields={"t": "x"})
        minter = spec.make_loop_nest()
        a = minter.mint("t", {"x": 3}, None)
        b = minter.mint("t", {"x": 3}, None)
        assert a == b

    def test_reset(self):
        minter = _spec().make_loop_nest()
        minter.mint("t", {"x": 0}, None)
        minter.reset()
        assert minter.mint("t", {"x": 0}, None) == TaskIndex((0,))

    def test_width_matches_task_sets(self):
        spec = _spec(
            task_sets=make_task_sets([
                ("t", "for-each", ("x",)),
                ("u", "for-all", ("y",)),
            ]),
            kernels={
                "t": Kernel("t", [Const("v", 1)]),
                "u": Kernel("u", [Const("v", 1)]),
            },
        )
        assert spec.make_loop_nest().width == 2
