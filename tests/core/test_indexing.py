"""Tests for M-tuple well-order indices and loop nests (Figure 5)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.indexing import LoopNest, TaskIndex
from repro.errors import SpecificationError


class TestTaskIndex:
    def test_lexicographic_order(self):
        assert TaskIndex((0, 5)).earlier_than(TaskIndex((1, 0)))
        assert not TaskIndex((1, 0)).earlier_than(TaskIndex((0, 5)))

    def test_equal_indices_not_earlier(self):
        a, b = TaskIndex((2, 0)), TaskIndex((2, 0))
        assert not a.earlier_than(b)
        assert not b.earlier_than(a)
        assert a == b

    def test_left_position_dominates(self):
        assert TaskIndex((1, 99)).earlier_than(TaskIndex((2, 0)))

    def test_negative_position_rejected(self):
        with pytest.raises(SpecificationError):
            TaskIndex((-1, 0))

    def test_prefix(self):
        assert TaskIndex((3, 4, 5)).prefix(2) == (3, 4)

    def test_str(self):
        assert str(TaskIndex((1, 2))) == "{1, 2}"

    def test_comparison_operators(self):
        assert TaskIndex((0,)) < TaskIndex((1,))
        assert min(TaskIndex((4,)), TaskIndex((2,))) == TaskIndex((2,))


class TestLoopNest:
    def test_single_for_each_counts(self):
        nest = LoopNest([("visit", "for-each")])
        assert nest.root_index("visit") == TaskIndex((0,))
        assert nest.root_index("visit") == TaskIndex((1,))

    def test_for_all_always_zero(self):
        nest = LoopNest([("w", "for-all")])
        assert nest.root_index("w") == TaskIndex((0,))
        assert nest.root_index("w") == TaskIndex((0,))

    def test_figure5_nesting(self):
        # Figure 5: for-each update > for-each visit > for-all writeback.
        nest = LoopNest([
            ("update", "for-each"),
            ("visit", "for-each"),
            ("writeback", "for-all"),
        ])
        tu = nest.index_for("update", None)           # {0, 0, 0}
        assert tu == TaskIndex((0, 0, 0))
        tv = nest.index_for("visit", tu)              # {0, cv++, 0}
        assert tv == TaskIndex((0, 0, 0))
        tv2 = nest.index_for("visit", tu)
        assert tv2 == TaskIndex((0, 1, 0))
        tw = nest.index_for("writeback", tv2)         # {0, 1, 0}
        assert tw == TaskIndex((0, 1, 0))
        tu2 = nest.index_for("update", tv)            # {cu++, 0, 0}
        assert tu2 == TaskIndex((1, 0, 0))

    def test_inherited_prefix_truncated_at_child_position(self):
        nest = LoopNest([("a", "for-each"), ("b", "for-all")])
        parent = nest.index_for("a", None)
        child = nest.index_for("b", parent)
        assert child.positions[0] == parent.positions[0]

    def test_counters_global_not_per_parent(self):
        nest = LoopNest([("a", "for-each"), ("b", "for-each")])
        p1 = nest.index_for("a", None)
        p2 = nest.index_for("a", None)
        c1 = nest.index_for("b", p1)
        c2 = nest.index_for("b", p2)
        # Global counter: c2's b-position continues from c1's.
        assert c2.positions[1] == c1.positions[1] + 1

    def test_reset(self):
        nest = LoopNest([("a", "for-each")])
        nest.index_for("a", None)
        nest.reset()
        assert nest.index_for("a", None) == TaskIndex((0,))

    def test_duplicate_names_rejected(self):
        with pytest.raises(SpecificationError):
            LoopNest([("a", "for-each"), ("a", "for-all")])

    def test_unknown_kind_rejected(self):
        with pytest.raises(SpecificationError):
            LoopNest([("a", "while")])

    def test_unknown_loop_rejected(self):
        nest = LoopNest([("a", "for-each")])
        with pytest.raises(SpecificationError):
            nest.index_for("zzz", None)

    def test_empty_nest_rejected(self):
        with pytest.raises(SpecificationError):
            LoopNest([])


@given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3)), min_size=2,
                max_size=30))
def test_well_order_is_total_and_transitive(pairs):
    indices = [TaskIndex(p) for p in pairs]
    ordered = sorted(indices)
    for earlier, later in zip(ordered, ordered[1:]):
        assert not later.earlier_than(earlier)


@given(st.integers(1, 50))
def test_for_each_sequence_strictly_increasing(n):
    nest = LoopNest([("t", "for-each")])
    indices = [nest.index_for("t", None) for _ in range(n)]
    for a, b in zip(indices, indices[1:]):
        assert a.earlier_than(b)
