"""Tests for the threaded futures/promises runtime (Section 4.4)."""

import numpy as np
import pytest

from repro.apps.registry import build_app
from repro.core.eca import compile_rule
from repro.core.futures_runtime import FuturesRuntime
from repro.core.kernel import (
    AllocRule,
    Enqueue,
    Guard,
    Kernel,
    Rendezvous,
    Store,
)
from repro.core.spec import ApplicationSpec, make_task_sets
from repro.core.state import MemorySpace
from repro.errors import SchedulingError
from repro.substrates.graphs import random_graph

GRAPH = random_graph(80, 240, seed=51)

CASES = [
    ("SPEC-BFS", lambda: build_app("SPEC-BFS", GRAPH, 0)),
    ("COOR-BFS", lambda: build_app("COOR-BFS", GRAPH, 0)),
    ("SPEC-SSSP", lambda: build_app("SPEC-SSSP", GRAPH, 0)),
    ("SPEC-MST", lambda: build_app("SPEC-MST", GRAPH)),
    ("SPEC-DMR", lambda: build_app("SPEC-DMR", n_points=40, seed=6)),
    ("COOR-LU", lambda: build_app("COOR-LU", grid=4, block_size=5,
                                  density=0.4, seed=2)),
    ("SPEC-CC", lambda: build_app("SPEC-CC", GRAPH)),
]


@pytest.mark.parametrize("name,builder", CASES)
def test_apps_verify_under_real_threads(name, builder):
    stats = FuturesRuntime(builder(), threads=4).run()
    assert stats.tasks_executed > 0
    assert not stats.errors


def test_single_thread_works():
    stats = FuturesRuntime(build_app("SPEC-BFS", GRAPH, 0), threads=1).run()
    assert stats.tasks_executed > 0


def test_thread_count_validated():
    with pytest.raises(SchedulingError):
        FuturesRuntime(build_app("SPEC-BFS", GRAPH, 0), threads=0)


def test_repeated_runs_all_verify():
    """Different OS interleavings every run; all must converge."""
    for _ in range(3):
        FuturesRuntime(build_app("SPEC-SSSP", GRAPH, 0), threads=6).run()


def test_immediate_rule_resolves_without_blocking():
    immediate = compile_rule(
        "rule now():\n  otherwise immediately return true"
    )

    def make_state():
        state = MemorySpace()
        state.add_array("mem", np.zeros(8, dtype=np.int64))
        return state

    spec = ApplicationSpec(
        name="toy",
        mode="speculative",
        task_sets=make_task_sets([("t", "for-each", ("x",))]),
        kernels={"t": Kernel("t", [
            AllocRule("now", lambda env: {}),
            Rendezvous("rv"),
            Store("mem", lambda env: 0, lambda env: 1),
        ])},
        rules={"now": immediate},
        make_state=make_state,
        initial_tasks=lambda state: [("t", {"x": 1})],
        verify=lambda state: None,
    )
    runtime = FuturesRuntime(spec, threads=2, timeout_s=10.0)
    runtime.run()
    assert runtime.state.load("mem", 0) == 1


def test_squash_counted():
    nope = compile_rule("rule nope():\n  otherwise return false")

    def make_state():
        state = MemorySpace()
        state.add_array("mem", np.zeros(8, dtype=np.int64))
        return state

    spec = ApplicationSpec(
        name="toy",
        mode="speculative",
        task_sets=make_task_sets([("t", "for-each", ("x",))]),
        kernels={"t": Kernel("t", [
            AllocRule("nope", lambda env: {}),
            Rendezvous("rv"),
            Store("mem", lambda env: 0, lambda env: 1),
        ])},
        rules={"nope": nope},
        make_state=make_state,
        initial_tasks=lambda state: [("t", {"x": 1})],
        verify=lambda state: None,
    )
    runtime = FuturesRuntime(spec, threads=2, timeout_s=10.0)
    stats = runtime.run()
    assert stats.tasks_squashed == 1
    assert runtime.state.load("mem", 0) == 0
