"""Tests for the ECA rule grammar: tokenizer, parser, compiler."""

import pytest

from repro.core.eca import (
    BinaryOp,
    EventField,
    Literal,
    ParamRef,
    compile_rule,
    parse_rule,
    tokenize,
)
from repro.core.events import Event, EventKind
from repro.core.indexing import TaskIndex
from repro.errors import EcaSemanticError, EcaSyntaxError

SIMPLE = """
rule conflict(my_index, addr):
    on reach update.setLevel
        if event.addr == addr and event.index < my_index
        do return false
    otherwise return true
"""


class TestTokenizer:
    def test_keywords_and_names(self):
        tokens = tokenize("rule foo(bar)")
        kinds = [(t.kind, t.text) for t in tokens]
        assert ("kw", "rule") in kinds
        assert ("name", "foo") in kinds
        assert ("name", "bar") in kinds

    def test_numbers(self):
        tokens = tokenize("42 3.5")
        assert tokens[0].text == "42"
        assert tokens[1].text == "3.5"

    def test_comments_skipped(self):
        tokens = tokenize("rule # a comment\nfoo")
        assert [t.text for t in tokens if t.kind != "eof"] == ["rule", "foo"]

    def test_line_tracking(self):
        tokens = tokenize("a\nb")
        assert tokens[0].line == 1
        assert tokens[1].line == 2

    def test_unknown_character(self):
        with pytest.raises(EcaSyntaxError):
            tokenize("rule @bad")

    def test_two_char_operators(self):
        tokens = tokenize("<= >= == !=")
        assert [t.text for t in tokens[:-1]] == ["<=", ">=", "==", "!="]


class TestParser:
    def test_simple_rule(self):
        ast = parse_rule(SIMPLE)
        assert ast.name == "conflict"
        assert ast.params == ["my_index", "addr"]
        assert len(ast.clauses) == 1
        assert ast.otherwise is True
        assert not ast.immediate

    def test_immediate_otherwise(self):
        ast = parse_rule(
            "rule r():\n  otherwise immediately return false"
        )
        assert ast.immediate
        assert ast.otherwise is False

    def test_missing_otherwise_rejected(self):
        with pytest.raises(EcaSemanticError):
            parse_rule("rule r():\n  on activate t do return true")

    def test_activate_event(self):
        ast = parse_rule(
            "rule r():\n  on activate visit do return true\n"
            "  otherwise return false"
        )
        spec = ast.clauses[0].events[0]
        assert spec.kind is EventKind.ACTIVATE
        assert spec.task_set == "visit"

    def test_event_disjunction(self):
        ast = parse_rule(
            "rule r():\n"
            "  on activate a or reach b.commit do return true\n"
            "  otherwise return false"
        )
        assert len(ast.clauses[0].events) == 2

    def test_requires_and_satisfy(self):
        ast = parse_rule(
            "rule r(k) requires ready:\n"
            "  on reach t.commit if event.k == k do satisfy ready\n"
            "  otherwise return true"
        )
        assert ast.requires == ["ready"]
        assert ast.clauses[0].action == ("satisfy", "ready")

    def test_satisfy_undeclared_flag_rejected(self):
        with pytest.raises(EcaSemanticError):
            parse_rule(
                "rule r():\n"
                "  on reach t.c do satisfy ghost\n"
                "  otherwise return true"
            )

    def test_unsatisfiable_flag_rejected(self):
        with pytest.raises(EcaSemanticError):
            parse_rule(
                "rule r() requires never:\n  otherwise return true"
            )

    def test_unknown_param_in_condition_rejected(self):
        with pytest.raises(EcaSemanticError):
            parse_rule(
                "rule r(a):\n"
                "  on reach t.c if zz == 1 do return false\n"
                "  otherwise return true"
            )

    def test_duplicate_params_rejected(self):
        with pytest.raises(EcaSemanticError):
            parse_rule("rule r(a, a):\n  otherwise return true")

    def test_precedence_and_over_or(self):
        ast = parse_rule(
            "rule r(a, b, c):\n"
            "  on reach t.x if a == 1 or b == 2 and c == 3 "
            "do return false\n"
            "  otherwise return true"
        )
        cond = ast.clauses[0].condition
        assert isinstance(cond, BinaryOp) and cond.op == "or"
        assert isinstance(cond.right, BinaryOp) and cond.right.op == "and"

    def test_arithmetic_in_condition(self):
        ast = parse_rule(
            "rule r(a):\n"
            "  on reach t.x if event.v + 1 < a * 2 do return false\n"
            "  otherwise return true"
        )
        cond = ast.clauses[0].condition
        assert cond.op == "<"

    def test_parenthesized_expression(self):
        ast = parse_rule(
            "rule r(a, b):\n"
            "  on reach t.x if (a or b) and event.v == 1 do return false\n"
            "  otherwise return true"
        )
        assert ast.clauses[0].condition.op == "and"

    def test_syntax_error_reports_position(self):
        with pytest.raises(EcaSyntaxError) as excinfo:
            parse_rule("rule r(:\n  otherwise return true")
        assert excinfo.value.line >= 1


def _event(label="setLevel", task_set="update", index=(0, 0), **payload):
    return Event(EventKind.REACH, task_set, label, TaskIndex(index), payload)


class TestCompiledRules:
    def test_clause_fires_on_matching_event(self):
        rule_type = compile_rule(SIMPLE)
        inst = rule_type.instantiate(TaskIndex((1, 0)), {"addr": 64})
        value = inst.observe(_event(addr=64, index=(0, 0)))
        assert value is False

    def test_clause_ignores_wrong_address(self):
        rule_type = compile_rule(SIMPLE)
        inst = rule_type.instantiate(TaskIndex((1, 0)), {"addr": 64})
        assert inst.observe(_event(addr=128, index=(0, 0))) is None

    def test_clause_ignores_later_task(self):
        rule_type = compile_rule(SIMPLE)
        inst = rule_type.instantiate(TaskIndex((1, 0)), {"addr": 64})
        assert inst.observe(_event(addr=64, index=(5, 0))) is None

    def test_my_index_bound_implicitly(self):
        rule_type = compile_rule(SIMPLE)
        inst = rule_type.instantiate(TaskIndex((3, 0)), {"addr": 8})
        assert inst.arguments["my_index"] == TaskIndex((3, 0))

    def test_otherwise_returns_configured_value(self):
        rule_type = compile_rule(SIMPLE)
        inst = rule_type.instantiate(TaskIndex((0, 0)), {"addr": 8})
        assert inst.trigger_otherwise() is True

    def test_otherwise_does_not_override_clause(self):
        rule_type = compile_rule(SIMPLE)
        inst = rule_type.instantiate(TaskIndex((1, 0)), {"addr": 64})
        inst.observe(_event(addr=64, index=(0, 0)))
        assert inst.trigger_otherwise() is False

    def test_requires_conjunction(self):
        source = (
            "rule gate(k) requires a_done, b_done:\n"
            "  on reach t.commit if event.which == 0 and event.k == k "
            "do satisfy a_done\n"
            "  on reach t.commit if event.which == 1 and event.k == k "
            "do satisfy b_done\n"
            "  otherwise return true"
        )
        rule_type = compile_rule(source)
        inst = rule_type.instantiate(TaskIndex((9,)), {"k": 2})
        assert inst.observe(_event("commit", "t", (0,), which=0, k=2)) is None
        assert inst.observe(
            _event("commit", "t", (1,), which=1, k=2)
        ) is True

    def test_overlaps_operator(self):
        source = (
            "rule c(mine):\n"
            "  on reach t.commit if event.cavity overlaps mine "
            "do return false\n"
            "  otherwise return true"
        )
        rule_type = compile_rule(source)
        inst = rule_type.instantiate(TaskIndex((1,)), {"mine": (3, 4)})
        assert inst.observe(_event("commit", "t", (0,), cavity=(4, 9))) \
            is False

    def test_overlaps_disjoint(self):
        source = (
            "rule c(mine):\n"
            "  on reach t.commit if event.cavity overlaps mine "
            "do return false\n"
            "  otherwise return true"
        )
        rule_type = compile_rule(source)
        inst = rule_type.instantiate(TaskIndex((1,)), {"mine": (3, 4)})
        assert inst.observe(_event("commit", "t", (0,), cavity=(8, 9))) \
            is None

    def test_wrong_arguments_rejected(self):
        rule_type = compile_rule(SIMPLE)
        from repro.errors import SchedulingError
        with pytest.raises(SchedulingError):
            rule_type.instantiate(TaskIndex((0, 0)), {"bogus": 1})

    def test_event_subscriptions(self):
        rule_type = compile_rule(SIMPLE)
        subs = rule_type.event_subscriptions()
        assert len(subs) == 1
        assert next(iter(subs)).label == "setLevel"
