"""Tests for the experiment harness at tiny scale (full runs live in
benchmarks/)."""

import pytest

from repro.eval.experiments import (
    run_figure9,
    run_figure10,
    run_resources,
    run_table1,
)
from repro.eval.platforms import EVAL_HARP, HARP
from repro.eval.reporting import (
    format_figure9,
    format_figure10,
    format_resources,
    format_table1,
)
from repro.eval.workloads import (
    APP_NAMES,
    default_workloads,
    road_workloads,
)


@pytest.fixture(scope="module")
def tiny_workloads():
    return default_workloads(scale=0.3)


class TestWorkloads:
    def test_all_apps_present(self, tiny_workloads):
        assert set(tiny_workloads) == set(APP_NAMES)

    def test_profiles_attached(self, tiny_workloads):
        for workload in tiny_workloads.values():
            assert workload.profile.instructions > 0

    def test_specs_buildable(self, tiny_workloads):
        for workload in tiny_workloads.values():
            spec = workload.build_spec()
            assert spec.name == workload.app

    def test_road_variants(self):
        roads = road_workloads(scale=0.3)
        assert set(roads) == {"SPEC-BFS", "COOR-BFS", "SPEC-SSSP"}


class TestPlatforms:
    def test_bandwidth_scaling(self):
        assert HARP.scaled(2.0).qpi_bytes_per_cycle == pytest.approx(
            2.0 * HARP.qpi_bytes_per_cycle
        )

    def test_eval_platform_smaller_cache(self):
        assert EVAL_HARP.cache_bytes < HARP.cache_bytes

    def test_cycle_seconds(self):
        assert HARP.cycle_seconds == pytest.approx(5e-9)


class TestExperimentsTiny:
    def test_table1_small(self):
        result = run_table1(width=16, height=4, seed=1)
        assert result.opencl_seconds > result.spec_bfs_seconds
        text = format_table1(result)
        assert "OpenCL" in text and "SPEC-BFS" in text

    def test_figure9_single_app(self, tiny_workloads):
        result = run_figure9(apps=("SPEC-MST",), workloads=tiny_workloads)
        row = result.rows["SPEC-MST"]
        assert row.speedup_vs_1core > 0
        assert row.speedup_vs_10core > 0
        assert "SPEC-MST" in format_figure9(result)

    def test_figure9_speedup_dicts(self, tiny_workloads):
        result = run_figure9(apps=("COOR-LU",), workloads=tiny_workloads)
        assert set(result.speedups_1core()) == {"COOR-LU"}
        assert set(result.speedups_10core()) == {"COOR-LU"}

    def test_figure10_two_points(self, tiny_workloads):
        result = run_figure10(
            apps=("COOR-LU",), bandwidth_scales=(1.0, 4.0),
            workloads=tiny_workloads,
        )
        series = result["COOR-LU"]
        assert series.points[0].speedup_over_baseline == 1.0
        assert series.points[1].speedup_over_baseline > 1.5
        assert "COOR-LU" in format_figure10(result)

    def test_resources_tiny(self, tiny_workloads):
        rows = run_resources(apps=("SPEC-BFS",), workloads=tiny_workloads)
        row = rows["SPEC-BFS"]
        assert 0.0 < row.rule_engine_register_share < 0.2
        assert "SPEC-BFS" in format_resources(rows)
