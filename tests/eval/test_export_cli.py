"""Tests for JSON export and the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.eval.export import export_all, table1_to_dict
from repro.eval.experiments import run_figure9, run_table1
from repro.eval.workloads import default_workloads


@pytest.fixture(scope="module")
def small_table1():
    return run_table1(width=14, height=4, seed=1)


class TestExport:
    def test_table1_dict(self, small_table1):
        data = table1_to_dict(small_table1)
        assert data["seconds"]["OpenCL"] > 0
        assert data["ratios"]["opencl_vs_spec"] > 1
        assert data["paper_seconds"]["OpenCL"] == 124.1

    def test_export_all_writes_json(self, small_table1, tmp_path):
        workloads = default_workloads(scale=0.3)
        figure9 = run_figure9(apps=("COOR-LU",), workloads=workloads)
        path = export_all(tmp_path / "out.json", table1=small_table1,
                          figure9=figure9)
        document = json.loads(path.read_text())
        assert document["paper"].startswith("Li et al.")
        assert "table1" in document
        assert "COOR-LU" in document["figure9"]["rows"]

    def test_partial_export(self, tmp_path):
        path = export_all(tmp_path / "empty.json")
        document = json.loads(path.read_text())
        assert "table1" not in document


class TestExperimentRecords:
    """Experiment results adapt into run-store records (same schema)."""

    def test_figure10_series_becomes_per_bandwidth_records(self):
        from repro.eval.experiments import Figure10Point, Figure10Series
        from repro.eval.export import experiment_records
        from repro.eval.platforms import EVAL_HARP

        series = Figure10Series("SPEC-BFS", points=[
            Figure10Point(1.0, 1e-3, 1.0, 0.30, 0.01),
            Figure10Point(8.0, 5e-4, 2.0, 0.35, 0.02),
        ])
        records = experiment_records(figure10={"SPEC-BFS": series})
        assert [r.platform["bandwidth_scale"] for r in records] == \
            [1.0, 8.0]
        assert all(r.kind == "experiment" for r in records)
        assert records[0].cycles == int(round(1e-3 * EVAL_HARP.clock_hz))
        assert records[1].extra["speedup_over_baseline"] == 2.0
        # Scaled platform facts are captured per point.
        assert records[1].platform["qpi_bytes_per_cycle"] == \
            pytest.approx(8 * records[0].platform["qpi_bytes_per_cycle"])

    def test_table1_figure9_and_resources_adapt(self, small_table1):
        from repro.eval.experiments import (
            Figure9Result, Figure9Row, ResourceRow,
        )
        from repro.eval.export import experiment_records

        figure9 = Figure9Result(rows={
            "COOR-LU": Figure9Row("COOR-LU", 0.002, 0.006, 0.003, 0.1),
        })
        resources = {"SPEC-BFS": ResourceRow("SPEC-BFS", 8, 32, 0.07,
                                             0.2, 0.4, 0.05)}
        records = experiment_records(
            table1=small_table1, figure9=figure9, resources=resources,
        )
        kinds = [r.extra["experiment"] for r in records]
        assert kinds == ["table1", "table1", "figure9", "resources"]
        assert records[2].extra["speedup_vs_1core"] == 3.0
        assert records[3].cycles == 0  # structural row, no timing

    def test_store_experiment_results_appends(self, tmp_path):
        from repro.eval.experiments import Figure10Point, Figure10Series
        from repro.eval.export import store_experiment_results
        from repro.obs.runstore import RunStore

        store = RunStore(tmp_path / "store")
        series = Figure10Series("X", points=[
            Figure10Point(1.0, 1e-3, 1.0, 0.1, 0.0),
        ])
        count = store_experiment_results(store, figure10={"X": series})
        assert count == 1
        records = store.records()
        assert records[0].run_id == "000001"
        assert records[0].app == "X"


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "SPEC-BFS" in out
        assert "COOR-LU" in out

    def test_rules(self, capsys):
        assert main(["rules", "SPEC-SSSP"]) == 0
        out = capsys.readouterr().out
        assert "rule relax_conflict" in out
        assert "otherwise" in out

    def test_run(self, capsys):
        assert main(["run", "SPEC-CC", "--workers", "4"]) == 0
        assert "VERIFIED" in capsys.readouterr().out

    def test_simulate_with_trace(self, capsys):
        code = main([
            "simulate", "SPEC-CC", "--trace", "--trace-cycles", "200",
            "--trace-width", "40", "--no-store",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "VERIFIED" in out
        assert "#" in out  # the timeline

    def test_simulate_with_prefetch(self, capsys):
        assert main(["simulate", "SPEC-CC", "--prefetch",
                     "--no-store"]) == 0
        assert "VERIFIED" in capsys.readouterr().out

    def test_experiment_table1_with_json(self, capsys, tmp_path):
        target = str(tmp_path / "t1.json")
        store = tmp_path / "store"
        assert main(["experiment", "table1", "--json", target,
                     "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "stored 2 experiment records" in out
        assert json.loads(open(target).read())["table1"]
        lines = (store / "runs.jsonl").read_text().splitlines()
        assert [json.loads(l)["app"] for l in lines] == \
            ["SPEC-BFS", "COOR-BFS"]

    def test_dse(self, capsys):
        code = main([
            "dse", "SPEC-CC", "--replicas", "1", "--lanes", "16",
        ])
        assert code == 0
        assert "Pareto" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
