"""Tests for JSON export and the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.eval.export import export_all, table1_to_dict
from repro.eval.experiments import run_figure9, run_table1
from repro.eval.workloads import default_workloads


@pytest.fixture(scope="module")
def small_table1():
    return run_table1(width=14, height=4, seed=1)


class TestExport:
    def test_table1_dict(self, small_table1):
        data = table1_to_dict(small_table1)
        assert data["seconds"]["OpenCL"] > 0
        assert data["ratios"]["opencl_vs_spec"] > 1
        assert data["paper_seconds"]["OpenCL"] == 124.1

    def test_export_all_writes_json(self, small_table1, tmp_path):
        workloads = default_workloads(scale=0.3)
        figure9 = run_figure9(apps=("COOR-LU",), workloads=workloads)
        path = export_all(tmp_path / "out.json", table1=small_table1,
                          figure9=figure9)
        document = json.loads(path.read_text())
        assert document["paper"].startswith("Li et al.")
        assert "table1" in document
        assert "COOR-LU" in document["figure9"]["rows"]

    def test_partial_export(self, tmp_path):
        path = export_all(tmp_path / "empty.json")
        document = json.loads(path.read_text())
        assert "table1" not in document


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "SPEC-BFS" in out
        assert "COOR-LU" in out

    def test_rules(self, capsys):
        assert main(["rules", "SPEC-SSSP"]) == 0
        out = capsys.readouterr().out
        assert "rule relax_conflict" in out
        assert "otherwise" in out

    def test_run(self, capsys):
        assert main(["run", "SPEC-CC", "--workers", "4"]) == 0
        assert "VERIFIED" in capsys.readouterr().out

    def test_simulate_with_trace(self, capsys):
        code = main([
            "simulate", "SPEC-CC", "--trace", "--trace-cycles", "200",
            "--trace-width", "40",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "VERIFIED" in out
        assert "#" in out  # the timeline

    def test_simulate_with_prefetch(self, capsys):
        assert main(["simulate", "SPEC-CC", "--prefetch"]) == 0
        assert "VERIFIED" in capsys.readouterr().out

    def test_experiment_table1_with_json(self, capsys, tmp_path):
        target = str(tmp_path / "t1.json")
        assert main(["experiment", "table1", "--json", target]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert json.loads(open(target).read())["table1"]

    def test_dse(self, capsys):
        code = main([
            "dse", "SPEC-CC", "--replicas", "1", "--lanes", "16",
        ])
        assert code == 0
        assert "Pareto" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
