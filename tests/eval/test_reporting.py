"""Tests for report formatting and simulation statistics helpers."""

import pytest

from repro.eval.experiments import (
    Figure9Result,
    Figure9Row,
    Figure10Point,
    Figure10Series,
    ResourceRow,
    Table1Result,
)
from repro.eval.reporting import (
    format_figure9,
    format_figure10,
    format_resources,
    format_table1,
)
from repro.sim.stats import SimStats


def _table1():
    return Table1Result(
        opencl_seconds=2.0, spec_bfs_seconds=0.01, coor_bfs_seconds=0.02,
        levels=12, graph="road 10x4",
    )


class TestFormatting:
    def test_table1_contains_ratio(self):
        text = format_table1(_table1())
        assert "200.0x" in text
        assert "road 10x4" in text

    def test_table1_ratios(self):
        result = _table1()
        assert result.opencl_vs_spec == pytest.approx(200.0)
        assert result.opencl_vs_coor == pytest.approx(100.0)

    def test_figure9_rows_rendered(self):
        result = Figure9Result(rows={
            "SPEC-BFS": Figure9Row("SPEC-BFS", 0.001, 0.004, 0.0015, 0.2),
        })
        text = format_figure9(result)
        assert "SPEC-BFS" in text
        assert "4.00x" in text  # 0.004 / 0.001
        assert "1.50x" in text

    def test_figure10_series_rendered(self):
        series = Figure10Series("COOR-LU", points=[
            Figure10Point(1.0, 1e-3, 1.0, 0.01, 0.0),
            Figure10Point(2.0, 5e-4, 2.0, 0.02, 0.0),
        ])
        text = format_figure10({"COOR-LU": series})
        assert "COOR-LU" in text
        assert "2.00" in text

    def test_resources_rendered(self):
        rows = {"SPEC-BFS": ResourceRow(
            "SPEC-BFS", pipelines=8, rule_lanes=32,
            rule_engine_register_share=0.07,
            register_utilization=0.2, alm_utilization=0.4,
            bram_utilization=0.05,
        )}
        text = format_resources(rows)
        assert "7.0%" in text
        assert "SPEC-BFS" in text

    def test_figure10_series_accessors(self):
        series = Figure10Series("x", points=[
            Figure10Point(1.0, 1.0, 1.0, 0.1, 0.0),
            Figure10Point(2.0, 0.5, 2.0, 0.2, 0.1),
        ])
        assert series.speedups() == [1.0, 2.0]
        assert series.utilizations() == [0.1, 0.2]


class TestFormatterStructure:
    """Every formatter renders a self-describing, line-oriented block."""

    def test_table1_lists_paper_reference_column(self):
        text = format_table1(_table1())
        lines = text.splitlines()
        assert lines[0].startswith("Table 1")
        assert "paper" in lines[2]
        assert "124.10" in text  # PAPER_TABLE1 OpenCL seconds
        assert "264x" in text    # paper OpenCL/SPEC ratio

    def test_figure9_header_carries_paper_bands(self):
        result = Figure9Result(rows={
            "SPEC-BFS": Figure9Row("SPEC-BFS", 0.001, 0.004, 0.0015, 0.2),
            "COOR-LU": Figure9Row("COOR-LU", 0.002, 0.006, 0.0030, 0.1),
        })
        text = format_figure9(result)
        assert "2.3-5.9x vs 1 core" in text
        assert "0.5-1.9x vs 10 cores" in text
        # One row per app, in insertion order.
        rows = [l for l in text.splitlines()
                if l.strip().startswith(("SPEC-", "COOR-"))]
        assert [r.split()[0] for r in rows] == ["SPEC-BFS", "COOR-LU"]

    def test_figure10_renders_three_lines_per_app(self):
        series = Figure10Series("SPEC-BFS", points=[
            Figure10Point(1.0, 1e-3, 1.00, 0.30, 0.01),
            Figure10Point(8.0, 1.1e-3, 0.91, 0.35, 0.02),
        ])
        text = format_figure10({"SPEC-BFS": series})
        lines = text.splitlines()
        assert len(lines) == 1 + 3  # header + bandwidth/speedup/util
        assert "bandwidth:" in lines[1] and "8x" in lines[1]
        assert "speedup:" in lines[2] and "0.91" in lines[2]
        assert "util:" in lines[3] and "0.350" in lines[3]

    def test_resources_percentages(self):
        rows = {
            "A": ResourceRow("A", 4, 16, 0.05, 0.1, 0.2, 0.3),
            "B": ResourceRow("B", 8, 64, 0.10, 0.4, 0.5, 0.6),
        }
        text = format_resources(rows)
        assert "4.8-10%" in text  # the paper band in the header
        assert "5.0%" in text and "10.0%" in text
        assert text.index(" A ") < text.index(" B ")


class TestSimStats:
    def test_utilization_definition(self):
        stats = SimStats(cycles=100, total_stages=10,
                         active_stage_cycles=250)
        assert stats.pipeline_utilization == 0.25

    def test_utilization_empty(self):
        assert SimStats().pipeline_utilization == 0.0

    def test_squash_fraction(self):
        stats = SimStats(commits=75, squashes=25)
        assert stats.squash_fraction == 0.25

    def test_squash_fraction_no_work(self):
        assert SimStats().squash_fraction == 0.0

    def test_seconds(self):
        stats = SimStats(cycles=200_000_000)
        assert stats.seconds(200e6) == pytest.approx(1.0)


class TestErrors:
    def test_hierarchy(self):
        from repro import errors

        assert issubclass(errors.EcaSyntaxError, errors.SpecificationError)
        assert issubclass(errors.DeadlockError, errors.SimulationError)
        assert issubclass(errors.ResourceError, errors.SynthesisError)
        assert issubclass(errors.SynthesisError, errors.ReproError)

    def test_eca_syntax_error_position(self):
        from repro.errors import EcaSyntaxError

        error = EcaSyntaxError("bad token", line=3, column=7)
        assert "line 3" in str(error)
        assert error.column == 7

    def test_deadlock_error_message(self):
        from repro.errors import DeadlockError

        error = DeadlockError(123, "stage x stuck")
        assert "cycle 123" in str(error)
        assert "stage x stuck" in str(error)


class TestStageProfile:
    def test_per_stage_stats_populated_after_run(self):
        from repro.apps.registry import build_app
        from repro.sim.accelerator import AcceleratorSim, SimConfig
        from repro.substrates.graphs import random_graph

        graph = random_graph(30, 60, seed=5)
        sim = AcceleratorSim(build_app("SPEC-BFS", graph, 0),
                             config=SimConfig())
        result = sim.run()
        assert result.stats.per_stage_active
        assert set(result.stats.per_stage_active) == set(
            result.stats.per_stage_stalls
        )
        # The load stage did real work.
        load_keys = [k for k in result.stats.per_stage_active if "load" in k]
        assert any(result.stats.per_stage_active[k] > 0 for k in load_keys)
