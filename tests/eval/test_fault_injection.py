"""Fault injection: prove the verification oracles actually catch bugs.

Every timing claim in this repository rests on runs that compute real
answers and verify them.  These tests deliberately sabotage the
computation — the combining function, the well-order, a block kernel — and
assert the oracle rejects the run.  A reproduction whose checks cannot
fail proves nothing.

(Notably, some *timing*-level sabotages turn out benign under the
simulator's deterministic schedules — e.g. releasing MST edges instantly
still commits them in priority-pop order.  The ablation suite covers the
schedules that do break; here we break the data path itself.)
"""

import numpy as np
import pytest

from repro.apps.bfs import spec_bfs
from repro.apps.mst import spec_mst
from repro.apps.sparselu import coor_lu
from repro.core.kernel import Call, Store
from repro.core.runtime import AggressiveRuntime
from repro.errors import SimulationError
from repro.sim import simulate_app
from repro.substrates.graphs import random_graph

GRAPH = random_graph(80, 240, seed=101)


def test_wrong_combine_function_is_caught():
    """max-combining instead of min: stale levels win, oracle fires."""
    spec = spec_bfs(GRAPH, 0)
    update = spec.kernels["update"]
    store_index = next(
        i for i, op in enumerate(update.ops) if isinstance(op, Store)
    )
    old: Store = update.ops[store_index]
    update.ops[store_index] = Store(
        region=old.region, addr=old.addr, value=old.value,
        label=old.label, combine=max, dst=old.dst,
    )
    with pytest.raises(SimulationError):
        simulate_app(spec)


def test_corrupted_well_order_is_caught():
    """Reverse the MST ranks: edges commit heaviest-first, weight wrong."""
    spec = spec_mst(GRAPH)
    original = spec.initial_tasks

    def reversed_ranks(state):
        tasks = original(state)
        n = len(tasks)
        return [
            (task_set, {**fields, "rank": n - 1 - fields["rank"]})
            for task_set, fields in tasks
        ]

    spec.initial_tasks = reversed_ranks
    with pytest.raises(SimulationError):
        simulate_app(spec)


def test_skipped_block_kernel_is_caught():
    """Drop every lu0 factorization: the LU residual check fires."""
    spec = coor_lu(grid=6, block_size=6, density=0.5, seed=3)
    kernel = spec.kernels["lutask"]
    call_index = next(
        i for i, op in enumerate(kernel.ops) if isinstance(op, Call)
    )
    old: Call = kernel.ops[call_index]

    def skipping_fn(env, state):
        if env["kind"] == 0:  # silently skip lu0
            return {"ckind": env["kind"], "ck": env["k"],
                    "ci": env["i"], "cj": env["j"]}
        return old.fn(env, state)

    kernel.ops[call_index] = Call(
        fn=skipping_fn, cycles=old.cycles, traffic=old.traffic,
        label=old.label, profile=old.profile,
        completes_task=old.completes_task,
    )
    with pytest.raises(SimulationError):
        simulate_app(spec)


def test_corrupted_state_is_caught_by_verify():
    """Verify callbacks inspect real state, not simulation bookkeeping."""
    spec = spec_bfs(GRAPH, 0)
    runtime = AggressiveRuntime(spec, workers=4)
    # Sabotage the state before running: claim vertex 1 is at level 0.
    runtime.state.store("level", 1, 0)
    with pytest.raises(SimulationError):
        runtime.run()


def test_dropped_enqueue_is_caught():
    """Suppress next-level visit activation: unreachable levels remain."""
    from repro.core.kernel import Enqueue

    spec = spec_bfs(GRAPH, 0)
    update = spec.kernels["update"]
    enqueue_index = next(
        i for i, op in enumerate(update.ops) if isinstance(op, Enqueue)
    )
    old: Enqueue = update.ops[enqueue_index]
    update.ops[enqueue_index] = Enqueue(
        task_set=old.task_set, fields=old.fields,
        when=lambda env: False,  # never activate the next level
    )
    with pytest.raises(SimulationError):
        simulate_app(spec)


def test_honest_runs_still_pass():
    """Control: the unsabotaged specs all verify."""
    simulate_app(spec_bfs(GRAPH, 0))
    simulate_app(spec_mst(GRAPH))
    simulate_app(coor_lu(grid=6, block_size=6, density=0.5, seed=3))
