"""Tests for CSR graphs, generators, DIMACS I/O and oracle algorithms."""

import io

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InputError
from repro.substrates.graphs import (
    CSRGraph,
    bfs_levels,
    dijkstra_distances,
    grid_graph,
    kruskal_mst,
    random_graph,
    rmat_graph,
    road_network,
)
from repro.substrates.graphs.algorithms import (
    INF,
    bellman_ford_distances,
    connected_components,
)
from repro.substrates.graphs.io import read_dimacs, write_dimacs


class TestCSRGraph:
    def test_basic_neighbors(self):
        g = CSRGraph(3, [(0, 1), (0, 2), (1, 2)])
        assert list(g.neighbors(0)) == [1, 2]
        assert list(g.neighbors(1)) == [2]
        assert list(g.neighbors(2)) == []

    def test_undirected_doubles_edges(self):
        g = CSRGraph(3, [(0, 1)], directed=False)
        assert g.num_edges == 2
        assert list(g.neighbors(1)) == [0]

    def test_weights_parallel_to_neighbors(self):
        g = CSRGraph(3, [(0, 1, 5.0), (0, 2, 7.0)])
        assert list(g.neighbor_weights(0)) == [5.0, 7.0]

    def test_default_weight_is_one(self):
        g = CSRGraph(2, [(0, 1)])
        assert g.neighbor_weights(0)[0] == 1.0

    def test_degree(self):
        g = CSRGraph(4, [(0, 1), (0, 2), (0, 3)])
        assert g.degree(0) == 3
        assert g.degree(1) == 0

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(InputError):
            CSRGraph(2, [(0, 5)])

    def test_malformed_edge_rejected(self):
        with pytest.raises(InputError):
            CSRGraph(2, [(0,)])

    def test_unique_undirected_edges_sorted_by_weight(self):
        g = CSRGraph(3, [(0, 1, 9.0), (1, 2, 1.0)], directed=False)
        edges = g.unique_undirected_edges()
        assert edges == [(1, 2, 1.0), (0, 1, 9.0)]

    def test_average_degree(self):
        g = CSRGraph(4, [(0, 1), (1, 2)], directed=False)
        assert g.average_degree == pytest.approx(1.0)

    def test_adjacency_bytes_positive(self):
        g = grid_graph(3, 3)
        assert g.adjacency_bytes() > 0

    def test_empty_graph(self):
        g = CSRGraph(0, [])
        assert g.num_vertices == 0
        assert g.average_degree == 0.0


class TestGenerators:
    def test_grid_shape(self):
        g = grid_graph(4, 3)
        assert g.num_vertices == 12
        # Interior degree 4, corners 2.
        assert g.degree(0) == 2

    def test_grid_rejects_empty(self):
        with pytest.raises(InputError):
            grid_graph(0, 3)

    def test_road_network_connected(self):
        g = road_network(12, 9, seed=3)
        labels = connected_components(g)
        assert len(set(labels.tolist())) == 1

    def test_road_network_low_degree(self):
        g = road_network(20, 20, seed=1)
        assert 2.0 < g.average_degree < 5.0

    def test_road_network_high_diameter(self):
        g = road_network(30, 4, seed=2, shortcut_fraction=0.0)
        levels = bfs_levels(g, 0)
        finite = levels[levels < INF]
        # Diameter scales with the lattice span, not log(n).
        assert finite.max() >= 15

    def test_road_network_deterministic(self):
        a = road_network(8, 8, seed=5)
        b = road_network(8, 8, seed=5)
        assert a.num_edges == b.num_edges
        assert np.array_equal(a.indices, b.indices)

    def test_random_graph_connected_spine(self):
        g = random_graph(40, 60, seed=2)
        labels = connected_components(g)
        assert len(set(labels.tolist())) == 1

    def test_random_graph_requires_vertex(self):
        with pytest.raises(InputError):
            random_graph(0, 5)

    def test_rmat_size(self):
        g = rmat_graph(6, edge_factor=4, seed=1)
        assert g.num_vertices == 64
        assert g.num_edges > 0

    def test_rmat_skew(self):
        g = rmat_graph(8, edge_factor=8, seed=1)
        degrees = sorted((g.degree(v) for v in range(g.num_vertices)),
                         reverse=True)
        # Scale-free-ish: the top decile holds a large share of edges.
        top = sum(degrees[: len(degrees) // 10])
        assert top > 0.25 * sum(degrees)

    def test_rmat_invalid_probabilities(self):
        with pytest.raises(InputError):
            rmat_graph(4, a=0.5, b=0.3, c=0.3)


class TestAlgorithms:
    def test_bfs_levels_on_path(self):
        g = CSRGraph(4, [(0, 1), (1, 2), (2, 3)], directed=False)
        levels = bfs_levels(g, 0)
        assert levels.tolist() == [0, 1, 2, 3]

    def test_bfs_unreachable_is_inf(self):
        g = CSRGraph(3, [(0, 1)], directed=False)
        levels = bfs_levels(g, 0)
        assert levels[2] == INF

    def test_dijkstra_on_weighted_path(self):
        g = CSRGraph(3, [(0, 1, 2.0), (1, 2, 3.0)], directed=False)
        dist = dijkstra_distances(g, 0)
        assert dist.tolist() == [0.0, 2.0, 5.0]

    def test_dijkstra_prefers_light_detour(self):
        g = CSRGraph(3, [(0, 2, 10.0), (0, 1, 1.0), (1, 2, 1.0)],
                     directed=False)
        dist = dijkstra_distances(g, 0)
        assert dist[2] == 2.0

    def test_bellman_ford_matches_dijkstra(self):
        g = random_graph(60, 150, seed=9)
        assert np.allclose(bellman_ford_distances(g, 0),
                           dijkstra_distances(g, 0))

    def test_kruskal_on_triangle(self):
        g = CSRGraph(3, [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)],
                     directed=False)
        edges, total = kruskal_mst(g)
        assert total == 3.0
        assert len(edges) == 2

    def test_kruskal_spanning_tree_size(self):
        g = random_graph(50, 120, seed=3)
        edges, _ = kruskal_mst(g)
        assert len(edges) == 49  # connected graph -> n-1 edges

    def test_connected_components_two_islands(self):
        g = CSRGraph(4, [(0, 1), (2, 3)], directed=False)
        labels = connected_components(g)
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]


@settings(deadline=None, max_examples=25)
@given(st.integers(10, 50), st.integers(0, 1000))
def test_bfs_levels_monotone_over_edges(n, seed):
    """Property: along any edge levels differ by at most 1 (both finite)."""
    g = random_graph(n, 2 * n, seed=seed)
    levels = bfs_levels(g, 0)
    for src, dst, _w in g.edge_list():
        if levels[src] < INF and levels[dst] < INF:
            assert abs(int(levels[src]) - int(levels[dst])) <= 1


@settings(deadline=None, max_examples=25)
@given(st.integers(10, 40), st.integers(0, 1000))
def test_sssp_triangle_inequality(n, seed):
    g = random_graph(n, 2 * n, seed=seed)
    dist = dijkstra_distances(g, 0)
    for src, dst, w in g.edge_list():
        if np.isfinite(dist[src]):
            assert dist[dst] <= dist[src] + w + 1e-9


class TestDimacs:
    def test_round_trip(self):
        g = random_graph(20, 40, seed=4)
        buffer = io.StringIO()
        write_dimacs(g, buffer)
        buffer.seek(0)
        g2 = read_dimacs(buffer)
        assert g2.num_vertices == g.num_vertices
        assert g2.num_edges == g.num_edges
        assert np.array_equal(g2.indices, g.indices)

    def test_comments_skipped(self):
        text = "c hello\np sp 2 1\na 1 2 7\n"
        g = read_dimacs(io.StringIO(text))
        assert g.num_edges == 1
        assert g.neighbor_weights(0)[0] == 7.0

    def test_missing_problem_line(self):
        with pytest.raises(InputError):
            read_dimacs(io.StringIO("a 1 2 3\n"))

    def test_arc_count_mismatch(self):
        with pytest.raises(InputError):
            read_dimacs(io.StringIO("p sp 2 2\na 1 2 1\n"))

    def test_vertex_out_of_range(self):
        with pytest.raises(InputError):
            read_dimacs(io.StringIO("p sp 2 1\na 1 9 1\n"))

    def test_unknown_record(self):
        with pytest.raises(InputError):
            read_dimacs(io.StringIO("p sp 2 1\nz 1 2 1\n"))

    def test_file_round_trip(self, tmp_path):
        g = grid_graph(3, 3)
        path = tmp_path / "g.gr"
        write_dimacs(g, path)
        g2 = read_dimacs(path)
        assert g2.num_edges == g.num_edges
