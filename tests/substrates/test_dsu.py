"""Unit and property tests for the disjoint-set substrate."""

import pytest
from hypothesis import given, strategies as st

from repro.substrates.dsu import DisjointSet


class TestBasics:
    def test_initially_disjoint(self):
        dsu = DisjointSet(5)
        assert dsu.components == 5
        assert not dsu.connected(0, 1)

    def test_union_connects(self):
        dsu = DisjointSet(4)
        assert dsu.union(0, 1)
        assert dsu.connected(0, 1)
        assert dsu.components == 3

    def test_union_idempotent(self):
        dsu = DisjointSet(4)
        dsu.union(0, 1)
        assert not dsu.union(1, 0)
        assert dsu.components == 3

    def test_transitive_connectivity(self):
        dsu = DisjointSet(5)
        dsu.union(0, 1)
        dsu.union(1, 2)
        assert dsu.connected(0, 2)
        assert not dsu.connected(0, 3)

    def test_find_returns_consistent_root(self):
        dsu = DisjointSet(6)
        dsu.union(2, 3)
        dsu.union(3, 4)
        assert dsu.find(2) == dsu.find(4) == dsu.find(3)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            DisjointSet(-1)

    def test_zero_size_allowed(self):
        dsu = DisjointSet(0)
        assert len(dsu) == 0
        assert dsu.components == 0

    def test_snapshot_reflects_components(self):
        dsu = DisjointSet(4)
        dsu.union(0, 1)
        snap = dsu.snapshot()
        assert snap[0] == snap[1]
        assert snap[2] != snap[0]

    def test_len(self):
        assert len(DisjointSet(7)) == 7


@given(st.lists(st.tuples(st.integers(0, 19), st.integers(0, 19)),
                max_size=60))
def test_components_equal_reference_partition(pairs):
    """Union-find must agree with a naive partition refinement."""
    dsu = DisjointSet(20)
    groups = [{i} for i in range(20)]

    def group_of(x):
        for g in groups:
            if x in g:
                return g
        raise AssertionError

    for a, b in pairs:
        dsu.union(a, b)
        ga, gb = group_of(a), group_of(b)
        if ga is not gb:
            ga |= gb
            groups.remove(gb)

    assert dsu.components == len(groups)
    for g in groups:
        root_set = {dsu.find(x) for x in g}
        assert len(root_set) == 1


@given(st.lists(st.tuples(st.integers(0, 14), st.integers(0, 14)),
                max_size=40))
def test_union_count_matches_component_delta(pairs):
    dsu = DisjointSet(15)
    merges = sum(1 for a, b in pairs if dsu.union(a, b))
    assert dsu.components == 15 - merges
