"""Tests for geometry predicates, triangulation, and refinement."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InputError
from repro.substrates.mesh import (
    Mesh,
    bad_triangles,
    cavity_of,
    incircle,
    orient2d,
    random_points,
    refine_mesh,
    retriangulate_cavity,
    triangle_min_angle,
    triangulate,
)
from repro.substrates.mesh.geometry import circumcenter
from repro.substrates.mesh.refinement import is_bad, make_refinement_instance


class TestPredicates:
    def test_orient_ccw_positive(self):
        assert orient2d((0, 0), (1, 0), (0, 1)) > 0

    def test_orient_cw_negative(self):
        assert orient2d((0, 0), (0, 1), (1, 0)) < 0

    def test_orient_collinear_zero(self):
        assert orient2d((0, 0), (1, 1), (2, 2)) == 0

    def test_incircle_inside_positive(self):
        assert incircle((0, 0), (1, 0), (0, 1), (0.3, 0.3)) > 0

    def test_incircle_outside_negative(self):
        assert incircle((0, 0), (1, 0), (0, 1), (5, 5)) < 0

    def test_circumcenter_equidistant(self):
        a, b, c = (0, 0), (2, 0), (0, 2)
        cx, cy = circumcenter(a, b, c)
        ra = math.hypot(cx - a[0], cy - a[1])
        rb = math.hypot(cx - b[0], cy - b[1])
        rc = math.hypot(cx - c[0], cy - c[1])
        assert ra == pytest.approx(rb) == pytest.approx(rc)

    def test_circumcenter_degenerate_raises(self):
        with pytest.raises(ValueError):
            circumcenter((0, 0), (1, 1), (2, 2))

    def test_equilateral_min_angle(self):
        h = math.sqrt(3) / 2
        angle = triangle_min_angle((0, 0), (1, 0), (0.5, h))
        assert angle == pytest.approx(60.0, abs=1e-6)

    def test_sliver_min_angle_small(self):
        angle = triangle_min_angle((0, 0), (1, 0), (0.5, 0.01))
        assert angle < 5.0

    def test_degenerate_min_angle_zero(self):
        assert triangle_min_angle((0, 0), (0, 0), (1, 1)) == 0.0


@given(st.tuples(st.floats(-10, 10), st.floats(-10, 10)),
       st.tuples(st.floats(-10, 10), st.floats(-10, 10)),
       st.tuples(st.floats(-10, 10), st.floats(-10, 10)))
def test_orient2d_antisymmetric(a, b, c):
    assert orient2d(a, b, c) == pytest.approx(-orient2d(a, c, b), abs=1e-6)


class TestTriangulation:
    def test_three_points_one_triangle(self):
        mesh = triangulate([(0, 0), (1, 0), (0.4, 1)])
        assert len(mesh.triangles) == 1

    def test_requires_three_points(self):
        with pytest.raises(InputError):
            triangulate([(0, 0), (1, 1)])

    def test_random_cloud_is_delaunay(self):
        mesh = triangulate(random_points(40, seed=1))
        assert mesh.is_valid_triangulation()
        assert mesh.is_delaunay()

    def test_triangle_count_euler(self):
        # For n points with h on the hull: triangles = 2n - h - 2.
        mesh = triangulate(random_points(50, seed=3))
        n_points = 50
        # Count hull edges: edges with exactly one incident triangle.
        hull_edges = sum(
            1 for owners in mesh._edge_map.values() if len(owners) == 1
        )
        assert len(mesh.triangles) == 2 * n_points - hull_edges - 2

    def test_neighbors_share_edges(self):
        mesh = triangulate(random_points(30, seed=2))
        some_tri = next(iter(mesh.triangles))
        for neighbor in mesh.neighbors_of(some_tri):
            shared = set(mesh.triangles[some_tri]) & set(
                mesh.triangles[neighbor]
            )
            assert len(shared) == 2

    def test_remove_triangle(self):
        mesh = triangulate(random_points(10, seed=4))
        tri = next(iter(mesh.triangles))
        before = len(mesh.triangles)
        mesh.remove_triangle(tri)
        assert len(mesh.triangles) == before - 1
        assert tri not in mesh

    def test_degenerate_insert_rejected(self):
        mesh = Mesh([(0, 0), (1, 1), (2, 2)])
        with pytest.raises(InputError):
            mesh.add_triangle(0, 1, 2)

    def test_cw_triangle_normalized(self):
        mesh = Mesh([(0, 0), (0, 1), (1, 0)])
        tri = mesh.add_triangle(0, 1, 2)  # given CW
        a, b, c = mesh.vertices_of(tri)
        assert orient2d(a, b, c) > 0


class TestRefinement:
    def test_refinement_reduces_bad_triangles(self):
        mesh, initial_bad = make_refinement_instance(60, seed=5)
        before = len(initial_bad)
        refine_mesh(mesh)
        assert len(bad_triangles(mesh)) < before
        assert mesh.is_valid_triangulation()

    def test_cavity_contains_seed(self):
        mesh, bad = make_refinement_instance(40, seed=6)
        tri = bad[0]
        _center, cavity = cavity_of(mesh, tri)
        assert tri in cavity

    def test_cavity_conflict_symmetry_smoke(self):
        mesh, bad = make_refinement_instance(60, seed=7)
        if len(bad) >= 2:
            _c1, cav1 = cavity_of(mesh, bad[0])
            _c2, cav2 = cavity_of(mesh, bad[1])
            # Cavities are triangle-id sets; overlap is well-defined.
            assert isinstance(set(cav1) & set(cav2), set)

    def test_retriangulate_removes_cavity(self):
        mesh, bad = make_refinement_instance(50, seed=8)
        tri = bad[0]
        center, cavity = cavity_of(mesh, tri)
        created = retriangulate_cavity(mesh, center, cavity)
        if created is not None:
            for old in cavity:
                assert old not in mesh
            for new in created:
                assert new in mesh
            assert mesh.is_valid_triangulation()

    def test_is_bad_threshold(self):
        mesh = triangulate([(0, 0), (1, 0), (0.5, 0.02)])
        tri = next(iter(mesh.triangles))
        assert is_bad(mesh, tri, min_angle=25.0)
        assert not is_bad(mesh, tri, min_angle=0.5)

    def test_random_points_deterministic(self):
        assert random_points(10, seed=1) == random_points(10, seed=1)

    def test_refinement_inserts_points(self):
        mesh, _ = make_refinement_instance(60, seed=9)
        before = len(mesh.points)
        inserted = refine_mesh(mesh)
        assert len(mesh.points) == before + inserted


@settings(deadline=None, max_examples=10)
@given(st.integers(0, 100))
def test_triangulation_always_valid(seed):
    mesh = triangulate(random_points(25, seed=seed))
    assert mesh.is_valid_triangulation()
    assert mesh.is_delaunay(tolerance=1e-7)
