"""Tests for the block-sparse matrix substrate and BOTS LU kernels."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InputError
from repro.substrates.sparse.block import (
    BlockSparseMatrix,
    LUTask,
    apply_lu_task,
    bdiv,
    bmod,
    fwd,
    lu0,
    lu_block_tasks,
    lu_residual,
    make_sparselu_instance,
    sparse_lu_reference,
)


class TestBlockSparseMatrix:
    def test_set_get(self):
        matrix = BlockSparseMatrix(3, 2)
        block = np.ones((2, 2))
        matrix.set(0, 1, block)
        assert (0, 1) in matrix
        assert np.array_equal(matrix.get(0, 1), block)
        assert matrix.get(2, 2) is None

    def test_wrong_shape_rejected(self):
        matrix = BlockSparseMatrix(2, 3)
        with pytest.raises(InputError):
            matrix.set(0, 0, np.ones((2, 2)))

    def test_out_of_range_rejected(self):
        matrix = BlockSparseMatrix(2, 2)
        with pytest.raises(InputError):
            matrix.set(5, 0, np.ones((2, 2)))

    def test_ensure_allocates_fill(self):
        matrix = BlockSparseMatrix(2, 2)
        block = matrix.ensure(1, 1)
        assert np.all(block == 0)
        assert (1, 1) in matrix

    def test_copy_is_deep(self):
        matrix = BlockSparseMatrix(2, 2)
        matrix.set(0, 0, np.eye(2))
        clone = matrix.copy()
        clone.get(0, 0)[0, 0] = 99
        assert matrix.get(0, 0)[0, 0] == 1.0

    def test_to_dense_layout(self):
        matrix = BlockSparseMatrix(2, 2)
        matrix.set(1, 0, np.full((2, 2), 3.0))
        dense = matrix.to_dense()
        assert dense.shape == (4, 4)
        assert dense[2, 0] == 3.0
        assert dense[0, 0] == 0.0

    def test_total_bytes(self):
        matrix = BlockSparseMatrix(2, 4)
        matrix.set(0, 0, np.zeros((4, 4)))
        assert matrix.total_bytes() == 4 * 4 * 8

    def test_invalid_geometry(self):
        with pytest.raises(InputError):
            BlockSparseMatrix(0, 4)


class TestBlockKernels:
    def test_lu0_matches_numpy(self):
        rng = np.random.default_rng(3)
        a = rng.standard_normal((5, 5)) + 10 * np.eye(5)
        packed = a.copy()
        lu0(packed)
        lower = np.tril(packed, -1) + np.eye(5)
        upper = np.triu(packed)
        assert np.allclose(lower @ upper, a)

    def test_lu0_zero_pivot_rejected(self):
        with pytest.raises(InputError):
            lu0(np.zeros((3, 3)))

    def test_fwd_solves_lower_system(self):
        rng = np.random.default_rng(4)
        diag = rng.standard_normal((4, 4)) + 8 * np.eye(4)
        lu0(diag)
        lower = np.tril(diag, -1) + np.eye(4)
        rhs = rng.standard_normal((4, 4))
        solved = rhs.copy()
        fwd(diag, solved)
        assert np.allclose(lower @ solved, rhs)

    def test_bdiv_solves_upper_system(self):
        rng = np.random.default_rng(5)
        diag = rng.standard_normal((4, 4)) + 8 * np.eye(4)
        lu0(diag)
        upper = np.triu(diag)
        rhs = rng.standard_normal((4, 4))
        solved = rhs.copy()
        bdiv(diag, solved)
        assert np.allclose(solved @ upper, rhs)

    def test_bmod_is_gemm_update(self):
        rng = np.random.default_rng(6)
        row = rng.standard_normal((3, 3))
        col = rng.standard_normal((3, 3))
        inner = rng.standard_normal((3, 3))
        expected = inner - col @ row
        bmod(row, col, inner)
        assert np.allclose(inner, expected)


class TestTaskList:
    def test_reads_and_writes(self):
        assert LUTask("lu0", 1, 1, 1).writes() == (1, 1)
        assert LUTask("fwd", 0, 0, 2).writes() == (0, 2)
        assert LUTask("bdiv", 0, 2, 0).writes() == (2, 0)
        assert LUTask("bmod", 0, 1, 2).writes() == (1, 2)
        assert (0, 2) in LUTask("bmod", 0, 1, 2).reads()
        assert (1, 0) in LUTask("bmod", 0, 1, 2).reads()

    def test_program_order_dependences(self):
        """Every task's reads are written by an earlier task (or input)."""
        matrix = make_sparselu_instance(5, 3, 0.5, seed=9)
        tasks = lu_block_tasks(matrix)
        inputs = set(matrix.nonzero_blocks)
        written = set()
        for task in tasks:
            for read in task.reads():
                assert read in inputs or read in written, task
            written.add(task.writes())
            inputs.add(task.writes())

    def test_lu0_per_diagonal(self):
        matrix = make_sparselu_instance(6, 2, 0.3, seed=1)
        tasks = lu_block_tasks(matrix)
        lu0s = [t for t in tasks if t.kind == "lu0"]
        assert len(lu0s) == 6
        assert [t.k for t in lu0s] == list(range(6))

    def test_unknown_kind_rejected(self):
        matrix = make_sparselu_instance(3, 2, 0.5, seed=0)
        with pytest.raises(InputError):
            apply_lu_task(matrix, LUTask("ginv", 0, 0, 0))


class TestFactorization:
    def test_reference_residual_small(self):
        matrix = make_sparselu_instance(6, 5, 0.4, seed=2)
        factored = sparse_lu_reference(matrix)
        assert lu_residual(matrix, factored) < 1e-10

    def test_residual_of_unfactored_is_large(self):
        matrix = make_sparselu_instance(5, 4, 0.4, seed=3)
        assert lu_residual(matrix, matrix) > 1e-3

    def test_density_bounds(self):
        with pytest.raises(InputError):
            make_sparselu_instance(4, 4, density=1.5)

    def test_instance_deterministic(self):
        a = make_sparselu_instance(4, 3, 0.5, seed=7)
        b = make_sparselu_instance(4, 3, 0.5, seed=7)
        assert np.array_equal(a.to_dense(), b.to_dense())


@settings(deadline=None, max_examples=10)
@given(st.integers(2, 6), st.integers(2, 6), st.integers(0, 500),
       st.floats(0.1, 0.9))
def test_property_factorization_always_converges(grid, block, seed, density):
    matrix = make_sparselu_instance(grid, block, density, seed=seed)
    factored = sparse_lu_reference(matrix)
    assert lu_residual(matrix, factored) < 1e-8
