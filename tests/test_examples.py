"""The example scripts must run end-to-end (they are executable docs)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, *args: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True, text=True, timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart():
    out = _run("quickstart.py")
    assert "verified" in out
    assert "pipeline utilization" in out


def test_schedule_comparison():
    out = _run("schedule_comparison.py")
    assert "barrier" in out
    assert "dataflow" in out
    assert "cycles" in out


def test_custom_app():
    out = _run("custom_app.py")
    assert "verified" in out
    assert "CUSTOM-CC" in out


def test_bandwidth_exploration():
    out = _run("bandwidth_exploration.py", "COOR-LU", "0.4")
    assert "sweeping QPI bandwidth" in out
    assert "bandwidth-bound" in out


@pytest.mark.slow
def test_design_space_exploration():
    out = _run("design_space_exploration.py", "SPEC-CC", timeout=480)
    assert "Pareto" in out
