"""Result-cache correctness: hits, misses, robustness, invalidation."""

import json

import pytest

from repro.exec import JobOutcome, ResultCache
from repro.exec.cache import CACHE_FILENAME
from repro.exec.job import JOB_SCHEMA


def outcome(app="SPEC-BFS", cycles=123, **kw) -> JobOutcome:
    return JobOutcome(app=app, cycles=cycles, seconds=1e-6,
                      utilization=0.5, stats={"cycles": cycles}, **kw)


class TestRoundTrip:
    def test_put_then_get(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.put("d" * 16, outcome())
        got = cache.get("d" * 16)
        assert got is not None
        assert got.to_dict() == outcome().to_dict()

    def test_get_returns_fresh_object(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("d" * 16, outcome())
        first = cache.get("d" * 16)
        first.cycles = -1
        assert cache.get("d" * 16).cycles == 123

    def test_survives_reopen(self, tmp_path):
        ResultCache(tmp_path).put("d" * 16, outcome())
        reopened = ResultCache(tmp_path)
        assert len(reopened) == 1
        assert reopened.get("d" * 16).cycles == 123

    def test_miss_returns_none(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("feed" * 4) is None
        assert cache.get(None) is None

    def test_last_write_wins(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("d" * 16, outcome(cycles=1))
        cache.put("d" * 16, outcome(cycles=2))
        assert cache.get("d" * 16).cycles == 2
        assert ResultCache(tmp_path).get("d" * 16).cycles == 2


class TestNeverCached:
    def test_error_outcomes_are_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert not cache.put("d" * 16, outcome(error="DeadlockError: x"))
        assert cache.get("d" * 16) is None
        assert not (tmp_path / CACHE_FILENAME).exists()

    def test_uncacheable_digest_is_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert not cache.put(None, outcome())
        assert len(cache) == 0


class TestRobustness:
    def test_corrupt_lines_are_skipped(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("a" * 16, outcome(cycles=1))
        with open(cache.path, "a", encoding="utf-8") as handle:
            handle.write("not json at all\n")
            handle.write('{"schema": 1, "digest": 42}\n')
            handle.write("[1, 2, 3]\n")
        cache.put("b" * 16, outcome(cycles=2))
        reopened = ResultCache(tmp_path)
        assert reopened.get("a" * 16).cycles == 1
        assert reopened.get("b" * 16).cycles == 2
        assert len(reopened) == 2

    def test_newer_schema_entries_are_skipped(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("a" * 16, outcome())
        entry = {"schema": JOB_SCHEMA + 1, "digest": "b" * 16,
                 "outcome": outcome().to_dict()}
        with open(cache.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry) + "\n")
        reopened = ResultCache(tmp_path)
        assert reopened.get("a" * 16) is not None
        assert reopened.get("b" * 16) is None

    def test_cached_flag_is_not_persisted(self, tmp_path):
        cache = ResultCache(tmp_path)
        marked = outcome()
        marked.cached = True
        cache.put("d" * 16, marked)
        line = json.loads(open(cache.path).readline())
        assert "cached" not in line["outcome"]
        assert ResultCache(tmp_path).get("d" * 16).cached is False


class TestMaintenance:
    """The `repro cache stats|verify|compact|prune` surface."""

    def messy_cache(self, tmp_path) -> ResultCache:
        """Two live entries, one superseded line, one stale-schema
        entry, one malformed line, one torn trailing line."""
        cache = ResultCache(tmp_path)
        cache.put("a" * 16, outcome(cycles=1))
        cache.put("a" * 16, outcome(cycles=2))   # supersedes line 1
        cache.put("b" * 16, outcome(cycles=3))
        stale = {"schema": JOB_SCHEMA + 1, "digest": "c" * 16,
                 "outcome": outcome(cycles=4).to_dict()}
        with open(cache.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(stale) + "\n")
            handle.write('{"schema": %d, "digest": 42}\n' % JOB_SCHEMA)
            handle.write('{"torn mid-wri')   # no newline: torn append
        return ResultCache(tmp_path)

    def test_stats_accounting(self, tmp_path):
        stats = self.messy_cache(tmp_path).stats()
        assert stats["exists"]
        assert stats["lines"] == 6
        assert stats["entries"] == 2
        assert stats["superseded"] == 1
        assert stats["stale_schema"] == 1
        assert stats["malformed"] == 1
        assert stats["corrupt"] == 1

    def test_verify_flags_damage_with_line_numbers(self, tmp_path):
        report = self.messy_cache(tmp_path).verify()
        assert not report["ok"]
        assert report["corrupt_lines"] == [6]
        assert report["undecodable"] == 0

    def test_verify_clean_cache_is_ok(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("a" * 16, outcome())
        assert cache.verify()["ok"]

    def test_compact_heals_but_keeps_other_schemas(self, tmp_path):
        cache = self.messy_cache(tmp_path)
        result = cache.compact()
        assert result["dropped_corrupt"] == 1
        assert result["dropped_superseded"] == 1
        assert result["entries"] == 2
        # live a + live b + retained stale-schema entry
        assert result["after_lines"] == 3
        assert cache.verify()["ok"]
        assert cache.get("a" * 16).cycles == 2
        assert cache.get("b" * 16).cycles == 3

    def test_prune_drops_dead_weight(self, tmp_path):
        cache = self.messy_cache(tmp_path)
        result = cache.prune()
        assert result["after_lines"] == 2
        assert result["dropped_stale_schema"] == 2   # stale + malformed
        assert cache.verify()["ok"]

    def test_prune_caps_to_newest_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(5):
            cache.put(f"{i:016d}", outcome(cycles=i))
        result = cache.prune(max_entries=2)
        assert result["entries"] == 2
        assert result["dropped_over_cap"] == 3
        reopened = ResultCache(tmp_path)
        assert reopened.get(f"{4:016d}").cycles == 4
        assert reopened.get(f"{3:016d}").cycles == 3
        assert reopened.get(f"{0:016d}") is None


class TestRunnerIntegration:
    """The runner consults the cache before ever invoking the simulator."""

    @pytest.fixture
    def job(self):
        from repro.eval.platforms import HARP
        from repro.exec import GraphAppSource, SimJob
        from repro.sim.accelerator import SimConfig

        return SimJob(
            source=GraphAppSource("SPEC-BFS", 60, 180, seed=7, start=0),
            platform=HARP, config=SimConfig(),
        )

    def test_hit_skips_the_simulator(self, tmp_path, monkeypatch, job):
        from repro.exec import SweepRunner

        cold = SweepRunner(jobs=1, cache=ResultCache(tmp_path))
        [first] = cold.run([job])
        assert cold.report.executed == 1 and cold.report.hits == 0

        def bomb(*args, **kwargs):
            raise AssertionError("simulator invoked on a cache hit")

        monkeypatch.setattr("repro.exec.runner.execute_job", bomb)
        warm = SweepRunner(jobs=1, cache=ResultCache(tmp_path))
        [hit] = warm.run([job])
        assert warm.report.hits == 1 and warm.report.executed == 0
        assert hit.cached is True
        assert hit.to_dict() == first.to_dict()

    def test_no_cache_forces_resimulation(self, tmp_path, job):
        from repro.exec import SweepRunner

        SweepRunner(jobs=1, cache=ResultCache(tmp_path)).run([job])
        # Runner without a cache (CLI --no-cache) must simulate again.
        calls = []
        import repro.exec.runner as runner_mod
        real = runner_mod.execute_job
        try:
            runner_mod.execute_job = \
                lambda j: calls.append(j) or real(j)
            uncached = SweepRunner(jobs=1, cache=None)
            [fresh] = uncached.run([job])
        finally:
            runner_mod.execute_job = real
        assert len(calls) == 1
        assert uncached.report.hits == 0 and uncached.report.executed == 1
        assert fresh.cached is False

    def test_cli_no_cache_flag_builds_cacheless_runner(self):
        from repro.cli import build_parser, _runner_from_args

        args = build_parser().parse_args(
            ["experiment", "figure10", "--no-cache", "--jobs", "3"])
        runner = _runner_from_args(args)
        assert runner.cache is None
        assert runner.jobs == 3
        args = build_parser().parse_args(["experiment", "figure10"])
        assert _runner_from_args(args).cache is not None
