"""CLI-level sweep determinism: --jobs N is invisible in every output.

Satellite of the parallel-runner work: a seeded fault campaign must be
byte-identical between ``--jobs 1`` and ``--jobs 4`` — stdout *and* the
run-store records it appends (modulo the per-run bookkeeping fields that
encode when/how long, not what).
"""

import json

import pytest

from repro.cli import main

HOST_DEPENDENT = {"timestamp", "wall_seconds", "run_id"}


def campaign_argv(store, jobs: int) -> list[str]:
    return [
        "fault-campaign", "--seed", "7", "--trials", "1",
        "--apps", "SPEC-BFS",
        "--store", str(store), "--no-cache", "--jobs", str(jobs),
    ]


def normalized_records(store) -> list[dict]:
    rows = []
    with open(store / "runs.jsonl", encoding="utf-8") as handle:
        for line in handle:
            record = json.loads(line)
            rows.append({k: v for k, v in record.items()
                         if k not in HOST_DEPENDENT})
    return rows


@pytest.mark.slow
def test_fault_campaign_identical_across_jobs(tmp_path, capsys):
    serial_store = tmp_path / "serial"
    parallel_store = tmp_path / "parallel"

    assert main(campaign_argv(serial_store, jobs=1)) == 0
    serial_out = capsys.readouterr().out
    assert main(campaign_argv(parallel_store, jobs=4)) == 0
    parallel_out = capsys.readouterr().out

    assert parallel_out == serial_out
    assert "VERIFIED" in serial_out

    serial_records = normalized_records(serial_store)
    parallel_records = normalized_records(parallel_store)
    assert serial_records == parallel_records
    assert len(serial_records) == 1   # one trial appended, baseline not
