"""Chaos harness: seeded infrastructure faults and recovery under them.

The simulator's fault injection (PR 1) gets a sibling here: worker
crashes, torn writes, and stale locks, all deterministic from a seed,
plus the recovery paths they must exercise — pool fallback, tolerant
readers, lock breaking, and the multiprocess stress the storage layer
guarantees hinge on.
"""

import json
import multiprocessing
import os
import re
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.eval.platforms import HARP
from repro.exec import (
    ChaosConfig,
    GraphAppSource,
    JobOutcome,
    ResultCache,
    SimJob,
    SweepRunner,
)
from repro.exec.chaos import (
    CHAOS_ENV,
    active_chaos,
    find_dead_pid,
    maybe_crash_worker,
    plant_stale_lock,
    should_fire,
    torn_append,
)
from repro.io import (
    CorruptLineWarning,
    FileLock,
    LockTimeoutError,
    StaleLockWarning,
    read_jsonl,
)
from repro.obs.runstore import RunStore, record_from_outcome
from repro.sim.accelerator import SimConfig

REPO_ROOT = Path(__file__).resolve().parents[2]


def grid_jobs(points: int = 4) -> list[SimJob]:
    return [
        SimJob(
            source=GraphAppSource("SPEC-BFS", 80, 240, seed=seed, start=0),
            platform=HARP,
            config=SimConfig(),
            tag=f"chaos:{seed}",
        )
        for seed in range(points)
    ]


def comparable(outcomes) -> list[dict]:
    rows = []
    for outcome in outcomes:
        data = outcome.to_dict()
        del data["wall_seconds"]
        rows.append(data)
    return rows


class TestDeterministicSelection:
    def test_same_inputs_same_draw(self):
        draws = {should_fire(7, "crash", "abc", 0.5) for _ in range(20)}
        assert len(draws) == 1

    def test_rate_extremes(self):
        assert not should_fire(1, "crash", "k", 0.0)
        assert should_fire(1, "crash", "k", 1.0)

    def test_fraction_tracks_rate(self):
        keys = [f"job-{i}" for i in range(500)]
        fired = sum(should_fire(3, "crash", k, 0.3) for k in keys)
        assert 0.2 < fired / len(keys) < 0.4

    def test_seed_changes_selection(self):
        keys = [f"job-{i}" for i in range(200)]
        a = [should_fire(1, "crash", k, 0.5) for k in keys]
        b = [should_fire(2, "crash", k, 0.5) for k in keys]
        assert a != b


class TestChaosConfigEnv:
    def test_roundtrip(self):
        config = ChaosConfig(seed=9, crash_rate=0.25)
        assert ChaosConfig.from_env(config.to_env()) == config

    def test_garbage_env_is_ignored(self):
        assert ChaosConfig.from_env("not json") is None
        assert ChaosConfig.from_env("[1, 2]") is None
        assert ChaosConfig.from_env(json.dumps({"seed": "x"})) is None

    def test_install_activates_and_uninstall_clears(self, monkeypatch):
        monkeypatch.delenv(CHAOS_ENV, raising=False)
        assert active_chaos() is None
        config = ChaosConfig(seed=5, crash_rate=1.0)
        config.install()
        try:
            assert active_chaos() == config
        finally:
            ChaosConfig.uninstall()
        assert active_chaos() is None


class TestCrashInjection:
    def test_never_kills_outside_pool_workers(self, monkeypatch):
        monkeypatch.setenv(
            CHAOS_ENV, ChaosConfig(seed=1, crash_rate=1.0).to_env()
        )
        maybe_crash_worker(grid_jobs(1)[0])   # would SIGKILL us otherwise

    def test_pool_recovers_from_killed_workers(self, monkeypatch):
        """crash_rate=1.0 kills every pool worker; the runner must fall
        back, retry every point in-process, and still produce outcomes
        identical to an undisturbed serial run."""
        jobs = grid_jobs(4)
        monkeypatch.delenv(CHAOS_ENV, raising=False)
        clean = SweepRunner(jobs=1).run(grid_jobs(4))

        monkeypatch.setenv(
            CHAOS_ENV, ChaosConfig(seed=1, crash_rate=1.0).to_env()
        )
        runner = SweepRunner(jobs=2, retries=1, backoff_base=0.0)
        chaotic = runner.run(jobs)

        assert not any(o.error for o in chaotic)
        assert runner.report.retried >= 1
        assert comparable(chaotic) == comparable(clean)

    def test_selective_crashes_are_seed_deterministic(self, monkeypatch):
        monkeypatch.setenv(
            CHAOS_ENV, ChaosConfig(seed=2, crash_rate=0.5).to_env()
        )
        first = SweepRunner(jobs=2, retries=2, backoff_base=0.0)
        a = first.run(grid_jobs(4))
        second = SweepRunner(jobs=2, retries=2, backoff_base=0.0)
        b = second.run(grid_jobs(4))
        assert not any(o.error for o in a)
        assert comparable(a) == comparable(b)


class TestChaosJournal:
    """Injections leave an audit trail in the sweep journal."""

    def test_journal_dir_round_trips_through_env(self):
        config = ChaosConfig(seed=3, crash_rate=0.5, journal_dir="/tmp/x")
        again = ChaosConfig.from_env(config.to_env())
        assert again == config
        assert again.journal_dir == "/tmp/x"

    def test_record_chaos_folds_into_state(self, tmp_path):
        from repro.exec import SweepJournal

        journal = SweepJournal(tmp_path)
        journal.record_chaos("worker-crash", key="digest0",
                             detail="signal 9")
        journal.record_chaos("torn-append", key="cache.jsonl")
        state = journal.load()
        assert [e["kind"] for e in state.chaos] == \
            ["worker-crash", "torn-append"]
        assert state.chaos[0]["key"] == "digest0"
        assert state.chaos[0]["pid"] == os.getpid()

    def test_torn_append_journals_itself(self, tmp_path):
        from repro.exec import SweepJournal

        data = tmp_path / "data.jsonl"
        torn_append(data, '{"victim": 1}\n', journal_dir=str(tmp_path))
        entries = SweepJournal(tmp_path).load().chaos
        assert [e["kind"] for e in entries] == ["torn-append"]
        assert entries[0]["key"] == str(data)

    def test_plant_stale_lock_journals_itself(self, tmp_path):
        from repro.exec import SweepJournal

        lock_path = plant_stale_lock(tmp_path / "data.jsonl",
                                     journal_dir=str(tmp_path))
        entries = SweepJournal(tmp_path).load().chaos
        assert [e["kind"] for e in entries] == ["stale-lock"]
        assert entries[0]["key"] == lock_path
        assert "age" in entries[0]["detail"]

    def test_worker_crashes_journal_and_count(self, tmp_path, monkeypatch):
        """A chaos campaign with a journal_dir leaves worker-crash
        events that the runner folds into exec.chaos.* metrics."""
        from repro.exec import SweepJournal

        monkeypatch.setenv(
            CHAOS_ENV,
            ChaosConfig(seed=1, crash_rate=1.0,
                        journal_dir=str(tmp_path)).to_env(),
        )
        runner = SweepRunner(jobs=2, retries=1, backoff_base=0.0,
                             journal=SweepJournal(tmp_path))
        outcomes = runner.run(grid_jobs(4))
        assert not any(o.error for o in outcomes)

        entries = SweepJournal(tmp_path).load().chaos
        crash_events = [e for e in entries if e["kind"] == "worker-crash"]
        assert crash_events, "expected journaled worker crashes"
        assert all(e["pid"] != os.getpid() for e in crash_events)

        snap = runner.metrics.snapshot()
        assert snap["counters"]["exec.chaos.injections"] == len(entries)
        assert snap["counters"]["exec.chaos.worker-crash"] \
            == len(crash_events)


class TestTornWrites:
    def test_reader_skips_torn_tail_and_append_heals_it(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("aaaa", JobOutcome(app="A", cycles=1))
        fragment = torn_append(
            cache.path, json.dumps({"digest": "bbbb", "outcome": {}}),
        )
        assert fragment and not fragment.endswith("\n")

        # A fresh reader warns, skips the torn line, keeps good entries.
        torn = ResultCache(tmp_path)
        with pytest.warns(CorruptLineWarning, match="skipping corrupt"):
            assert torn.get("aaaa").cycles == 1
        assert torn.skipped == 1

        # The next writer heals the tail: its record is NOT glued onto
        # the fragment, so nothing readable is lost.
        cache2 = ResultCache(tmp_path)
        cache2.put("cccc", JobOutcome(app="C", cycles=3))
        final = ResultCache(tmp_path)
        assert final.get("aaaa").cycles == 1
        assert final.get("cccc").cycles == 3

        report = final.verify()
        assert not report["ok"]
        assert report["corrupt"] == 1
        final.compact()
        assert final.verify()["ok"]

    def test_torn_runstore_line_is_skipped_and_compacted(self, tmp_path):
        store = RunStore(tmp_path)
        outcome = JobOutcome(app="A", cycles=10)
        store.append(record_from_outcome(
            "chaos", outcome, platform=HARP, config=SimConfig()))
        torn_append(store.path, json.dumps({"run_id": 99, "app": "torn"}),
                    keep=0.4)
        store.append(record_from_outcome(
            "chaos", outcome, platform=HARP, config=SimConfig()))

        fresh = RunStore(tmp_path)
        with pytest.warns(CorruptLineWarning):
            records = fresh.records()
        # The torn line occupies a line slot, so the healed append takes
        # id 3 — ids never collide even around corruption.
        assert [r.run_id for r in records] == ["000001", "000003"]

        result = fresh.compact()
        assert result["dropped_corrupt"] == 1
        assert [r.run_id for r in RunStore(tmp_path).records()] == [
            "000001", "000003"]


class TestStaleLocks:
    def test_softlock_breaks_dead_holders_lock(self, tmp_path):
        target = tmp_path / "data.jsonl"
        plant_stale_lock(target, pid=find_dead_pid(), age=3600.0)
        lock = FileLock(target, mode="softlock", stale_after=60.0,
                        timeout=5.0)
        with pytest.warns(StaleLockWarning):
            with lock:
                pass
        assert lock.broke_stale == 1

    def test_softlock_respects_live_recent_holder(self, tmp_path):
        target = tmp_path / "data.jsonl"
        plant_stale_lock(target, pid=os.getpid(), age=0.0)
        lock = FileLock(target, mode="softlock", stale_after=3600.0,
                        timeout=0.2)
        with pytest.raises(LockTimeoutError):
            lock.acquire()


def _stress_writer(root: str, writer: int, count: int) -> None:
    cache = ResultCache(root)
    store = RunStore(root)
    for i in range(count):
        outcome = JobOutcome(app=f"w{writer}", cycles=writer * 1000 + i)
        cache.put(f"{writer:02d}:{i:03d}", outcome)
        store.append(record_from_outcome(
            "chaos-stress", outcome, platform=HARP, config=SimConfig(),
            seed=writer,
        ))


class TestConcurrentWriters:
    def test_four_writers_lose_nothing(self, tmp_path):
        """The acceptance stress: 4 concurrent writer processes against
        ONE cache file and ONE run store — every record readable, no
        corrupt lines, no duplicated run ids."""
        writers, appends = 4, 20
        ctx = multiprocessing.get_context("fork")
        procs = [
            ctx.Process(target=_stress_writer,
                        args=(str(tmp_path), w, appends))
            for w in range(writers)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=120)
            assert proc.exitcode == 0

        expected = writers * appends
        cache = ResultCache(tmp_path)
        report = cache.verify()
        assert report["ok"], report
        assert report["entries"] == expected
        assert cache.skipped == 0

        store = RunStore(tmp_path)
        records = store.records()
        assert store.skipped == 0
        assert len(records) == expected
        assert len({r.run_id for r in records}) == expected

        raw = read_jsonl(store.path, warn=False)
        assert not raw.skipped
        assert len(raw.rows) == expected


@pytest.mark.slow
class TestKillResume:
    def test_sigkilled_sweep_resumes_without_rework(self, tmp_path):
        """SIGKILL a sweep mid-flight; the journal + cache must preserve
        every completed point, the resumed sweep must only simulate the
        remainder, and a third run must be 100% cache hits."""
        script = REPO_ROOT / "scripts" / "chaos_stress.py"
        env = dict(os.environ)
        store = str(tmp_path / "store")
        argv = [sys.executable, str(script), "sweep", "--dir", store,
                "--points", "6"]

        proc = subprocess.Popen(argv, env=env, cwd=REPO_ROOT,
                                stdout=subprocess.DEVNULL,
                                stderr=subprocess.DEVNULL)
        journal = Path(store) / "sweep-journal.jsonl"
        deadline = time.time() + 60
        # Kill once at least one point has been journaled done but the
        # sweep is still running.
        while time.time() < deadline and proc.poll() is None:
            if journal.exists() and '"done"' in journal.read_text():
                break
            time.sleep(0.05)
        proc.kill()
        proc.wait(timeout=30)
        assert proc.returncode != 0

        done_before = journal.read_text().count('"event": "done"')
        assert 1 <= done_before < 6

        resumed = subprocess.run(
            [sys.executable, str(script), "sweep", "--dir", store,
             "--points", "6", "--resume"],
            env=env, cwd=REPO_ROOT, capture_output=True, text=True,
            timeout=300,
        )
        assert resumed.returncode == 0, resumed.stdout + resumed.stderr
        match = re.search(r"(\d+) cache hits, (\d+) simulated",
                          resumed.stdout)
        assert match, resumed.stdout
        hits, simulated = int(match.group(1)), int(match.group(2))
        # Every journaled-done point is cached (the runner caches before
        # journaling); a kill between the two may leave an extra cached
        # point the journal missed, so >= rather than ==.
        assert hits >= done_before
        assert hits + simulated == 6
        assert simulated >= 1

        check = subprocess.run(
            [sys.executable, str(script), "check", "--dir", store,
             "--points", "6"],
            env=env, cwd=REPO_ROOT, capture_output=True, text=True,
            timeout=300,
        )
        assert check.returncode == 0, check.stdout + check.stderr
        assert "6 cache hits, 0 simulated" in check.stdout
        assert "check OK" in check.stdout
