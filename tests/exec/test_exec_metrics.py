"""Exec-layer metrics: runner registry, pool pickling, JSON CLI."""

import json
from concurrent.futures import ProcessPoolExecutor

from repro.eval.platforms import HARP
from repro.exec import GraphAppSource, ResultCache, SimJob, SweepRunner
from repro.obs.metrics import MetricsRegistry
from repro.obs.runstore import RunStore, record_from_sweep
from repro.sim.accelerator import SimConfig


def grid_jobs(points: int = 4) -> list[SimJob]:
    jobs = []
    for index in range(points):
        app = "SPEC-BFS" if index % 2 == 0 else "SPEC-SSSP"
        jobs.append(SimJob(
            source=GraphAppSource(
                app, 80, 240, seed=11 + index,
                start=0 if app == "SPEC-BFS" else None,
            ),
            platform=HARP,
            config=SimConfig(),
            tag=f"metrics:{app}#{index}",
        ))
    return jobs


def _touch_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Pool entry point: mutate a pickled registry and send it back."""
    registry.counter("exec.cache.hits").inc(2)
    registry.histogram("exec.job.run_wall_ms").record(42)
    return registry


class TestRunnerMetrics:
    def test_sweep_populates_exec_metrics(self, tmp_path):
        runner = SweepRunner(jobs=1, cache=ResultCache(tmp_path))
        runner.run(grid_jobs(4))
        snap = runner.metrics.snapshot()
        assert snap["counters"]["exec.jobs.points"] == 4
        assert snap["counters"]["exec.jobs.executed"] == 4
        assert snap["counters"]["exec.cache.misses"] == 4
        # Counters materialise lazily: never-hit means no hits counter.
        assert snap["counters"].get("exec.cache.hits", 0) == 0
        assert snap["histograms"]["exec.job.run_wall_ms"]["count"] == 4
        assert snap["histograms"]["exec.cache.lookup_us"]["count"] == 4
        assert snap["histograms"]["exec.store.commit_us"]["count"] == 4
        # Cache puts + journal-free appends all acquire the file lock.
        assert snap["counters"]["io.lock.acquires"] >= 4
        assert snap["gauges"]["exec.sweep.points_per_sec"] > 0

    def test_warm_rerun_counts_hits_without_lookup_cost_loss(
            self, tmp_path):
        jobs = grid_jobs(4)
        SweepRunner(jobs=1, cache=ResultCache(tmp_path)).run(jobs)
        warm = SweepRunner(jobs=1, cache=ResultCache(tmp_path))
        warm.run(jobs)
        snap = warm.metrics.snapshot()
        assert snap["counters"]["exec.cache.hits"] == 4
        assert snap["counters"].get("exec.cache.misses", 0) == 0
        assert snap["histograms"]["exec.cache.lookup_us"]["count"] == 4
        # Nothing executed, so no run-wall samples and no commits.
        assert "exec.job.run_wall_ms" not in snap["histograms"]
        assert snap["counters"]["exec.jobs.executed"] == 0

    def test_pool_run_collects_spans_and_queue_wait(self):
        runner = SweepRunner(jobs=2)
        runner.run(grid_jobs(4))
        snap = runner.metrics.snapshot()
        assert snap["histograms"]["exec.job.run_wall_ms"]["count"] == 4
        assert snap["histograms"]["exec.job.queue_wait_ms"]["count"] == 4
        assert len(runner.job_spans) == 4
        assert {span["pid"] for span in runner.job_spans}
        assert all(span["end"] >= span["start"]
                   for span in runner.job_spans)
        assert 0.0 < snap["gauges"]["exec.workers.busy_fraction"] <= 1.0

    def test_metrics_reset_between_runs(self):
        runner = SweepRunner(jobs=1)
        runner.run(grid_jobs(2))
        runner.run(grid_jobs(2))
        snap = runner.metrics.snapshot()
        assert snap["counters"]["exec.jobs.points"] == 2   # not 4

    def test_registry_round_trips_through_a_real_pool(self):
        registry = MetricsRegistry()
        registry.histogram("exec.job.queue_wait_ms").record(7)
        registry.gauge("exec.workers.pool_size").set(2)
        with ProcessPoolExecutor(max_workers=1) as pool:
            returned = pool.submit(_touch_registry, registry).result()
        snap = returned.snapshot()
        assert snap["counters"]["exec.cache.hits"] == 2
        assert snap["histograms"]["exec.job.run_wall_ms"]["count"] == 1
        assert snap["histograms"]["exec.job.queue_wait_ms"]["count"] == 1
        assert snap["gauges"]["exec.workers.pool_size"] == 2


class TestSweepRecord:
    def test_record_from_sweep_shape(self, tmp_path):
        runner = SweepRunner(jobs=1, cache=ResultCache(tmp_path))
        runner.run(grid_jobs(2))
        record = record_from_sweep(
            runner, command="experiment:figure10",
            apps=("SPEC-BFS", "SPEC-SSSP"),
        )
        assert record.kind == "sweep"
        assert record.app == "SPEC-BFS+SPEC-SSSP"
        assert record.sim_mode == "sweep"
        assert record.verified
        assert record.extra["command"] == "experiment:figure10"
        assert record.extra["sweep"]["points"] == 2
        assert record.extra["sweep"]["executed"] == 2
        assert len(record.extra["jobs"]) == 2
        assert record.metrics["counters"]["exec.jobs.points"] == 2
        # Round-trips through the store like any other record.
        stored = RunStore(tmp_path).append(record)
        got = RunStore(tmp_path).get(stored.run_id)
        assert got.extra["sweep"] == record.extra["sweep"]

    def test_span_cap(self, tmp_path):
        runner = SweepRunner(jobs=1)
        runner.run(grid_jobs(3))
        record = record_from_sweep(runner, max_job_spans=2)
        assert len(record.extra["jobs"]) == 2


class TestJsonCli:
    def test_runs_list_json(self, tmp_path, capsys):
        from repro.cli import main

        runner = SweepRunner(jobs=1)
        runner.run(grid_jobs(1))
        store = RunStore(tmp_path)
        store.append(record_from_sweep(runner, apps=("SPEC-BFS",)))
        assert main(["runs", "--store", str(tmp_path), "list",
                     "--json"]) == 0
        docs = json.loads(capsys.readouterr().out)
        assert len(docs) == 1
        assert docs[0]["kind"] == "sweep"
        assert docs[0]["extra"]["sweep"]["points"] == 1

    def test_cache_stats_json(self, tmp_path, capsys):
        from repro.cli import main

        runner = SweepRunner(jobs=1, cache=ResultCache(tmp_path))
        runner.run(grid_jobs(1))
        assert main(["cache", "--store", str(tmp_path), "stats",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["entries"] == 1
        assert "lock" in doc and "lock_telemetry" in doc
        assert doc["lock"]["holder_pid"] is not None
        assert doc["lock_telemetry"]["acquires"] >= 0

    def test_cache_stats_text_shows_lock_holder(self, tmp_path, capsys):
        from repro.cli import main

        runner = SweepRunner(jobs=1, cache=ResultCache(tmp_path))
        runner.run(grid_jobs(1))
        assert main(["cache", "--store", str(tmp_path), "stats"]) == 0
        out = capsys.readouterr().out
        assert "lock: last holder pid" in out
