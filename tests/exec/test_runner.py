"""Sweep-runner guarantees: parallel == serial, retries, fallbacks."""

import time

import pytest

from repro.eval.platforms import HARP
from repro.exec import (
    CallableSource,
    GraphAppSource,
    JobOutcome,
    ResultCache,
    SimJob,
    SweepError,
    SweepRunner,
)
from repro.exec.runner import run_job_with_timeout
from repro.sim.accelerator import SimConfig


def grid_jobs() -> list[SimJob]:
    """A small two-app bandwidth grid (fig10 in miniature)."""
    return [
        SimJob(
            source=GraphAppSource(
                app, 80, 240, seed=7,
                start=0 if app == "SPEC-BFS" else None,
            ),
            platform=HARP.scaled(factor),
            config=SimConfig(),
            tag=f"{app}@{factor:g}x",
        )
        for app in ("SPEC-BFS", "SPEC-SSSP")
        for factor in (1.0, 4.0)
    ]


def comparable(outcomes) -> list[dict]:
    """Outcome dicts minus the host-dependent wall clock."""
    rows = []
    for outcome in outcomes:
        data = outcome.to_dict()
        del data["wall_seconds"]
        rows.append(data)
    return rows


class TestDeterminism:
    def test_parallel_identical_to_serial(self):
        jobs = grid_jobs()
        serial = SweepRunner(jobs=1).run(jobs)
        parallel = SweepRunner(jobs=4).run(jobs)
        assert comparable(parallel) == comparable(serial)

    def test_results_in_input_order(self):
        jobs = grid_jobs()
        outcomes = SweepRunner(jobs=4).run(jobs)
        assert [o.app for o in outcomes] == [j.app for j in jobs]
        # Per-point cycle counts differ across the grid, so order
        # mismatches cannot cancel out.
        assert len({o.cycles for o in outcomes}) > 1

    def test_cache_outcomes_identical_to_fresh(self, tmp_path):
        jobs = grid_jobs()
        fresh = SweepRunner(jobs=1, cache=ResultCache(tmp_path)).run(jobs)
        warm_runner = SweepRunner(jobs=1, cache=ResultCache(tmp_path))
        warm = warm_runner.run(jobs)
        assert warm_runner.report.hits == len(jobs)
        assert warm_runner.report.hit_rate == 1.0
        assert comparable(warm) == comparable(fresh)
        assert all(o.cached for o in warm)


class TestFailureHandling:
    def test_strict_mode_raises_after_collecting_all(self):
        def boom():
            raise RuntimeError("broken spec")

        jobs = [SimJob(source=CallableSource(boom), tag="bad")]
        with pytest.raises(SweepError, match="bad: RuntimeError"):
            SweepRunner(jobs=1, retries=0).run(jobs)

    def test_lenient_mode_folds_errors(self):
        def boom():
            raise RuntimeError("broken spec")

        good = grid_jobs()[0]
        jobs = [SimJob(source=CallableSource(boom), tag="bad"), good]
        runner = SweepRunner(jobs=1, retries=0, strict=False)
        outcomes = runner.run(jobs)
        assert outcomes[0].error == "RuntimeError: broken spec"
        assert outcomes[1].error == ""
        assert runner.report.errors == 1

    def test_transient_failure_is_retried(self, monkeypatch):
        import repro.exec.runner as runner_mod

        attempts = {"n": 0}

        def flaky(job, timeout):
            attempts["n"] += 1
            if attempts["n"] == 1:
                return JobOutcome(app=job.app, error="Transient: blip")
            return JobOutcome(app=job.app, cycles=42)

        monkeypatch.setattr(runner_mod, "run_job_with_timeout", flaky)
        runner = SweepRunner(jobs=1, retries=1)
        [outcome] = runner.run(grid_jobs()[:1])
        assert outcome.cycles == 42
        assert runner.report.retried == 1

    def test_timeout_folds_into_outcome(self):
        def sleepy():
            time.sleep(5)

        jobs = [SimJob(source=CallableSource(sleepy), tag="sleepy")]
        runner = SweepRunner(jobs=1, timeout=1, retries=0, strict=False)
        started = time.perf_counter()
        [outcome] = runner.run(jobs)
        assert time.perf_counter() - started < 4
        assert outcome.error.startswith("JobTimeoutError")

    def test_run_job_without_timeout_budget(self):
        outcome = run_job_with_timeout(grid_jobs()[0], None)
        assert outcome.error == ""
        assert outcome.cycles > 0


class TestFallback:
    def test_unpicklable_jobs_fall_back_in_process(self):
        captured = []

        jobs = grid_jobs()[:2]
        # A closure over a local is not picklable, so jobs=4 cannot
        # use the pool — the runner must notice and run in-process.
        builders = [j.source for j in jobs]
        unpicklable = [
            SimJob(source=CallableSource(lambda b=b: captured.append(1)
                                         or b.build()),
                   platform=j.platform, config=j.config, tag=j.tag)
            for b, j in zip(builders, jobs)
        ]
        runner = SweepRunner(jobs=4)
        outcomes = runner.run(unpicklable)
        assert runner.report.fallback != ""
        assert len(captured) == 2   # builders ran in this process
        assert comparable(outcomes) == \
            comparable(SweepRunner(jobs=1).run(jobs))

    def test_single_pending_point_runs_in_process(self, tmp_path):
        jobs = grid_jobs()[:2]
        cache = ResultCache(tmp_path)
        SweepRunner(jobs=1, cache=cache).run(jobs[:1])
        runner = SweepRunner(jobs=4, cache=ResultCache(tmp_path))
        outcomes = runner.run(jobs)
        assert runner.report.hits == 1
        assert runner.report.executed == 1
        assert [o.cached for o in outcomes] == [True, False]


@pytest.mark.slow
class TestExperimentDeterminism:
    """Figure sweeps produce identical results at any parallelism."""

    def test_figure10_parallel_matches_serial(self):
        from repro.eval.experiments import run_figure10

        kwargs = dict(scale=0.25, apps=("SPEC-BFS", "SPEC-SSSP"),
                      bandwidth_scales=(1.0, 4.0))
        serial = run_figure10(runner=SweepRunner(jobs=1), **kwargs)
        parallel = run_figure10(runner=SweepRunner(jobs=4), **kwargs)
        assert serial.keys() == parallel.keys()
        for app in serial:
            assert serial[app].points == parallel[app].points
