"""Worker supervision: backoff, quarantine, the journal, and --resume."""

import json

import pytest

from repro.exec import (
    CallableSource,
    JournalState,
    ResultCache,
    SimJob,
    SweepError,
    SweepJournal,
    SweepRunner,
)
from repro.exec.journal import JOURNAL_SCHEMA


def _boom():
    raise RuntimeError("always broken")


def bad_job(tag="poison") -> SimJob:
    return SimJob(source=CallableSource(_boom), tag=tag)


class TestBackoff:
    def test_deterministic_per_seed_key_attempt(self):
        a = SweepRunner(backoff_seed=7)
        b = SweepRunner(backoff_seed=7)
        assert a.backoff_delay("k", 0) == b.backoff_delay("k", 0)
        assert a.backoff_delay("k", 0) != a.backoff_delay("k", 1)
        assert a.backoff_delay("k", 0) != a.backoff_delay("j", 0)
        c = SweepRunner(backoff_seed=8)
        assert a.backoff_delay("k", 0) != c.backoff_delay("k", 0)

    def test_exponential_envelope_with_jitter(self):
        runner = SweepRunner(backoff_base=0.1, backoff_cap=1e9)
        for attempt in range(6):
            delay = runner.backoff_delay("k", attempt)
            step = 0.1 * 2 ** attempt
            assert 0.5 * step <= delay < 1.5 * step

    def test_cap_bounds_late_attempts(self):
        runner = SweepRunner(backoff_base=0.1, backoff_cap=0.3)
        assert runner.backoff_delay("k", 10) == 0.3

    def test_zero_base_disables_backoff(self):
        runner = SweepRunner(backoff_base=0.0)
        assert runner.backoff_delay("k", 3) == 0.0


class TestQuarantine:
    def test_poison_job_is_quarantined_not_fatal(self, tmp_path):
        runner = SweepRunner(
            retries=2, quarantine_after=3, backoff_base=0.0,
            journal=SweepJournal(tmp_path), strict=True,
        )
        [outcome] = runner.run([bad_job()])   # 3 failures -> quarantined
        assert outcome.quarantined
        assert outcome.error.startswith("quarantined after 3 failures")
        assert runner.report.quarantined == 1

    def test_below_threshold_still_raises_in_strict_mode(self, tmp_path):
        runner = SweepRunner(
            retries=0, quarantine_after=3, backoff_base=0.0,
            journal=SweepJournal(tmp_path), strict=True,
        )
        with pytest.raises(SweepError, match="poison"):
            runner.run([bad_job()])

    def test_failure_counts_accumulate_across_resumed_runs(self, tmp_path):
        def run_once(resume):
            runner = SweepRunner(
                retries=0, quarantine_after=3, backoff_base=0.0,
                journal=SweepJournal(tmp_path), strict=False,
                resume=resume,
            )
            return runner.run([bad_job()])[0]

        first = run_once(resume=False)    # failure 1
        assert not first.quarantined
        second = run_once(resume=True)    # failure 2
        assert not second.quarantined
        third = run_once(resume=True)     # failure 3: over the threshold
        assert third.quarantined

        # A fourth resumed run never executes the job at all.
        runner = SweepRunner(
            retries=0, quarantine_after=3, backoff_base=0.0,
            journal=SweepJournal(tmp_path), strict=True, resume=True,
        )
        [skipped] = runner.run([bad_job()])
        assert skipped.quarantined
        assert "journal" in skipped.error
        assert runner.report.executed == 0

    def test_fresh_run_clears_quarantine(self, tmp_path):
        journal = SweepJournal(tmp_path)
        runner = SweepRunner(retries=2, quarantine_after=3,
                             backoff_base=0.0, journal=journal,
                             strict=False)
        assert runner.run([bad_job()])[0].quarantined
        # resume=False truncates the journal: the job runs again.
        fresh = SweepRunner(retries=0, quarantine_after=3,
                            backoff_base=0.0, journal=journal,
                            strict=False, resume=False)
        [outcome] = fresh.run([bad_job()])
        assert not outcome.quarantined
        assert fresh.report.executed == 1


class TestJournal:
    def test_events_fold_into_state(self, tmp_path):
        journal = SweepJournal(tmp_path)
        journal.begin("s1", points=3)
        journal.record_fail("k1", "a", "Error: x", failures=1)
        journal.record_done("k2", "b")
        journal.record_quarantine("k3", "c", "Error: y", failures=3)
        state = journal.load()
        assert state.failures == {"k1": 1, "k3": 3}
        assert state.done == {"k2"}
        assert state.quarantined == {"k3"}
        assert state.sweep_id == "s1" and state.points == 3

    def test_done_clears_prior_failures_and_quarantine(self, tmp_path):
        journal = SweepJournal(tmp_path)
        journal.begin("s1", points=1)
        journal.record_quarantine("k", "a", "Error: x", failures=3)
        journal.record_done("k", "a")
        state = journal.load()
        assert state.done == {"k"}
        assert not state.is_quarantined("k")
        assert state.failure_count("k") == 0

    def test_begin_fresh_truncates_resume_appends(self, tmp_path):
        journal = SweepJournal(tmp_path)
        journal.begin("s1", points=1)
        journal.record_done("k", "a")
        journal.begin("s1", points=1, resume=True)
        assert journal.load().done == {"k"}
        journal.begin("s2", points=1, resume=False)
        state = journal.load()
        assert state.done == set()
        assert state.sweep_id == "s2"

    def test_load_tolerates_torn_lines(self, tmp_path):
        journal = SweepJournal(tmp_path)
        journal.begin("s1", points=2)
        journal.record_done("k1", "a")
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"schema": %d, "event": "done", "key": "k2'
                         % JOURNAL_SCHEMA)   # torn: no close quote/newline
        with pytest.warns(UserWarning):
            state = journal.load()
        assert state.done == {"k1"}
        assert state.skipped == 1
        # The next append heals the tail, so k3 is not glued to the tear.
        journal.record_done("k3", "c")
        with pytest.warns(UserWarning):
            assert journal.load().done == {"k1", "k3"}

    def test_unknown_schema_lines_are_ignored(self, tmp_path):
        journal = SweepJournal(tmp_path)
        journal.begin("s1", points=1)
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(
                {"schema": JOURNAL_SCHEMA + 1, "event": "done",
                 "key": "future"}) + "\n")
        assert journal.load().done == set()


class TestResume:
    def test_completed_points_come_back_as_cache_hits(self, tmp_path):
        from repro.eval.platforms import HARP
        from repro.exec import GraphAppSource
        from repro.sim.accelerator import SimConfig

        jobs = [
            SimJob(
                source=GraphAppSource("SPEC-BFS", 60, 150, seed=s, start=0),
                platform=HARP, config=SimConfig(), tag=f"resume:{s}",
            )
            for s in range(3)
        ]
        first = SweepRunner(cache=ResultCache(tmp_path),
                            journal=SweepJournal(tmp_path))
        first.run(jobs)
        assert first.report.executed == 3

        resumed = SweepRunner(cache=ResultCache(tmp_path),
                              journal=SweepJournal(tmp_path), resume=True)
        outcomes = resumed.run(jobs)
        assert resumed.report.hits == 3
        assert resumed.report.executed == 0
        assert resumed.report.hit_rate == 1.0
        assert all(o.cached for o in outcomes)

    def test_journal_state_dataclass_defaults(self):
        state = JournalState()
        assert state.failure_count("anything") == 0
        assert state.failure_count(None) == 0
        assert not state.is_quarantined("anything")
        assert not state.is_quarantined(None)
