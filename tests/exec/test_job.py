"""SimJob digests: stable, and sensitive to every simulation input."""

import dataclasses

import pytest

from repro.eval.platforms import HARP
from repro.exec import (
    CallableSource,
    CliAppSource,
    FaultSpec,
    GraphAppSource,
    JobOutcome,
    SimJob,
    WorkloadSource,
    execute_job,
)
from repro.sim.accelerator import SimConfig


def tiny_job(**overrides) -> SimJob:
    defaults = dict(
        source=GraphAppSource("SPEC-BFS", 60, 180, seed=7, start=0),
        platform=HARP,
        config=SimConfig(),
    )
    defaults.update(overrides)
    return SimJob(**defaults)


class TestDigest:
    def test_stable_across_instances(self):
        assert tiny_job().digest() == tiny_job().digest()

    def test_digest_is_short_hex(self):
        digest = tiny_job().digest()
        assert len(digest) == 16
        int(digest, 16)

    @pytest.mark.parametrize("field_name, value", [
        ("rule_lanes", 64),
        ("station_depth", 4),
        ("queue_banks", 8),
        ("fast_forward", True),
        ("engine", "event"),
        ("ff_min_jump", 2),
        ("max_cycles", 123_456),
        ("minimum_broadcast_interval", 5),
    ])
    def test_every_config_field_changes_digest(self, field_name, value):
        base = tiny_job()
        changed = tiny_job(
            config=dataclasses.replace(SimConfig(), **{field_name: value})
        )
        assert base.digest() != changed.digest(), field_name

    def test_all_config_fields_enter_canonical_payload(self):
        payload = tiny_job().canonical()
        config_fields = {f.name for f in dataclasses.fields(SimConfig)}
        assert set(payload["config"]) == config_fields

    def test_platform_changes_digest(self):
        assert tiny_job().digest() != \
            tiny_job(platform=HARP.scaled(2.0)).digest()

    def test_source_changes_digest(self):
        base = tiny_job()
        assert base.digest() != tiny_job(
            source=GraphAppSource("SPEC-BFS", 60, 180, seed=8, start=0)
        ).digest()
        assert base.digest() != tiny_job(
            source=GraphAppSource("SPEC-SSSP", 60, 180, seed=7)
        ).digest()
        assert base.digest() != tiny_job(
            source=WorkloadSource("SPEC-BFS", "default", 0.5)
        ).digest()
        assert base.digest() != tiny_job(
            source=CliAppSource("SPEC-BFS")
        ).digest()

    @pytest.mark.parametrize("fault", [
        FaultSpec(seed=8, horizon=1000),
        FaultSpec(seed=7, horizon=1001),
        FaultSpec(seed=7, horizon=1000, intensity=2.0),
    ])
    def test_every_fault_field_changes_digest(self, fault):
        base = tiny_job(fault=FaultSpec(seed=7, horizon=1000))
        assert base.digest() != tiny_job(fault=fault).digest()
        assert tiny_job().digest() != base.digest()

    def test_execution_mode_changes_digest(self):
        base = tiny_job()
        assert base.digest() != tiny_job(resilient=True).digest()
        assert base.digest() != tiny_job(check_interval=512).digest()
        assert base.digest() != tiny_job(checkpoint_interval=99).digest()
        assert base.digest() != tiny_job(verify=False).digest()
        assert base.digest() != \
            tiny_job(replicas={"visit": 2}).digest()

    def test_replica_order_does_not_change_digest(self):
        a = tiny_job(replicas={"visit": 2, "update": 3})
        b = tiny_job(replicas={"update": 3, "visit": 2})
        assert a.digest() == b.digest()

    def test_informational_fields_do_not_change_digest(self):
        base = tiny_job()
        assert base.digest() == tiny_job(seed=99).digest()
        assert base.digest() == tiny_job(tag="anything").digest()

    def test_callable_source_uncacheable_without_key(self):
        job = tiny_job(source=CallableSource(lambda: None))
        assert job.canonical() is None
        assert job.digest() is None

    def test_callable_source_with_key_is_cacheable(self):
        a = tiny_job(source=CallableSource(lambda: None, key="bfs-v1"))
        b = tiny_job(source=CallableSource(lambda: None, key="bfs-v2"))
        assert a.digest() is not None
        assert a.digest() != b.digest()


class TestExecute:
    def test_outcome_fields(self):
        outcome = execute_job(tiny_job())
        assert outcome.error == ""
        assert outcome.app == "SPEC-BFS"
        assert outcome.cycles > 0
        assert outcome.verified
        assert outcome.app_mode == "speculative"
        assert outcome.stats["cycles"] == outcome.cycles
        assert outcome.wall_seconds > 0

    def test_failure_folds_into_outcome(self):
        def boom():
            raise ValueError("no spec for you")

        outcome = execute_job(tiny_job(source=CallableSource(boom),
                                       tag="boom"))
        assert outcome.error == "ValueError: no spec for you"
        assert outcome.app == "boom"
        assert outcome.cycles == 0

    def test_outcome_round_trips_through_dict(self):
        outcome = execute_job(tiny_job())
        clone = JobOutcome.from_dict(outcome.to_dict())
        assert clone.to_dict() == outcome.to_dict()
        # Unknown keys from a future schema are dropped, not fatal.
        data = outcome.to_dict()
        data["from_the_future"] = 1
        assert JobOutcome.from_dict(data).to_dict() == outcome.to_dict()

    def test_resilient_job_reports_recovery_block(self):
        base = execute_job(tiny_job(verify=False))
        outcome = execute_job(tiny_job(
            fault=FaultSpec(seed=3, horizon=base.cycles),
            resilient=True,
            check_interval=256,
        ))
        assert outcome.error == ""
        assert outcome.resilient is not None
        assert outcome.resilient["attempts"] >= 1
        assert outcome.resilient["recovered"] in (True, False)
