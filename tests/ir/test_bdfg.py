"""Tests for BDFG construction, lowering, passes, and dot export."""

import pytest

from repro.core.eca import compile_rule
from repro.core.kernel import (
    AllocRule,
    Alu,
    Enqueue,
    Expand,
    Guard,
    Kernel,
    Load,
    Rendezvous,
    Store,
)
from repro.core.spec import ApplicationSpec, make_task_sets
from repro.core.state import MemorySpace
from repro.errors import LoweringError
from repro.ir import check_graph, lower_spec
from repro.ir.bdfg import ActorKind, Bdfg
from repro.ir.dot import to_dot
from repro.ir.lowering import lower_kernel

OK = compile_rule("rule ok():\n  otherwise return true")


def _spec(kernel_ops, rules=None):
    return ApplicationSpec(
        name="toy",
        mode="speculative",
        task_sets=make_task_sets([("t", "for-each", ("x",))]),
        kernels={"t": Kernel("t", list(kernel_ops))},
        rules=rules or {"ok": OK},
        make_state=MemorySpace,
        initial_tasks=lambda state: [],
        verify=lambda state: None,
    )


class TestLowering:
    def test_linear_chain(self):
        graph = lower_spec(_spec([
            Alu("y", lambda env: 1),
            Store("mem", lambda env: 0, lambda env: 1),
        ]))
        check_graph(graph)
        stats = graph.stats()
        assert stats["source"] == 1
        assert stats["alu"] == 1
        assert stats["store"] == 1
        assert stats["sink"] == 1

    def test_guard_gets_switch_and_sink(self):
        graph = lower_spec(_spec([Guard(lambda env: True)]))
        check_graph(graph)
        assert graph.stats()["switch"] == 1
        assert graph.stats()["sink"] == 2  # false sink + chain end

    def test_rendezvous_needs_alloc(self):
        graph = lower_spec(_spec([
            AllocRule("ok", lambda env: {}),
            Rendezvous("rv"),
        ]))
        check_graph(graph)

    def test_rendezvous_without_alloc_fails_pass(self):
        graph = Bdfg("bad")
        kernel = Kernel("t", [Rendezvous("rv")])
        # Kernel.validate would catch this; bypass it to exercise the pass.
        lower_kernel(graph, kernel, prefix="t")
        with pytest.raises(LoweringError):
            check_graph(graph)

    def test_abort_branch_lowered(self):
        graph = lower_spec(_spec([
            AllocRule("ok", lambda env: {}),
            Rendezvous("rv", abort_ops=(
                Enqueue("t", lambda env: {"x": 1}),
            )),
        ]))
        check_graph(graph)
        assert graph.stats()["enqueue"] == 1

    def test_expand_actor(self):
        graph = lower_spec(_spec([
            Expand(lambda env, state: []),
        ]))
        check_graph(graph)
        assert graph.stats()["expand"] == 1

    def test_out_of_order_actors_identified(self):
        graph = lower_spec(_spec([
            AllocRule("ok", lambda env: {}),
            Load("v", "mem", lambda env: 0),
            Rendezvous("rv"),
        ]))
        kinds = {a.kind for a in graph.out_of_order_actors()}
        assert kinds == {ActorKind.LOAD, ActorKind.RENDEZVOUS}


class TestPasses:
    def test_detects_missing_source(self):
        graph = Bdfg("empty")
        with pytest.raises(LoweringError):
            check_graph(graph)

    def test_detects_unreachable_actor(self):
        graph = lower_spec(_spec([Alu("y", lambda env: 1)]))
        graph.add(ActorKind.ALU, "orphan", op=None)
        with pytest.raises(LoweringError):
            check_graph(graph)

    def test_detects_cycle(self):
        graph = lower_spec(_spec([Alu("y", lambda env: 1)]))
        alu = graph.by_kind(ActorKind.ALU)[0]
        source = graph.sources()[0]
        # Force an illegal back edge (also an illegal double-driver, so
        # relax the port check by pointing at a fresh port name).
        graph.channels.append(
            type(graph.channels[0])(alu, "out", source, "loop")
        )
        with pytest.raises(LoweringError):
            check_graph(graph)

    def test_connect_foreign_actor_rejected(self):
        graph_a = Bdfg("a")
        graph_b = Bdfg("b")
        actor_a = graph_a.add(ActorKind.ALU, "x", op=None)
        actor_b = graph_b.add(ActorKind.SINK, "y")
        with pytest.raises(LoweringError):
            graph_a.connect(actor_a, actor_b)


class TestDot:
    def test_dot_contains_all_actors(self):
        graph = lower_spec(_spec([
            Alu("y", lambda env: 1),
            Store("mem", lambda env: 0, lambda env: 1, label="commit"),
        ]))
        dot = to_dot(graph)
        assert dot.startswith('digraph "toy"')
        for name in graph.actors:
            assert name in dot

    def test_dot_marks_false_edges(self):
        graph = lower_spec(_spec([Guard(lambda env: True)]))
        assert 'label="false"' in to_dot(graph)


class TestApplicationGraphs:
    def test_all_benchmarks_lower_and_check(self):
        from repro.apps.registry import build_app
        from repro.substrates.graphs import random_graph

        g = random_graph(30, 60, seed=1)
        cases = [
            ("SPEC-BFS", (g,), {}),
            ("COOR-BFS", (g,), {}),
            ("SPEC-SSSP", (g,), {}),
            ("SPEC-MST", (g,), {}),
            ("SPEC-DMR", (), {"n_points": 20}),
            ("COOR-LU", (), {"grid": 3, "block_size": 4}),
        ]
        for name, args, kwargs in cases:
            graph = lower_spec(build_app(name, *args, **kwargs))
            check_graph(graph)
            assert graph.sources(), name
