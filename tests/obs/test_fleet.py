"""Fleet observability: span recording, trace merge, live progress."""

import io
import json
import os
import time

from repro.eval.platforms import HARP
from repro.exec import GraphAppSource, SimJob, SweepRunner
from repro.exec.chaos import find_dead_pid
from repro.obs.fleet import (
    FLEET_ENV,
    SPANS_FILENAME,
    STATUS_FILENAME,
    FleetRecorder,
    SweepProgress,
    format_status,
    load_status,
    merge_fleet_trace,
    write_fleet_trace,
)
from repro.sim.accelerator import SimConfig


def grid_jobs(points: int = 8) -> list[SimJob]:
    """Distinct-digest jobs, enough of them to occupy several workers."""
    jobs = []
    for index in range(points):
        app = "SPEC-BFS" if index % 2 == 0 else "SPEC-SSSP"
        jobs.append(SimJob(
            source=GraphAppSource(
                app, 80, 240, seed=7 + index,
                start=0 if app == "SPEC-BFS" else None,
            ),
            platform=HARP,
            config=SimConfig(),
            tag=f"fleet:{app}#{index}",
        ))
    return jobs


class TestFleetTrace:
    def test_pool_sweep_merges_multi_worker_trace(self, tmp_path):
        fleet = FleetRecorder(tmp_path)
        runner = SweepRunner(jobs=4, fleet=fleet)
        runner.run(grid_jobs(8))
        # The recorder uninstalls its environment advert after the run.
        assert FLEET_ENV not in os.environ

        doc = write_fleet_trace(tmp_path / "trace.json", fleet)
        reloaded = json.load(open(tmp_path / "trace.json"))
        assert reloaded["traceEvents"] == doc["traceEvents"]

        job_events = [e for e in doc["traceEvents"]
                      if e.get("cat") == "job"]
        assert len(job_events) == 8
        worker_pids = {e["pid"] for e in job_events}
        assert len(worker_pids) >= 2, "expected spans from >= 2 workers"
        assert os.getpid() not in worker_pids

        # Slice timestamps are monotonically ordered and all "X" events
        # carry the complete-event fields.
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert all({"ts", "dur", "pid", "tid", "name"} <= set(e)
                   for e in slices)
        stamps = [e["ts"] for e in slices]
        assert stamps == sorted(stamps)

        # Job durations fit inside the sweep wall clock (with scheduler
        # slack), and the sweep-level span matches the report.
        wall_us = runner.report.wall_seconds * 1e6
        assert all(e["dur"] <= wall_us * 1.5 for e in job_events)
        sweep_events = [e for e in doc["traceEvents"]
                        if e.get("cat") == "fleet" and e["name"] == "sweep"]
        assert len(sweep_events) == 1
        assert sweep_events[0]["pid"] == os.getpid()
        assert sweep_events[0]["args"]["points"] == 8

        # Nested phase slices rode along from inside the workers.
        phase_names = {e["name"] for e in doc["traceEvents"]
                       if e.get("cat") == "phase"}
        assert "simulate" in phase_names
        assert "spec-rebuild" in phase_names

        assert sorted(doc["otherData"]["workers"]) == sorted(worker_pids)
        assert doc["otherData"]["sweeps"] != []

    def test_serial_sweep_records_spans_from_parent(self, tmp_path):
        fleet = FleetRecorder(tmp_path)
        SweepRunner(jobs=1, fleet=fleet).run(grid_jobs(2))
        doc = merge_fleet_trace(fleet)
        job_events = [e for e in doc["traceEvents"]
                      if e.get("cat") == "job"]
        assert len(job_events) == 2
        assert {e["pid"] for e in job_events} == {os.getpid()}
        # The parent is the master lane, so no separate workers remain.
        assert doc["otherData"]["workers"] == []

    def test_disabled_runner_writes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        SweepRunner(jobs=1).run(grid_jobs(1))
        assert not list(tmp_path.rglob(SPANS_FILENAME))
        assert FLEET_ENV not in os.environ

    def test_second_begin_appends_instead_of_truncating(self, tmp_path):
        fleet = FleetRecorder(tmp_path)
        runner = SweepRunner(jobs=1, fleet=fleet)
        runner.run(grid_jobs(1))
        runner.run(grid_jobs(2))
        doc = merge_fleet_trace(fleet)
        assert len(doc["otherData"]["sweeps"]) == 2
        job_events = [e for e in doc["traceEvents"]
                      if e.get("cat") == "job"]
        assert len(job_events) == 3

    def test_merge_tolerates_garbage_rows(self, tmp_path):
        path = tmp_path / SPANS_FILENAME
        rows = [
            {"kind": "meta", "t0": 100.0, "pid": 1, "sweep_id": "s"},
            {"kind": "job", "name": "a", "pid": 2,
             "start": 100.5, "end": 101.0},
            {"kind": "job", "name": "bad", "pid": 2, "start": "nope"},
            {"kind": "job", "name": "rev", "pid": 2,
             "start": 102.0, "end": 101.0},   # end < start -> clamped
        ]
        with open(path, "w", encoding="utf-8") as handle:
            for row in rows:
                handle.write(json.dumps(row) + "\n")
            handle.write('{"torn')
        doc = merge_fleet_trace(path)
        names = [e["name"] for e in doc["traceEvents"] if e["ph"] == "X"]
        assert names == ["a", "rev"]
        rev = [e for e in doc["traceEvents"] if e["name"] == "rev"][0]
        assert rev["dur"] == 0


class TestSweepProgress:
    def test_status_lifecycle(self, tmp_path):
        progress = SweepProgress(tmp_path)
        progress.begin("abc123", points=4, jobs=2, hits=1)
        status = load_status(tmp_path)
        assert status["state"] == "running"   # our own pid is alive
        assert status["done"] == 1 and status["points"] == 4

        progress.update(executed=2)
        status = load_status(tmp_path)
        assert status["done"] == 3   # hits + executed

        progress.finish("done")
        status = load_status(tmp_path)
        assert status["state"] == "done"
        assert "3/4 points" in format_status(status)
        assert "sweep id abc123" in format_status(status)

    def test_dead_pid_reads_as_crashed(self, tmp_path):
        progress = SweepProgress(tmp_path)
        progress.begin("dead99", points=8, jobs=4)
        # Rewrite the snapshot as if the writing process had vanished.
        raw = json.loads((tmp_path / STATUS_FILENAME).read_text())
        raw["pid"] = find_dead_pid()
        (tmp_path / STATUS_FILENAME).write_text(json.dumps(raw))
        status = load_status(tmp_path)
        assert status["state"] == "crashed"
        assert "--resume" in format_status(status)

    def test_heartbeat_stream_and_rootless_progress(self, tmp_path):
        stream = io.StringIO()
        progress = SweepProgress(tmp_path, heartbeat=True, stream=stream,
                                 interval=0.0)
        progress.begin("hb", points=2, jobs=1)
        progress.update(executed=2)
        progress.finish()
        text = stream.getvalue()
        assert "sweep running" in text
        assert "sweep done: 2/2 points, 0 cache hits, 2 simulated" in text
        assert text.endswith("\n")   # the final beat closes the line
        # A rootless progress (no store dir) only heartbeats.
        quiet = SweepProgress(None, heartbeat=False)
        quiet.begin("x", 1, 1)
        quiet.finish()

    def test_missing_and_corrupt_status(self, tmp_path):
        assert load_status(tmp_path) is None
        (tmp_path / STATUS_FILENAME).write_text("{not json")
        assert load_status(tmp_path) is None

    def test_runner_integration_updates_status(self, tmp_path):
        runner = SweepRunner(jobs=1, progress=SweepProgress(tmp_path))
        runner.run(grid_jobs(2))
        status = load_status(tmp_path)
        assert status["state"] == "done"
        assert status["executed"] == 2
        assert status["done"] == 2
        assert time.time() - status["updated"] < 60


class TestSweepStatusCli:
    def test_missing_status_exits_nonzero(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["sweep-status", "--store", str(tmp_path)]) == 1
        assert "no sweep status" in capsys.readouterr().err

    def test_reports_finished_sweep(self, tmp_path, capsys):
        from repro.cli import main

        progress = SweepProgress(tmp_path)
        progress.begin("cli42", points=3, jobs=2, hits=3)
        progress.finish("done")
        assert main(["sweep-status", "--store", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "sweep done" in out and "3/3 points" in out

        assert main(["sweep-status", "--store", str(tmp_path),
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["sweep_id"] == "cli42"
        assert doc["state"] == "done"
