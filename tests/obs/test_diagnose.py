"""Tests for the bottleneck diagnosis engine (repro.obs.diagnose).

The regime tests pin the classifier against the behaviours documented in
EXPERIMENTS.md: SPEC-BFS at 8x bandwidth must come out squash-bound (the
Figure 10 anomaly — utilization rises, speedup does not), the host-fed
apps (COOR-LU, SPEC-DMR) must come out host-launch/bandwidth-bound, and
SPEC-SSSP on EVAL_HARP must come out memory-bound.  Each record comes
from a real observed simulation at scale 0.3.
"""

import pytest

from repro.eval.platforms import EVAL_HARP
from repro.eval.workloads import default_workloads
from repro.obs import Observability
from repro.obs.diagnose import Finding, diagnose_record, format_findings
from repro.obs.runstore import record_from_result
from repro.sim.accelerator import AcceleratorSim, SimConfig

WORKLOADS = default_workloads(scale=0.3)


def observed_record(app: str, bandwidth: float = 1.0):
    spec = WORKLOADS[app].build_spec()
    obs = Observability()
    platform = EVAL_HARP.scaled(bandwidth)
    config = SimConfig()
    sim = AcceleratorSim(spec, platform=platform, config=config, obs=obs)
    result = sim.run()
    names = [s.name for p in sim.pipelines for s in p.stages]
    return record_from_result(
        "simulate", spec, result, platform=platform, config=config,
        stage_names=names,
    )


def codes(findings):
    return [f.code for f in findings]


@pytest.fixture(scope="module")
def bfs_8x():
    return diagnose_record(observed_record("SPEC-BFS", bandwidth=8.0))


@pytest.fixture(scope="module")
def bfs_half_bw():
    return diagnose_record(observed_record("SPEC-BFS", bandwidth=0.5))


@pytest.fixture(scope="module")
def coor_lu():
    return diagnose_record(observed_record("COOR-LU"))


@pytest.fixture(scope="module")
def spec_dmr():
    return diagnose_record(observed_record("SPEC-DMR"))


@pytest.fixture(scope="module")
def spec_sssp():
    return diagnose_record(observed_record("SPEC-SSSP"))


class TestRegimes:
    def test_spec_bfs_8x_is_squash_bound(self, bfs_8x):
        # EXP-F10: at 8x QPI the extra bandwidth floods the pipelines
        # with speculative updates that get squashed or guard-dropped.
        assert bfs_8x[0].code == "squash-bound"
        assert "qpi-bandwidth-bound" not in codes(bfs_8x)
        evidence = " ".join(bfs_8x[0].evidence)
        assert "guard-dropped" in evidence
        assert "not the binding constraint" in evidence

    def test_spec_bfs_constrained_bw_is_not_squash_bound(self, bfs_half_bw):
        # Same app, same wasted-speculation fraction — but with the
        # channel constrained to 0.5x it becomes the binding resource,
        # so squash-bound must not fire (the classifier keys on
        # saturation, not waste alone).
        assert "squash-bound" not in codes(bfs_half_bw)

    def test_coor_lu_is_host_launch_and_bandwidth_bound(self, coor_lu):
        assert {"host-launch-bound", "qpi-bandwidth-bound"} <= set(
            codes(coor_lu)[:2]
        )

    def test_spec_dmr_is_host_launch_and_bandwidth_bound(self, spec_dmr):
        assert {"host-launch-bound", "qpi-bandwidth-bound"} <= set(
            codes(spec_dmr)[:2]
        )

    def test_spec_sssp_is_memory_bound(self, spec_sssp):
        assert "memory-bound" in codes(spec_sssp)[:2]
        assert "squash-bound" not in codes(spec_sssp)
        assert "host-launch-bound" not in codes(spec_sssp)

    def test_rankings_are_sorted_by_severity(self, coor_lu, spec_sssp):
        for findings in (coor_lu, spec_sssp):
            severities = [f.severity for f in findings]
            assert severities == sorted(severities, reverse=True)
            assert all(0.0 <= s <= 1.0 for s in severities)


class TestMechanics:
    """Classifier behaviour on synthetic records (no simulation)."""

    def record(self, **overrides):
        from tests.obs.test_runstore import make_record

        return make_record(**overrides)

    def test_backpressure_folds_onto_memory(self):
        # Memory is the only resource stall; the large backpressure
        # share must fold onto it instead of raising its own finding.
        record = self.record(stalls={
            "p.load": {"active": 200, "queue": 0, "memory": 200,
                       "rule": 0, "backpressure": 0, "idle": 600,
                       "total": 1000},
            "p.alu": {"active": 200, "queue": 0, "memory": 0,
                      "rule": 0, "backpressure": 600, "idle": 200,
                      "total": 1000},
        }, memory={"bytes": 1000, "loads": 100, "hit_rate": 0.5})
        findings = diagnose_record(record)
        by_code = {f.code: f for f in findings}
        assert "memory-bound" in by_code
        assert "queue-backpressure" not in by_code
        assert "after folding" in " ".join(by_code["memory-bound"].evidence)

    def test_pure_backpressure_raises_queue_finding(self):
        record = self.record(stalls={
            "p.alu": {"active": 200, "queue": 100, "memory": 0,
                      "rule": 0, "backpressure": 500, "idle": 200,
                      "total": 1000},
        }, memory={"bytes": 0, "loads": 0, "hit_rate": 1.0})
        assert "queue-backpressure" in codes(diagnose_record(record))

    def test_record_without_stalls_still_diagnoses(self):
        record = self.record(
            stalls=None,
            memory={"bytes": 34_900, "loads": 500, "hit_rate": 0.0},
            metrics={"counters": {"sim.commits": 100}},
        )
        findings = diagnose_record(record)
        # Bucket-driven classifiers stay silent; saturation still fires.
        assert codes(findings) == ["qpi-bandwidth-bound"]

    def test_host_finding_requires_host_fed_flag(self):
        quiet = dict(stalls=None, utilization=0.001,
                     memory={"bytes": 0, "loads": 0, "hit_rate": 1.0},
                     metrics={"counters": {}})
        assert diagnose_record(self.record(**quiet)) == []
        hosted = diagnose_record(self.record(host_fed=True, **quiet))
        assert codes(hosted) == ["host-launch-bound"]

    def test_coordinative_app_never_squash_bound(self):
        record = self.record(
            app_mode="coordinative", stalls=None,
            memory={"bytes": 0, "loads": 0, "hit_rate": 1.0},
            metrics={"counters": {"sim.commits": 10, "sim.squashes": 0,
                                  "sim.guard_drops": 90}},
        )
        assert "squash-bound" not in codes(diagnose_record(record))

    def test_finding_to_dict(self):
        finding = Finding("memory-bound", "t", 0.51234, ["e1", "e2"])
        data = finding.to_dict()
        assert data["severity"] == 0.5123
        assert data["evidence"] == ["e1", "e2"]


class TestFormatting:
    def test_findings_render_with_rank_and_evidence(self):
        from tests.obs.test_runstore import make_record

        record = make_record()
        findings = [
            Finding("memory-bound", "memory is slow", 0.8, ["evidence A"]),
            Finding("queue-backpressure", "queues full", 0.3, []),
        ]
        text = format_findings(record, findings)
        assert "1. [0.80] memory-bound" in text
        assert "2. [0.30] queue-backpressure" in text
        assert "- evidence A" in text

    def test_no_findings_message(self):
        from tests.obs.test_runstore import make_record

        text = format_findings(make_record(), [])
        assert "no bottleneck classifier fired" in text
