"""Regression detection: store series rules, bench gates, CLI exit."""

import copy
import importlib.util
import json
from pathlib import Path

from repro.obs.regress import (
    format_regressions,
    regress_bench,
    regress_store,
)
from repro.obs.runstore import RunRecord, RunStore


def rec(cycles: int = 1000, wall: float = 1.0, run_id: str = "",
        app: str = "SPEC-BFS", kind: str = "simulate") -> RunRecord:
    return RunRecord(
        kind=kind, app=app, cycles=cycles, seconds=cycles * 5e-9,
        utilization=0.3, squash_fraction=0.01, verified=True,
        run_id=run_id, wall_seconds=wall,
        platform={"bandwidth_scale": 1.0}, config_digest="cfg0",
    )


def sweep_rec(points_per_sec: float) -> RunRecord:
    return RunRecord(
        kind="sweep", app="SPEC-BFS", cycles=0, seconds=0.0,
        utilization=0.9, squash_fraction=0.0, verified=True,
        sim_mode="sweep", wall_seconds=1.0,
        extra={"command": "experiment:figure10",
               "sweep": {"jobs": 2, "points_per_sec": points_per_sec}},
    )


BENCH = {
    "points": {"SPEC-BFS@1x": 3614, "SPEC-SSSP@1x": 5120},
    "runs": {"SPEC-BFS": {"cycles": 3614, "wall_seconds": 0.4}},
    "fast_forward": {
        "eval": {"SPEC-BFS": {"cycles": 3614, "speedup": 2.0}},
    },
    "sweep": {
        "n_points": 8,
        "workers": 2,
        "parallel_speedup": 1.6,
        "serial": {"wall_seconds": 2.0, "points_per_sec": 4.0},
        "parallel": {"wall_seconds": 1.25, "points_per_sec": 6.4},
        "warm_cache": {"wall_seconds": 0.1, "points_per_sec": 80.0,
                       "hit_rate": 1.0},
    },
    "ledger": {
        "SPEC-BFS": {
            "cycles": 3614,
            "off": {"cycles": 3614, "wall_seconds": 0.4},
            "on": {"cycles": 3614, "wall_seconds": 0.5},
            "overhead": 1.25,
        },
    },
}


class TestStoreRules:
    def test_identical_series_is_quiet_and_idempotent(self):
        records = [rec(run_id=f"{i:06d}") for i in range(4)]
        first = regress_store(records)
        second = regress_store(records)
        assert first == [] and second == []

    def test_cycle_drift_fails(self):
        records = [rec(1000, run_id="000001"),
                   rec(1200, run_id="000002")]   # +20% injected drift
        findings = regress_store(records)
        assert [f.rule for f in findings] == ["cycle-drift"]
        assert findings[0].severity == "fail"
        assert "000001" in findings[0].message
        assert "+20.0%" in findings[0].message

    def test_wall_clock_warns_outside_band_only(self):
        base = [rec(wall=1.0, run_id=f"{i:06d}") for i in range(3)]
        noisy = regress_store(base + [rec(wall=2.0, run_id="000004")])
        assert [f.rule for f in noisy] == ["wall-clock"]
        assert noisy[0].severity == "warn"
        quiet = regress_store(base + [rec(wall=1.2, run_id="000004")])
        assert quiet == []
        # Thin series never warn, whatever the wall clock did.
        thin = regress_store([rec(wall=1.0), rec(wall=9.0)])
        assert thin == []

    def test_different_series_do_not_cross_talk(self):
        findings = regress_store([
            rec(1000, app="SPEC-BFS"), rec(5000, app="SPEC-SSSP"),
        ])
        assert findings == []

    def test_sweep_throughput_warns(self):
        runs = [sweep_rec(10.0), sweep_rec(10.0), sweep_rec(10.0),
                sweep_rec(2.0)]
        findings = regress_store(runs)
        assert [f.rule for f in findings] == ["points-per-sec"]
        assert findings[0].severity == "warn"
        assert regress_store(runs[:-1] + [sweep_rec(9.0)]) == []


class TestBenchGates:
    def test_identical_documents_are_quiet(self):
        assert regress_bench(copy.deepcopy(BENCH), BENCH) == []

    def test_cycle_drift_anywhere_fails(self):
        current = copy.deepcopy(BENCH)
        current["points"]["SPEC-BFS@1x"] += 1
        current["fast_forward"]["eval"]["SPEC-BFS"]["cycles"] -= 5
        rules = [f.rule for f in regress_bench(current, BENCH)]
        assert rules == ["cycle-drift", "cycle-drift"]

    def test_missing_entry_fails(self):
        current = copy.deepcopy(BENCH)
        del current["points"]["SPEC-SSSP@1x"]
        del current["fast_forward"]["eval"]["SPEC-BFS"]
        findings = regress_bench(current, BENCH)
        assert all(f.rule == "cycle-drift" and f.severity == "fail"
                   for f in findings)
        assert len(findings) == 2

    def test_speedup_floor_is_multiplicative(self):
        current = copy.deepcopy(BENCH)
        current["fast_forward"]["eval"]["SPEC-BFS"]["speedup"] = 1.61
        assert regress_bench(current, BENCH) == []   # above 2.0 * 0.8
        current["fast_forward"]["eval"]["SPEC-BFS"]["speedup"] = 1.59
        findings = regress_bench(current, BENCH)
        assert [f.rule for f in findings] == ["speedup-floor"]

    def test_sweep_gates(self):
        current = copy.deepcopy(BENCH)
        current["sweep"]["warm_cache"]["hit_rate"] = 0.5
        current["sweep"]["parallel_speedup"] = 0.9   # below 1.6 * 0.65
        current["sweep"]["serial"]["wall_seconds"] = 4.0
        rules = {f.rule: f.severity
                 for f in regress_bench(current, BENCH)}
        assert rules == {"hit-rate": "fail", "speedup-floor": "fail",
                         "points-per-sec": "warn"}


class TestLedgerGates:
    def test_off_cycle_drift_fails(self):
        current = copy.deepcopy(BENCH)
        current["ledger"]["SPEC-BFS"]["cycles"] += 1
        findings = regress_bench(current, BENCH)
        assert [(f.rule, f.severity) for f in findings] \
            == [("cycle-drift", "fail")]

    def test_on_vs_off_divergence_fails(self):
        current = copy.deepcopy(BENCH)
        current["ledger"]["SPEC-BFS"]["on"]["cycles"] += 3
        findings = regress_bench(current, BENCH)
        assert [(f.rule, f.severity) for f in findings] \
            == [("cycle-drift", "fail")]
        assert "perturbed" in findings[0].message

    def test_missing_app_fails(self):
        current = copy.deepcopy(BENCH)
        del current["ledger"]["SPEC-BFS"]
        findings = regress_bench(current, BENCH)
        assert [(f.rule, f.severity) for f in findings] \
            == [("cycle-drift", "fail")]

    def test_wall_and_overhead_warn_outside_band_only(self):
        current = copy.deepcopy(BENCH)
        current["ledger"]["SPEC-BFS"]["off"]["wall_seconds"] = 0.5
        current["ledger"]["SPEC-BFS"]["overhead"] = 1.5
        assert regress_bench(current, BENCH) == []  # inside 50% band
        current["ledger"]["SPEC-BFS"]["off"]["wall_seconds"] = 0.7
        current["ledger"]["SPEC-BFS"]["overhead"] = 2.0
        findings = regress_bench(current, BENCH)
        assert [(f.rule, f.severity) for f in findings] \
            == [("wall-clock", "warn"), ("wall-clock", "warn")]


class TestCritpathShift:
    def _ledgered(self, run_id, dominant):
        record = rec(run_id=run_id)
        record.critical_path = {
            "dominant": dominant,
            "buckets": {dominant: record.cycles},
        }
        return record

    def test_dominant_shift_warns(self):
        findings = regress_store([
            self._ledgered("a", "memory"),
            self._ledgered("b", "speculation"),
        ])
        shifts = [f for f in findings if f.rule == "critpath-shift"]
        assert len(shifts) == 1
        assert shifts[0].severity == "warn"
        assert "memory" in shifts[0].message
        assert "speculation" in shifts[0].message

    def test_stable_dominant_is_quiet(self):
        findings = regress_store([
            self._ledgered("a", "memory"),
            self._ledgered("b", "memory"),
        ])
        assert [f for f in findings if f.rule == "critpath-shift"] == []

    def test_unledgered_runs_are_skipped(self):
        findings = regress_store([
            self._ledgered("a", "memory"),
            rec(run_id="b"),
            self._ledgered("c", "memory"),
        ])
        assert [f for f in findings if f.rule == "critpath-shift"] == []


class TestRendering:
    def test_quiet_message(self):
        assert format_regressions([], "all clear") == "all clear"

    def test_fails_sort_before_warnings(self):
        current = copy.deepcopy(BENCH)
        current["sweep"]["serial"]["wall_seconds"] = 4.0
        current["points"]["SPEC-BFS@1x"] += 7
        text = format_regressions(regress_bench(current, BENCH))
        assert text.startswith("1 regression(s), 1 warning(s):")
        assert text.index("FAIL [cycle-drift]") \
            < text.index("warn [points-per-sec]")
        assert "->" in text   # diagnosis lines ride along


class TestCli:
    def seeded_store(self, tmp_path, cycles_last: int) -> RunStore:
        store = RunStore(tmp_path)
        for cycles in (1000, 1000, cycles_last):
            store.append(rec(cycles))
        return store

    def test_quiet_store_twice_exits_zero(self, tmp_path, capsys):
        from repro.cli import main

        self.seeded_store(tmp_path, 1000)
        for _ in range(2):
            assert main(["regress", "--store", str(tmp_path)]) == 0
            assert "no regressions found" in capsys.readouterr().out

    def test_injected_drift_exits_nonzero(self, tmp_path, capsys):
        from repro.cli import main

        self.seeded_store(tmp_path, 1200)
        assert main(["regress", "--store", str(tmp_path)]) == 1
        assert "FAIL [cycle-drift]" in capsys.readouterr().out

    def test_json_output_parses(self, tmp_path, capsys):
        from repro.cli import main

        self.seeded_store(tmp_path, 1200)
        assert main(["regress", "--store", str(tmp_path),
                     "--json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["fails"] == 1
        assert doc["findings"][0]["rule"] == "cycle-drift"

    def test_bench_mode(self, tmp_path, capsys):
        from repro.cli import main

        base = tmp_path / "base.json"
        cur = tmp_path / "cur.json"
        base.write_text(json.dumps(BENCH))
        current = copy.deepcopy(BENCH)
        cur.write_text(json.dumps(current))
        assert main(["regress", "--bench", str(cur), str(base)]) == 0
        capsys.readouterr()
        current["points"]["SPEC-BFS@1x"] += 1
        cur.write_text(json.dumps(current))
        assert main(["regress", "--bench", str(cur), str(base)]) == 1

    def test_unreadable_bench_is_one_error_line(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["regress", "--bench", str(tmp_path / "nope.json"),
                     str(tmp_path / "nope.json")]) == 1
        assert capsys.readouterr().err.startswith("error:")


class TestBenchCheckScript:
    def load(self):
        path = Path(__file__).resolve().parents[2] / "scripts" \
            / "bench_check.py"
        spec = importlib.util.spec_from_file_location("bench_check", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_passes_on_identical_documents(self, tmp_path, capsys):
        bench_check = self.load()
        base = tmp_path / "base.json"
        cur = tmp_path / "cur.json"
        base.write_text(json.dumps(BENCH))
        cur.write_text(json.dumps(BENCH))
        assert bench_check.main([str(cur), str(base)]) == 0
        out = capsys.readouterr().out
        assert "benchmark check passed" in out
        assert "— OK" in out

    def test_fails_on_drift(self, tmp_path, capsys):
        bench_check = self.load()
        current = copy.deepcopy(BENCH)
        current["runs"]["SPEC-BFS"]["cycles"] += 3
        base = tmp_path / "base.json"
        cur = tmp_path / "cur.json"
        base.write_text(json.dumps(BENCH))
        cur.write_text(json.dumps(current))
        assert bench_check.main([str(cur), str(base)]) == 1
        captured = capsys.readouterr()
        assert "FAIL runs[SPEC-BFS]" in captured.err
        assert "benchmark check passed" not in captured.out
