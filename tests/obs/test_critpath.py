"""Tests for critical-path extraction: the exact-decomposition
invariant, engine invariance, regime pins, what-if projection bounds,
and the diagnose cross-check."""

from dataclasses import replace

import pytest

from repro.apps.registry import build_app
from repro.eval.platforms import EVAL_HARP, HARP
from repro.obs.critpath import (
    BUCKETS,
    critpath_trace_events,
    extract_critical_path,
    format_critpath,
    result_saturation,
    summary_block,
)
from repro.obs.diagnose import EXPECTED_DOMINANT, cross_check, \
    diagnose_record
from repro.obs.runstore import record_from_result
from repro.sim.accelerator import AcceleratorSim, SimConfig
from repro.sim.ledger import TokenLedger
from repro.substrates.graphs import random_graph

GRAPH = random_graph(300, 900, seed=7)


def _spec(app):
    return build_app(app, GRAPH, 0) if app == "SPEC-BFS" \
        else build_app(app, GRAPH)


def _run(app, platform, *, engine="event"):
    config = SimConfig(engine=engine)
    sim = AcceleratorSim(_spec(app), platform=platform, config=config,
                         ledger=TokenLedger())
    result = sim.run()
    return result, config


def _extract(result, platform, config, **kwargs):
    return extract_critical_path(
        result.ledger, result.cycles,
        rule_lanes=config.rule_lanes,
        saturation=result_saturation(result, platform),
        **kwargs,
    )


class TestDecomposition:
    @pytest.mark.parametrize("app,bandwidth", [
        ("SPEC-BFS", 1.0),
        ("SPEC-BFS", 8.0),
        ("SPEC-SSSP", 0.05),
        ("SPEC-SSSP", 1.0),
    ])
    def test_buckets_sum_exactly_to_total_cycles(self, app, bandwidth):
        platform = EVAL_HARP.scaled(bandwidth)
        result, config = _run(app, platform)
        critpath = _extract(result, platform, config)
        assert sum(critpath["buckets"].values()) == result.cycles
        assert set(critpath["buckets"]) == set(BUCKETS)

    def test_chain_covers_the_run_contiguously(self):
        platform = EVAL_HARP.scaled(0.5)
        result, config = _run("SPEC-BFS", platform)
        chain = _extract(result, platform, config)["chain"]
        assert chain[0].start == 0
        assert chain[-1].end == result.cycles
        for left, right in zip(chain, chain[1:]):
            assert left.end == right.start

    def test_summary_block_drops_only_the_chain(self):
        platform = HARP
        result, config = _run("SPEC-BFS", platform)
        critpath = _extract(result, platform, config)
        summary = summary_block(critpath)
        assert "chain" not in summary
        assert set(summary) == set(critpath) - {"chain"}

    def test_extraction_is_deterministic(self):
        platform = EVAL_HARP.scaled(0.5)
        result, config = _run("SPEC-SSSP", platform)
        first = summary_block(_extract(result, platform, config))
        second = summary_block(_extract(result, platform, config))
        assert first == second


class TestEngineInvariance:
    @pytest.mark.parametrize("app,bandwidth", [
        ("SPEC-BFS", 8.0),
        ("SPEC-SSSP", 0.05),
    ])
    def test_identical_chain_across_engines(self, app, bandwidth):
        platform = EVAL_HARP.scaled(bandwidth)
        summaries = {}
        for engine in ("dense", "fast", "event"):
            result, config = _run(app, platform, engine=engine)
            summaries[engine] = summary_block(
                _extract(result, platform, config))
        assert summaries["fast"] == summaries["dense"]
        assert summaries["event"] == summaries["dense"]


class TestRegimePins:
    def test_starved_sssp_is_memory_bound(self):
        platform = EVAL_HARP.scaled(0.05)
        result, config = _run("SPEC-SSSP", platform)
        critpath = _extract(result, platform, config)
        assert critpath["dominant"] == "memory"
        assert result_saturation(result, platform) > 0.9

    def test_overprovisioned_bfs_is_speculation_bound(self):
        platform = EVAL_HARP.scaled(8.0)
        result, config = _run("SPEC-BFS", platform)
        critpath = _extract(result, platform, config)
        assert critpath["dominant"] == "speculation"
        assert result_saturation(result, platform) < 0.5


class TestWhatIf:
    def test_bounds_are_sound_speedups(self):
        platform = EVAL_HARP.scaled(0.5)
        result, config = _run("SPEC-SSSP", platform)
        what_if = _extract(result, platform, config)["what_if"]
        for name in ("qpi_latency_x0.5", "rule_lanes_plus1",
                     "zero_launch_overhead", "perfect_speculation"):
            proj = what_if[name]
            assert proj["speedup_bound"] >= 1.0, name
            assert 0 <= proj["saved_cycles"] <= result.cycles, name

    def test_qpi_half_latency_bound_holds_against_resimulation(self):
        # The projection is an upper bound: actually halving the QPI
        # latencies must not beat it.  At 5% bandwidth the channel
        # (not latency) binds, so the measured win is small — the
        # bound just has to stay on the right side.
        platform = EVAL_HARP.scaled(0.05)
        result, config = _run("SPEC-SSSP", platform)
        bound = _extract(result, platform, config)[
            "what_if"]["qpi_latency_x0.5"]["speedup_bound"]
        halved = replace(
            platform,
            cache_hit_cycles=platform.cache_hit_cycles // 2,
            miss_extra_cycles=platform.miss_extra_cycles // 2,
        )
        faster, _ = _run("SPEC-SSSP", halved)
        assert result.cycles / faster.cycles <= bound + 1e-9


class TestCrossCheck:
    def _record(self, app, platform):
        config = SimConfig(engine="event")
        sim = AcceleratorSim(_spec(app), platform=platform,
                             config=config, ledger=TokenLedger())
        return record_from_result(
            "run", sim.spec, sim.run(), platform=platform, config=config)

    def test_agrees_on_the_memory_bound_regime(self):
        record = self._record("SPEC-SSSP", EVAL_HARP.scaled(0.05))
        check = cross_check(diagnose_record(record),
                            record.critical_path)
        assert check is not None
        assert check["dominant"] == "memory"
        assert check["agrees"] is True

    def test_agrees_on_the_squash_bound_regime(self):
        record = self._record("SPEC-BFS", EVAL_HARP.scaled(8.0))
        check = cross_check(diagnose_record(record),
                            record.critical_path)
        assert check is not None
        assert check["dominant"] == "speculation"
        assert check["agrees"] is True

    def test_disagreement_says_trust_the_path(self):
        record = self._record("SPEC-SSSP", EVAL_HARP.scaled(0.05))
        fake = dict(record.critical_path)
        fake["dominant"] = "compute"
        check = cross_check(diagnose_record(record), fake)
        assert check["agrees"] is False
        assert check["note"].endswith("trust the path")

    def test_mapping_covers_every_bucket_it_names(self):
        for code, buckets in EXPECTED_DOMINANT.items():
            assert buckets, code
            assert set(buckets) <= set(BUCKETS), code

    def test_none_without_findings_or_path(self):
        record = self._record("SPEC-SSSP", EVAL_HARP.scaled(0.05))
        assert cross_check([], record.critical_path) is None
        assert cross_check(diagnose_record(record), None) is None


class TestSurfaces:
    def test_format_critpath_reports_every_bucket(self):
        platform = EVAL_HARP.scaled(0.05)
        result, config = _run("SPEC-SSSP", platform)
        critpath = _extract(result, platform, config)
        text = format_critpath(critpath, "SPEC-SSSP")
        for bucket in BUCKETS:
            assert bucket in text
        assert f"{result.cycles} cycles" in text

    def test_trace_events_chain_with_flow_arrows(self):
        platform = HARP
        result, config = _run("SPEC-BFS", platform)
        critpath = _extract(result, platform, config)
        rows = critpath_trace_events(critpath)
        slices = [r for r in rows if r.get("ph") == "X"]
        assert len(slices) == len(critpath["chain"])
        starts = {r["ph"] for r in rows if r["ph"] in ("s", "f")}
        assert starts == {"s", "f"}
        with pytest.raises(ValueError):
            critpath_trace_events(summary_block(critpath))

    def test_record_auto_extracts_for_ledgered_runs(self):
        platform = EVAL_HARP.scaled(0.05)
        config = SimConfig(engine="event")
        sim = AcceleratorSim(_spec("SPEC-SSSP"), platform=platform,
                             config=config, ledger=TokenLedger())
        record = record_from_result("run", sim.spec, sim.run(),
                                    platform=platform, config=config)
        assert record.critical_path is not None
        assert record.critical_path["dominant"] == "memory"
        assert "chain" not in record.critical_path
