"""Tests for the zero-dependency HTML dashboard (repro.obs.dashboard)."""

from repro.obs.dashboard import render_dashboard, write_dashboard
from repro.obs.diagnose import Finding

from tests.obs.test_runstore import make_record


def full_record(**overrides):
    defaults = dict(
        run_id="000001",
        timestamp="2026-01-01T00:00:00Z",
        timeline={"bucket_cycles": 4,
                  "utilization": [0.1, 0.4, 0.3, 0.0, 0.2]},
        metrics={
            "counters": {"sim.commits": 500, "mem.loads_issued": 400},
            "histograms": {
                "mem.load_latency": {"count": 400, "mean": 12.5,
                                     "p50": 8.0, "p95": 55.0,
                                     "p99": 60.0, "max": 64},
            },
        },
    )
    defaults.update(overrides)
    return make_record(**defaults)


class TestSelfContainment:
    def test_single_file_no_scripts_no_external_assets(self):
        html = render_dashboard(full_record())
        assert html.startswith("<!DOCTYPE html>")
        assert "<script" not in html
        assert "http://" not in html and "https://" not in html
        assert "src=" not in html  # no images/iframes/fonts
        assert "<style>" in html  # CSS inline

    def test_write_dashboard(self, tmp_path):
        path = tmp_path / "dash.html"
        write_dashboard(path, full_record())
        assert path.read_text(encoding="utf-8").startswith("<!DOCTYPE")

    def test_html_escapes_untrusted_strings(self):
        record = full_record(app="<script>alert(1)</script>")
        html = render_dashboard(record, findings=[
            Finding("x", 'title with <b> & "quotes"', 0.5, ["<ev>"]),
        ])
        assert "<script" not in html
        assert "&lt;script&gt;" in html
        assert "&lt;ev&gt;" in html


class TestSections:
    def test_stall_waterfall_draws_every_bucket_with_tooltips(self):
        html = render_dashboard(full_record())
        assert html.count("<svg") >= 2  # waterfall + timeline
        assert "p.load — memory: 500 cycles (50.0%)" in html
        assert "p.alu — backpressure: 250 cycles (25.0%)" in html
        # Legend present; idle rendered as the neutral, not a series hue.
        assert 'class="legend"' in html
        assert "#c9c8c2" in html

    def test_timeline_renders_polyline_and_hover_titles(self):
        html = render_dashboard(full_record())
        assert "<polyline" in html
        assert "cycles 4–8: 40.00% utilized" in html
        assert "bucket width 4 cycles" in html

    def test_critpath_panel_renders_bar_whatifs_and_segments(self):
        html = render_dashboard(full_record(critical_path={
            "total_cycles": 1000,
            "dominant": "memory",
            "path_tokens": 12,
            "path_segments": 20,
            "buckets": {"memory": 700, "compute": 200,
                        "speculation": 100},
            "wasted_speculation": {"tokens": 3, "cycles": 90},
            "what_if": {"qpi_latency_x0.5":
                        {"saved_cycles": 350, "speedup_bound": 1.538}},
            "segments": [{"start": 0, "end": 700, "cycles": 700,
                          "bucket": "memory", "token": 5,
                          "detail": "load wait"}],
        }))
        assert "Critical path" in html
        assert "dominant bucket <strong>memory</strong>" in html
        assert "<title>memory: 700 cycles (70.0%)</title>" in html
        assert "qpi_latency_x0.5" in html and "1.538x" in html
        assert "longest segments" in html and "load wait" in html

    def test_unledgered_record_gets_critpath_placeholder(self):
        html = render_dashboard(full_record())
        assert "without a token ledger" in html

    def test_missing_telemetry_degrades_to_messages(self):
        html = render_dashboard(make_record(stalls=None, metrics=None))
        assert "without stall attribution" in html
        assert "no utilization timeline" in html
        assert "no metrics snapshot" in html

    def test_metrics_tables_show_percentiles(self):
        html = render_dashboard(full_record())
        assert "mem.load_latency" in html
        assert "<th class=\"num\">p95</th>" in html
        assert "55.0" in html

    def test_findings_ranked_with_severity_badges(self):
        html = render_dashboard(full_record(), findings=[
            Finding("memory-bound", "slow memory", 0.8, ["ev"]),
            Finding("queue-backpressure", "full queues", 0.3, []),
        ])
        assert "critical 0.80" in html
        assert "warning 0.30" in html
        assert html.index("memory-bound") < html.index("queue-backpressure")


class TestBandwidthSweep:
    def test_sweep_plots_speedup_per_app_with_legend(self):
        history = [
            full_record(run_id="1", app="SPEC-BFS", cycles=1000,
                        platform={"bandwidth_scale": 1.0}),
            full_record(run_id="2", app="SPEC-BFS", cycles=500,
                        platform={"bandwidth_scale": 2.0}),
            full_record(run_id="3", app="COOR-LU", cycles=2000,
                        platform={"bandwidth_scale": 1.0}),
            full_record(run_id="4", app="COOR-LU", cycles=900,
                        platform={"bandwidth_scale": 2.0}),
        ]
        html = render_dashboard(history[-1], history=history)
        assert "SPEC-BFS @ 2x bandwidth: 2.00x speedup" in html
        assert "COOR-LU @ 2x bandwidth: 2.22x speedup" in html
        # Two series: legend entries for both, distinct fixed hues.
        assert "#2a78d6" in html and "#eb6834" in html

    def test_latest_run_per_point_wins(self):
        history = [
            full_record(run_id="1", app="A", cycles=1000,
                        platform={"bandwidth_scale": 1.0}),
            full_record(run_id="2", app="A", cycles=400,
                        platform={"bandwidth_scale": 2.0}),
            full_record(run_id="3", app="A", cycles=500,
                        platform={"bandwidth_scale": 2.0}),
        ]
        html = render_dashboard(history[-1], history=history)
        assert "A @ 2x bandwidth: 2.00x speedup" in html

    def test_sweep_needs_two_bandwidth_points(self):
        history = [full_record(run_id="1")]
        html = render_dashboard(full_record(), history=history)
        assert "two or more" in html

    def test_golden_records_excluded_from_sweep(self):
        history = [
            full_record(run_id="1", app="A", cycles=1000,
                        platform={"bandwidth_scale": 1.0}),
            full_record(run_id="golden:bfs", app="A", kind="golden",
                        cycles=10, platform={"bandwidth_scale": 2.0}),
        ]
        html = render_dashboard(full_record(), history=history)
        assert "two or more" in html


class TestHistoryTable:
    def test_recent_runs_listed_newest_first(self):
        history = [full_record(run_id=f"{i:06d}") for i in range(1, 4)]
        html = render_dashboard(history[-1], history=history)
        assert "Recent runs" in html
        assert html.index("000003") < html.index("000001")
