"""End-to-end tests for the run-store CLI surface.

``repro simulate`` appends records, ``repro runs list/show/diff``
queries them (including against golden baselines), ``repro diagnose``
classifies them, and ``repro dashboard`` renders the HTML artifact.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main

GOLDEN_BFS = Path(__file__).parent.parent / "golden" / "bfs.json"


@pytest.fixture(scope="class")
def populated_store(tmp_path_factory):
    """A store holding SPEC-CC runs at 1x and 4x bandwidth."""
    store = tmp_path_factory.mktemp("obs-cli") / "store"
    assert main(["simulate", "SPEC-CC", "--store", str(store)]) == 0
    assert main(["simulate", "SPEC-CC", "--bandwidth", "4",
                 "--store", str(store)]) == 0
    return store


class TestRunStoreCli:
    def test_simulate_appends_valid_records(self, populated_store,
                                            capsys):
        lines = (populated_store / "runs.jsonl").read_text().splitlines()
        assert len(lines) == 2
        record = json.loads(lines[0])
        assert record["kind"] == "simulate"
        assert record["app"] == "SPEC-CC"
        assert record["verified"] is True
        assert record["stalls"] and record["timeline"]

    def test_runs_list(self, populated_store, capsys):
        assert main(["runs", "--store", str(populated_store),
                     "list"]) == 0
        out = capsys.readouterr().out
        assert "000001" in out and "000002" in out
        assert "SPEC-CC" in out

    def test_runs_show_latest(self, populated_store, capsys):
        assert main(["runs", "--store", str(populated_store),
                     "show", "latest"]) == 0
        out = capsys.readouterr().out
        assert "run 000002" in out
        assert "stall buckets" in out

    def test_runs_diff_two_runs(self, populated_store, capsys):
        assert main(["runs", "--store", str(populated_store),
                     "diff", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "per-bucket cycle deltas" in out
        assert "cycles:" in out

    def test_runs_diff_against_golden(self, populated_store, capsys):
        assert main(["runs", "--store", str(populated_store),
                     "diff", f"golden:{GOLDEN_BFS}", "latest"]) == 0
        out = capsys.readouterr().out
        assert "golden:" in out

    def test_runs_show_unknown_ref_fails(self, populated_store, capsys):
        assert main(["runs", "--store", str(populated_store),
                     "show", "424242"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_runs_list_empty_store(self, tmp_path, capsys):
        assert main(["runs", "--store", str(tmp_path / "none"),
                     "list"]) == 0
        assert "empty" in capsys.readouterr().out


class TestDiagnoseCli:
    def test_diagnose_stored_run(self, populated_store, capsys):
        assert main(["diagnose", "--run", "latest",
                     "--store", str(populated_store)]) == 0
        out = capsys.readouterr().out
        assert "SPEC-CC:" in out
        assert "cycles" in out

    def test_diagnose_fresh_app_appends_to_store(self, tmp_path, capsys):
        store = tmp_path / "store"
        assert main(["diagnose", "SPEC-CC", "--store", str(store)]) == 0
        record = json.loads(
            (store / "runs.jsonl").read_text().splitlines()[0]
        )
        assert record["kind"] == "diagnose"
        assert record["stalls"]

    def test_diagnose_without_target_fails(self, tmp_path, capsys):
        assert main(["diagnose", "--store",
                     str(tmp_path / "store")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_diagnose_missing_run_fails(self, tmp_path, capsys):
        assert main(["diagnose", "--run", "latest",
                     "--store", str(tmp_path / "none")]) == 1
        assert "error:" in capsys.readouterr().err


class TestDashboardCli:
    def test_dashboard_from_store(self, populated_store, tmp_path,
                                  capsys):
        out_path = tmp_path / "dash.html"
        assert main(["dashboard", "--run", "latest",
                     "--store", str(populated_store),
                     "--out", str(out_path)]) == 0
        assert "wrote" in capsys.readouterr().out
        html = out_path.read_text(encoding="utf-8")
        assert html.startswith("<!DOCTYPE html>")
        assert "<script" not in html
        assert "SPEC-CC" in html
        # Two bandwidth points stored -> the sweep chart renders.
        assert "speedup" in html

    def test_dashboard_empty_store_fails(self, tmp_path, capsys):
        assert main(["dashboard", "--store", str(tmp_path / "none"),
                     "--out", str(tmp_path / "d.html")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_dashboard_simulates_app_when_given(self, tmp_path, capsys):
        store = tmp_path / "store"
        out_path = tmp_path / "dash.html"
        assert main(["dashboard", "SPEC-CC", "--store", str(store),
                     "--out", str(out_path)]) == 0
        assert out_path.exists()
        assert (store / "runs.jsonl").exists()
