"""Tests for the cross-run telemetry store (repro.obs.runstore)."""

import json

import pytest

from repro.apps.registry import build_app
from repro.eval.platforms import EVAL_HARP
from repro.obs import Observability
from repro.obs.runstore import (
    RunRecord,
    RunStore,
    SCHEMA_VERSION,
    STALL_BUCKETS,
    config_digest,
    diff_records,
    golden_record,
    format_diff,
    format_record,
    format_records_table,
    record_from_result,
)
from repro.sim.accelerator import AcceleratorSim, SimConfig
from repro.substrates.graphs import random_graph


def make_record(**overrides) -> RunRecord:
    base = dict(
        kind="simulate",
        app="SPEC-BFS",
        cycles=1000,
        seconds=5e-6,
        utilization=0.25,
        squash_fraction=0.01,
        verified=True,
        platform={"bandwidth_scale": 1.0, "qpi_bytes_per_cycle": 35.0},
        memory={"bytes": 10_000, "loads": 400, "hit_rate": 0.8},
        metrics={"counters": {"sim.commits": 500, "sim.squashes": 5,
                              "sim.guard_drops": 50}},
        stalls={
            "p.load": {"active": 300, "queue": 0, "memory": 500,
                       "rule": 0, "backpressure": 100, "idle": 100,
                       "total": 1000},
            "p.alu": {"active": 600, "queue": 50, "memory": 0,
                      "rule": 0, "backpressure": 250, "idle": 100,
                      "total": 1000},
        },
    )
    base.update(overrides)
    return RunRecord(**base)


class TestRunRecord:
    def test_round_trips_through_dict(self):
        record = make_record(run_id="000007", seed=3)
        clone = RunRecord.from_dict(
            json.loads(json.dumps(record.to_dict()))
        )
        assert clone == record

    def test_from_dict_ignores_unknown_keys(self):
        data = make_record().to_dict()
        data["added_in_schema_9"] = {"x": 1}
        assert RunRecord.from_dict(data).app == "SPEC-BFS"

    def test_stall_totals_aggregate_stages(self):
        totals = make_record().stall_totals()
        assert totals["active"] == 900
        assert totals["memory"] == 500
        assert totals["backpressure"] == 350
        assert totals["idle"] == 200
        assert "stalled" not in totals  # golden-only bucket dropped at 0

    def test_stage_stalled_sums_reasons(self):
        assert make_record().stage_stalled() == {
            "p.load": 600, "p.alu": 300,
        }

    def test_config_digest_is_stable(self):
        a = config_digest(SimConfig())
        assert a == config_digest(SimConfig())
        assert a != config_digest(SimConfig(prefetch=True))
        assert len(a) == 12


class TestRecordFromResult:
    @pytest.fixture(scope="class")
    def observed(self):
        spec = build_app("SPEC-BFS", random_graph(60, 150, seed=3), 0)
        obs = Observability()
        config = SimConfig()
        sim = AcceleratorSim(spec, platform=EVAL_HARP, config=config,
                             obs=obs)
        result = sim.run()
        names = [s.name for p in sim.pipelines for s in p.stages]
        return spec, config, result, names

    def test_observed_record_carries_stalls_and_timeline(self, observed):
        spec, config, result, names = observed
        record = record_from_result(
            "simulate", spec, result, platform=EVAL_HARP, config=config,
            stage_names=names, seed=11, wall_seconds=0.5,
        )
        assert record.schema == SCHEMA_VERSION
        assert record.app == "SPEC-BFS"
        assert record.app_mode == "speculative"
        assert not record.host_fed
        assert record.sim_mode == "dense"
        assert record.seed == 11
        assert record.config_digest == config_digest(config)
        assert set(record.stalls) == set(names)
        for row in record.stalls.values():
            parts = [row[b] for b in ("active",) + STALL_BUCKETS]
            assert sum(parts) + row["idle"] == result.cycles
        assert record.timeline["utilization"]
        assert record.metrics["counters"]["sim.commits"] > 0

    def test_unobserved_record_has_no_stalls(self, observed):
        spec, config, _, _ = observed
        result = AcceleratorSim(spec, platform=EVAL_HARP,
                                config=config).run()
        record = record_from_result(
            "simulate", spec, result, platform=EVAL_HARP, config=config,
        )
        assert record.stalls is None
        assert record.timeline is None
        assert record.metrics is not None  # registry exists without obs


class TestRunStore:
    def test_append_assigns_sequential_ids(self, tmp_path):
        store = RunStore(tmp_path / "s")
        first = store.append(make_record())
        second = store.append(make_record(app="SPEC-SSSP"))
        assert first.run_id == "000001"
        assert second.run_id == "000002"
        assert first.timestamp.endswith("Z")
        apps = [r.app for r in store.records()]
        assert apps == ["SPEC-BFS", "SPEC-SSSP"]

    def test_get_resolves_ids_indices_and_prefixes(self, tmp_path):
        store = RunStore(tmp_path / "s")
        for app in ("A", "B", "C"):
            store.append(make_record(app=app))
        assert store.get("latest").app == "C"
        assert store.get("-2").app == "B"
        assert store.get("2").app == "B"       # zero-padding optional
        assert store.get("000001").app == "A"
        assert store.get("00000").app == "C"   # prefix: latest match
        with pytest.raises(KeyError):
            store.get("999")
        with pytest.raises(KeyError):
            store.get("-9")

    def test_get_on_empty_store_raises(self, tmp_path):
        with pytest.raises(KeyError):
            RunStore(tmp_path / "missing").get("latest")

    def test_corrupt_lines_and_future_schemas_are_skipped(self, tmp_path):
        store = RunStore(tmp_path / "s")
        store.append(make_record())
        with open(store.path, "a", encoding="utf-8") as handle:
            handle.write("not json at all\n")
            handle.write('"a bare string"\n')
            future = make_record(app="FUTURE").to_dict()
            future["schema"] = SCHEMA_VERSION + 1
            handle.write(json.dumps(future) + "\n")
        store.append(make_record(app="AFTER"))
        assert [r.app for r in store.records()] == ["SPEC-BFS", "AFTER"]


class TestDiff:
    def test_diff_reports_bucket_and_counter_deltas(self):
        a = make_record(run_id="000001")
        b = make_record(
            run_id="000002", cycles=1200, utilization=0.30,
            metrics={"counters": {"sim.commits": 620, "sim.squashes": 5,
                                  "sim.guard_drops": 50}},
            stalls={
                "p.load": {"active": 300, "queue": 0, "memory": 700,
                           "rule": 0, "backpressure": 100, "idle": 100,
                           "total": 1200},
                "p.alu": {"active": 600, "queue": 50, "memory": 0,
                          "rule": 0, "backpressure": 450, "idle": 100,
                          "total": 1200},
            },
        )
        diff = diff_records(a, b)
        assert diff["cycles"]["delta"] == 200
        assert diff["utilization_delta"] == pytest.approx(0.05)
        assert diff["stall_buckets"]["memory"]["delta"] == 200
        assert diff["stage_movers"]["p.load"] == 200
        assert diff["counters"] == {"sim.commits": 120}
        text = format_diff(diff)
        assert "+200" in text and "sim.commits" in text

    def test_diff_reports_critical_path_shift(self):
        a = make_record(run_id="000001")
        b = make_record(run_id="000002")
        a.critical_path = {"dominant": "memory",
                           "buckets": {"memory": 800, "compute": 200}}
        b.critical_path = {"dominant": "speculation",
                           "buckets": {"speculation": 700,
                                       "compute": 300}}
        diff = diff_records(a, b)
        critpath = diff["critical_path"]
        assert critpath["dominant"] == {"a": "memory",
                                        "b": "speculation"}
        assert critpath["buckets"]["memory"]["delta"] == -800
        assert critpath["buckets"]["speculation"]["delta"] == 700
        text = format_diff(diff)
        assert "BOTTLENECK SHIFTED" in text

    def test_diff_without_ledgers_has_no_critical_path_block(self):
        diff = diff_records(make_record(run_id="000001"),
                            make_record(run_id="000002"))
        assert "critical_path" not in diff

    def test_diff_against_golden_with_mismatched_buckets(self):
        golden = golden_record({
            "app": "SPEC-BFS", "scenario": "bfs", "cycles": 950,
            "bandwidth_scale": 1.0,
            "stats": {
                "commits": 480,
                "per_stage_active": {"p.load": 280, "p.alu": 590},
                "per_stage_stalls": {"p.load": 590, "p.alu": 290},
            },
        })
        assert golden.run_id == "golden:bfs"
        assert golden.stall_totals()["stalled"] == 880
        diff = diff_records(golden, make_record())
        # Key sets differ (golden has "stalled", live has the split
        # reasons) — the union must not KeyError and both sides render.
        assert diff["stall_buckets"]["stalled"]["b"] == 0
        assert diff["stall_buckets"]["memory"]["a"] == 0
        format_diff(diff)

    def test_real_golden_fixture_adapts(self):
        from pathlib import Path

        path = Path(__file__).parent.parent / "golden" / "bfs.json"
        record = golden_record(json.loads(path.read_text()))
        assert record.kind == "golden"
        assert record.cycles > 0
        assert record.metrics["counters"]["sim.commits"] > 0
        assert record.stall_totals()["stalled"] > 0


class TestFormatting:
    def test_records_table_lists_every_run(self):
        text = format_records_table([
            make_record(run_id="000001", timestamp="2026-01-01T00:00:00Z"),
            make_record(run_id="000002", app="COOR-LU", verified=False),
        ])
        assert "000001" in text and "COOR-LU" in text
        assert "NO" in text  # unverified flagged

    def test_empty_table(self):
        assert "empty" in format_records_table([])

    def test_show_includes_stall_buckets_and_extra(self):
        record = make_record(
            run_id="000003", host_fed=True,
            extra={"resilient": {"rollbacks": 2}},
        )
        text = format_record(record)
        assert "host-fed" in text
        assert "memory=500" in text
        assert "rollbacks" in text
