"""Crash-safe file primitives: locking, durable appends, tolerant reads."""

import json
import multiprocessing
import os
import time

import pytest

from repro.exec.chaos import find_dead_pid
from repro.io import (
    CorruptLineWarning,
    FileLock,
    LockTimeoutError,
    StaleLockWarning,
    append_line,
    lock_telemetry_delta,
    lock_telemetry_snapshot,
    pid_alive,
    read_jsonl,
    replace_file,
    reset_lock_telemetry,
)


class TestPidAlive:
    def test_own_pid_is_alive(self):
        assert pid_alive(os.getpid())

    def test_dead_pid_is_dead(self):
        assert not pid_alive(find_dead_pid())

    def test_garbage_pids_are_dead(self):
        assert not pid_alive(None)
        assert not pid_alive(-1)
        assert not pid_alive("1")


class TestFileLock:
    def test_mutual_exclusion_same_process(self, tmp_path):
        target = tmp_path / "data.jsonl"
        first = FileLock(target, timeout=5.0)
        second = FileLock(target, timeout=0.2)
        with first:
            with pytest.raises(LockTimeoutError, match="could not lock"):
                second.acquire()
        # Released: the same lock object acquires cleanly now.
        with second:
            pass

    def test_context_manager_releases_on_exception(self, tmp_path):
        target = tmp_path / "data.jsonl"
        with pytest.raises(RuntimeError):
            with FileLock(target):
                raise RuntimeError("boom")
        with FileLock(target, timeout=0.5):
            pass

    def test_holder_info_records_pid(self, tmp_path):
        lock = FileLock(tmp_path / "data.jsonl")
        with lock:
            assert lock.holder()["pid"] == os.getpid()

    def test_mutual_exclusion_across_processes(self, tmp_path):
        """Two forked writers increment a counter file under the lock;
        without mutual exclusion the read-modify-write races."""
        target = tmp_path / "counter"
        target.write_text("0")

        def bump(n):
            for _ in range(n):
                with FileLock(target, timeout=30.0):
                    value = int(target.read_text())
                    time.sleep(0.001)   # widen the race window
                    target.write_text(str(value + 1))

        ctx = multiprocessing.get_context("fork")
        procs = [ctx.Process(target=bump, args=(20,)) for _ in range(3)]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        assert int(target.read_text()) == 60

    def test_rejects_unknown_mode(self, tmp_path):
        with pytest.raises(ValueError, match="unknown lock mode"):
            FileLock(tmp_path / "x", mode="hopes-and-dreams")


class TestSoftlock:
    def test_breaks_dead_holders_lock(self, tmp_path):
        target = tmp_path / "data.jsonl"
        lock_path = tmp_path / "data.jsonl.lock"
        lock_path.write_text(json.dumps(
            {"pid": find_dead_pid(), "time": time.time()}))
        lock = FileLock(target, mode="softlock", timeout=5.0)
        with pytest.warns(StaleLockWarning, match="is dead"):
            lock.acquire()
        lock.release()
        assert lock.broke_stale == 1

    def test_breaks_over_age_lock_of_live_holder(self, tmp_path):
        target = tmp_path / "data.jsonl"
        lock_path = tmp_path / "data.jsonl.lock"
        lock_path.write_text(json.dumps(
            {"pid": os.getpid(), "time": time.time() - 7200}))
        lock = FileLock(target, mode="softlock", stale_after=60.0,
                        timeout=5.0)
        with pytest.warns(StaleLockWarning, match="old"):
            lock.acquire()
        lock.release()

    def test_respects_live_recent_holder(self, tmp_path):
        target = tmp_path / "data.jsonl"
        holder = FileLock(target, mode="softlock")
        holder.acquire()
        try:
            waiter = FileLock(target, mode="softlock", timeout=0.2,
                              stale_after=3600.0)
            with pytest.raises(LockTimeoutError):
                waiter.acquire()
        finally:
            holder.release()

    def test_release_removes_lockfile(self, tmp_path):
        target = tmp_path / "data.jsonl"
        lock = FileLock(target, mode="softlock")
        lock.acquire()
        assert lock.lock_path.exists()
        lock.release()
        assert not lock.lock_path.exists()


class TestLockTelemetry:
    """Process-wide acquisition counters (deltas, not absolutes: other
    tests in the same process also take locks)."""

    def test_uncontended_acquire_counts_once(self, tmp_path):
        base = lock_telemetry_snapshot()
        with FileLock(tmp_path / "data.jsonl"):
            pass
        delta = lock_telemetry_delta(base)
        assert delta["acquires"] == 1
        assert delta["contended"] == 0
        assert delta["timeouts"] == 0

    def test_contended_acquire_counts_wait(self, tmp_path):
        import threading

        target = tmp_path / "data.jsonl"
        holder = FileLock(target)
        holder.acquire()
        threading.Timer(0.15, holder.release).start()
        base = lock_telemetry_snapshot()
        with FileLock(target, timeout=5.0, poll=0.01):
            pass
        delta = lock_telemetry_delta(base)
        assert delta["acquires"] == 1
        assert delta["contended"] == 1
        assert delta["wait_seconds"] > 0.05
        assert delta["max_wait_seconds"] >= delta["wait_seconds"]

    def test_timeout_counts_as_timeout_not_acquire(self, tmp_path):
        target = tmp_path / "data.jsonl"
        with FileLock(target):
            base = lock_telemetry_snapshot()
            with pytest.raises(LockTimeoutError):
                FileLock(target, timeout=0.05, poll=0.01).acquire()
            delta = lock_telemetry_delta(base)
        assert delta["timeouts"] == 1
        assert delta["acquires"] == 0

    def test_stale_break_is_counted(self, tmp_path):
        target = tmp_path / "data.jsonl"
        (tmp_path / "data.jsonl.lock").write_text(json.dumps(
            {"pid": find_dead_pid(), "time": time.time()}))
        base = lock_telemetry_snapshot()
        lock = FileLock(target, mode="softlock", timeout=5.0)
        with pytest.warns(StaleLockWarning):
            lock.acquire()
        lock.release()
        delta = lock_telemetry_delta(base)
        assert delta["stale_broken"] == 1
        assert delta["acquires"] == 1

    def test_reset_zeroes_every_counter(self, tmp_path):
        with FileLock(tmp_path / "data.jsonl"):
            pass
        reset_lock_telemetry()
        snap = lock_telemetry_snapshot()
        assert all(value == 0 for value in snap.values())


class TestAppendLine:
    def test_creates_parents_and_appends_newline(self, tmp_path):
        path = tmp_path / "deep" / "dir" / "log.jsonl"
        append_line(path, '{"a": 1}')
        append_line(path, '{"b": 2}\n')   # explicit newline not doubled
        assert path.read_text() == '{"a": 1}\n{"b": 2}\n'

    def test_heals_torn_tail_before_appending(self, tmp_path):
        path = tmp_path / "log.jsonl"
        append_line(path, '{"a": 1}')
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"torn')   # crashed writer: no newline
        append_line(path, '{"b": 2}')

        read = read_jsonl(path, warn=False)
        assert [data for _, data in read.rows] == [{"a": 1}, {"b": 2}]
        assert read.skipped == [2]   # the torn line, isolated, not glued

    def test_lock_false_skips_locking(self, tmp_path):
        path = tmp_path / "log.jsonl"
        with FileLock(path):
            append_line(path, '{"a": 1}', lock=False)
        assert read_jsonl(path).dicts == [{"a": 1}]


class TestReplaceFile:
    def test_replaces_contents_atomically(self, tmp_path):
        path = tmp_path / "data.jsonl"
        path.write_text("old\n")
        replace_file(path, "new\n")
        assert path.read_text() == "new\n"
        # No tmp droppings left behind.
        assert [p.name for p in tmp_path.iterdir()] == ["data.jsonl"]

    def test_creates_missing_file(self, tmp_path):
        path = tmp_path / "fresh.jsonl"
        replace_file(path, "hello\n")
        assert path.read_text() == "hello\n"


class TestReadJsonl:
    def test_missing_file(self, tmp_path):
        read = read_jsonl(tmp_path / "nope.jsonl")
        assert read.missing
        assert read.rows == [] and read.skipped == []

    def test_skips_corrupt_lines_with_warning(self, tmp_path):
        path = tmp_path / "data.jsonl"
        path.write_text('{"ok": 1}\ngarbage\n[1, 2]\n{"ok": 2}\n{"torn')
        with pytest.warns(CorruptLineWarning) as caught:
            read = read_jsonl(path)
        assert read.dicts == [{"ok": 1}, {"ok": 2}]
        assert read.skipped == [2, 3, 5]
        assert read.lines == 5
        messages = [str(w.message) for w in caught]
        assert any(f"{path}:2:" in m for m in messages)
        assert any(f"{path}:5:" in m for m in messages)

    def test_warn_false_is_silent(self, tmp_path, recwarn):
        path = tmp_path / "data.jsonl"
        path.write_text("garbage\n")
        read = read_jsonl(path, warn=False)
        assert read.skipped == [1]
        assert not [w for w in recwarn.list
                    if issubclass(w.category, CorruptLineWarning)]

    def test_blank_lines_are_ignored(self, tmp_path):
        path = tmp_path / "data.jsonl"
        path.write_text('{"a": 1}\n\n   \n{"b": 2}\n')
        read = read_jsonl(path)
        assert read.dicts == [{"a": 1}, {"b": 2}]
        assert read.skipped == []
