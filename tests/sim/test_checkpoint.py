"""Tests for checkpoint snapshots, rollback, and resilient execution."""

import numpy as np
import pytest

from repro.apps.registry import build_app
from repro.core.eca import compile_rule
from repro.core.kernel import Kernel, Store
from repro.core.spec import ApplicationSpec, HostFeed, make_task_sets
from repro.core.state import MemorySpace
from repro.errors import RecoveryExhaustedError
from repro.eval.platforms import HARP
from repro.sim.accelerator import (
    AcceleratorSim,
    SimConfig,
    _degrade,
    run_resilient,
)
from repro.sim.checkpoint import CheckpointManager, revive, snapshot
from repro.sim.faults import FaultEvent, FaultKind, FaultPlan
from repro.substrates.graphs import random_graph

# Big enough that every snapshot/rollback point below lands mid-run
# (SPEC-BFS ~1.3k cycles, SPEC-MST ~3.4k on this graph).
GRAPH = random_graph(200, 600, seed=7)
OK = compile_rule("rule ok():\n  otherwise return true")


def _spec(app):
    return build_app(app, GRAPH, 0) if app == "SPEC-BFS" \
        else build_app(app, GRAPH)


def _hosted_spec(n_tasks=24, batch=4, fail_verify=False):
    """A minimal host-fed app: its feed is a live (uncopyable) generator."""
    def make_state():
        state = MemorySpace()
        state.add_array("mem", np.zeros(64, dtype=np.int64))
        return state

    def batches(state):
        for start in range(0, n_tasks, batch):
            yield [("t", {"x": i}) for i in
                   range(start, min(start + batch, n_tasks))]

    def verify(state):
        if fail_verify:
            raise AssertionError("deliberately failing verification")

    return ApplicationSpec(
        name="hosted",
        mode="coordinative",
        task_sets=make_task_sets([("t", "for-each", ("x",))]),
        kernels={"t": Kernel("t", [
            Store("mem", lambda env: env["x"], lambda env: 1),
        ])},
        rules={"ok": OK},
        make_state=make_state,
        initial_tasks=lambda state: [],
        verify=verify,
        host_feed=HostFeed(batches, bytes_per_task=256),
    )


def _advance(sim, cycles):
    if not sim._started:
        sim.host.start()
        sim._started = True
    for _ in range(cycles):
        sim.step()


class TestSnapshotRevive:
    @pytest.mark.parametrize("app", ["SPEC-BFS", "SPEC-MST"])
    def test_revived_run_completes_identically(self, app):
        reference = AcceleratorSim(_spec(app), platform=HARP).run()

        sim = AcceleratorSim(_spec(app), platform=HARP)
        _advance(sim, 800)
        frozen = snapshot(sim)
        original = sim.run()
        assert original.cycles == reference.cycles

        resumed = revive(frozen)
        assert resumed.cycle == 800
        result = resumed.run()
        assert result.cycles == reference.cycles
        assert result.stats.commits == reference.stats.commits

    def test_checkpoint_stays_pristine_across_rollbacks(self):
        sim = AcceleratorSim(_spec("SPEC-BFS"), platform=HARP)
        _advance(sim, 500)
        frozen = snapshot(sim)
        reference = revive(frozen).run().cycles
        for _ in range(3):
            assert revive(frozen).run().cycles == reference

    def test_host_feed_replay(self):
        reference = AcceleratorSim(_hosted_spec(), platform=HARP).run()

        sim = AcceleratorSim(_hosted_spec(), platform=HARP)
        sim.host.enable_replay()
        _advance(sim, 60)  # mid-feed: some batches pulled, some not
        frozen = snapshot(sim)
        assert sim.run().cycles == reference.cycles

        resumed = revive(frozen)
        result = resumed.run()
        assert result.cycles == reference.cycles
        assert result.stats.tasks_activated == reference.stats.tasks_activated
        assert all(resumed.state.load("mem", i) == 1 for i in range(24))


class TestCheckpointManager:
    def test_periodic_capture_and_retention(self):
        sim = AcceleratorSim(_spec("SPEC-BFS"), platform=HARP)
        manager = CheckpointManager(sim, interval=300, keep=3)
        sim.checkpoints = manager
        sim.run()
        assert manager.captures > 3
        assert len(manager.checkpoints) == 3
        # The earliest capture survives as the rollback of last resort.
        assert manager.checkpoints[0].cycle == 0
        cycles = [c.cycle for c in manager.checkpoints]
        assert cycles == sorted(cycles)

    def test_rollback_resumes_from_capture_cycle(self):
        reference = AcceleratorSim(_spec("SPEC-BFS"), platform=HARP).run()
        sim = AcceleratorSim(_spec("SPEC-BFS"), platform=HARP)
        manager = CheckpointManager(sim, interval=500, keep=4)
        sim.checkpoints = manager
        _advance(sim, 1200)
        restored = manager.rollback()
        assert restored.cycle == 1000
        assert restored.run().cycles == reference.cycles


class TestRunResilient:
    def test_no_faults_matches_plain_run(self):
        plain = AcceleratorSim(_spec("SPEC-BFS"), platform=HARP).run()
        res = run_resilient(_spec("SPEC-BFS"), platform=HARP,
                            checkpoint_interval=1000)
        assert res.result.cycles == plain.cycles
        assert res.attempts == 1 and res.rollbacks == 0
        assert res.result.stats.checkpoints_taken > 0

    def test_recovers_from_lane_outage(self):
        config = SimConfig()
        plan = FaultPlan([FaultEvent(
            FaultKind.LANE_FAIL, 400, duration=1 << 30,
            magnitude=config.rule_lanes,
        )])
        res = run_resilient(
            _spec("SPEC-BFS"), platform=HARP, config=config,
            faults=plan, check_interval=256, checkpoint_interval=1000,
        )
        assert res.rollbacks >= 1
        assert res.failures and res.failures[0].cycle < 10_000
        assert res.result.stats.rollbacks == res.rollbacks
        # run() verified the functional result after recovery.

    def test_seeded_recovery_deterministic(self):
        def campaign():
            baseline = AcceleratorSim(_spec("SPEC-BFS"),
                                      platform=HARP).run(verify=False)
            plan = FaultPlan.generate(
                7, baseline.cycles,
                engines=("visit", "update"), task_sets=("bfs",),
            )
            res = run_resilient(
                _spec("SPEC-BFS"), platform=HARP, faults=plan,
                check_interval=256, checkpoint_interval=1000,
            )
            return (res.result.cycles, res.attempts, res.rollbacks,
                    tuple(f.cycle for f in res.failures))

        assert campaign() == campaign()

    def test_exhaustion_raises(self):
        spec = _hosted_spec(fail_verify=True)
        with pytest.raises(RecoveryExhaustedError) as excinfo:
            run_resilient(spec, platform=HARP, max_attempts=3,
                          checkpoint_interval=100)
        assert excinfo.value.attempts == 3

    def test_degradation_levers(self):
        sim = AcceleratorSim(_spec("SPEC-BFS"), platform=HARP)
        bandwidth = sim.memory.channel.bytes_per_cycle
        lanes = {name: e.max_lanes for name, e in sim.engines.items()}
        _degrade(sim, 1)
        assert sim.memory.channel.bytes_per_cycle == bandwidth / 2
        for name, engine in sim.engines.items():
            assert engine.max_lanes == max(1, lanes[name] // 2)
