"""Tests for the multi-bank task queue and wavefront allocator."""

import pytest
from hypothesis import given, strategies as st

from repro.core.indexing import TaskIndex
from repro.errors import SimulationError
from repro.sim.taskqueue import MultiBankTaskQueue


def _push(queue, value, handle=0):
    queue.push(TaskIndex((value,)), {"v": value}, handle)


class TestFifoQueue:
    def test_fifo_order_single_bank(self):
        queue = MultiBankTaskQueue("t", banks=1, depth_per_bank=16)
        for v in range(5):
            _push(queue, v)
        popped = [queue.pop()[0].positions[0] for _ in range(5)]
        assert popped == [0, 1, 2, 3, 4]

    def test_wavefront_balances_banks(self):
        queue = MultiBankTaskQueue("t", banks=4, depth_per_bank=16)
        for v in range(8):
            _push(queue, v)
        assert queue.bank_occupancy() == [2, 2, 2, 2]

    def test_pop_from_empty_returns_none(self):
        queue = MultiBankTaskQueue("t", banks=2, depth_per_bank=4)
        assert queue.pop() is None

    def test_capacity_enforced(self):
        queue = MultiBankTaskQueue("t", banks=2, depth_per_bank=2)
        for v in range(4):
            _push(queue, v)
        assert not queue.can_push()
        with pytest.raises(SimulationError):
            _push(queue, 99)

    def test_can_push_multiple(self):
        queue = MultiBankTaskQueue("t", banks=2, depth_per_bank=4)
        assert queue.can_push(8)
        assert not queue.can_push(9)

    def test_push_skips_full_bank(self):
        queue = MultiBankTaskQueue("t", banks=2, depth_per_bank=2)
        for v in range(3):
            _push(queue, v)
        # Bank 0 has 2, bank 1 has 1; next push must land in bank 1.
        _push(queue, 3)
        assert sorted(queue.bank_occupancy()) == [2, 2]

    def test_high_watermark(self):
        queue = MultiBankTaskQueue("t", banks=2, depth_per_bank=8)
        for v in range(6):
            _push(queue, v)
        for _ in range(6):
            queue.pop()
        assert queue.high_watermark == 6
        assert len(queue) == 0

    def test_invalid_geometry(self):
        with pytest.raises(SimulationError):
            MultiBankTaskQueue("t", banks=0, depth_per_bank=4)

    def test_invalid_policy(self):
        with pytest.raises(SimulationError):
            MultiBankTaskQueue("t", pop_policy="lifo")


class TestPriorityQueue:
    def test_pops_minimum_index(self):
        queue = MultiBankTaskQueue("t", banks=2, depth_per_bank=8,
                                   pop_policy="priority")
        for v in (5, 1, 9, 3):
            _push(queue, v)
        popped = [queue.pop()[0].positions[0] for _ in range(4)]
        assert popped == [1, 3, 5, 9]

    def test_peek_min_index(self):
        queue = MultiBankTaskQueue("t", banks=4, depth_per_bank=8,
                                   pop_policy="priority")
        for v in (7, 2, 4):
            _push(queue, v)
        assert queue.peek_min_index() == TaskIndex((2,))

    def test_peek_empty(self):
        queue = MultiBankTaskQueue("t", pop_policy="priority")
        assert queue.peek_min_index() is None

    def test_fifo_peek_is_none(self):
        queue = MultiBankTaskQueue("t", pop_policy="fifo")
        _push(queue, 1)
        assert queue.peek_min_index() is None

    def test_ties_pop_in_insertion_order(self):
        queue = MultiBankTaskQueue("t", banks=1, depth_per_bank=8,
                                   pop_policy="priority")
        queue.push(TaskIndex((3,)), {"tag": "first"}, 0)
        queue.push(TaskIndex((3,)), {"tag": "second"}, 0)
        assert queue.pop()[1]["tag"] == "first"

    def test_fields_and_handle_roundtrip(self):
        queue = MultiBankTaskQueue("t", pop_policy="priority")
        queue.push(TaskIndex((4,)), {"x": 10}, 77)
        index, fields, handle = queue.pop()
        assert index == TaskIndex((4,))
        assert fields == {"x": 10}
        assert handle == 77


@given(st.lists(st.integers(0, 100), min_size=1, max_size=64),
       st.integers(1, 6))
def test_priority_pop_is_globally_sorted(values, banks):
    queue = MultiBankTaskQueue("t", banks=banks, depth_per_bank=64,
                               pop_policy="priority")
    for v in values:
        _push(queue, v)
    popped = []
    while True:
        item = queue.pop()
        if item is None:
            break
        popped.append(item[0].positions[0])
    assert popped == sorted(values)


@given(st.lists(st.integers(0, 50), max_size=40), st.integers(1, 4))
def test_fifo_conserves_tasks(values, banks):
    queue = MultiBankTaskQueue("t", banks=banks, depth_per_bank=64)
    for v in values:
        _push(queue, v)
    seen = []
    while len(queue):
        seen.append(queue.pop()[0].positions[0])
    assert sorted(seen) == sorted(values)
