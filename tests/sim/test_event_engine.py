"""Property-based tests for the event engine's wake-up queue.

The determinism argument in ``sim/events.py`` rests on the
:class:`~repro.sim.events.WakeQueue` behaving as a *stable* priority
queue under arbitrary interleavings of arm / cancel / re-arm; these
tests check that mechanically over randomized operation scripts:

* **monotone delivery** — wake-ups drain in non-decreasing cycle order;
* **FIFO tie-break** — same-cycle wake-ups fire in registration order,
  so the engine's probe order is a pure function of the arm sequence;
* **cancel / re-arm never loses a wake-up** — after any script, the
  live set is exactly the model's: every key sits at its last armed
  cycle (unless cancelled) and every anonymous one-shot survives;
* **checkpoint round-trip** — ``copy.deepcopy`` (the checkpoint
  manager's capture primitive) preserves the pending heap exactly,
  and the copy drains identically to the original.

A model-based sweep drives the real queue and a brute-force dict/list
model through the same scripts and requires identical delivery
schedules — the queue's lazy deletion must be unobservable.
"""

from __future__ import annotations

import copy

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.events import NEVER, WakeQueue

SETTINGS = settings(derandomize=True, deadline=None, max_examples=60)

# One queue operation: ("arm", cycle, key) | ("cancel", key).
# Small key and cycle spaces force collisions — re-arms of a live key,
# cancels of spent entries, many same-cycle ties.
_KEYS = st.one_of(st.none(), st.tuples(st.sampled_from(["mem", "fu"]),
                                       st.integers(0, 5)))
_ARM = st.tuples(st.just("arm"), st.integers(0, 30), _KEYS)
_CANCEL = st.tuples(st.just("cancel"), st.just(0),
                    _KEYS.filter(lambda k: k is not None))
SCRIPTS = st.lists(st.one_of(_ARM, _CANCEL), max_size=60)


class _ModelQueue:
    """The obvious O(n) reference: a list of live entries."""

    def __init__(self) -> None:
        self.entries: list[tuple[int, int, object]] = []
        self.seq = 0

    def arm(self, cycle: int, key=None) -> None:
        if key is not None:
            self.entries = [e for e in self.entries if e[2] != key]
        self.entries.append((cycle, self.seq, key))
        self.seq += 1

    def cancel(self, key) -> None:
        self.entries = [e for e in self.entries if e[2] != key]

    def pending(self) -> list[tuple[int, int, object]]:
        return sorted(self.entries)

    def pop_due(self, now: int) -> list[tuple[int, object]]:
        due = sorted(e for e in self.entries if e[0] <= now)
        self.entries = [e for e in self.entries if e[0] > now]
        return [(cycle, key) for cycle, _seq, key in due]

    def next_after(self, now: int) -> int:
        live = [e[0] for e in self.entries if e[0] > now]
        self.entries = [e for e in self.entries if e[0] > now]
        return min(live) if live else NEVER


def _apply(queue, script) -> None:
    for op, cycle, key in script:
        if op == "arm":
            queue.arm(cycle, key)
        else:
            queue.cancel(key)


@given(script=SCRIPTS)
@SETTINGS
def test_delivery_is_monotone_and_fifo(script) -> None:
    """Draining the queue cycle by cycle yields non-decreasing cycles,
    with same-cycle entries in registration order."""
    queue = WakeQueue()
    _apply(queue, script)
    expected = [(cycle, key) for cycle, _seq, key in queue.pending()]
    fired: list[tuple[int, object]] = []
    for now in range(32):
        fired.extend(queue.pop_due(now))
    # Monotone non-decreasing delivery order...
    assert [c for c, _ in fired] == sorted(c for c, _ in fired)
    # ...and exactly the live set, in (cycle, registration) order.
    assert fired == expected
    assert len(queue) == 0
    assert queue.next_after(-1) == NEVER


@given(script=SCRIPTS)
@SETTINGS
def test_cancel_rearm_matches_brute_force_model(script) -> None:
    """The lazy-deletion queue is observationally identical to the
    brute-force model: no wake-up is ever lost or resurrected."""
    queue, model = WakeQueue(), _ModelQueue()
    _apply(queue, script)
    _apply(model, script)
    assert queue.pending() == model.pending()
    assert len(queue) == len(model.pending())
    # Interleave probes and drains the way the scheduler does.
    for now in (5, 12, 25):
        assert queue.pop_due(now) == model.pop_due(now)
        assert queue.next_after(now) == model.next_after(now)
    assert queue.pending() == model.pending()


@given(script=SCRIPTS, now=st.integers(-1, 31))
@SETTINGS
def test_next_after_is_earliest_live_wakeup(script, now: int) -> None:
    """``next_after`` returns the earliest live cycle strictly after
    ``now`` (NEVER when none), never a cancelled or superseded entry."""
    queue = WakeQueue()
    _apply(queue, script)
    live = [cycle for cycle, _seq, _key in queue.pending() if cycle > now]
    assert queue.next_after(now) == (min(live) if live else NEVER)


@given(script=SCRIPTS, split=st.integers(0, 30))
@SETTINGS
def test_checkpoint_roundtrip_preserves_pending_heap(script,
                                                     split: int) -> None:
    """``copy.deepcopy`` — how CheckpointManager captures the machine —
    must preserve the pending heap exactly, and the restored queue must
    drain identically even as both sides keep mutating."""
    queue = WakeQueue()
    _apply(queue, script)
    snapshot = copy.deepcopy(queue)
    assert snapshot.pending() == queue.pending()
    assert len(snapshot) == len(queue)

    # Drain both sides identically; the copy must shadow the original.
    assert snapshot.pop_due(split) == queue.pop_due(split)
    assert snapshot.pending() == queue.pending()

    # Divergence after the snapshot stays private to each side: spending
    # the original's entries must not disturb the copy (no shared heap).
    rollback = copy.deepcopy(queue)
    before = rollback.pending()
    queue.pop_due(64)
    queue.arm(7, ("mem", 0))
    assert rollback.pending() == before
