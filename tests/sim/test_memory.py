"""Tests for the cache + QPI channel memory model."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.eval.platforms import HarpPlatform
from repro.sim.memory import Cache, MemorySystem, QpiChannel

PLATFORM = HarpPlatform()


class TestCache:
    def test_first_access_misses(self):
        cache = Cache(1024, 64, 4)
        assert not cache.access(0)

    def test_second_access_hits(self):
        cache = Cache(1024, 64, 4)
        cache.access(0)
        assert cache.access(0)

    def test_same_line_hits(self):
        cache = Cache(1024, 64, 4)
        cache.access(0)
        assert cache.access(63)
        assert not cache.access(64)

    def test_lru_eviction(self):
        # 4 sets x 2 ways; addresses mapping to set 0: multiples of 256.
        cache = Cache(512, 64, 2)
        cache.access(0)
        cache.access(256)
        cache.access(0)       # 0 now MRU
        cache.access(512)     # evicts 256
        assert cache.access(0)
        assert not cache.access(256)

    def test_no_allocate_option(self):
        cache = Cache(1024, 64, 4)
        cache.access(0, allocate=False)
        assert not cache.access(0, allocate=False)

    def test_bad_geometry_rejected(self):
        with pytest.raises(SimulationError):
            Cache(1000, 64, 4)


class TestChannel:
    def test_latency_added(self):
        channel = QpiChannel(PLATFORM, latency_cycles=40)
        done = channel.transfer(now=0, nbytes=35)
        assert done == 41  # 1 cycle duration + 40 latency

    def test_bandwidth_serializes(self):
        channel = QpiChannel(PLATFORM, latency_cycles=0)
        first = channel.transfer(0, 350)   # 10 cycles at 35 B/cycle
        second = channel.transfer(0, 350)  # queues behind the first
        assert first == 10
        assert second == 20

    def test_idle_gap_not_accumulated(self):
        channel = QpiChannel(PLATFORM, latency_cycles=0)
        channel.transfer(0, 35)
        done = channel.transfer(100, 35)
        assert done == 101

    def test_zero_bytes_is_free(self):
        channel = QpiChannel(PLATFORM, latency_cycles=40)
        assert channel.transfer(5, 0) == 5

    def test_bandwidth_scaling(self):
        fast = QpiChannel(PLATFORM.scaled(2.0), latency_cycles=0)
        slow = QpiChannel(PLATFORM, latency_cycles=0)
        assert fast.transfer(0, 700) < slow.transfer(0, 700)


class TestMemorySystem:
    def test_load_hit_latency(self):
        memory = MemorySystem(PLATFORM)
        memory.issue_load(0, 64)          # warm the line
        req = memory.issue_load(100, 64)  # hit
        assert memory.done_at(req) == 100 + PLATFORM.cache_hit_cycles

    def test_load_miss_slower_than_hit(self):
        memory = MemorySystem(PLATFORM)
        miss = memory.issue_load(0, 0)
        hit = memory.issue_load(1000, 0)
        assert memory.done_at(miss) - 0 > PLATFORM.cache_hit_cycles
        # The second load is to a different line and also misses.
        assert memory.done_at(hit) > PLATFORM.cache_hit_cycles

    def test_ready_and_retire(self):
        memory = MemorySystem(PLATFORM)
        req = memory.issue_load(0, 0)
        assert not memory.ready(0, req)
        done = memory.done_at(req)
        assert memory.ready(done, req)
        memory.retire(req)
        with pytest.raises(SimulationError):
            memory.ready(done, req)

    def test_stream_consumes_bandwidth(self):
        memory = MemorySystem(PLATFORM)
        req = memory.issue_stream(0, 3500)
        # 100 cycles transfer + 40 latency.
        assert memory.done_at(req) == 140
        assert memory.stats.bytes_transferred == 3500

    def test_store_posted_untracked(self):
        memory = MemorySystem(PLATFORM)
        memory.issue_store(0, 0)
        assert memory.in_flight == 0
        assert memory.stats.stores == 1

    def test_pending(self):
        memory = MemorySystem(PLATFORM)
        req = memory.issue_load(0, 0)
        assert memory.pending(0)
        assert not memory.pending(memory.done_at(req))

    def test_hit_statistics(self):
        memory = MemorySystem(PLATFORM)
        memory.issue_load(0, 0)
        memory.issue_load(10, 0)
        assert memory.stats.loads == 2
        assert memory.stats.load_hits == 1


@given(st.lists(st.integers(0, 10_000), min_size=1, max_size=200))
def test_cache_hit_rate_bounded(addresses):
    cache = Cache(2048, 64, 4)
    hits = sum(1 for a in addresses if cache.access(a))
    assert 0 <= hits < len(addresses) or len(set(
        a // 64 for a in addresses
    )) == 1


@given(st.lists(st.integers(1, 500), min_size=1, max_size=50))
def test_channel_busy_time_matches_bytes(sizes):
    channel = QpiChannel(PLATFORM, latency_cycles=0)
    for nbytes in sizes:
        channel.transfer(0, nbytes)
    expected = sum(max(1, math.ceil(n / PLATFORM.qpi_bytes_per_cycle))
                   for n in sizes)
    assert channel.busy_cycles == expected
