"""Differential harness: the fast-forward core must be cycle-exact.

Every test here runs the same workload twice — once densely (the
reference interpreter, every cycle stepped) and once with
``SimConfig(fast_forward=True)`` — and asserts the two executions are
indistinguishable: identical final cycle counts, identical
:func:`~repro.sim.stats.stats_digest`, identical metrics-registry
snapshots, identical event-trace *schedules*, and identical
stall-attribution accounting (every row summing exactly to the total
cycle count).

The one deliberate divergence is per-cycle ``STAGE_STALL`` trace events:
the fast core folds a skipped quiescent span into the profiler via
``credit_skipped_stalls`` instead of emitting one event per cycle, so
trace comparison filters stall events out and compares everything else
(fires, queue traffic, rule-engine lifecycle, memory events,
checkpoints, rollbacks) verbatim.

A small smoke subset runs with the tier-1 suite; the full seeded matrix
of workloads x platforms x microarchitectural configs x fault plans is
marked ``slow``.
"""

from __future__ import annotations

import pytest

from repro.apps.registry import build_app
from repro.eval.platforms import EVAL_HARP, HARP
from repro.obs import Observability, TraceEventKind
from repro.sim.accelerator import (
    AcceleratorSim,
    SimConfig,
    run_resilient,
)
from repro.sim.faults import FaultEvent, FaultKind, FaultPlan
from repro.sim.stats import stats_digest
from repro.substrates.graphs import random_graph


# -- helpers ----------------------------------------------------------------


def _spec(app: str, nodes: int = 120, edges: int = 360, seed: int = 3):
    return build_app(app, random_graph(nodes, edges, seed=seed))


def _run(
    app: str,
    *,
    fast: bool,
    platform=HARP,
    config_kwargs: dict | None = None,
    fault_seed: int | None = None,
    nodes: int = 120,
    edges: int = 360,
    graph_seed: int = 3,
):
    """One observed run; returns (SimResult, Observability, stage names)."""
    spec = _spec(app, nodes, edges, graph_seed)
    config = SimConfig(fast_forward=fast, **(config_kwargs or {}))
    faults = None
    check_interval = None
    if fault_seed is not None:
        faults = FaultPlan.generate(
            fault_seed, 40_000,
            engines=tuple(spec.rules), task_sets=tuple(spec.task_sets),
        )
        check_interval = 512
    obs = Observability(trace_capacity=1 << 20)
    sim = AcceleratorSim(
        spec, platform=platform, config=config,
        faults=faults, check_interval=check_interval, obs=obs,
    )
    result = sim.run()
    stage_names = [
        stage.name for pipeline in sim.pipelines for stage in pipeline.stages
    ]
    return result, obs, stage_names


def _schedule(obs: Observability) -> list[tuple]:
    """The trace as comparable tuples, excluding per-cycle stall events."""
    # The comparison is only sound if neither run's ring buffer wrapped.
    assert obs.tracer.evicted == 0, "trace_capacity too small for this run"
    return [
        (e.cycle, e.kind.value, e.name, str(e.reason), str(e.data))
        for e in obs.tracer.events()
        if e.kind is not TraceEventKind.STAGE_STALL
    ]


def _assert_equivalent(app: str, dense, fast) -> None:
    """Full-depth equivalence between one dense and one fast execution."""
    dense_result, dense_obs, stages = dense
    fast_result, fast_obs, fast_stages = fast
    assert fast_stages == stages

    assert fast_result.cycles == dense_result.cycles, (
        f"{app}: fast run finished at cycle {fast_result.cycles}, "
        f"dense at {dense_result.cycles}"
    )

    dense_digest = stats_digest(dense_result.stats)
    fast_digest = stats_digest(fast_result.stats)
    for key in dense_digest:
        assert fast_digest[key] == dense_digest[key], (
            f"{app}: stats field {key!r} diverged: "
            f"fast={fast_digest[key]!r} dense={dense_digest[key]!r}"
        )

    assert fast_obs.registry.snapshot() == dense_obs.registry.snapshot()
    assert _schedule(fast_obs) == _schedule(dense_obs)

    total = dense_result.cycles
    dense_acct = dense_obs.profiler.accounting(stages, total)
    fast_acct = fast_obs.profiler.accounting(stages, total)
    for stage in stages:
        assert fast_acct[stage] == dense_acct[stage], (
            f"{app}: stall accounting diverged for stage {stage!r}"
        )
        row = fast_acct[stage]
        assert sum(v for k, v in row.items() if k != "total") == total


# -- tier-1 smoke subset ----------------------------------------------------


@pytest.mark.parametrize("app", ["SPEC-BFS", "SPEC-SSSP", "SPEC-CC"])
def test_memory_bound_runs_are_cycle_exact(app: str) -> None:
    """The headline case: a bandwidth-starved run is mostly idle, so the
    fast core skips aggressively — and must still match to the cycle."""
    platform = EVAL_HARP.scaled(0.05)
    dense = _run(app, fast=False, platform=platform)
    fast = _run(app, fast=True, platform=platform)
    _assert_equivalent(app, dense, fast)
    # The point of the exercise: the fast run actually skipped cycles.
    assert fast[0].ff_jumps > 0
    assert fast[0].ff_cycles_skipped > 0


@pytest.mark.parametrize("app", ["SPEC-BFS", "SPEC-SSSP"])
def test_fault_injection_is_cycle_exact(app: str) -> None:
    """Fault boundaries, invariant sweeps, and degraded resources are all
    wake-up sources; a seeded mixed-mode plan must not break exactness."""
    dense = _run(app, fast=False, platform=EVAL_HARP, fault_seed=11)
    fast = _run(app, fast=True, platform=EVAL_HARP, fault_seed=11)
    _assert_equivalent(app, dense, fast)


def test_rollback_recovery_is_cycle_exact() -> None:
    """Force a rollback (total lane outage -> liveness trip) and require
    the resilient driver's full trajectory to match: failure cycles,
    error strings, attempts, rollbacks, and final stats."""
    def resilient(fast: bool):
        spec = _spec("SPEC-BFS", 200, 600, 7)
        config = SimConfig(fast_forward=fast, deadlock_window=3000)
        faults = FaultPlan([
            FaultEvent(FaultKind.LANE_FAIL, 400, duration=1 << 30,
                       magnitude=config.rule_lanes),
        ])
        return run_resilient(
            spec, platform=EVAL_HARP.scaled(0.2), config=config,
            faults=faults, check_interval=256, checkpoint_interval=1000,
        )

    dense = resilient(False)
    fast = resilient(True)
    assert dense.rollbacks >= 1, "fault plan failed to force a rollback"
    assert fast.result.cycles == dense.result.cycles
    assert fast.attempts == dense.attempts
    assert fast.rollbacks == dense.rollbacks
    assert [f.cycle for f in fast.failures] == [
        f.cycle for f in dense.failures
    ]
    assert [f.error for f in fast.failures] == [
        f.error for f in dense.failures
    ]
    assert stats_digest(fast.result.stats) == stats_digest(
        dense.result.stats
    )


# -- the full seeded matrix (slow) ------------------------------------------

# (platform, SimConfig overrides): cache sizes come through the platform
# (HARP = 64 KB cache, EVAL_HARP = 1 KB), bank counts and pipeline depths
# through the config.
_MATRIX_CONFIGS = {
    "harp": (HARP, {}),
    "small-cache": (EVAL_HARP, {}),
    "mem-bound": (EVAL_HARP.scaled(0.05), {}),
    "two-banks": (HARP, {"queue_banks": 2}),
    "shallow": (EVAL_HARP, {"fifo_depth": 2, "station_depth": 4}),
}


@pytest.mark.slow
@pytest.mark.parametrize("fault_seed", [None, 11],
                         ids=["no-faults", "faults"])
@pytest.mark.parametrize("cfg", sorted(_MATRIX_CONFIGS))
@pytest.mark.parametrize("app", ["SPEC-BFS", "SPEC-SSSP", "SPEC-CC"])
def test_differential_matrix(app: str, cfg: str,
                             fault_seed: int | None) -> None:
    platform, overrides = _MATRIX_CONFIGS[cfg]
    dense = _run(app, fast=False, platform=platform,
                 config_kwargs=overrides, fault_seed=fault_seed)
    fast = _run(app, fast=True, platform=platform,
                config_kwargs=overrides, fault_seed=fault_seed)
    _assert_equivalent(f"{app}/{cfg}", dense, fast)
