"""Differential harness: every engine must be cycle-exact vs dense.

Every test here runs the same workload through the full engine matrix —
once densely (the reference interpreter, every cycle stepped), once
with the scan-based fast-forward core (``engine="fast"``), and once
with the priority-queue event engine (``engine="event"``) — and asserts
the executions are indistinguishable: identical final cycle counts,
identical :func:`~repro.sim.stats.stats_digest`, identical
metrics-registry snapshots, identical event-trace *schedules*, and
identical stall-attribution accounting (every row summing exactly to
the total cycle count).

The one deliberate divergence is per-cycle ``STAGE_STALL`` trace events:
both skipping engines fold a skipped quiescent span into the profiler
via ``credit_skipped_stalls`` instead of emitting one event per cycle,
so trace comparison filters stall events out and compares everything
else (fires, queue traffic, rule-engine lifecycle, memory events,
checkpoints, rollbacks) verbatim.

A small smoke subset runs with the tier-1 suite; the full seeded matrix
of workloads x platforms x microarchitectural configs x fault plans is
marked ``slow``.
"""

from __future__ import annotations

import pytest

from repro.apps.registry import build_app
from repro.eval.platforms import EVAL_HARP, HARP
from repro.obs import Observability, TraceEventKind
from repro.sim.accelerator import (
    AcceleratorSim,
    SimConfig,
    run_resilient,
)
from repro.sim.faults import FaultEvent, FaultKind, FaultPlan
from repro.sim.stats import stats_digest
from repro.substrates.graphs import random_graph

# The non-reference engines; dense is the oracle they are diffed against.
SKIPPING_ENGINES = ("fast", "event")


# -- helpers ----------------------------------------------------------------


def _spec(app: str, nodes: int = 120, edges: int = 360, seed: int = 3):
    return build_app(app, random_graph(nodes, edges, seed=seed))


def _run(
    app: str,
    *,
    engine: str,
    platform=HARP,
    config_kwargs: dict | None = None,
    fault_seed: int | None = None,
    nodes: int = 120,
    edges: int = 360,
    graph_seed: int = 3,
):
    """One observed run; returns (SimResult, Observability, stage names)."""
    spec = _spec(app, nodes, edges, graph_seed)
    config = SimConfig(engine=engine, **(config_kwargs or {}))
    faults = None
    check_interval = None
    if fault_seed is not None:
        faults = FaultPlan.generate(
            fault_seed, 40_000,
            engines=tuple(spec.rules), task_sets=tuple(spec.task_sets),
        )
        check_interval = 512
    obs = Observability(trace_capacity=1 << 20)
    sim = AcceleratorSim(
        spec, platform=platform, config=config,
        faults=faults, check_interval=check_interval, obs=obs,
    )
    result = sim.run()
    stage_names = [
        stage.name for pipeline in sim.pipelines for stage in pipeline.stages
    ]
    return result, obs, stage_names


def _schedule(obs: Observability) -> list[tuple]:
    """The trace as comparable tuples, excluding per-cycle stall events."""
    # The comparison is only sound if neither run's ring buffer wrapped.
    assert obs.tracer.evicted == 0, "trace_capacity too small for this run"
    return [
        (e.cycle, e.kind.value, e.name, str(e.reason), str(e.data))
        for e in obs.tracer.events()
        if e.kind is not TraceEventKind.STAGE_STALL
    ]


def _assert_equivalent(label: str, dense, other) -> None:
    """Full-depth equivalence between a dense and a skipping execution."""
    dense_result, dense_obs, stages = dense
    other_result, other_obs, other_stages = other
    assert other_stages == stages

    assert other_result.cycles == dense_result.cycles, (
        f"{label}: run finished at cycle {other_result.cycles}, "
        f"dense at {dense_result.cycles}"
    )

    dense_digest = stats_digest(dense_result.stats)
    other_digest = stats_digest(other_result.stats)
    for key in dense_digest:
        assert other_digest[key] == dense_digest[key], (
            f"{label}: stats field {key!r} diverged: "
            f"got={other_digest[key]!r} dense={dense_digest[key]!r}"
        )

    assert other_obs.registry.snapshot() == dense_obs.registry.snapshot()
    assert _schedule(other_obs) == _schedule(dense_obs)

    total = dense_result.cycles
    dense_acct = dense_obs.profiler.accounting(stages, total)
    other_acct = other_obs.profiler.accounting(stages, total)
    for stage in stages:
        assert other_acct[stage] == dense_acct[stage], (
            f"{label}: stall accounting diverged for stage {stage!r}"
        )
        row = other_acct[stage]
        assert sum(v for k, v in row.items() if k != "total") == total


def _three_way(app: str, label: str, **kwargs) -> dict:
    """Run dense + both skipping engines, assert full equivalence, and
    return the runs keyed by engine for extra per-test assertions."""
    runs = {
        engine: _run(app, engine=engine, **kwargs)
        for engine in ("dense",) + SKIPPING_ENGINES
    }
    for engine in SKIPPING_ENGINES:
        _assert_equivalent(f"{label}[{engine}]", runs["dense"], runs[engine])
    return runs


# -- tier-1 smoke subset ----------------------------------------------------


@pytest.mark.parametrize("app", ["SPEC-BFS", "SPEC-SSSP", "SPEC-CC"])
def test_memory_bound_runs_are_cycle_exact(app: str) -> None:
    """The headline case: a bandwidth-starved run is mostly idle, so both
    skipping engines skip aggressively — and must still match to the
    cycle."""
    runs = _three_way(app, app, platform=EVAL_HARP.scaled(0.05))
    # The point of the exercise: both skipping engines actually skipped.
    for engine in SKIPPING_ENGINES:
        assert runs[engine][0].ff_jumps > 0, engine
        assert runs[engine][0].ff_cycles_skipped > 0, engine
    # The event engine drops the minimum-jump hysteresis, so it never
    # skips fewer cycles than the scan-based core here.
    assert (runs["event"][0].ff_cycles_skipped
            >= runs["fast"][0].ff_cycles_skipped)


@pytest.mark.parametrize("app", ["SPEC-BFS", "SPEC-SSSP"])
def test_fault_injection_is_cycle_exact(app: str) -> None:
    """Fault boundaries, invariant sweeps, and degraded resources are all
    wake-up sources; a seeded mixed-mode plan must not break exactness
    on any engine."""
    _three_way(app, app, platform=EVAL_HARP, fault_seed=11)


def test_rollback_recovery_is_cycle_exact() -> None:
    """Force a rollback (total lane outage -> liveness trip) and require
    the resilient driver's full trajectory to match on every engine:
    failure cycles, error strings, attempts, rollbacks, final stats."""
    def resilient(engine: str):
        spec = _spec("SPEC-BFS", 200, 600, 7)
        config = SimConfig(engine=engine, deadlock_window=3000)
        faults = FaultPlan([
            FaultEvent(FaultKind.LANE_FAIL, 400, duration=1 << 30,
                       magnitude=config.rule_lanes),
        ])
        return run_resilient(
            spec, platform=EVAL_HARP.scaled(0.2), config=config,
            faults=faults, check_interval=256, checkpoint_interval=1000,
        )

    dense = resilient("dense")
    assert dense.rollbacks >= 1, "fault plan failed to force a rollback"
    for engine in SKIPPING_ENGINES:
        other = resilient(engine)
        assert other.result.cycles == dense.result.cycles, engine
        assert other.attempts == dense.attempts, engine
        assert other.rollbacks == dense.rollbacks, engine
        assert [f.cycle for f in other.failures] == [
            f.cycle for f in dense.failures
        ], engine
        assert [f.error for f in other.failures] == [
            f.error for f in dense.failures
        ], engine
        assert stats_digest(other.result.stats) == stats_digest(
            dense.result.stats
        ), engine


# -- the full seeded matrix (slow) ------------------------------------------

# (platform, SimConfig overrides): cache sizes come through the platform
# (HARP = 64 KB cache, EVAL_HARP = 1 KB), bank counts and pipeline depths
# through the config.
_MATRIX_CONFIGS = {
    "harp": (HARP, {}),
    "small-cache": (EVAL_HARP, {}),
    "mem-bound": (EVAL_HARP.scaled(0.05), {}),
    "two-banks": (HARP, {"queue_banks": 2}),
    "shallow": (EVAL_HARP, {"fifo_depth": 2, "station_depth": 4}),
}


@pytest.mark.slow
@pytest.mark.parametrize("fault_seed", [None, 11],
                         ids=["no-faults", "faults"])
@pytest.mark.parametrize("cfg", sorted(_MATRIX_CONFIGS))
@pytest.mark.parametrize("app", ["SPEC-BFS", "SPEC-SSSP", "SPEC-CC"])
def test_differential_matrix(app: str, cfg: str,
                             fault_seed: int | None) -> None:
    platform, overrides = _MATRIX_CONFIGS[cfg]
    _three_way(app, f"{app}/{cfg}", platform=platform,
               config_kwargs=overrides, fault_seed=fault_seed)
