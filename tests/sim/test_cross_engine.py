"""Cross-engine integration: all five execution engines, one answer.

Definition 4.3's correctness criterion, checked directly: the sequential
interpreter, the step-based aggressive runtime, the OS-thread futures
runtime, and the cycle-level accelerator (dense and event-engine) must
produce byte-identical final state for applications with deterministic
answers.

Each test builds its graph fresh: a module-level shared graph would let
one engine's run mutate state another engine then consumes (graphs are
plain mutable adjacency structures), turning an engine bug into
cross-test contamination instead of a clean failure.
"""

import numpy as np
import pytest

from repro.apps.bfs import spec_bfs
from repro.apps.sssp import spec_sssp
from repro.core.futures_runtime import FuturesRuntime
from repro.core.runtime import AggressiveRuntime, SequentialRuntime
from repro.sim.accelerator import AcceleratorSim, SimConfig
from repro.substrates.graphs import random_graph


def _graph():
    return random_graph(70, 200, seed=61)


def _final_array(engine: str, spec_builder, region: str) -> np.ndarray:
    spec = spec_builder()
    if engine == "sequential":
        runtime = SequentialRuntime(spec)
        runtime.run()
        return np.array(runtime.state.region(region).storage)
    if engine == "aggressive":
        runtime = AggressiveRuntime(spec, workers=7)
        runtime.run()
        return np.array(runtime.state.region(region).storage)
    if engine == "threads":
        runtime = FuturesRuntime(spec, threads=5)
        runtime.run()
        return np.array(runtime.state.region(region).storage)
    sim_engine = "event" if engine == "accelerator-event" else "dense"
    sim = AcceleratorSim(spec, config=SimConfig(engine=sim_engine))
    sim.run()
    return np.array(sim.state.region(region).storage)


ENGINES = ("sequential", "aggressive", "threads", "accelerator",
           "accelerator-event")


@pytest.mark.parametrize("engine", ENGINES[1:])
def test_bfs_levels_identical_across_engines(engine):
    reference = _final_array("sequential", lambda: spec_bfs(_graph(), 0),
                             "level")
    other = _final_array(engine, lambda: spec_bfs(_graph(), 0), "level")
    assert np.array_equal(reference, other)


@pytest.mark.parametrize("engine", ENGINES[1:])
def test_sssp_distances_identical_across_engines(engine):
    reference = _final_array("sequential", lambda: spec_sssp(_graph(), 0),
                             "dist")
    other = _final_array(engine, lambda: spec_sssp(_graph(), 0), "dist")
    assert np.array_equal(reference, other)


def test_mst_weight_identical_across_engines():
    from repro.apps.mst import spec_mst
    from repro.substrates.graphs.algorithms import kruskal_mst

    _, expected = kruskal_mst(_graph())

    def weight_of(run):
        return run.state.object("mst")["weight"]

    seq = SequentialRuntime(spec_mst(_graph()))
    seq.run()
    agg = AggressiveRuntime(spec_mst(_graph()), workers=6)
    agg.run()
    sim = AcceleratorSim(spec_mst(_graph()),
                         config=SimConfig(engine="event"))
    sim.run()
    assert weight_of(seq) == expected
    assert weight_of(agg) == expected
    assert sim.state.object("mst")["weight"] == expected
