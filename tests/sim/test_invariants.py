"""Tests for the runtime invariant checker (the simulator's sanitizer)."""

import pytest

from repro.apps.registry import build_app
from repro.errors import InvariantViolation
from repro.eval.platforms import HARP
from repro.sim.accelerator import AcceleratorSim, SimConfig
from repro.sim.faults import FaultEvent, FaultKind, FaultPlan
from repro.sim.invariants import InvariantChecker
from repro.substrates.graphs import random_graph

GRAPH = random_graph(40, 90, seed=111)
INTERVAL = 256


def _sim(app="SPEC-BFS", **kwargs):
    spec = (build_app(app, GRAPH, 0) if app == "SPEC-BFS"
            else build_app(app, GRAPH))
    return AcceleratorSim(spec, platform=HARP, **kwargs)


def _step_until(sim, predicate, limit=20_000):
    if not sim._started:
        sim.host.start()
        sim._started = True
    for _ in range(limit):
        sim.step()
        if predicate(sim):
            return
    raise AssertionError("condition never reached")


class TestCleanRuns:
    @pytest.mark.parametrize("app", ["SPEC-BFS", "SPEC-MST"])
    def test_checked_run_passes_and_matches_unchecked(self, app):
        plain = _sim(app).run()
        checked_sim = _sim(app, check_interval=INTERVAL)
        checked = checked_sim.run()
        assert checked.cycles == plain.cycles
        assert checked.stats.invariant_checks > 0
        # The drain check ran and every conservation law balanced.
        assert checked_sim.tracker.count == 0

    def test_per_cycle_checking_has_no_false_positives(self):
        # Broadcast-interval gaps are legitimate idleness: even checking
        # every cycle must not trip the liveness invariant.
        plain = _sim().run()
        checked = _sim(check_interval=1).run()
        assert checked.cycles == plain.cycles

    def test_checks_run_at_interval(self):
        sim = _sim(check_interval=INTERVAL)
        result = sim.run()
        assert result.stats.invariant_checks >= result.cycles // INTERVAL


class TestCorruptionDetection:
    def test_credit_leak_caught_within_one_interval(self):
        # SPEC-MST uses ordered admission, so credits are conserved.
        sim = _sim("SPEC-MST", check_interval=INTERVAL)
        _step_until(sim, lambda s: s.cycle == 3 * INTERVAL // 2)
        task_set = next(iter(sim.admission_credits))
        sim.admission_credits[task_set] += 3
        with pytest.raises(InvariantViolation) as excinfo:
            _step_until(sim, lambda s: False, limit=2 * INTERVAL)
        assert excinfo.value.invariant in ("credit-conservation",
                                           "credit-bounds")
        assert excinfo.value.cycle <= 3 * INTERVAL // 2 + INTERVAL

    def test_leaked_lane_caught(self):
        from repro.core.indexing import TaskIndex

        sim = _sim(check_interval=INTERVAL)
        _step_until(sim, lambda s: s.cycle == INTERVAL // 2)
        # Allocate a lane that no in-flight token references.
        engine = next(iter(sim.engines.values()))
        args = {p: 0 for p in engine.rule_type.params if p != "my_index"}
        instance = engine.try_alloc(TaskIndex((0,)), args, owner_uid=-42)
        assert instance is not None
        with pytest.raises(InvariantViolation) as excinfo:
            _step_until(sim, lambda s: False, limit=2 * INTERVAL)
        assert excinfo.value.invariant == "lane-conservation"

    def test_leaked_live_handle_caught(self):
        sim = _sim(check_interval=INTERVAL)
        _step_until(sim, lambda s: s.tracker.count > 0)
        sim.tracker.register(next(iter(
            index for index, _refs in sim.tracker.snapshot().values()
        )))  # a registration nobody holds
        with pytest.raises(InvariantViolation) as excinfo:
            _step_until(sim, lambda s: False, limit=2 * INTERVAL)
        assert excinfo.value.invariant == "live-handle-conservation"

    def test_minimum_monotonicity_guard(self):
        sim = _sim(check_interval=INTERVAL)
        _step_until(sim, lambda s: s.tracker.count > 0)
        sim.checker._last_minimum = (1 << 40,)
        with pytest.raises(InvariantViolation) as excinfo:
            sim.checker.check()
        assert excinfo.value.invariant == "minimum-monotonicity"


class TestLiveness:
    def test_full_lane_outage_caught_early(self):
        """A wedged engine trips the liveness check in ~one interval,
        orders of magnitude before the deadlock window."""
        config = SimConfig()
        plan = FaultPlan([FaultEvent(
            FaultKind.LANE_FAIL, 64, duration=1 << 30,
            magnitude=config.rule_lanes,
        )])
        sim = _sim(config=config, faults=plan, check_interval=INTERVAL)
        with pytest.raises(InvariantViolation) as excinfo:
            sim.run()
        assert excinfo.value.invariant == "liveness"
        assert excinfo.value.cycle < config.deadlock_window // 10
        assert "no progress" in str(excinfo.value)


class TestCheckerMechanics:
    def test_standalone_check_on_fresh_sim(self):
        sim = _sim()
        checker = InvariantChecker(sim, interval=INTERVAL)
        sim.host.start()
        sim._started = True
        checker.check()  # nothing in flight: all laws hold vacuously
        assert checker.checks == 1
