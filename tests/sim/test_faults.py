"""Tests for seeded fault injection (FaultPlan and its component hooks)."""

from repro.apps.registry import build_app
from repro.core.indexing import TaskIndex
from repro.eval.platforms import HARP, HarpPlatform
from repro.sim.accelerator import AcceleratorSim, SimConfig
from repro.sim.faults import FaultEvent, FaultKind, FaultPlan
from repro.sim.memory import QpiChannel
from repro.sim.taskqueue import MultiBankTaskQueue
from repro.substrates.graphs import random_graph

PLATFORM = HarpPlatform()
GRAPH = random_graph(40, 90, seed=111)


def _bfs_spec():
    return build_app("SPEC-BFS", GRAPH, 0)


class TestGeneration:
    def test_same_seed_same_plan(self):
        kwargs = dict(engines=("visit", "update"), task_sets=("bfs",),
                      banks=4, rule_lanes=32)
        one = FaultPlan.generate(7, 5000, **kwargs)
        two = FaultPlan.generate(7, 5000, **kwargs)
        assert one.describe() == two.describe()

    def test_different_seed_different_plan(self):
        one = FaultPlan.generate(7, 5000)
        two = FaultPlan.generate(8, 5000)
        assert one.describe() != two.describe()

    def test_intensity_zero_is_empty(self):
        assert FaultPlan.generate(7, 5000, intensity=0.0).events == []

    def test_covers_every_kind(self):
        plan = FaultPlan.generate(3, 10_000, engines=("e",),
                                  task_sets=("t",))
        kinds = {event.kind for event in plan.events}
        assert kinds == set(FaultKind)

    def test_windows_inside_horizon(self):
        plan = FaultPlan.generate(11, 10_000)
        for event in plan.events:
            assert 0 < event.start < 10_000


class TestChannelHooks:
    def test_latency_spike_adds_cycles(self):
        plan = FaultPlan([FaultEvent(FaultKind.QPI_LATENCY, 0,
                                     duration=100, magnitude=50)])
        channel = QpiChannel(PLATFORM, latency_cycles=0, faults=plan)
        plan.advance(0)
        assert channel.transfer(0, 35) == 1 + 50

    def test_brownout_scales_bandwidth(self):
        plan = FaultPlan([FaultEvent(FaultKind.QPI_BROWNOUT, 0,
                                     duration=100, magnitude=0.5)])
        channel = QpiChannel(PLATFORM, latency_cycles=0, faults=plan)
        plan.advance(0)
        # 350 bytes at 35 B/cycle is 10 cycles; halved bandwidth -> 20.
        assert channel.transfer(0, 350) == 20

    def test_window_expires(self):
        plan = FaultPlan([FaultEvent(FaultKind.QPI_LATENCY, 0,
                                     duration=10, magnitude=50)])
        channel = QpiChannel(PLATFORM, latency_cycles=0, faults=plan)
        plan.advance(20)
        assert channel.transfer(20, 35) == 21

    def test_fired_bookkeeping(self):
        plan = FaultPlan([FaultEvent(FaultKind.QPI_LATENCY, 5,
                                     duration=10, magnitude=50)])
        plan.advance(0)
        assert plan.fired_count == 0 and plan.pending_count == 1
        plan.advance(5)
        assert plan.fired_count == 1 and plan.pending_count == 0
        assert plan.log

    def test_disarm_fired_removes_perturbation(self):
        plan = FaultPlan([FaultEvent(FaultKind.QPI_LATENCY, 0,
                                     duration=100, magnitude=50)])
        plan.advance(0)
        assert plan.latency_extra == 50
        plan.disarm_fired()
        plan.advance(0)  # the rollback replays from an earlier cycle
        assert plan.latency_extra == 0


class TestQueueHooks:
    def test_stalled_bank_refuses_pops(self):
        plan = FaultPlan([FaultEvent(FaultKind.BANK_STALL, 0,
                                     duration=100, target="t", bank=0)])
        queue = MultiBankTaskQueue("t", banks=1, depth_per_bank=8,
                                   faults=plan)
        queue.push(TaskIndex((1,)), {}, live_handle=0)
        plan.advance(0)
        assert queue.pop() is None
        plan.advance(200)  # window over
        assert queue.pop() is not None

    def test_other_banks_still_pop(self):
        plan = FaultPlan([FaultEvent(FaultKind.BANK_STALL, 0,
                                     duration=100, target="t", bank=0)])
        queue = MultiBankTaskQueue("t", banks=2, depth_per_bank=8,
                                   faults=plan)
        queue.push(TaskIndex((1,)), {}, live_handle=0)  # bank 0
        queue.push(TaskIndex((2,)), {}, live_handle=1)  # bank 1
        plan.advance(0)
        index, _fields, handle = queue.pop()
        assert handle == 1  # bank 0 is stalled, bank 1 serves
        assert queue.pop() is None


class TestEndToEnd:
    def test_empty_plan_matches_disabled(self):
        baseline = AcceleratorSim(_bfs_spec(), platform=HARP).run()
        empty = AcceleratorSim(_bfs_spec(), platform=HARP,
                               faults=FaultPlan([])).run()
        assert empty.cycles == baseline.cycles

    def test_event_drops_counted(self):
        plan = FaultPlan([FaultEvent(FaultKind.EVENT_DROP, 1,
                                     duration=1 << 30, magnitude=2)])
        sim = AcceleratorSim(_bfs_spec(), platform=HARP, faults=plan)
        result = sim.run(verify=False)
        assert result.stats.events_dropped == 2
        assert result.stats.faults_injected == 1

    def test_latency_fault_changes_schedule(self):
        baseline = AcceleratorSim(_bfs_spec(), platform=HARP).run()
        plan = FaultPlan([FaultEvent(FaultKind.QPI_LATENCY, 10,
                                     duration=2000, magnitude=100)])
        hurt = AcceleratorSim(_bfs_spec(), platform=HARP, faults=plan)
        result = hurt.run()  # still functionally correct
        assert result.cycles > baseline.cycles

    def test_seeded_plan_deterministic_end_to_end(self):
        def campaign():
            baseline = AcceleratorSim(_bfs_spec(), platform=HARP).run()
            plan = FaultPlan.generate(
                7, baseline.cycles, engines=("visit", "update"),
                task_sets=("bfs",),
            )
            sim = AcceleratorSim(_bfs_spec(), platform=HARP, faults=plan)
            result = sim.run(verify=False)
            return result.cycles, plan.fired_count, tuple(plan.log)

        assert campaign() == campaign()
