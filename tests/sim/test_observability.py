"""Tests for the observability subsystem: metrics, stats, profiling.

The centrepiece is the cycle-accounting conservation property: for every
stage, active + stalled-by-reason + idle sums *exactly* to the simulated
cycle count — with observability on, under injected faults, and across
checkpoint/rollback recovery (no replayed cycle may be double-counted).
"""

import pytest

from repro.apps.registry import build_app
from repro.errors import SimulationError
from repro.eval.platforms import HARP
from repro.obs import Observability
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profile import COLUMNS, format_stall_report
from repro.sim.accelerator import AcceleratorSim, SimConfig, run_resilient
from repro.sim.faults import FaultEvent, FaultKind, FaultPlan
from repro.sim.stats import SimStats
from repro.sim.trace import ScheduleTracer
from repro.substrates.graphs import random_graph

GRAPH = random_graph(200, 600, seed=7)


def _spec(app="SPEC-BFS"):
    return build_app(app, GRAPH, 0) if app == "SPEC-BFS" \
        else build_app(app, GRAPH)


def _stage_names(sim):
    return [s.name for p in sim.pipelines for s in p.stages]


def assert_conserved(obs, stage_names, cycles):
    """Every stage's row sums exactly to the total cycle count."""
    accounting = obs.profiler.accounting(stage_names, cycles)
    assert set(accounting) == set(stage_names)
    for name, row in accounting.items():
        parts = [row[column] for column in COLUMNS] + [row["idle"]]
        assert min(parts) >= 0, f"{name}: negative bucket {row}"
        assert sum(parts) == cycles == row["total"], f"{name}: {row}"
    return accounting


# -- metrics registry ---------------------------------------------------------


class TestMetrics:
    def test_counter_and_gauge(self):
        registry = MetricsRegistry()
        counter = registry.counter("a.b")
        counter.inc()
        counter.inc(4)
        assert registry.counter_value("a.b") == 5
        assert registry.counter_value("missing", default=-1) == -1
        assert registry.counter("a.b") is counter  # get-or-create
        gauge = registry.gauge("g")
        gauge.set(7)
        gauge.set(3)
        assert registry.gauges["g"].value == 3

    def test_histogram_log2_buckets(self):
        hist = Histogram("h")
        for value in (0, 1, 2, 3, 5, 100):
            hist.record(value)
        buckets = dict(zip(hist.bucket_labels(), hist.buckets))
        assert buckets["0"] == 1        # the zero
        assert buckets["<2"] == 1       # 1
        assert buckets["<4"] == 2       # 2, 3
        assert buckets["<8"] == 1       # 5
        assert buckets["<128"] == 1     # 100
        assert hist.count == 6
        assert hist.mean == pytest.approx(111 / 6)

    def test_percentiles_interpolate_within_buckets(self):
        hist = Histogram("h")
        for _ in range(100):
            hist.record(2)  # all land in bucket [2, 3]
        assert hist.percentile(0.50) == pytest.approx(2.5)
        assert 2.0 <= hist.percentile(0.99) <= 3.0

    def test_percentiles_exact_for_zero_and_one(self):
        hist = Histogram("h")
        for _ in range(10):
            hist.record(0)
        assert hist.percentile(0.5) == 0.0
        hist = Histogram("h")
        for _ in range(10):
            hist.record(1)
        assert hist.percentile(0.99) == 1.0

    def test_percentiles_split_bimodal_tail(self):
        hist = Histogram("h")
        for _ in range(90):
            hist.record(1)
        for _ in range(10):
            hist.record(1024)
        assert hist.percentile(0.50) == 1.0
        assert 1024 <= hist.percentile(0.99) <= 2047
        summary = hist.percentiles()
        assert summary["p50"] <= summary["p95"] <= summary["p99"]

    def test_percentile_edge_cases(self):
        hist = Histogram("h")
        assert hist.percentile(0.5) == 0.0  # empty
        with pytest.raises(ValueError):
            hist.percentile(0.0)
        with pytest.raises(ValueError):
            hist.percentile(1.5)

    def test_snapshot_surfaces_percentiles(self):
        registry = MetricsRegistry()
        hist = registry.histogram("mem.load_latency")
        for value in (4, 8, 16, 32, 64):
            hist.record(value)
        snap = registry.snapshot()["histograms"]["mem.load_latency"]
        assert {"p50", "p95", "p99"} <= set(snap)
        assert snap["p50"] <= snap["p95"] <= snap["p99"] <= 127

    def test_cross_type_name_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(SimulationError):
            registry.histogram("x")

    def test_snapshot_is_deterministic_and_serializable(self):
        import json

        registry = MetricsRegistry()
        registry.counter("z").inc(2)
        registry.counter("a").inc()
        registry.histogram("h").record(3)
        snap = registry.snapshot()
        assert list(snap["counters"]) == ["a", "z"]  # sorted
        assert json.loads(json.dumps(snap)) == snap
        assert snap["histograms"]["h"]["count"] == 1


# -- SimStats ----------------------------------------------------------------


class TestSimStats:
    def test_sync_from_registry(self):
        registry = MetricsRegistry()
        registry.counter("sim.commits").inc(9)
        registry.counter("sim.tasks_activated").inc(4)
        stats = SimStats().sync_from(registry)
        assert stats.commits == 9
        assert stats.tasks_activated == 4
        assert stats.squashes == 0  # unregistered counters default to 0

    def test_merge(self):
        a = SimStats(cycles=10, commits=3, total_stages=8,
                     per_stage_active={"s": 2}, per_stage_stalls={"s": 1})
        b = SimStats(cycles=5, commits=2, total_stages=6,
                     per_stage_active={"s": 1, "t": 4},
                     per_stage_stalls={"t": 2})
        merged = a.merge(b)
        assert merged.cycles == 15
        assert merged.commits == 5
        assert merged.total_stages == 8  # max, not sum
        assert merged.per_stage_active == {"s": 3, "t": 4}
        assert merged.per_stage_stalls == {"s": 1, "t": 2}
        # Inputs untouched.
        assert a.commits == 3 and b.per_stage_active == {"s": 1, "t": 4}


# -- schedule tracer satellites ----------------------------------------------


class TestScheduleTracer:
    def test_timeline_cycle_zero_activity_renders(self):
        tracer = ScheduleTracer()
        tracer.record(0, "stage")
        rendered = tracer.timeline()
        assert rendered != "(no activity recorded)"
        assert "stage" in rendered

    def test_timeline_empty_still_reports_no_activity(self):
        assert ScheduleTracer().timeline() == "(no activity recorded)"

    def test_from_events_matches_direct_recording(self):
        obs = Observability(trace_capacity=1 << 20)
        legacy = ScheduleTracer(max_cycles=1 << 30)
        sim = AcceleratorSim(_spec(), platform=HARP, tracer=legacy, obs=obs)
        sim.run()
        ported = ScheduleTracer.from_events(
            obs.tracer.events(), max_cycles=1 << 30
        )
        assert dict(ported.activity) == dict(legacy.activity)
        assert ported.last_cycle == legacy.last_cycle


# -- zero cost when disabled --------------------------------------------------


class TestZeroCost:
    def test_observed_run_bit_identical_to_plain(self):
        plain = AcceleratorSim(_spec(), platform=HARP).run()
        obs = Observability()
        observed = AcceleratorSim(_spec(), platform=HARP, obs=obs).run()
        assert observed.cycles == plain.cycles
        assert observed.stats.commits == plain.stats.commits
        assert observed.stats.per_stage_active == plain.stats.per_stage_active
        assert observed.stats.per_stage_stalls == plain.stats.per_stage_stalls
        assert plain.obs is None and observed.obs is obs
        assert plain.metrics is not None  # counters exist even unobserved


# -- per-stage stats consistency ----------------------------------------------


class TestPerStageStats:
    def test_active_and_stall_maps_cover_every_stage(self):
        sim = AcceleratorSim(_spec(), platform=HARP)
        result = sim.run()
        names = set(_stage_names(sim))
        assert set(result.stats.per_stage_active) == names
        assert set(result.stats.per_stage_stalls) == names
        assert sum(result.stats.per_stage_active.values()) == \
            result.stats.active_stage_cycles

    def test_profiler_agrees_with_stage_counters(self):
        obs = Observability()
        sim = AcceleratorSim(_spec(), platform=HARP, obs=obs)
        result = sim.run()
        accounting = assert_conserved(obs, _stage_names(sim), result.cycles)
        for name, active in result.stats.per_stage_active.items():
            assert accounting[name]["active"] == active


# -- conservation property ----------------------------------------------------


class TestConservation:
    @pytest.mark.parametrize("app", ["SPEC-BFS", "SPEC-SSSP"])
    def test_fault_free(self, app):
        obs = Observability()
        sim = AcceleratorSim(_spec(app), platform=HARP, obs=obs)
        result = sim.run()
        assert_conserved(obs, _stage_names(sim), result.cycles)

    def test_under_timing_faults(self):
        # Timing-only perturbations (latency spike + bank stall) change
        # the stall mix without tripping recovery.
        plan = FaultPlan([
            FaultEvent(FaultKind.QPI_LATENCY, 100, duration=800,
                       magnitude=40),
            FaultEvent(FaultKind.BANK_STALL, 300, duration=500, bank=0),
        ])
        obs = Observability()
        sim = AcceleratorSim(_spec(), platform=HARP, faults=plan, obs=obs)
        result = sim.run()
        assert_conserved(obs, _stage_names(sim), result.cycles)

    def test_ring_eviction_does_not_break_accounting(self):
        # The profiler is an online sink: accounting stays exact even
        # when the ring buffer keeps only a small tail of the events.
        obs = Observability(trace_capacity=128)
        sim = AcceleratorSim(_spec(), platform=HARP, obs=obs)
        result = sim.run()
        assert obs.tracer.evicted > 0
        assert len(obs.tracer.ring) <= 128
        assert_conserved(obs, _stage_names(sim), result.cycles)

    def test_rollback_does_not_double_count(self):
        # A total lane outage forces invariant-triggered rollbacks; the
        # observability bundle is checkpointed with the simulator, so
        # replayed cycles appear exactly once in the accounting.
        config = SimConfig()
        plan = FaultPlan([FaultEvent(
            FaultKind.LANE_FAIL, 400, duration=1 << 30,
            magnitude=config.rule_lanes,
        )])
        obs = Observability()
        res = run_resilient(
            _spec(), platform=HARP, config=config, faults=plan,
            check_interval=256, checkpoint_interval=1000, obs=obs,
        )
        assert res.rollbacks >= 1
        final = res.result.obs
        assert final is not None
        names = list(res.result.stats.per_stage_active)
        assert_conserved(final, names, res.result.cycles)
        snap = final.registry.snapshot()
        assert snap["counters"].get("recovery.rollbacks", 0) >= 1
        assert snap["counters"].get("recovery.checkpoints", 0) >= 1


# -- report rendering ---------------------------------------------------------


class TestStallReport:
    def test_rows_and_elision(self):
        obs = Observability()
        sim = AcceleratorSim(_spec(), platform=HARP, obs=obs)
        result = sim.run()
        names = _stage_names(sim)
        accounting = obs.profiler.accounting(names, result.cycles)
        report = format_stall_report(accounting, result.cycles, top=3)
        lines = report.splitlines()
        assert f"over {result.cycles} cycles" in lines[0]
        assert lines[1].split()[0] == "stage"
        assert "elided" in lines[-1]
        # 3 rows + header + title + elision note.
        assert len(lines) == 6
        for line in lines[2:5]:
            cells = line.split()
            assert int(cells[-1]) == result.cycles
            assert sum(int(c) for c in cells[1:-1]) == result.cycles
