"""Tests for the simulator's error paths: deadlock detection, cycle
budget exhaustion, configuration validation, and memory-model misuse."""

import pytest

from repro.apps.registry import build_app
from repro.errors import DeadlockError, SimulationError, SpecificationError
from repro.eval.platforms import HARP, HarpPlatform
from repro.sim.accelerator import AcceleratorSim, SimConfig
from repro.sim.faults import FaultEvent, FaultKind, FaultPlan
from repro.sim.memory import MemorySystem
from repro.substrates.graphs import random_graph

GRAPH = random_graph(40, 90, seed=111)


class TestDeadlockDetection:
    def test_wedged_engine_deadlocks_with_stuck_report(self):
        # Without the invariant checker, a permanent full-lane outage
        # must still be caught by the deadlock window.
        config = SimConfig(deadlock_window=2000)
        plan = FaultPlan([FaultEvent(
            FaultKind.LANE_FAIL, 64, duration=1 << 30,
            magnitude=config.rule_lanes,
        )])
        sim = AcceleratorSim(build_app("SPEC-BFS", GRAPH, 0),
                             platform=HARP, config=config, faults=plan)
        with pytest.raises(DeadlockError) as excinfo:
            sim.run()
        # Progress stops shortly after the fault window opens at 64.
        assert excinfo.value.cycle <= 64 + 2 * 2000
        assert "deadlocked at cycle" in str(excinfo.value)
        # The stuck report names the blocked stages.
        assert "queued=" in str(excinfo.value)

    def test_max_cycles_budget(self):
        config = SimConfig(max_cycles=100)
        sim = AcceleratorSim(build_app("SPEC-BFS", GRAPH, 0),
                             platform=HARP, config=config)
        with pytest.raises(SimulationError, match="exceeded 100"):
            sim.run()


class TestConfigValidation:
    @pytest.mark.parametrize("name", [
        "station_depth", "fifo_depth", "queue_banks",
        "queue_depth_per_bank", "rule_lanes",
        "minimum_broadcast_interval", "max_cycles", "deadlock_window",
    ])
    def test_non_positive_rejected(self, name):
        with pytest.raises(SpecificationError, match=name):
            SimConfig(**{name: 0})
        with pytest.raises(SpecificationError, match=name):
            SimConfig(**{name: -4})

    def test_non_integer_rejected(self):
        with pytest.raises(SpecificationError, match="rule_lanes"):
            SimConfig(rule_lanes=2.5)

    def test_defaults_valid(self):
        SimConfig()  # must not raise


class TestMemoryMisuse:
    def test_bad_cache_geometry(self):
        with pytest.raises(SimulationError):
            MemorySystem(HarpPlatform(cache_bytes=1000))

    def test_done_at_unknown_request(self):
        memory = MemorySystem(HARP)
        with pytest.raises(SimulationError, match="unknown memory request"):
            memory.done_at(12345)

    def test_retire_unknown_request(self):
        memory = MemorySystem(HARP)
        with pytest.raises(SimulationError,
                           match="retire of unknown memory request"):
            memory.retire(12345)

    def test_double_retire_rejected(self):
        memory = MemorySystem(HARP)
        req = memory.issue_load(0, 0)
        memory.retire(req)
        with pytest.raises(SimulationError, match=str(req)):
            memory.retire(req)
