"""Tests for the schedule tracer and the next-line prefetcher."""

import pytest

from repro.apps.registry import build_app
from repro.eval.platforms import EVAL_HARP, HARP, HarpPlatform
from repro.sim.accelerator import AcceleratorSim, SimConfig
from repro.sim.memory import MemorySystem
from repro.sim.trace import ScheduleTracer
from repro.substrates.graphs import random_graph

GRAPH = random_graph(60, 180, seed=31)


class TestScheduleTracer:
    def test_records_activity(self):
        tracer = ScheduleTracer()
        tracer.record(0, "a")
        tracer.record(5, "a")
        tracer.record(3, "b")
        assert tracer.active_window("a") == (0, 5)
        assert tracer.active_window("b") == (3, 3)
        assert tracer.active_window("ghost") is None

    def test_limit_respected(self):
        tracer = ScheduleTracer(max_cycles=10)
        tracer.record(50, "a")
        assert tracer.active_window("a") is None

    def test_overlap(self):
        tracer = ScheduleTracer()
        for c in range(0, 10):
            tracer.record(c, "a")
        for c in range(5, 15):
            tracer.record(c, "b")
        assert tracer.overlap_cycles("a", "b") == 5
        assert tracer.overlap_cycles("a", "ghost") == 0

    def test_concurrency(self):
        tracer = ScheduleTracer()
        tracer.record(2, "a")
        tracer.record(2, "b")
        tracer.record(3, "a")
        assert tracer.concurrency(2) == 2
        assert tracer.peak_concurrency() == 2

    def test_timeline_render(self):
        tracer = ScheduleTracer()
        for c in range(20):
            tracer.record(c, "stage")
        text = tracer.timeline(width=10)
        assert "stage" in text
        assert "#" in text

    def test_empty_timeline(self):
        assert "no activity" in ScheduleTracer().timeline()

    def test_simulation_produces_dataflow_overlap(self):
        """Figure 2(b): stages of the BFS pipeline overlap in time."""
        tracer = ScheduleTracer(max_cycles=100_000)
        spec = build_app("SPEC-BFS", GRAPH, 0)
        sim = AcceleratorSim(spec, platform=HARP, config=SimConfig(),
                             tracer=tracer)
        sim.run()
        visit_expand = next(
            name for name in tracer.activity if "expand" in name
        )
        update_store = next(
            name for name in tracer.activity if "store" in name
        )
        assert tracer.overlap_cycles(visit_expand, update_store) > 0
        assert tracer.peak_concurrency() >= 4


class TestPrefetcher:
    def test_prefetch_counts(self):
        memory = MemorySystem(HarpPlatform(), prefetch=True)
        memory.issue_load(0, 0)        # miss -> prefetches line 1
        assert memory.stats.prefetches == 1
        req = memory.issue_load(0, 64)  # prefetched line: hit
        assert memory.stats.load_hits == 1

    def test_prefetch_off_by_default(self):
        memory = MemorySystem(HarpPlatform())
        memory.issue_load(0, 0)
        memory.issue_load(0, 64)
        assert memory.stats.prefetches == 0
        assert memory.stats.load_hits == 0

    def test_prefetch_consumes_bandwidth(self):
        plain = MemorySystem(HarpPlatform())
        pref = MemorySystem(HarpPlatform(), prefetch=True)
        plain.issue_load(0, 0)
        pref.issue_load(0, 0)
        assert pref.stats.bytes_transferred > plain.stats.bytes_transferred

    def test_prefetch_helps_sequential_workload(self):
        """BFS levels are laid out sequentially; prefetch raises hit rate."""
        def run(prefetch: bool) -> float:
            spec = build_app("SPEC-BFS", GRAPH, 0)
            sim = AcceleratorSim(
                spec, platform=EVAL_HARP,
                config=SimConfig(prefetch=prefetch),
            )
            sim.run()
            stats = sim.memory.stats
            return stats.load_hits / stats.loads

        assert run(True) > run(False)
