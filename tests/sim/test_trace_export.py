"""Tests for the Chrome trace export and the observability CLI surface."""

import json

import pytest

from repro.apps.registry import build_app
from repro.cli import main
from repro.eval.platforms import HARP
from repro.obs import EventTracer, Observability, StallReason, TraceEventKind
from repro.sim.accelerator import AcceleratorSim
from repro.substrates.graphs import random_graph

GRAPH = random_graph(200, 600, seed=7)


def _spec():
    return build_app("SPEC-BFS", GRAPH, 0)


def _observed_run(capacity=1 << 20):
    obs = Observability(trace_capacity=capacity)
    result = AcceleratorSim(_spec(), platform=HARP, obs=obs).run()
    return obs, result


# -- trace document schema ----------------------------------------------------


class TestChromeTraceSchema:
    def test_unit_export_covers_every_phase(self):
        tracer = EventTracer(capacity=64)
        tracer.emit(0, TraceEventKind.STAGE_FIRE, "s.alu")
        tracer.emit(1, TraceEventKind.STAGE_STALL, "s.alu",
                    reason=StallReason.MEMORY)
        tracer.emit(1, TraceEventKind.TOKEN_ENQ, "bfs",
                    data={"occupancy": 3})
        tracer.emit(2, TraceEventKind.RULE_PROMISE, "visit",
                    data={"occupancy": 1})
        tracer.emit(2, TraceEventKind.MEM_MISS, "load",
                    data={"addr": 64, "latency": 40})
        tracer.emit(3, TraceEventKind.CHECKPOINT, "checkpoint",
                    data={"count": 1})
        doc = tracer.chrome_trace()
        events = doc["traceEvents"]
        phases = {e["ph"] for e in events}
        assert phases == {"M", "X", "C", "i"}
        assert all("ph" in e and "pid" in e for e in events)
        assert all("ts" in e for e in events if e["ph"] != "M")
        slices = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in slices} == {"active", "stall:memory"}
        assert all(e["dur"] == 1 for e in slices)
        # Both slices share the per-stage thread track.
        assert len({e["tid"] for e in slices}) == 1
        names = [e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "process_name"]
        assert "pipelines" in names and "checkpoint/rollback" in names

    def test_full_run_round_trips_through_json(self, tmp_path):
        obs, result = _observed_run()
        path = tmp_path / "trace.json"
        obs.tracer.write_chrome_trace(path)
        loaded = json.loads(path.read_text(encoding="utf-8"))
        assert loaded == obs.tracer.chrome_trace()
        assert loaded["otherData"]["emitted"] == obs.tracer.emitted
        assert loaded["otherData"]["evicted"] == 0
        timestamps = [e["ts"] for e in loaded["traceEvents"]
                      if e["ph"] != "M"]
        assert timestamps and 0 <= min(timestamps)
        assert max(timestamps) < result.cycles

    def test_ring_bounds_trace_size(self):
        obs, _ = _observed_run(capacity=256)
        assert obs.tracer.evicted > 0
        doc = obs.tracer.chrome_trace()
        data_events = [e for e in doc["traceEvents"] if e["ph"] != "M"]
        # Each retained ring entry yields one or two trace events (a
        # primary plus at most one derived counter sample), so the ring
        # still bounds the trace size.
        assert 256 <= len(data_events) <= 2 * 256
        assert doc["otherData"]["evicted"] == obs.tracer.evicted


class TestCounterTracks:
    def test_rule_lane_counter_follows_promise_and_return(self):
        tracer = EventTracer(capacity=64)
        tracer.emit(0, TraceEventKind.RULE_PROMISE, "visit",
                    data={"occupancy": 1})
        tracer.emit(1, TraceEventKind.RULE_PROMISE, "visit",
                    data={"occupancy": 2})
        tracer.emit(5, TraceEventKind.RULE_RETURN, "visit",
                    data={"verdict": "clause", "occupancy": 1})
        events = tracer.chrome_trace()["traceEvents"]
        lanes = [e for e in events if e["name"] == "lanes:visit"]
        assert [e["args"]["lanes"] for e in lanes] == [1, 2, 1]
        assert all(e["ph"] == "C" for e in lanes)

    def test_qpi_outstanding_counter_reconstructed(self):
        tracer = EventTracer(capacity=64)
        tracer.emit(0, TraceEventKind.MEM_ISSUE, "load",
                    data={"bytes": 64})
        tracer.emit(1, TraceEventKind.MEM_ISSUE, "load",
                    data={"bytes": 64})
        tracer.emit(2, TraceEventKind.MEM_COMPLETE, "load")
        tracer.emit(3, TraceEventKind.MEM_COMPLETE, "load")
        # A complete with no issue in the ring (evicted) must clamp at 0.
        tracer.emit(4, TraceEventKind.MEM_COMPLETE, "load")
        events = tracer.chrome_trace()["traceEvents"]
        outstanding = [e["args"]["outstanding"] for e in events
                       if e["name"] == "qpi:outstanding"]
        assert outstanding == [1, 2, 1, 0, 0]

    def test_full_run_emits_all_three_counter_families(self):
        obs, _ = _observed_run()
        events = obs.tracer.chrome_trace()["traceEvents"]
        counters = {e["name"] for e in events if e["ph"] == "C"}
        assert any(name.startswith("queue:") for name in counters)
        assert any(name.startswith("lanes:") for name in counters)
        assert "qpi:outstanding" in counters
        # Occupancy counters never go negative.
        for event in events:
            if event["ph"] == "C":
                assert min(event["args"].values()) >= 0


class TestDeterminism:
    def test_two_seeded_runs_emit_byte_identical_traces(self):
        first_obs, first = _observed_run()
        second_obs, second = _observed_run()
        assert first.cycles == second.cycles
        blob_a = json.dumps(first_obs.tracer.chrome_trace(), sort_keys=False)
        blob_b = json.dumps(second_obs.tracer.chrome_trace(), sort_keys=False)
        assert blob_a == blob_b
        assert first_obs.registry.snapshot() == second_obs.registry.snapshot()


# -- CLI ----------------------------------------------------------------------


class TestObservabilityCli:
    def test_profile_command(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        rc = main([
            "profile", "SPEC-CC", "--top", "4",
            "--trace-out", str(trace), "--metrics-out", str(metrics),
            "--store", str(tmp_path / "store"),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "VERIFIED" in out
        assert "stall attribution over" in out
        assert "each row sums to total" in out
        doc = json.loads(trace.read_text(encoding="utf-8"))
        assert all("ph" in e and "pid" in e for e in doc["traceEvents"])
        snap = json.loads(metrics.read_text(encoding="utf-8"))
        assert snap["counters"]["sim.commits"] > 0
        assert "mem.load_latency" in snap["histograms"]

    def test_profile_rows_sum_to_total(self, capsys):
        assert main(["profile", "SPEC-CC", "--top", "5",
                     "--no-store"]) == 0
        lines = capsys.readouterr().out.splitlines()
        header_idx = next(i for i, line in enumerate(lines)
                          if line.startswith("stall attribution over"))
        total_cycles = int(lines[header_idx].split()[3])
        rows = [line for line in lines[header_idx + 2:]
                if line and not line.startswith("...")]
        assert rows
        for row in rows:
            cells = row.split()
            assert int(cells[-1]) == total_cycles
            assert sum(int(c) for c in cells[1:-1]) == total_cycles

    def test_simulate_trace_out(self, tmp_path, capsys):
        trace = tmp_path / "sim-trace.json"
        metrics = tmp_path / "sim-metrics.json"
        rc = main([
            "simulate", "SPEC-CC",
            "--trace-out", str(trace), "--metrics-out", str(metrics),
            "--store", str(tmp_path / "store"),
        ])
        assert rc == 0
        assert "VERIFIED" in capsys.readouterr().out
        doc = json.loads(trace.read_text(encoding="utf-8"))
        assert doc["traceEvents"]
        assert json.loads(metrics.read_text(encoding="utf-8"))["counters"]

    def test_fault_campaign_metrics_out(self, tmp_path, capsys):
        out_path = tmp_path / "campaign.json"
        rc = main([
            "fault-campaign", "--apps", "SPEC-BFS", "--trials", "1",
            "--seed", "7", "--metrics-out", str(out_path),
            "--store", str(tmp_path / "store"),
        ])
        assert rc == 0
        assert "VERIFIED" in capsys.readouterr().out
        payload = json.loads(out_path.read_text(encoding="utf-8"))
        assert payload["seed"] == 7
        assert len(payload["runs"]) == 1
        run = payload["runs"][0]
        assert run["app"] == "SPEC-BFS"
        assert run["metrics"]["counters"]["sim.commits"] > 0
        assert payload["aggregate"]["cycles"] == run["cycles"]
