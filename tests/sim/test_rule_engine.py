"""Tests for the simulated rule engines (lanes, event bus, otherwise)."""

from repro.core.eca import compile_rule
from repro.core.events import Event, EventKind
from repro.core.indexing import TaskIndex
from repro.sim.rule_engine import RuleEngineSim

RULE = compile_rule("""
rule conflict(my_index, addr):
    on reach t.commit if event.addr == addr and event.index < my_index
        do return false
    otherwise return true
""")


def _engine(lanes=2):
    return RuleEngineSim("conflict", RULE, lanes)


def _commit_event(addr, index):
    return Event(EventKind.REACH, "t", "commit", TaskIndex(index),
                 {"addr": addr})


class TestAllocation:
    def test_alloc_until_full(self):
        engine = _engine(lanes=2)
        assert engine.try_alloc(TaskIndex((0,)), {"addr": 1}, 10) is not None
        assert engine.try_alloc(TaskIndex((1,)), {"addr": 2}, 11) is not None
        assert engine.try_alloc(TaskIndex((2,)), {"addr": 3}, 12) is None
        assert engine.stats.alloc_stalls == 1

    def test_release_frees_lane(self):
        engine = _engine(lanes=1)
        inst = engine.try_alloc(TaskIndex((0,)), {"addr": 1}, 10)
        engine.release(inst)
        assert engine.occupancy == 0
        assert engine.try_alloc(TaskIndex((1,)), {"addr": 2}, 11) is not None

    def test_peak_occupancy_tracked(self):
        engine = _engine(lanes=4)
        for i in range(3):
            engine.try_alloc(TaskIndex((i,)), {"addr": i}, i)
        assert engine.stats.peak_occupancy == 3


class TestEventDelivery:
    def test_conflicting_event_fires_clause(self):
        engine = _engine()
        inst = engine.try_alloc(TaskIndex((5,)), {"addr": 64}, 10)
        engine.deliver(_commit_event(64, (2,)), source_uid=99)
        assert inst.value is False

    def test_own_events_skipped(self):
        engine = _engine()
        inst = engine.try_alloc(TaskIndex((5,)), {"addr": 64}, 10)
        engine.deliver(_commit_event(64, (2,)), source_uid=10)
        assert inst.value is None

    def test_non_matching_event_ignored(self):
        engine = _engine()
        inst = engine.try_alloc(TaskIndex((5,)), {"addr": 64}, 10)
        engine.deliver(_commit_event(128, (2,)), source_uid=99)
        assert inst.value is None


class TestOtherwise:
    def test_minimum_awaited_lane_fires(self):
        engine = _engine(lanes=4)
        early = engine.try_alloc(TaskIndex((1,)), {"addr": 1}, 10)
        late = engine.try_alloc(TaskIndex((5,)), {"addr": 2}, 11)
        engine.mark_awaited(early)
        engine.mark_awaited(late)
        engine.broadcast_minimum(engine.min_allocated_index())
        assert early.value is True
        assert late.value is None

    def test_unawaited_lane_never_fires(self):
        engine = _engine(lanes=4)
        inst = engine.try_alloc(TaskIndex((1,)), {"addr": 1}, 10)
        engine.broadcast_minimum(engine.min_allocated_index())
        assert inst.value is None

    def test_unawaited_min_blocks_later_waiters(self):
        engine = _engine(lanes=4)
        engine.try_alloc(TaskIndex((1,)), {"addr": 1}, 10)  # not awaited
        late = engine.try_alloc(TaskIndex((5,)), {"addr": 2}, 11)
        engine.mark_awaited(late)
        engine.broadcast_minimum(engine.min_allocated_index())
        assert late.value is None

    def test_tied_minimum_all_fire(self):
        engine = _engine(lanes=4)
        a = engine.try_alloc(TaskIndex((3,)), {"addr": 1}, 10)
        b = engine.try_alloc(TaskIndex((3,)), {"addr": 2}, 11)
        engine.mark_awaited(a)
        engine.mark_awaited(b)
        engine.broadcast_minimum(engine.min_allocated_index())
        assert a.value is True and b.value is True

    def test_global_minimum_earlier_than_lanes_blocks(self):
        engine = _engine(lanes=4)
        inst = engine.try_alloc(TaskIndex((5,)), {"addr": 1}, 10)
        engine.mark_awaited(inst)
        engine.broadcast_minimum(TaskIndex((2,)))  # an earlier live task
        assert inst.value is None

    def test_verdict_statistics(self):
        engine = _engine(lanes=4)
        inst = engine.try_alloc(TaskIndex((1,)), {"addr": 1}, 10)
        engine.mark_awaited(inst)
        engine.broadcast_minimum(None)
        engine.release(inst)
        assert engine.stats.otherwise_fired == 1
        clause = engine.try_alloc(TaskIndex((9,)), {"addr": 64}, 11)
        engine.deliver(_commit_event(64, (0,)), source_uid=55)
        engine.release(clause)
        assert engine.stats.clause_fired == 1

    def test_min_allocated_index_empty(self):
        assert _engine().min_allocated_index() is None
