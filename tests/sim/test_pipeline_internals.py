"""Tests for pipeline construction internals and stage wiring."""

import pytest

from repro.apps.registry import build_app
from repro.eval.platforms import HARP
from repro.sim.accelerator import AcceleratorSim, SimConfig
from repro.sim.pipeline import PipelineInstance, SourceStage
from repro.sim.stages import RendezvousStage, SwitchStage
from repro.substrates.graphs import random_graph

GRAPH = random_graph(40, 90, seed=111)


@pytest.fixture()
def bfs_sim():
    spec = build_app("SPEC-BFS", GRAPH, 0)
    return AcceleratorSim(spec, platform=HARP, config=SimConfig(),
                          replicas={"visit": 2, "update": 3})


class TestConstruction:
    def test_replica_counts(self, bfs_sim):
        names = [p.name for p in bfs_sim.pipelines]
        assert names.count("visit[0]") == 1
        assert sum(1 for n in names if n.startswith("visit")) == 2
        assert sum(1 for n in names if n.startswith("update")) == 3

    def test_first_stage_is_source(self, bfs_sim):
        for pipeline in bfs_sim.pipelines:
            assert isinstance(pipeline.stages[0], SourceStage)

    def test_chain_wiring(self, bfs_sim):
        """Every non-terminal main-chain stage feeds the next one's fifo."""
        pipeline = bfs_sim.pipelines[0]
        source = pipeline.stages[0]
        assert source.output is pipeline.stages[1].input

    def test_terminal_stage_retires(self, bfs_sim):
        for pipeline in bfs_sim.pipelines:
            terminals = [s for s in pipeline.stages if s.output is None]
            assert terminals, pipeline.name
            assert any(s.on_retire in ("commit", "end") for s in terminals)

    def test_stage_count_matches_program(self, bfs_sim):
        for pipeline in bfs_sim.pipelines:
            assert pipeline.stage_count() == len(pipeline.stages)

    def test_total_stages_statistic(self, bfs_sim):
        assert bfs_sim.stats.total_stages == sum(
            p.stage_count() for p in bfs_sim.pipelines
        )

    def test_mst_abort_epilogue_wired(self):
        spec = build_app("SPEC-MST", GRAPH)
        sim = AcceleratorSim(spec, platform=HARP, config=SimConfig())
        rendezvous = [
            s for p in sim.pipelines for s in p.stages
            if isinstance(s, RendezvousStage)
        ]
        assert rendezvous
        assert all(s.epilogue_entry is not None for s in rendezvous)

    def test_guard_without_epilogue_has_no_entry(self, bfs_sim):
        switches = [
            s for p in bfs_sim.pipelines for s in p.stages
            if isinstance(s, SwitchStage)
        ]
        assert switches
        # SPEC-BFS's guard drops tokens outright (no else ops).
        assert all(s.epilogue_entry is None for s in switches)


class TestDiagnostics:
    def test_stuck_report_empty_before_run(self, bfs_sim):
        for pipeline in bfs_sim.pipelines:
            assert pipeline.stuck_report() == []

    def test_busy_false_when_idle(self, bfs_sim):
        for pipeline in bfs_sim.pipelines:
            assert not pipeline.busy()

    def test_run_drains_everything(self, bfs_sim):
        bfs_sim.run()
        for pipeline in bfs_sim.pipelines:
            assert not pipeline.busy()
            assert pipeline.stuck_report() == []
        assert all(len(q) == 0 for q in bfs_sim.queues.values())
        assert bfs_sim.tracker.count == 0
