"""Checkpoint/rollback recovery crossed with the parallel sweep path.

The unit tests in ``test_checkpoint.py`` prove the resilient driver
rolls back under a full lane outage; the CLI determinism test proves
``--jobs N`` is invisible for campaigns that happen not to fail.  This
module closes the gap between them: a campaign whose trials *genuinely
roll back* must still be byte-identical between ``--jobs 1`` and
``--jobs 4`` — same stdout, same runstore records, same rollback
counts — because recovery runs entirely inside the worker.

Generated fault plans at small scale are absorbed without tripping an
invariant, so the campaign's plan generator is monkeypatched to the
same permanent full-lane outage the unit tests use.  The runner's pool
uses the fork start method, so workers inherit the patch.
"""

import json

import pytest

from repro.cli import main
from repro.sim import faults as faults_mod
from repro.sim.faults import FaultEvent, FaultKind, FaultPlan

HOST_DEPENDENT = {"timestamp", "wall_seconds"}


@pytest.fixture
def lane_outage_plans(monkeypatch):
    """Every generated fault plan becomes a permanent full-lane outage
    (disarmed after its first strike by the resilient driver), which
    reliably deadlocks the accelerator and forces one rollback."""

    def outage(cls, seed, horizon, *, engines=(), task_sets=(), banks=4,
               rule_lanes=32, intensity=1.0):
        return FaultPlan([
            FaultEvent(FaultKind.LANE_FAIL, 400, duration=1 << 30,
                       magnitude=rule_lanes),
        ])

    monkeypatch.setattr(faults_mod.FaultPlan, "generate", classmethod(outage))


def campaign_argv(store, jobs: int) -> list[str]:
    return [
        "fault-campaign", "--seed", "3", "--trials", "2",
        "--apps", "SPEC-BFS",
        "--check-interval", "256", "--checkpoint-interval", "1000",
        "--store", str(store), "--no-cache", "--jobs", str(jobs),
    ]


def normalized_records(store) -> list[dict]:
    rows = []
    with open(store / "runs.jsonl", encoding="utf-8") as handle:
        for line in handle:
            record = json.loads(line)
            rows.append({k: v for k, v in record.items()
                         if k not in HOST_DEPENDENT})
    return rows


@pytest.mark.slow
def test_resilient_campaign_identical_across_jobs(
        tmp_path, capsys, lane_outage_plans):
    serial_store = tmp_path / "serial"
    parallel_store = tmp_path / "parallel"

    assert main(campaign_argv(serial_store, jobs=1)) == 0
    serial_out = capsys.readouterr().out
    assert main(campaign_argv(parallel_store, jobs=4)) == 0
    parallel_out = capsys.readouterr().out

    # The recovery machinery actually engaged: every trial rolled back
    # once, recovered from the liveness trip, and still verified.
    assert "rollbacks=1" in serial_out
    assert "recovered@" in serial_out
    assert "InvariantViolation" in serial_out
    assert "campaign: all runs VERIFIED" in serial_out
    assert "rollbacks=0" not in serial_out

    assert parallel_out == serial_out

    serial_records = normalized_records(serial_store)
    parallel_records = normalized_records(parallel_store)
    assert serial_records == parallel_records
    assert len(serial_records) == 2   # two trials appended, baseline not
    for record in serial_records:
        assert record["extra"]["rollbacks"] == 1


@pytest.mark.slow
def test_resilient_campaign_rollbacks_reach_runstore(
        tmp_path, capsys, lane_outage_plans):
    store = tmp_path / "store"
    assert main(campaign_argv(store, jobs=2)) == 0
    capsys.readouterr()
    assert main(["runs", "--store", str(store), "list"]) == 0
    listing = capsys.readouterr().out
    assert "fault-campaign" in listing
