"""Tests for simulator FIFOs and the live-index tracker."""

import pytest
from hypothesis import given, strategies as st

from repro.core.indexing import TaskIndex
from repro.errors import SimulationError
from repro.sim.fifo import Fifo
from repro.sim.live import LiveIndexTracker


class TestFifo:
    def test_push_invisible_until_commit(self):
        fifo = Fifo(capacity=4)
        fifo.push("a")
        assert fifo.visible == 0
        assert len(fifo) == 1
        fifo.commit()
        assert fifo.visible == 1
        assert fifo.pop() == "a"

    def test_capacity_counts_staged(self):
        fifo = Fifo(capacity=2)
        fifo.push("a")
        fifo.push("b")
        assert not fifo.can_push()
        with pytest.raises(SimulationError):
            fifo.push("c")

    def test_fifo_order(self):
        fifo = Fifo(capacity=8)
        for item in "abc":
            fifo.push(item)
        fifo.commit()
        assert [fifo.pop() for _ in range(3)] == ["a", "b", "c"]

    def test_pop_then_push_same_cycle(self):
        fifo = Fifo(capacity=1)
        fifo.push("a")
        fifo.commit()
        assert fifo.pop() == "a"
        assert fifo.can_push()
        fifo.push("b")
        fifo.commit()
        assert fifo.peek() == "b"

    def test_invalid_capacity(self):
        with pytest.raises(SimulationError):
            Fifo(capacity=0)

    def test_drain_shows_everything(self):
        fifo = Fifo(capacity=4)
        fifo.push("a")
        fifo.commit()
        fifo.push("b")
        assert fifo.drain() == ["a", "b"]


@given(st.lists(st.sampled_from(["push", "pop", "commit"]), max_size=80))
def test_fifo_behaves_like_reference_queue(ops):
    """Property: Fifo == staged deque model under arbitrary op sequences."""
    fifo = Fifo(capacity=5)
    visible: list = []
    staged: list = []
    counter = 0
    for op in ops:
        if op == "push":
            if len(visible) + len(staged) < 5:
                fifo.push(counter)
                staged.append(counter)
                counter += 1
        elif op == "pop":
            if visible:
                assert fifo.pop() == visible.pop(0)
        else:
            fifo.commit()
            visible.extend(staged)
            staged.clear()
    assert fifo.visible == len(visible)
    assert len(fifo) == len(visible) + len(staged)


class TestLiveIndexTracker:
    def test_minimum_of_registered(self):
        tracker = LiveIndexTracker()
        tracker.register(TaskIndex((5,)))
        tracker.register(TaskIndex((2,)))
        assert tracker.minimum() == TaskIndex((2,))

    def test_release_moves_minimum(self):
        tracker = LiveIndexTracker()
        h_min = tracker.register(TaskIndex((1,)))
        tracker.register(TaskIndex((7,)))
        tracker.release(h_min)
        assert tracker.minimum() == TaskIndex((7,))

    def test_refcount(self):
        tracker = LiveIndexTracker()
        handle = tracker.register(TaskIndex((3,)))
        tracker.retain(handle, 2)
        tracker.release(handle)
        tracker.release(handle)
        assert tracker.minimum() == TaskIndex((3,))
        tracker.release(handle)
        assert tracker.minimum() is None

    def test_double_release_rejected(self):
        tracker = LiveIndexTracker()
        handle = tracker.register(TaskIndex((0,)))
        tracker.release(handle)
        with pytest.raises(SimulationError):
            tracker.release(handle)

    def test_horizon_caps_minimum(self):
        tracker = LiveIndexTracker()
        tracker.register(TaskIndex((9,)))
        tracker.horizon = TaskIndex((4,))
        assert tracker.minimum() == TaskIndex((4,))
        tracker.horizon = None
        assert tracker.minimum() == TaskIndex((9,))

    def test_horizon_alone(self):
        tracker = LiveIndexTracker()
        tracker.horizon = TaskIndex((2,))
        assert tracker.minimum() == TaskIndex((2,))

    def test_empty_minimum_none(self):
        assert LiveIndexTracker().minimum() is None


@given(st.lists(st.tuples(st.booleans(), st.integers(0, 20)), max_size=60))
def test_tracker_minimum_matches_multiset(ops):
    """Property: tracker minimum == min of a reference multiset."""
    tracker = LiveIndexTracker()
    reference: dict[int, TaskIndex] = {}
    for is_register, value in ops:
        if is_register or not reference:
            handle = tracker.register(TaskIndex((value,)))
            reference[handle] = TaskIndex((value,))
        else:
            handle = next(iter(reference))
            tracker.release(handle)
            del reference[handle]
        expected = min(reference.values()) if reference else None
        assert tracker.minimum() == expected
