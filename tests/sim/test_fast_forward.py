"""Property-based tests for the fast-forward wake-up scheduler.

The legality argument in ``sim/fastpath.py`` rests on two invariants
that these tests check mechanically, over randomized workloads,
platforms, microarchitectural shapes, and machine states:

* **never past a wake-up** — the clock never jumps beyond the earliest
  ``next_event_cycle`` any component declared at jump time;
* **never backwards** — within an execution the clock is monotone, and
  after a rollback restores an earlier cycle, jumps resume from the
  restored clock without ever re-crossing it backwards.

The scheduler keeps an optional jump journal (``sim.ff.log``) recording
every ``(from_cycle, to_cycle, wake)`` it commits; the properties are
asserted over that journal.  Component-level ``next_event_cycle``
contracts (strictly-greater-than-now or the ``NEVER`` sentinel) are
checked both at randomly chosen mid-run machine states and directly.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.registry import build_app
from repro.errors import ReproError
from repro.eval.platforms import EVAL_HARP
from repro.sim.accelerator import AcceleratorSim, SimConfig
from repro.sim.checkpoint import CheckpointManager
from repro.sim.fastpath import NEVER
from repro.sim.faults import FaultEvent, FaultKind, FaultPlan
from repro.substrates.graphs import random_graph

SETTINGS = settings(derandomize=True, deadline=None, max_examples=10)

APPS = st.sampled_from(["SPEC-BFS", "SPEC-SSSP", "SPEC-CC"])
SCALES = st.sampled_from([0.05, 0.25, 1.0])


def _sim(app: str, graph_seed: int, scale: float, **config_kwargs):
    spec = build_app(app, random_graph(60, 180, seed=graph_seed))
    return AcceleratorSim(
        spec,
        platform=EVAL_HARP.scaled(scale),
        config=SimConfig(fast_forward=True, **config_kwargs),
    )


def _assert_journal_sound(log, *, floor: int = 0) -> None:
    """The core scheduler invariants, over one journal segment."""
    clock = floor
    for frm, to, wake in log:
        # Jumps are committed in program order and never move the clock
        # backwards — including relative to a rollback's restored cycle.
        assert frm >= clock
        assert to > frm
        # The clock never jumps past the earliest declared wake-up.
        assert to <= wake
        clock = to


# -- full-run journal properties --------------------------------------------


@SETTINGS
@given(app=APPS, graph_seed=st.integers(0, 5), scale=SCALES,
       banks=st.sampled_from([2, 4]))
def test_jump_journal_respects_wakeups(app, graph_seed, scale, banks):
    sim = _sim(app, graph_seed, scale, queue_banks=banks)
    sim.ff.log = []
    result = sim.run()
    _assert_journal_sound(sim.ff.log)
    # The journal is exhaustive: one entry per committed jump, and the
    # skipped-cycle telemetry is exactly the sum of the jump widths.
    assert len(sim.ff.log) == result.ff_jumps
    assert sum(to - frm for frm, to, _ in sim.ff.log) \
        == result.ff_cycles_skipped
    # Every cycle is either stepped densely or accounted to one jump.
    assert result.ff_cycles_skipped <= result.cycles


@SETTINGS
@given(app=APPS, graph_seed=st.integers(0, 5), steps=st.integers(1, 400),
       scale=SCALES)
def test_next_wakeup_contract_at_arbitrary_states(app, graph_seed, steps,
                                                  scale):
    """At any reachable machine state, the aggregated wake-up is strictly
    in the future and is exactly the minimum over every source."""
    sim = _sim(app, graph_seed, scale)
    sim.host.start()
    sim._started = True
    for _ in range(steps):
        if not sim._work_remaining():
            break
        sim.step()
    now = sim.cycle - 1
    wake = sim.ff.next_wakeup(now)
    assert wake > now

    candidates = [NEVER]
    if sim._event_heap:
        candidates.append(sim._event_heap[0][0])
    candidates.append(sim.memory.next_event_cycle(now))
    candidates.extend(s.next_event_cycle(now) for s in sim._timed_stages)
    candidates.append(sim.host.next_event_cycle(now))
    candidates.append(sim.ff._next_broadcast_cycle(now))
    for when in candidates:
        assert when == NEVER or when > now, \
            f"component declared a non-future wake-up {when} at now={now}"
    assert wake == min(candidates)


# -- rollback ----------------------------------------------------------------


def test_jump_journal_monotone_across_rollback():
    """Force a liveness failure (total lane outage), roll back, resume:
    the restored clock is earlier, but post-rollback jumps start at or
    after it and stay monotone — the clock never re-crosses backwards."""
    spec = build_app("SPEC-BFS", random_graph(200, 600, seed=7))
    config = SimConfig(fast_forward=True, deadlock_window=3000)
    faults = FaultPlan([
        FaultEvent(FaultKind.LANE_FAIL, 400, duration=1 << 30,
                   magnitude=config.rule_lanes),
    ])
    sim = AcceleratorSim(
        spec, platform=EVAL_HARP.scaled(0.2), config=config,
        faults=faults, check_interval=256,
    )
    manager = CheckpointManager(sim, interval=1000)
    sim.checkpoints = manager
    sim.ff.log = []
    try:
        sim.run()
    except ReproError:
        pass
    else:  # pragma: no cover - the outage must trip liveness
        raise AssertionError("fault plan failed to force a failure")
    failure_cycle = sim.cycle
    _assert_journal_sound(sim.ff.log)

    faults.disarm_fired()
    revived = manager.rollback()
    assert revived.cycle < failure_cycle
    # The journal rolled back with the scheduler (it lives inside the
    # checkpointed object graph): no entry crosses the restored cycle.
    _assert_journal_sound(revived.ff.log)
    assert all(to <= revived.cycle for _, to, _ in revived.ff.log)

    restored_cycle = revived.cycle
    revived.ff.log = []
    result = revived.run()
    assert result.cycles > restored_cycle
    _assert_journal_sound(revived.ff.log, floor=restored_cycle)


# -- direct component contracts ---------------------------------------------


@SETTINGS
@given(seed=st.integers(0, 50), now=st.integers(0, 100_000))
def test_fault_plan_wakeup_is_strictly_future(seed, now):
    plan = FaultPlan.generate(
        seed, 40_000, engines=("relax",), task_sets=("frontier",),
    )
    plan.advance(min(now, 39_999))
    assert plan.next_event_cycle(now) > now


@SETTINGS
@given(now=st.integers(0, 1 << 40), interval=st.integers(1, 100_000))
def test_periodic_wakeups_are_strictly_future(now, interval):
    """The boundary arithmetic shared by the invariant checker and the
    minimum-broadcast wake-up: next multiple of ``interval`` after
    ``now`` is strictly greater and at most one interval away."""
    boundary = ((now // interval) + 1) * interval
    assert now < boundary <= now + interval
    assert boundary % interval == 0
