"""Tests for the opt-in TokenLedger: zero-cost when absent, observation
(never behaviour) when attached, and identical across engines and
checkpoint/rollback."""

import pytest

from repro.apps.registry import build_app
from repro.eval.platforms import EVAL_HARP, HARP
from repro.sim.accelerator import AcceleratorSim, SimConfig
from repro.sim.checkpoint import revive, snapshot
from repro.sim.ledger import (
    BORN,
    FORK,
    ISSUE,
    READY,
    RELEASE,
    RETIRE,
    TokenLedger,
)
from repro.substrates.graphs import random_graph

GRAPH = random_graph(200, 600, seed=7)


def _spec(app="SPEC-BFS"):
    return build_app(app, GRAPH, 0) if app == "SPEC-BFS" \
        else build_app(app, GRAPH)


def _run(app="SPEC-BFS", platform=HARP, *, engine="dense", ledger=False):
    return AcceleratorSim(
        _spec(app), platform=platform,
        config=SimConfig(engine=engine),
        ledger=TokenLedger() if ledger else None,
    ).run()


class TestZeroCost:
    @pytest.mark.parametrize("app", ["SPEC-BFS", "SPEC-SSSP"])
    def test_recording_never_perturbs_the_simulation(self, app):
        off = _run(app)
        on = _run(app, ledger=True)
        assert on.cycles == off.cycles
        assert on.stats.commits == off.stats.commits
        assert on.stats.squashes == off.stats.squashes

    def test_result_carries_no_ledger_when_disabled(self):
        assert _run().ledger is None
        assert _run(ledger=True).ledger is not None


class TestLedgerContent:
    def test_every_token_born_and_terminated_in_order(self):
        ledger = _run(ledger=True).ledger
        assert ledger.tokens
        for uid, events in ledger.tokens.items():
            kinds = [event[0] for event in events]
            # A token enters the pipeline freshly minted or forked off a
            # parent, and leaves retired (commit/squash/drop) or
            # released into its children at a forking stage.
            assert kinds[0] in (BORN, FORK), uid
            assert kinds[-1] in (RETIRE, RELEASE), uid
            cycles = [event[1] for event in events]
            assert cycles == sorted(cycles), uid

    def test_issue_ready_pairs_nest(self):
        ledger = _run(platform=EVAL_HARP.scaled(0.2), ledger=True).ledger
        paired = 0
        for events in ledger.tokens.values():
            pending = None
            for event in events:
                if event[0] == ISSUE:
                    assert pending is None
                    pending = event[1]
                elif event[0] == READY:
                    assert pending is not None
                    assert event[1] >= pending
                    pending = None
                    paired += 1
        assert paired  # a starved channel must produce waits

    def test_final_retirement_is_the_last_cycle_event(self):
        result = _run(ledger=True)
        cycle, uid = result.ledger.final
        assert uid in result.ledger.tokens
        assert cycle <= result.cycles
        assert max(events[-1][1]
                   for events in result.ledger.tokens.values()) == cycle

    def test_wasted_speculation_counts_squashed_tokens(self):
        ledger = _run(ledger=True).ledger
        waste = ledger.wasted_speculation()
        doomed = sum(
            1 for events in ledger.tokens.values()
            if events[-1][0] == RETIRE and events[-1][2] in
            ("squash", "drop")
        )
        assert waste["tokens"] == doomed
        assert waste["cycles"] >= waste["tokens"]


class TestEngineInvariance:
    @pytest.mark.parametrize("app", ["SPEC-BFS", "SPEC-SSSP"])
    def test_ledger_identical_across_engines(self, app):
        docs = {
            engine: _run(app, EVAL_HARP.scaled(0.2), engine=engine,
                         ledger=True).ledger.to_dict()
            for engine in ("dense", "fast", "event")
        }
        assert docs["fast"] == docs["dense"]
        assert docs["event"] == docs["dense"]


class TestCheckpointSafety:
    def test_ledger_survives_snapshot_and_rollback(self):
        reference = _run(ledger=True).ledger.to_dict()

        sim = AcceleratorSim(_spec(), platform=HARP,
                             ledger=TokenLedger())
        sim.host.start()
        sim._started = True
        for _ in range(500):
            sim.step()
        frozen = snapshot(sim)
        # Finish the original run, then roll back and finish again:
        # both completions must record the exact same history.
        assert sim.run().ledger.to_dict() == reference
        assert revive(frozen).run().ledger.to_dict() == reference

    def test_snapshot_is_isolated_from_the_live_ledger(self):
        sim = AcceleratorSim(_spec(), platform=HARP,
                             ledger=TokenLedger())
        sim.host.start()
        sim._started = True
        for _ in range(300):
            sim.step()
        frozen = snapshot(sim)
        before = len(sim.ledger.tokens)
        sim.run()
        assert len(sim.ledger.tokens) > before
        assert len(revive(frozen).ledger.tokens) == before
