"""Golden-trace regression: fixed-seed runs must reproduce exactly.

Each fixture in ``tests/golden/`` pins one scenario's final cycle count,
full stats digest, and (stall-filtered) trace profile.  Every engine —
dense, scan-based fast-forward, and the priority-queue event engine —
is checked against the *same* fixture, so this suite doubles as a
standing cycle-exactness pin for both skipping engines, across graph
(BFS/SSSP) and host-fed (COOR-LU/DMR) applications.

On an intentional timing/statistics change, regenerate the fixtures via
``python scripts/update_goldens.py`` and commit the JSON diff.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.eval.goldens import SCENARIOS, collect

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent.parent / "golden"

REGEN = ("regenerate via `python scripts/update_goldens.py` and commit "
         "the diff if the change is intentional")


def _load(name: str) -> dict:
    path = GOLDEN_DIR / f"{name}.json"
    assert path.exists(), f"missing golden fixture {path}; {REGEN}"
    return json.loads(path.read_text(encoding="utf-8"))


@pytest.mark.parametrize("engine", ["dense", "fast", "event"])
@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_golden_run_matches_fixture(name: str, engine: str) -> None:
    expected = _load(name)
    actual = collect(name, engine=engine)
    assert actual["cycles"] == expected["cycles"], (
        f"golden {name!r} ({engine}) cycle count drifted: "
        f"{actual['cycles']} != {expected['cycles']}; {REGEN}"
    )
    for section in ("stats", "trace"):
        assert actual[section] == expected[section], (
            f"golden {name!r} ({engine}) {section} drifted; {REGEN}"
        )
    assert actual == expected, f"golden {name!r} ({engine}) drifted; {REGEN}"


def test_fixtures_cover_every_scenario() -> None:
    """No stale or missing fixtures relative to the scenario table."""
    on_disk = {p.stem for p in GOLDEN_DIR.glob("*.json")}
    assert on_disk == set(SCENARIOS), (
        f"fixtures {sorted(on_disk)} != scenarios {sorted(SCENARIOS)}; "
        f"{REGEN}"
    )
