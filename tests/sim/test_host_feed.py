"""Tests for the host-side task injection (DMR/LU feed)."""

import numpy as np
import pytest

from repro.core.eca import compile_rule
from repro.core.kernel import Kernel, Store
from repro.core.spec import ApplicationSpec, HostFeed, make_task_sets
from repro.core.state import MemorySpace
from repro.eval.platforms import HARP
from repro.sim.accelerator import AcceleratorSim, SimConfig

OK = compile_rule("rule ok():\n  otherwise return true")


def _hosted_spec(n_tasks=12, batch=4, bytes_per_task=64, priority=False):
    def make_state():
        state = MemorySpace()
        state.add_array("mem", np.zeros(64, dtype=np.int64))
        return state

    def batches(state):
        for start in range(0, n_tasks, batch):
            yield [
                ("t", {"x": i, "seq": i})
                for i in range(start, min(start + batch, n_tasks))
            ]

    return ApplicationSpec(
        name="hosted",
        mode="coordinative",
        task_sets=make_task_sets([("t", "for-each", ("x", "seq"))]),
        kernels={"t": Kernel("t", [
            Store("mem", lambda env: env["x"], lambda env: 1),
        ])},
        rules={"ok": OK},
        make_state=make_state,
        initial_tasks=lambda state: [],
        verify=lambda state: None,
        host_feed=HostFeed(batches, bytes_per_task=bytes_per_task),
        priority_fields={"t": "seq"} if priority else {},
    )


def _run(spec, platform=HARP):
    sim = AcceleratorSim(spec, platform=platform, config=SimConfig())
    result = sim.run()
    return sim, result


class TestHostFeed:
    def test_all_tasks_injected(self):
        sim, result = _run(_hosted_spec(n_tasks=12, batch=4))
        assert result.stats.tasks_activated == 12
        assert sim.host.batches_sent == 3
        assert all(sim.state.load("mem", i) == 1 for i in range(12))

    def test_feed_paced_by_bandwidth(self):
        slow_spec = _hosted_spec(n_tasks=16, batch=2, bytes_per_task=4096)
        fast_spec = _hosted_spec(n_tasks=16, batch=2, bytes_per_task=4096)
        _, slow = _run(slow_spec, platform=HARP)
        _, fast = _run(fast_spec, platform=HARP.scaled(8.0))
        assert fast.cycles < slow.cycles

    def test_host_exhausts(self):
        sim, _ = _run(_hosted_spec(n_tasks=4, batch=4))
        assert sim.host.exhausted
        assert not sim.host.busy()

    def test_priority_horizon_tracks_next_batch(self):
        spec = _hosted_spec(n_tasks=8, batch=4, priority=True)
        sim = AcceleratorSim(spec, platform=HARP, config=SimConfig())
        sim.host.start()
        # First batch pending: the horizon is the first un-injected task.
        assert sim.tracker.horizon is not None
        assert sim.tracker.horizon.positions == (0,)
        # A fresh simulation runs to completion and clears the horizon.
        sim2 = AcceleratorSim(_hosted_spec(n_tasks=8, batch=4,
                                           priority=True),
                              platform=HARP, config=SimConfig())
        result = sim2.run()
        assert sim2.tracker.horizon is None
        assert result.stats.tasks_activated == 8

    def test_counter_indexed_feed_has_no_horizon(self):
        spec = _hosted_spec(n_tasks=8, batch=4, priority=False)
        sim = AcceleratorSim(spec, platform=HARP, config=SimConfig())
        sim.host.start()
        assert sim.tracker.horizon is None
