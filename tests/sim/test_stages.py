"""Stage-level behaviour tests, driven through micro-specifications.

Each test builds a minimal one-task-set application exercising one stage
kind, runs it through the cycle simulator, and checks both the functional
result and the timing-relevant behaviour (stalls, stations, steering).
"""

import numpy as np
import pytest

from repro.core.eca import compile_rule
from repro.core.kernel import (
    AllocRule,
    Alu,
    Call,
    Const,
    Enqueue,
    Expand,
    Guard,
    Kernel,
    Label,
    Load,
    Rendezvous,
    Store,
)
from repro.core.spec import ApplicationSpec, make_task_sets
from repro.core.state import MemorySpace
from repro.eval.platforms import HARP
from repro.sim.accelerator import AcceleratorSim, SimConfig

ALWAYS_TRUE = compile_rule("rule ok():\n  otherwise return true")
ALWAYS_FALSE = compile_rule("rule nope():\n  otherwise return false")
IMMEDIATE = compile_rule("rule now():\n  otherwise immediately return true")


def micro_spec(ops, initial=None, rules=None, fields=("x",), verify=None,
               **spec_kwargs):
    def make_state():
        state = MemorySpace()
        state.add_array("mem", np.zeros(64, dtype=np.int64))
        return state

    return ApplicationSpec(
        name="micro",
        mode="speculative",
        task_sets=make_task_sets([("t", "for-each", fields)]),
        kernels={"t": Kernel("t", list(ops))},
        rules=rules or {"ok": ALWAYS_TRUE},
        make_state=make_state,
        initial_tasks=lambda state: initial or [("t", {"x": 1})],
        verify=verify or (lambda state: None),
        **spec_kwargs,
    )


def run_micro(spec, config=None, replicas=None):
    sim = AcceleratorSim(
        spec, platform=HARP, config=config or SimConfig(),
        replicas=replicas or {"t": 1},
    )
    result = sim.run()
    return sim, result


class TestBasicStages:
    def test_const_alu_store(self):
        spec = micro_spec([
            Const("c", 7),
            Alu("y", lambda env: env["c"] * env["x"]),
            Store("mem", lambda env: 0, lambda env: env["y"]),
        ])
        sim, result = run_micro(spec)
        assert sim.state.load("mem", 0) == 7
        assert result.stats.commits == 1

    def test_load_roundtrip(self):
        spec = micro_spec([
            Store("mem", lambda env: 3, lambda env: 55),
            Load("v", "mem", lambda env: 3),
            Store("mem", lambda env: 4, lambda env: env["v"] + 1),
        ])
        sim, _ = run_micro(spec)
        assert sim.state.load("mem", 4) == 56

    def test_load_pays_cache_latency(self):
        spec = micro_spec([Load("v", "mem", lambda env: 0)])
        _, result = run_micro(spec)
        assert result.cycles >= HARP.cache_hit_cycles

    def test_label_broadcasts_event(self):
        spec = micro_spec([Label("ping", payload=("x",))])
        sim, result = run_micro(spec)
        assert result.stats.events_delivered >= 2  # activate + ping

    def test_combining_store_in_sim(self):
        spec = micro_spec(
            [
                Store("mem", lambda env: 0, lambda env: env["x"],
                      combine=max, dst="old"),
            ],
            initial=[("t", {"x": 5}), ("t", {"x": 3})],
        )
        sim, _ = run_micro(spec)
        assert sim.state.load("mem", 0) == 5


class TestGuardSteering:
    def test_guard_drop(self):
        spec = micro_spec([
            Guard(lambda env: False),
            Store("mem", lambda env: 0, lambda env: 1),
        ])
        sim, result = run_micro(spec)
        assert sim.state.load("mem", 0) == 0
        assert result.stats.guard_drops == 1
        assert result.stats.commits == 0

    def test_guard_epilogue(self):
        spec = micro_spec([
            Guard(lambda env: False, else_ops=(
                Store("mem", lambda env: 1, lambda env: 42),
            )),
            Store("mem", lambda env: 0, lambda env: 1),
        ])
        sim, _ = run_micro(spec)
        assert sim.state.load("mem", 1) == 42
        assert sim.state.load("mem", 0) == 0


class TestExpand:
    def test_children_all_emitted(self):
        spec = micro_spec([
            Expand(lambda env, state: [{"i": k} for k in range(5)]),
            Store("mem", lambda env: env["i"], lambda env: 1),
        ])
        sim, _ = run_micro(spec)
        assert [sim.state.load("mem", i) for i in range(5)] == [1] * 5

    def test_empty_expand_retires(self):
        spec = micro_spec([
            Expand(lambda env, state: []),
            Store("mem", lambda env: 0, lambda env: 1),
        ])
        sim, result = run_micro(spec)
        assert sim.state.load("mem", 0) == 0
        assert result.stats.commits == 1  # counted at the expand

    def test_expand_traffic_throttles(self):
        fast = micro_spec([
            Expand(lambda env, state: [{"i": 0}]),
        ])
        slow = micro_spec([
            Expand(lambda env, state: [{"i": 0}],
                   traffic=lambda env, state: 70000),
        ])
        _, fast_result = run_micro(fast)
        _, slow_result = run_micro(slow)
        assert slow_result.cycles > fast_result.cycles + 100

    def test_overlapped_expansions(self):
        """Multiple parents stream rows concurrently."""
        spec = micro_spec(
            [
                Expand(lambda env, state: [{"i": env["x"]}],
                       traffic=lambda env, state: 3500),
                Store("mem", lambda env: env["i"], lambda env: 1),
            ],
            initial=[("t", {"x": i}) for i in range(8)],
        )
        _, result = run_micro(spec)
        # Eight 100-cycle transfers overlap their 40-cycle latencies; a
        # fully serialized version would take > 8 * 140 cycles.
        assert result.cycles < 8 * 140


class TestRuleStages:
    def test_rendezvous_commit(self):
        spec = micro_spec([
            AllocRule("ok", lambda env: {}),
            Rendezvous("rv"),
            Store("mem", lambda env: 0, lambda env: 1),
        ])
        sim, result = run_micro(spec)
        assert sim.state.load("mem", 0) == 1
        assert result.stats.squashes == 0

    def test_rendezvous_squash(self):
        spec = micro_spec(
            [
                AllocRule("nope", lambda env: {}),
                Rendezvous("rv"),
                Store("mem", lambda env: 0, lambda env: 1),
            ],
            rules={"nope": ALWAYS_FALSE},
        )
        sim, result = run_micro(spec)
        assert sim.state.load("mem", 0) == 0
        assert result.stats.squashes == 1

    def test_rendezvous_abort_epilogue(self):
        spec = micro_spec(
            [
                AllocRule("nope", lambda env: {}),
                Rendezvous("rv", abort_ops=(
                    Store("mem", lambda env: 2, lambda env: 9),
                )),
            ],
            rules={"nope": ALWAYS_FALSE},
        )
        sim, _ = run_micro(spec)
        assert sim.state.load("mem", 2) == 9

    def test_immediate_rule_fast_path(self):
        gated = micro_spec(
            [AllocRule("ok", lambda env: {}), Rendezvous("rv")],
            rules={"ok": ALWAYS_TRUE},
        )
        immediate = micro_spec(
            [AllocRule("now", lambda env: {}), Rendezvous("rv")],
            rules={"now": IMMEDIATE},
        )
        _, gated_result = run_micro(
            gated, config=SimConfig(minimum_broadcast_interval=16)
        )
        _, immediate_result = run_micro(
            immediate, config=SimConfig(minimum_broadcast_interval=16)
        )
        assert immediate_result.cycles < gated_result.cycles

    def test_lane_stall_counted(self):
        spec = micro_spec(
            [
                AllocRule("ok", lambda env: {}),
                Call(lambda env, state: None, cycles=30),
                Rendezvous("rv"),
            ],
            initial=[("t", {"x": i}) for i in range(6)],
        )
        sim, _ = run_micro(spec, config=SimConfig(rule_lanes=1))
        engine = sim.engines["ok"]
        assert engine.stats.alloc_stalls > 0
        assert engine.stats.peak_occupancy == 1


class TestEnqueueAndCall:
    def test_enqueue_chains(self):
        spec = micro_spec([
            Store("mem", lambda env: env["x"], lambda env: 1),
            Enqueue("t", lambda env: {"x": env["x"] + 1},
                    when=lambda env: env["x"] < 4),
        ])
        sim, result = run_micro(spec)
        assert [sim.state.load("mem", i) for i in range(1, 5)] == [1] * 4
        assert result.stats.tasks_activated == 4

    def test_call_latency_shapes_time(self):
        fast = micro_spec([Call(lambda env, state: None, cycles=1)])
        slow = micro_spec([Call(lambda env, state: None, cycles=500)])
        _, fast_result = run_micro(fast)
        _, slow_result = run_micro(slow)
        assert slow_result.cycles >= fast_result.cycles + 450

    def test_call_event_label(self):
        watcher = compile_rule("""
rule w():
    on reach t.done do return false
    otherwise return true
""")
        spec = micro_spec(
            [
                AllocRule("w", lambda env: {}),
                Call(lambda env, state: None, cycles=2, label="done"),
                Rendezvous("rv"),
            ],
            initial=[("t", {"x": 1}), ("t", {"x": 2})],
            rules={"w": watcher},
        )
        _, result = run_micro(spec, replicas={"t": 2})
        # One task's completion event squashes the other's rule.
        assert result.stats.squashes >= 1

    def test_call_completes_task_releases_order(self):
        spec = micro_spec(
            [Call(lambda env, state: None, cycles=40, completes_task=True)],
            initial=[("t", {"x": i}) for i in range(4)],
        )
        sim, result = run_micro(spec)
        assert result.stats.commits == 4


class TestDeterminism:
    def test_same_seed_same_cycles(self):
        def run_once():
            spec = micro_spec([
                Expand(lambda env, state: [{"i": k} for k in range(3)]),
                Store("mem", lambda env: env["i"], lambda env: 1),
                Enqueue("t", lambda env: {"x": env["x"] + 1},
                        when=lambda env: env["x"] < 6),
            ])
            _, result = run_micro(spec)
            return result.cycles

        assert run_once() == run_once()
