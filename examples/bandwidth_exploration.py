"""Explore the QPI-bandwidth sensitivity of one benchmark (Figure 10).

The paper's headline systems insight is that the generated accelerators are
bandwidth-bounded: speedup and pipeline utilization scale with the QPI
bandwidth, except where speculation floods the pipelines with doomed tasks
(SPEC-BFS).  This script sweeps the bandwidth multiplier for any benchmark
and prints the speedup/utilization/squash series.

Run:  python examples/bandwidth_exploration.py [APP] [SCALE]
      APP in {SPEC-BFS, COOR-BFS, SPEC-SSSP, SPEC-MST, SPEC-DMR, COOR-LU}
"""

import sys

from repro.eval.experiments import run_figure10
from repro.eval.workloads import APP_NAMES


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "COOR-LU"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.6
    if app not in APP_NAMES:
        raise SystemExit(f"unknown app {app!r}; choose from {APP_NAMES}")

    print(f"sweeping QPI bandwidth for {app} (workload scale {scale})")
    series = run_figure10(scale=scale, apps=(app,))[app]
    print(f"{'bandwidth':>10s} {'seconds':>12s} {'speedup':>8s} "
          f"{'utilization':>12s} {'squash':>7s}")
    for point in series.points:
        print(f"{point.bandwidth_scale:9.0f}x {point.seconds:12.3e} "
              f"{point.speedup_over_baseline:7.2f}x "
              f"{point.utilization:11.3f} "
              f"{point.squash_fraction:7.3f}")

    speedups = series.speedups()
    if speedups[-1] > 3.0:
        print("-> strongly bandwidth-bound (host-fed linear regime)")
    elif speedups[-1] > 1.1:
        print("-> moderately bandwidth-bound")
    else:
        print("-> saturated: extra bandwidth feeds speculative flooding "
              "or an ordering-bound commit chain")


if __name__ == "__main__":
    main()
