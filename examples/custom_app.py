"""Writing a *new* irregular application against the public API.

The paper's framework is problem-independent: any irregular application
expressible as well-ordered task sets plus ECA rules can be synthesized.
This example builds one from scratch — connected components by minimum-
label propagation — and runs it through the same flow as the built-in
benchmarks: software debug runtime, BDFG checks, and the cycle-level
accelerator simulation, all verified against an oracle.

Run:  python examples/custom_app.py
"""

from typing import Any

import numpy as np

from repro.core.eca import compile_rule
from repro.core.kernel import (
    AllocRule,
    Alu,
    Enqueue,
    Expand,
    Guard,
    Kernel,
    Load,
    Rendezvous,
    Store,
)
from repro.core.runtime import AggressiveRuntime
from repro.core.spec import ApplicationSpec, make_task_sets
from repro.core.state import MemorySpace
from repro.errors import SimulationError
from repro.ir import check_graph, lower_spec
from repro.sim import simulate_app
from repro.substrates.graphs import random_graph
from repro.substrates.graphs.algorithms import connected_components
from repro.substrates.graphs.csr import CSRGraph

# The rule: squash a propagation that can no longer improve its vertex —
# same speculative pattern as SPEC-SSSP, with an immediate (optimistic)
# rendezvous because the commit below is a combining-min store.
CC_RULE = """
rule label_conflict(my_index, addr, mylabel):
    on reach propagate.setLabel
        if event.addr == addr and event.value <= mylabel
        do return false
    otherwise immediately return true
"""


def connected_components_spec(graph: CSRGraph) -> ApplicationSpec:
    """Speculative min-label propagation over ``graph``."""
    oracle = connected_components(graph)

    def make_state() -> MemorySpace:
        state = MemorySpace()
        # Labels start at "unlabelled"; every vertex then proposes its own
        # id, and the component minimum percolates through the commits.
        sentinel = np.iinfo(np.int64).max
        state.add_array(
            "comp", np.full(graph.num_vertices, sentinel, dtype=np.int64),
            element_bytes=8,
        )
        state.add_object("graph", graph)
        return state

    def neighbors(env: dict[str, Any], state: MemorySpace):
        g: CSRGraph = state.object("graph")
        return [{"w": int(u)} for u in g.neighbors(env["vertex"])]

    def traffic(env: dict[str, Any], state: MemorySpace) -> int:
        g: CSRGraph = state.object("graph")
        return 16 + 8 * g.degree(env["vertex"])

    kernel = Kernel("propagate", [
        Alu("__addr__", lambda env: env["vertex"] * 8, reads=("vertex",)),
        AllocRule("label_conflict", lambda env: {
            "addr": env["__addr__"], "mylabel": env["label"]}),
        Load("cur", "comp", lambda env: env["vertex"]),
        Guard(lambda env: env["label"] < env["cur"]),
        Rendezvous("commit"),
        Store("comp", lambda env: env["vertex"], lambda env: env["label"],
              label="setLabel", combine=min, dst="old"),
        Expand(neighbors, traffic=traffic),
        Enqueue("propagate",
                lambda env: {"vertex": env["w"], "label": env["label"]},
                when=lambda env: env["label"] < env["old"]),
    ])

    def verify(state: MemorySpace) -> None:
        comp = np.asarray(state.region("comp").storage)
        # Labels are component-minimum vertex ids; compare partitions.
        for vertex in range(graph.num_vertices):
            same = comp == comp[vertex]
            oracle_same = oracle == oracle[vertex]
            if not np.array_equal(same, oracle_same):
                raise SimulationError(
                    f"component of vertex {vertex} is wrong"
                )

    def initial_tasks(state: MemorySpace):
        # Every vertex proposes its own id to its neighbours.
        return [
            ("propagate", {"vertex": v, "label": v})
            for v in range(graph.num_vertices)
        ]

    return ApplicationSpec(
        name="CUSTOM-CC",
        mode="speculative",
        task_sets=make_task_sets([
            ("propagate", "for-each", ("vertex", "label")),
        ]),
        kernels={"propagate": kernel},
        rules={"label_conflict": compile_rule(CC_RULE)},
        make_state=make_state,
        initial_tasks=initial_tasks,
        verify=verify,
        description="connected components by speculative label propagation",
    )


def main() -> None:
    graph = random_graph(150, 260, seed=3, connected=False)
    spec = connected_components_spec(graph)
    print(f"custom app: {spec.name} on {graph.num_vertices} vertices")

    stats = AggressiveRuntime(spec, workers=8).run()
    print(f"debug runtime: {stats.tasks_executed} tasks, "
          f"{stats.tasks_squashed} squashed — verified")

    ir = lower_spec(spec)
    check_graph(ir)
    print(f"BDFG checks pass ({len(ir.actors)} actors)")

    result = simulate_app(spec)
    print(f"accelerator: {result.cycles} cycles, utilization "
          f"{result.utilization * 100:.1f}%, squash "
          f"{result.squash_fraction * 100:.1f}% — verified")
    print("a brand-new irregular application, no hardware knowledge needed.")


if __name__ == "__main__":
    main()
