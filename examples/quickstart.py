"""Quickstart: specify, debug, synthesize, and simulate an irregular app.

This walks the full flow of the paper on SPEC-BFS:

1. build a specification (task sets + ECA rules) for a road-network graph;
2. run it on the *sequential* reference runtime (Definition 4.3) and on the
   aggressive multi-worker *debug* runtime (Section 4.4) — both verify
   against the textbook BFS oracle;
3. lower it to the Boolean Dataflow Graph IR and check it;
4. synthesize a datapath from the parameterized templates, with the
   heuristic tuner filling the FPGA;
5. run the cycle-level accelerator simulation on the HARP platform model
   and report cycles, utilization and squash statistics.

Run:  python examples/quickstart.py
"""

from repro.apps.bfs import spec_bfs
from repro.core.runtime import AggressiveRuntime, SequentialRuntime
from repro.eval.platforms import HARP
from repro.ir import check_graph, lower_spec
from repro.sim import simulate_app
from repro.synthesis.resources import estimate_datapath
from repro.synthesis.tuning import build_tuned_datapath
from repro.substrates.graphs import road_network


def main() -> None:
    graph = road_network(24, 16, seed=7)
    print(f"input: road network, {graph.num_vertices} vertices, "
          f"{graph.num_edges} directed edges")

    # 1. The specification: tasks + rules.
    spec = spec_bfs(graph, root=0)
    print(f"spec: {spec.name} — {spec.description}")
    for name, rule in spec.rules.items():
        print(f"  rule {name}: {len(rule.clauses)} ECA clause(s), "
              f"otherwise={'immediate' if rule.immediate else 'minimum'}")

    # 2. Software runtimes (both verify the result internally).
    seq_stats = SequentialRuntime(spec).run()
    print(f"sequential runtime: {seq_stats.tasks_executed} tasks, verified")
    agg_stats = AggressiveRuntime(spec, workers=8).run()
    print(f"aggressive runtime: {agg_stats.tasks_executed} tasks, "
          f"{agg_stats.tasks_squashed} squashed, verified")

    # 3. Lower to the dataflow IR.
    graph_ir = lower_spec(spec)
    check_graph(graph_ir)
    print(f"BDFG: {len(graph_ir.actors)} actors "
          f"({graph_ir.stats()})")

    # 4. Synthesize a datapath sized for the Stratix V.
    datapath = build_tuned_datapath(spec)
    estimate = estimate_datapath(datapath)
    usage = estimate.utilization()
    print(f"datapath: {datapath.total_pipelines} pipelines, rule engines "
          f"take {estimate.rule_engine_register_share * 100:.1f}% of "
          f"registers, device usage regs={usage['registers'] * 100:.0f}% "
          f"alms={usage['alms'] * 100:.0f}%")

    # 5. Cycle-level simulation on the HARP model (verifies the answer too).
    result = simulate_app(spec, platform=HARP)
    print(f"simulation: {result.cycles} cycles at 200 MHz = "
          f"{result.seconds * 1e6:.1f} us, pipeline utilization "
          f"{result.utilization * 100:.1f}%, squash fraction "
          f"{result.squash_fraction * 100:.1f}%, cache hit rate "
          f"{result.memory_hit_rate * 100:.0f}%")
    print("functional result verified against the BFS oracle — done.")


if __name__ == "__main__":
    main()
