"""Automatic design-space exploration (the paper's stated future work).

Section 8: "Another question for future work is how to automatically
choose parameters for templated components when generating structures on
FPGA.  With proper abstractions and automatic design space explorations,
developing hardware accelerator for irregular applications will be open to
software developers."

This example sweeps pipeline replicas x rule lanes x station depth for one
benchmark, simulates every configuration that fits the Stratix V, and
prints the Pareto frontier of performance versus register cost.

Run:  python examples/design_space_exploration.py [APP]
"""

import sys

from repro.cli import _default_spec
from repro.eval.platforms import EVAL_HARP
from repro.synthesis.dse import explore, format_frontier


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "SPEC-SSSP"

    def spec_builder():
        return _default_spec(app)

    print(f"exploring the design space of {app} "
          "(each point is a full, verified cycle-level simulation)")
    result = explore(
        spec_builder,
        replica_options=(1, 2, 4),
        lane_options=(16, 64),
        station_options=(8, 16),
        platform=EVAL_HARP,
    )
    print(format_frontier(result))
    best = result.best_performance()
    small = result.smallest()
    print(f"\nfastest: {best.label} ({best.cycles} cycles, "
          f"{best.registers} registers)")
    print(f"leanest: {small.label} ({small.cycles} cycles, "
          f"{small.registers} registers)")
    ratio = small.cycles / best.cycles
    print(f"spending {best.registers / small.registers:.1f}x the registers "
          f"buys {ratio:.2f}x the performance on this workload.")


if __name__ == "__main__":
    main()
