"""Figure 2: synthesized (barrier) vs handcrafted (dataflow) schedules.

Replays the motivational example of Section 2 on Figure 2(a)'s five-vertex
graph: the AOCL-style schedule alternates Visit and Update phases with
barriers and host round trips between them, while the framework's pipeline
overlaps them dataflow-style, forwarding pipeline state to avoid the
vertex-4 collision.  The script prints both schedule diagrams plus the
measured cycle counts.

Run:  python examples/schedule_comparison.py
"""

from repro.apps.bfs import spec_bfs
from repro.eval.platforms import HARP
from repro.hls_baseline.opencl_model import OpenClBfsModel
from repro.sim.accelerator import AcceleratorSim, SimConfig
from repro.sim.trace import ScheduleTracer
from repro.substrates.graphs import CSRGraph

# Figure 2(a): vertex 1 is the root; 1->2, 1->3, 2->4, 3->4, 4->5
# (0-indexed here: 0->1, 0->2, 1->3, 2->3, 3->4).
FIGURE2_GRAPH = CSRGraph(5, [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)],
                         directed=False)


def synthesized_schedule() -> list[str]:
    """The AOCL schedule: kernel phases separated by barriers."""
    diagram = []
    levels = [[0], [1, 2], [3], [4]]
    for level, frontier in enumerate(levels):
        names = ", ".join(f"v{v}" for v in frontier)
        diagram.append(f"t{2 * level}:   kernel1 visits  [{names}]")
        diagram.append(f"t{2 * level + 1}:   kernel2 updates [{names}]  "
                       "-- barrier + host round trip --")
    return diagram


def main() -> None:
    print("Figure 2(a) graph: 5 vertices, root v0")
    print()
    print("Synthesized (OpenCL) schedule — phases with barriers:")
    for line in synthesized_schedule():
        print(f"  {line}")
    opencl = OpenClBfsModel()
    print(f"  model: {opencl.level_count(FIGURE2_GRAPH, 0)} levels x "
          f"2 kernel launches = "
          f"{opencl.seconds(FIGURE2_GRAPH, 0) * 1e6:.0f} us "
          "(launch overhead dominates)")
    print()

    print("Handcrafted-style (framework) schedule — dataflow pipeline:")
    spec = spec_bfs(FIGURE2_GRAPH, root=0)
    tracer = ScheduleTracer(max_cycles=1000)
    sim = AcceleratorSim(spec, platform=HARP, config=SimConfig(),
                         tracer=tracer)
    result = sim.run()
    active_stages = [
        name for name in sorted(tracer.activity)
        if "[0]" in name  # first replica of each pipeline is enough
    ]
    print(tracer.timeline(width=64, stages=active_stages))
    print(f"  total: {result.cycles} cycles = "
          f"{result.seconds * 1e9:.0f} ns — no barriers, stages overlap; "
          "the v3 collision is squashed in-pipeline "
          f"({result.stats.squashes} squash, "
          f"{result.stats.guard_drops} guard drops)")
    print()
    ratio = opencl.seconds(FIGURE2_GRAPH, 0) / result.seconds
    print(f"even on 5 vertices the dataflow schedule wins {ratio:.0f}x — "
          "Table 1 is this gap at road-network scale.")


if __name__ == "__main__":
    main()
