"""EXP-R: regenerate the Section 6.2 structural comparison.

Paper: "Depending on applications rule engine takes 4.8~10% of total
registers in our design, most of which are consumed by the allocator and
event bus.  BRAMs and combinational logics are negligible when compared to
task pipelines."
"""

import pytest

from repro.eval.experiments import (
    PAPER_RULE_ENGINE_SHARE,
    run_resources,
)
from repro.eval.reporting import format_resources
from repro.eval.workloads import APP_NAMES

_RESULT_CACHE = {}


def _resources():
    if "r" not in _RESULT_CACHE:
        _RESULT_CACHE["r"] = run_resources(scale=0.5)
    return _RESULT_CACHE["r"]


def test_resources_report(benchmark, capsys):
    rows = benchmark.pedantic(_resources, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_resources(rows))
    assert set(rows) == set(APP_NAMES)


@pytest.mark.parametrize("app", APP_NAMES)
def test_rule_engine_share_in_paper_band(benchmark, app):
    lo, hi = PAPER_RULE_ENGINE_SHARE
    row = benchmark.pedantic(
        lambda: _resources()[app], rounds=1, iterations=1
    )
    share = row.rule_engine_register_share
    # Allow a small tolerance around the published 4.8-10% band.
    assert lo * 0.9 <= share <= hi * 1.1, (
        f"{app}: rule engines take {share * 100:.1f}% of registers, "
        f"outside {lo * 100:.0f}-{hi * 100:.0f}%"
    )


def test_designs_fit_the_stratix_v(benchmark):
    rows = benchmark.pedantic(_resources, rounds=1, iterations=1)
    for app, row in rows.items():
        assert row.register_utilization <= 1.0, app
        assert row.alm_utilization <= 1.0, app
        assert row.bram_utilization <= 1.0, app


def test_tuner_fills_the_device(benchmark):
    """The heuristic grows every design to several pipelines."""
    rows = benchmark.pedantic(_resources, rounds=1, iterations=1)
    for app, row in rows.items():
        assert row.pipelines >= 2, app
