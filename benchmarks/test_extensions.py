"""Benches for the extension systems built beyond the paper's evaluation.

* **Speculative vs coordinative work efficiency** (SPEC-SSSP vs the
  delta-stepping COOR-SSSP): Section 2.4's trade, quantified — coordination
  spends gate latency to avoid wasted speculative relaxations, which is the
  judicious-rule-choice lesson of Figure 10 in benchmark form.
* **Design-space exploration**: the Section 8 future work, exercised at
  benchmark scale: the frontier must contain both a fast/large and a
  lean/slow configuration.
"""

import pytest

from repro.apps.registry import build_app
from repro.eval.platforms import EVAL_HARP
from repro.sim import simulate_app
from repro.substrates.graphs import random_graph
from repro.synthesis.dse import explore

GRAPH = random_graph(300, 900, seed=91)


def test_speculation_vs_coordination_tradeoff(benchmark, capsys):
    def run_both():
        spec = simulate_app(build_app("SPEC-SSSP", GRAPH, 0),
                            platform=EVAL_HARP)
        coor = simulate_app(build_app("COOR-SSSP", GRAPH, 0),
                            platform=EVAL_HARP)
        return spec, coor

    spec, coor = benchmark.pedantic(run_both, rounds=1, iterations=1)
    with capsys.disabled():
        print(f"\nSPEC-SSSP: {spec.cycles} cycles, "
              f"{spec.stats.tasks_activated} tasks, "
              f"squash {spec.squash_fraction:.3f}")
        print(f"COOR-SSSP: {coor.cycles} cycles, "
              f"{coor.stats.tasks_activated} tasks, "
              f"squash {coor.squash_fraction:.3f}")
    # Coordination does less work ...
    assert coor.stats.tasks_activated < spec.stats.tasks_activated
    # ... and neither gets to skip verification (both ran it already).
    assert spec.cycles > 0 and coor.cycles > 0


def test_dse_frontier_shape(benchmark, capsys):
    small = random_graph(80, 240, seed=92)

    def run():
        return explore(
            lambda: build_app("SPEC-SSSP", small, 0),
            replica_options=(1, 4),
            lane_options=(16, 128),
            station_options=(8,),
            platform=EVAL_HARP,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    frontier = result.frontier
    with capsys.disabled():
        from repro.synthesis.dse import format_frontier

        print()
        print(format_frontier(result))
    assert len(result.points) == 4
    # The frontier spans a real trade: its fastest point uses more
    # registers than its leanest point, and is strictly faster.
    fastest = frontier[0]
    leanest = min(frontier, key=lambda p: p.registers)
    assert fastest.cycles <= leanest.cycles
    assert fastest.registers >= leanest.registers
