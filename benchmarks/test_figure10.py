"""EXP-F10: regenerate Figure 10 (the QPI-bandwidth-scaling emulator).

Paper shapes asserted here:

* in most cases speedup and utilization are positively correlated with the
  available bandwidth;
* the host-fed applications (SPEC-DMR, COOR-LU) show a *linear* speedup
  correlation;
* SPEC-BFS is the cautionary tale: "pipeline utilization scales linearly
  while speedup degrades with increasing bandwidth" — speculation floods
  the pipelines with tasks that get squashed or dropped;
* utilization rates rise with bandwidth for every benchmark, showing the
  abundant fine-grained pipeline parallelism of Section 6.3's last point.
"""

import pytest

from repro.eval.experiments import run_figure10
from repro.eval.reporting import format_figure10
from repro.eval.workloads import APP_NAMES

BANDWIDTHS = (1.0, 2.0, 4.0, 8.0)
_RESULT_CACHE = {}


def _figure10():
    if "r" not in _RESULT_CACHE:
        _RESULT_CACHE["r"] = run_figure10(
            scale=1.0, bandwidth_scales=BANDWIDTHS
        )
    return _RESULT_CACHE["r"]


def test_figure10_all_series(benchmark, capsys):
    result = benchmark.pedantic(_figure10, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_figure10(result))
    assert set(result) == set(APP_NAMES)
    for series in result.values():
        assert len(series.points) == len(BANDWIDTHS)


@pytest.mark.parametrize("app", APP_NAMES)
def test_figure10_utilization_rises_with_bandwidth(benchmark, app):
    series = benchmark.pedantic(
        lambda: _figure10()[app], rounds=1, iterations=1
    )
    utils = series.utilizations()
    assert utils[-1] >= utils[0] * 0.99, (
        f"{app}: utilization fell from {utils[0]:.3f} to {utils[-1]:.3f}"
    )


@pytest.mark.parametrize("app", ("SPEC-DMR", "COOR-LU"))
def test_figure10_host_fed_apps_scale_linearly(benchmark, app):
    """DMR and LU tasks come from the host, so speedup tracks bandwidth."""
    series = benchmark.pedantic(
        lambda: _figure10()[app], rounds=1, iterations=1
    )
    speedups = series.speedups()
    # Monotone and roughly proportional: 8x bandwidth gives >= 4x speedup.
    assert all(b >= a * 0.95 for a, b in zip(speedups, speedups[1:]))
    assert speedups[-1] >= 4.0


def test_figure10_spec_bfs_flooding_anomaly(benchmark):
    """SPEC-BFS: utilization keeps climbing while speedup saturates."""
    series = benchmark.pedantic(
        lambda: _figure10()["SPEC-BFS"], rounds=1, iterations=1
    )
    utils = series.utilizations()
    speedups = series.speedups()
    # Utilization clearly grows across the sweep ...
    assert utils[-1] > utils[0] * 1.1
    # ... while the speedup stays within a whisker of flat (the pipelines
    # fill with speculative tasks that are squashed or dropped).
    assert max(speedups) < 1.5
    util_gain = utils[-1] / utils[0]
    speedup_gain = speedups[-1] / speedups[0]
    assert util_gain > speedup_gain


@pytest.mark.parametrize("app", ("SPEC-SSSP", "SPEC-MST", "COOR-BFS"))
def test_figure10_speedup_positively_correlated(benchmark, app):
    series = benchmark.pedantic(
        lambda: _figure10()[app], rounds=1, iterations=1
    )
    speedups = series.speedups()
    assert speedups[-1] >= 1.05, (
        f"{app}: no bandwidth benefit at all ({speedups})"
    )
