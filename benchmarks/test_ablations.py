"""Ablation benches for the design choices DESIGN.md calls out.

* **Out-of-order load/rendezvous stations** (Section 5.2): the paper adopts
  dynamic dataflow so blocked tasks can be bypassed; disabling it should
  cost a large factor on a load-latency-exposed benchmark.
* **Rule-lane count**: AllocRule stalls its pipeline while the engine is
  full, so lanes gate issue throughput; the curve saturates once every
  token in the load shadow can hold a lane.
* **Otherwise scope**: commit order *is* correctness for Kruskal; scoping
  the otherwise escape to the engine's own lanes (fine for monotone
  commits) silently produces a wrong MST — the paper's "rules should be
  chosen judiciously" warning, demonstrated.
* **Minimum-broadcast interval**: the ordered-commit turnaround cost.
"""

import pytest

from repro.apps.registry import build_app
from repro.errors import SimulationError
from repro.eval.platforms import EVAL_HARP
from repro.sim import simulate_app
from repro.sim.accelerator import SimConfig
from repro.substrates.graphs import random_graph, rmat_graph

GRAPH = rmat_graph(8, 8, seed=4)
MST_GRAPH = random_graph(120, 360, seed=9)
REPLICAS = {"visit": 4, "update": 2}


def _run_bfs(config: SimConfig):
    spec = build_app("SPEC-BFS", GRAPH, 0)
    return simulate_app(spec, platform=EVAL_HARP, config=config,
                        replicas=REPLICAS)


def test_ablation_out_of_order_lsu(benchmark, capsys):
    ooo = _run_bfs(SimConfig(out_of_order=True, station_depth=16,
                             rule_lanes=128))
    in_order = benchmark.pedantic(
        lambda: _run_bfs(SimConfig(out_of_order=False, station_depth=16,
                                   rule_lanes=128)),
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print(f"\nOoO: {ooo.cycles} cycles (util {ooo.utilization:.3f})  "
              f"in-order: {in_order.cycles} cycles "
              f"(util {in_order.utilization:.3f})")
    # Bypassing blocked tasks buys a substantial factor.
    assert in_order.cycles > 1.4 * ooo.cycles
    assert in_order.utilization < ooo.utilization


def test_ablation_rule_lane_sweep(benchmark, capsys):
    def sweep():
        return {
            lanes: _run_bfs(SimConfig(station_depth=16,
                                      rule_lanes=lanes)).cycles
            for lanes in (4, 16, 64, 128)
        }

    cycles = benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print(f"\nlane sweep cycles: {cycles}")
    # Starved engines throttle the pipelines hard ...
    assert cycles[4] > 2.5 * cycles[16]
    assert cycles[16] > 1.3 * cycles[64]
    # ... and the benefit saturates once lanes cover the load shadow.
    assert cycles[128] >= 0.9 * cycles[64]


def test_ablation_otherwise_scope_breaks_kruskal(benchmark):
    """Lane-scoped otherwise lets a heavier edge commit early: wrong MST."""
    def run_unsafe():
        spec = build_app("SPEC-MST", MST_GRAPH)
        spec.otherwise_scope = "lanes"  # the unsafe (but live) choice
        try:
            simulate_app(spec, platform=EVAL_HARP, config=SimConfig())
            return "verified"
        except SimulationError as error:
            return str(error)

    outcome = benchmark.pedantic(run_unsafe, rounds=1, iterations=1)
    assert "MST weight wrong" in outcome


def test_ablation_otherwise_scope_global_is_correct(benchmark):
    def run_safe():
        spec = build_app("SPEC-MST", MST_GRAPH)
        return simulate_app(spec, platform=EVAL_HARP, config=SimConfig())

    result = benchmark.pedantic(run_safe, rounds=1, iterations=1)
    assert result.cycles > 0  # verification happened inside simulate_app


def test_ablation_minimum_broadcast_interval(benchmark, capsys):
    """Ordered commits pay the broadcast turnaround per commit."""
    def sweep():
        out = {}
        for interval in (1, 4, 16):
            spec = build_app("SPEC-MST", MST_GRAPH)
            config = SimConfig(minimum_broadcast_interval=interval)
            out[interval] = simulate_app(
                spec, platform=EVAL_HARP, config=config
            ).cycles
        return out

    cycles = benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print(f"\nbroadcast interval sweep: {cycles}")
    assert cycles[1] < cycles[4] < cycles[16]


def test_ablation_next_line_prefetch(benchmark, capsys):
    """Extension: generic next-line prefetch (the paper leaves aggressive
    data movement to future work).  Sequential label arrays benefit."""
    from repro.substrates.graphs import rmat_graph

    graph = rmat_graph(8, 8, seed=4)

    def run(prefetch: bool):
        spec = build_app("SPEC-BFS", graph, 0)
        return simulate_app(
            spec, platform=EVAL_HARP,
            config=SimConfig(station_depth=16, rule_lanes=128,
                             prefetch=prefetch),
            replicas=REPLICAS,
        )

    base = run(False)
    pref = benchmark.pedantic(lambda: run(True), rounds=1, iterations=1)
    with capsys.disabled():
        print(f"\nprefetch off: {base.cycles} cycles "
              f"(hit {base.memory_hit_rate:.2f})  "
              f"on: {pref.cycles} cycles (hit {pref.memory_hit_rate:.2f})")
    assert pref.memory_hit_rate > base.memory_hit_rate
