"""EXP-F9: regenerate Figure 9 (accelerator vs Xeon software).

Paper: accelerators attain 2.3-5.9x over sequential one-core
implementations and 0.5-1.9x over the parallel 10-core/20-thread ones, for
all six benchmarks, with the memory subsystem as the bottleneck.
"""

import pytest

from repro.eval.experiments import PAPER_FIGURE9_BANDS, run_figure9
from repro.eval.reporting import format_figure9
from repro.eval.workloads import APP_NAMES

_RESULT_CACHE = {}


def _figure9():
    if "r" not in _RESULT_CACHE:
        _RESULT_CACHE["r"] = run_figure9(scale=1.0)
    return _RESULT_CACHE["r"]


def test_figure9_all_apps(benchmark, capsys):
    result = benchmark.pedantic(_figure9, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_figure9(result))
    assert set(result.rows) == set(APP_NAMES)


@pytest.mark.parametrize("app", APP_NAMES)
def test_figure9_speedup_vs_one_core_in_band(benchmark, app):
    lo, hi = PAPER_FIGURE9_BANDS["vs_1core"]
    row = benchmark.pedantic(
        lambda: _figure9().rows[app], rounds=1, iterations=1
    )
    assert lo <= row.speedup_vs_1core <= hi, (
        f"{app}: {row.speedup_vs_1core:.2f}x vs 1 core outside "
        f"the paper band {lo}-{hi}x"
    )


@pytest.mark.parametrize("app", APP_NAMES)
def test_figure9_speedup_vs_ten_core_in_band(benchmark, app):
    lo, hi = PAPER_FIGURE9_BANDS["vs_10core"]
    row = benchmark.pedantic(
        lambda: _figure9().rows[app], rounds=1, iterations=1
    )
    assert lo <= row.speedup_vs_10core <= hi, (
        f"{app}: {row.speedup_vs_10core:.2f}x vs 10 cores outside "
        f"the paper band {lo}-{hi}x"
    )


def test_figure9_ten_core_baseline_beats_one_core(benchmark):
    """Sanity: the parallel baseline is faster than sequential everywhere."""
    result = benchmark.pedantic(_figure9, rounds=1, iterations=1)
    for app, row in result.rows.items():
        assert row.parallel_seconds < row.sequential_seconds, app
