"""EXP-T1: regenerate Table 1 (OpenCL vs SPEC-BFS vs COOR-BFS).

Paper: OpenCL 124.1 s, SPEC-BFS 0.47 s, COOR-BFS 0.64 s on the USA road
network — i.e. the AOCL host-coordinated schedule is ~264x slower than the
framework's speculative accelerator, ~194x slower than the coordinative
one, and SPEC-BFS beats COOR-BFS.  The shape asserted here: both ratios are
two or three orders of magnitude, and the SPEC < COOR ordering holds.
"""

from repro.eval.experiments import PAPER_TABLE1, run_table1
from repro.eval.reporting import format_table1

_RESULT_CACHE = {}


def _table1():
    if "r" not in _RESULT_CACHE:
        _RESULT_CACHE["r"] = run_table1()
    return _RESULT_CACHE["r"]


def test_table1(benchmark, capsys):
    result = benchmark.pedantic(_table1, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_table1(result))

    # The host-coordinated OpenCL schedule loses by orders of magnitude.
    assert result.opencl_vs_spec > 50.0
    assert result.opencl_vs_coor > 50.0
    assert result.opencl_vs_spec < 5000.0  # same regime, not absurdity
    # SPEC-BFS beats COOR-BFS, as in the paper (0.47 vs 0.64).
    assert result.spec_bfs_seconds < result.coor_bfs_seconds
    # And the paper's own ratios bracket ours within ~5x.
    paper_ratio = PAPER_TABLE1["OpenCL"] / PAPER_TABLE1["SPEC-BFS"]
    assert paper_ratio / 5 < result.opencl_vs_spec < paper_ratio * 5
