"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and
asserts the qualitative *shape* the paper reports (who wins, by roughly
what factor, where the crossovers fall) — absolute numbers differ because
the substrate is a simulator, not the authors' HARP board.  Results are
printed so `pytest benchmarks/ --benchmark-only -s` doubles as the
reproduction log.
"""

import pytest


@pytest.fixture(scope="session")
def eval_scale() -> float:
    """Workload scale used across benchmarks (1.0 = default inputs)."""
    return 1.0
