#!/usr/bin/env python
"""Regenerate the golden regression fixtures under ``tests/golden/``.

Run this (from the repository root) after an *intentional* change to
simulated timing or statistics, review the resulting JSON diff, and
commit it alongside the change that caused it:

    python scripts/update_goldens.py

The scenarios themselves are defined in ``repro.eval.goldens``; the
fixtures pin the dense, fast-forward, and event-engine executions
alike, so a diff here means observable simulator behaviour moved.
"""

from __future__ import annotations

import json
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.eval.goldens import SCENARIOS, collect  # noqa: E402

GOLDEN_DIR = ROOT / "tests" / "golden"


def main() -> int:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for name in sorted(SCENARIOS):
        data = collect(name)
        path = GOLDEN_DIR / f"{name}.json"
        path.write_text(
            json.dumps(data, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {path.relative_to(ROOT)} ({data['cycles']} cycles)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
