#!/usr/bin/env python
"""Benchmark smoke run: fixed-seed BFS/SSSP cycles plus simulator speed.

Writes ``BENCH_sim.json`` (or ``--output``) with, per app, the simulated
cycle count (deterministic — a regression gate), the host wall-clock
seconds of the simulation loop, and the simulation rate in simulated
cycles per wall second (informational on its own — wall time depends on
the machine).

With ``--fast`` each app is additionally run twice — dense and with the
idle-cycle-skipping fast-forward core — on two platform profiles
(``baseline`` = HARP, ``memory-bound`` = EVAL_HARP at 5% bandwidth,
where QPI misses dominate and skipping pays).  The two runs must finish
at the *same* cycle (the core is cycle-exact; mismatch exits non-zero),
and the recorded ``speedup`` — the fast/dense cycles-per-second ratio —
is machine-normalized, so ``scripts/bench_check.py`` can gate on it
across heterogeneous CI hosts.  Exits non-zero if any run fails to
verify.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

sys.path.insert(0, "src")

from repro.apps.registry import build_app                    # noqa: E402
from repro.eval.platforms import EVAL_HARP, HARP             # noqa: E402
from repro.sim.accelerator import AcceleratorSim, SimConfig  # noqa: E402
from repro.substrates.graphs.generators import random_graph  # noqa: E402

APPS = ("SPEC-BFS", "SPEC-SSSP")
SEED = 7
NODES, EDGES = 300, 900

# The fast-forward comparison profiles: the stock platform, and a
# bandwidth-starved one where the accelerator spends most cycles waiting
# on the QPI channel — the regime the fast core exists for.
PROFILES = {
    "baseline": HARP,
    "memory-bound": EVAL_HARP.scaled(0.05),
}


def build_spec(app: str):
    graph = random_graph(NODES, EDGES, seed=SEED)
    return build_app(app, graph, 0) if app == "SPEC-BFS" \
        else build_app(app, graph)


def run_once(app: str, platform, *, fast: bool) -> dict:
    sim = AcceleratorSim(
        build_spec(app), platform=platform,
        config=SimConfig(fast_forward=fast),
    )
    started = time.perf_counter()
    result = sim.run()
    wall = time.perf_counter() - started
    return {
        "cycles": result.cycles,
        "commits": result.stats.commits,
        "utilization": round(result.utilization, 6),
        "wall_seconds": round(wall, 3),
        "cycles_per_sec": round(result.cycles / wall) if wall > 0 else 0,
        "ff_jumps": result.ff_jumps,
        "ff_cycles_skipped": result.ff_cycles_skipped,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_sim.json")
    parser.add_argument(
        "--fast", action="store_true",
        help="also compare dense vs fast-forward runs per profile",
    )
    args = parser.parse_args(argv)

    runs = {}
    for app in APPS:
        row = run_once(app, HARP, fast=False)
        del row["ff_jumps"], row["ff_cycles_skipped"]
        runs[app] = row
        print(f"{app}: {row['cycles']} cycles in {row['wall_seconds']:.2f}s "
              f"wall ({row['cycles_per_sec']} cyc/s) — VERIFIED")

    payload = {
        "seed": SEED,
        "graph": {"nodes": NODES, "edges": EDGES},
        "runs": runs,
    }

    if args.fast:
        fast_forward: dict = {}
        for profile, platform in PROFILES.items():
            fast_forward[profile] = {}
            for app in APPS:
                dense = run_once(app, platform, fast=False)
                fast = run_once(app, platform, fast=True)
                if fast["cycles"] != dense["cycles"]:
                    print(f"FAIL {app} [{profile}]: fast-forward diverged "
                          f"({fast['cycles']} != {dense['cycles']} cycles)",
                          file=sys.stderr)
                    return 1
                speedup = (fast["cycles_per_sec"] / dense["cycles_per_sec"]
                           if dense["cycles_per_sec"] else 0.0)
                fast_forward[profile][app] = {
                    "cycles": dense["cycles"],
                    "dense": dense,
                    "fast": fast,
                    "speedup": round(speedup, 3),
                }
                print(f"{app} [{profile}]: {dense['cycles']} cycles, "
                      f"dense {dense['wall_seconds']:.2f}s vs "
                      f"fast {fast['wall_seconds']:.2f}s "
                      f"({speedup:.2f}x, {fast['ff_jumps']} jumps, "
                      f"{fast['ff_cycles_skipped']} cycles skipped) "
                      f"— CYCLE-EXACT")
        payload["fast_forward"] = fast_forward

    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
