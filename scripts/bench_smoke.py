#!/usr/bin/env python
"""Benchmark smoke run: fixed-seed BFS/SSSP cycles plus simulator speed.

Writes ``BENCH_sim.json`` (or ``--output``) with, per app, the simulated
cycle count (deterministic — a regression gate), the host wall-clock
seconds of the simulation loop, and the simulation rate in simulated
cycles per wall second (informational on its own — wall time depends on
the machine).

With ``--fast`` each app is additionally run twice — dense and with the
idle-cycle-skipping fast-forward core — on two platform profiles
(``baseline`` = HARP, ``memory-bound`` = EVAL_HARP at 5% bandwidth,
where QPI misses dominate and skipping pays).  The two runs must finish
at the *same* cycle (the core is cycle-exact; mismatch exits non-zero),
and the recorded ``speedup`` — the fast/dense cycles-per-second ratio —
is machine-normalized, so ``scripts/bench_check.py`` can gate on it
across heterogeneous CI hosts.  Exits non-zero if any run fails to
verify.

``--sweep`` benchmarks the sweep execution engine instead: a fixed
app x bandwidth grid is run serially, through a 4-worker process pool,
and again against a warm result cache, writing ``BENCH_sweep.json``
(or ``--output``) with points/sec for each mode.  The three modes must
agree on every cycle count (exit non-zero otherwise) and the warm run
must hit the cache for every point; the parallel/serial wall ratio is
machine-normalized the same way the fast-forward speedup is.

``--events`` benchmarks the full engine matrix instead: every app runs
dense, fast (scan-based skipping), and event (priority-queue wake-ups)
on two profiles, writing ``BENCH_events.json`` (or ``--output``).  All
three engines must finish at the same cycle, and the memory-bound rows
carry the absolute 10x event-engine speedup floor that
``repro regress --bench`` / ``scripts/bench_check.py`` enforce.

``--ledger`` adds the token-provenance zero-cost check: each app runs
once without a :class:`~repro.sim.ledger.TokenLedger` and once with one
attached.  Both runs must finish at the *same* cycle (recording is
observation, never behaviour; mismatch exits non-zero), and the
recorded ``overhead`` — the on/off wall-clock ratio — is what
``repro regress --bench`` warn-gates against the committed baseline.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time

sys.path.insert(0, "src")

from repro.apps.registry import build_app                    # noqa: E402
from repro.eval.platforms import EVAL_HARP, HARP             # noqa: E402
from repro.sim.accelerator import AcceleratorSim, SimConfig  # noqa: E402
from repro.substrates.graphs.generators import random_graph  # noqa: E402

APPS = ("SPEC-BFS", "SPEC-SSSP")
SEED = 7
NODES, EDGES = 300, 900

# The sweep-engine benchmark grid: both apps across a QPI-bandwidth
# ladder, sized so per-point simulation dominates pool startup.
SWEEP_BANDWIDTHS = (0.5, 1.0, 2.0, 4.0)
SWEEP_JOBS = 4

# The fast-forward comparison profiles: the stock platform, and a
# bandwidth-starved one where the accelerator spends most cycles waiting
# on the QPI channel — the regime the fast core exists for.
PROFILES = {
    "baseline": HARP,
    "memory-bound": EVAL_HARP.scaled(0.05),
}

# The engine-matrix profiles (``--events``).  The memory-bound leg runs
# at 0.5% QPI bandwidth — the Figure-10 low-bandwidth regime, where the
# machine is quiescent for >97% of cycles and wake-up-driven skipping
# dominates — and carries an *absolute* 10x event-engine speedup floor
# (EVENT_FLOOR) that ``repro regress --bench`` enforces, on top of the
# usual relative tolerance against the committed baseline.
EVENT_PROFILES = {
    "baseline": HARP,
    "memory-bound": EVAL_HARP.scaled(0.005),
}
EVENT_FLOOR = 10.0
ENGINES = ("dense", "fast", "event")


def build_spec(app: str):
    graph = random_graph(NODES, EDGES, seed=SEED)
    return build_app(app, graph, 0) if app == "SPEC-BFS" \
        else build_app(app, graph)


def run_once(app: str, platform, *, engine: str = "dense",
             with_ledger: bool = False) -> dict:
    ledger = None
    if with_ledger:
        from repro.sim.ledger import TokenLedger
        ledger = TokenLedger()
    sim = AcceleratorSim(
        build_spec(app), platform=platform,
        config=SimConfig(engine=engine), ledger=ledger,
    )
    started = time.perf_counter()
    result = sim.run()
    wall = time.perf_counter() - started
    return {
        "cycles": result.cycles,
        "commits": result.stats.commits,
        "utilization": round(result.utilization, 6),
        "wall_seconds": round(wall, 3),
        "cycles_per_sec": round(result.cycles / wall) if wall > 0 else 0,
        "ff_jumps": result.ff_jumps,
        "ff_cycles_skipped": result.ff_cycles_skipped,
    }


def sweep_jobs() -> list:
    from repro.exec import GraphAppSource, SimJob

    return [
        SimJob(
            source=GraphAppSource(
                app, NODES, EDGES, seed=SEED,
                start=0 if app == "SPEC-BFS" else None,
            ),
            platform=EVAL_HARP.scaled(bandwidth),
            tag=f"{app}@{bandwidth:g}x",
        )
        for app in APPS
        for bandwidth in SWEEP_BANDWIDTHS
    ]


def run_sweep_bench(output: str) -> int:
    from repro.exec import ResultCache, SweepRunner

    jobs = sweep_jobs()

    def timed(runner) -> tuple[list, float]:
        started = time.perf_counter()
        outcomes = runner.run(jobs)
        return outcomes, time.perf_counter() - started

    serial, serial_wall = timed(SweepRunner(jobs=1))
    parallel, parallel_wall = timed(SweepRunner(jobs=SWEEP_JOBS))

    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)
        for job, outcome in zip(jobs, parallel):
            cache.put(job.digest(), outcome)
        warm_runner = SweepRunner(jobs=1, cache=ResultCache(tmp))
        warm, warm_wall = timed(warm_runner)

    for mode, outcomes in (("parallel", parallel), ("warm-cache", warm)):
        for job, base, got in zip(jobs, serial, outcomes):
            if got.cycles != base.cycles:
                print(f"FAIL {job.tag} [{mode}]: cycle count diverged "
                      f"({got.cycles} != {base.cycles})", file=sys.stderr)
                return 1
    if warm_runner.report.hits != len(jobs):
        print(f"FAIL warm-cache: {warm_runner.report.hits}/{len(jobs)} "
              f"points hit the cache", file=sys.stderr)
        return 1

    def mode_row(wall: float) -> dict:
        return {
            "wall_seconds": round(wall, 3),
            "points_per_sec": round(len(jobs) / wall, 3) if wall else 0.0,
        }

    speedup = serial_wall / parallel_wall if parallel_wall else 0.0
    payload = {
        "seed": SEED,
        "graph": {"nodes": NODES, "edges": EDGES},
        "points": {job.tag: outcome.cycles
                   for job, outcome in zip(jobs, serial)},
        "sweep": {
            "n_points": len(jobs),
            "workers": SWEEP_JOBS,
            "serial": mode_row(serial_wall),
            "parallel": mode_row(parallel_wall),
            "warm_cache": {**mode_row(warm_wall),
                           "hit_rate": warm_runner.report.hit_rate},
            "parallel_speedup": round(speedup, 3),
        },
    }
    print(f"sweep: {len(jobs)} points — serial {serial_wall:.2f}s, "
          f"parallel({SWEEP_JOBS}) {parallel_wall:.2f}s "
          f"({speedup:.2f}x), warm cache {warm_wall:.2f}s "
          f"({warm_runner.report.hits}/{len(jobs)} hits) — CYCLE-EXACT")
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {output}")
    return 0


def run_events_bench(output: str) -> int:
    """The three-engine matrix: dense vs fast vs event per profile/app.

    Every engine must finish at the same cycle (exit non-zero
    otherwise); the recorded per-engine speedups are cycles-per-second
    ratios against the dense run on the same host, so they are
    machine-normalized.  The memory-bound rows carry the absolute
    ``event_floor`` the regression gate enforces.
    """
    engines_doc: dict = {}
    for profile, platform in EVENT_PROFILES.items():
        engines_doc[profile] = {}
        for app in APPS:
            rows = {
                engine: run_once(app, platform, engine=engine)
                for engine in ENGINES
            }
            dense = rows["dense"]
            for engine in ("fast", "event"):
                if rows[engine]["cycles"] != dense["cycles"]:
                    print(f"FAIL {app} [{profile}]: {engine} engine "
                          f"diverged ({rows[engine]['cycles']} != "
                          f"{dense['cycles']} cycles)", file=sys.stderr)
                    return 1

            def speedup(engine: str) -> float:
                if not dense["cycles_per_sec"]:
                    return 0.0
                return round(
                    rows[engine]["cycles_per_sec"]
                    / dense["cycles_per_sec"], 3)

            row = {
                "cycles": dense["cycles"],
                **rows,
                "fast_speedup": speedup("fast"),
                "event_speedup": speedup("event"),
            }
            if profile == "memory-bound":
                row["event_floor"] = EVENT_FLOOR
            engines_doc[profile][app] = row
            print(f"{app} [{profile}]: {dense['cycles']} cycles — dense "
                  f"{dense['wall_seconds']:.2f}s, fast "
                  f"{rows['fast']['wall_seconds']:.2f}s "
                  f"({row['fast_speedup']:.2f}x), event "
                  f"{rows['event']['wall_seconds']:.2f}s "
                  f"({row['event_speedup']:.2f}x, "
                  f"{rows['event']['ff_jumps']} jumps) — CYCLE-EXACT")

    payload = {
        "seed": SEED,
        "graph": {"nodes": NODES, "edges": EDGES},
        "engines": engines_doc,
    }
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {output}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default=None)
    parser.add_argument(
        "--fast", action="store_true",
        help="also compare dense vs fast-forward runs per profile",
    )
    parser.add_argument(
        "--sweep", action="store_true",
        help="benchmark the sweep engine (serial vs parallel vs "
             "warm-cache) instead of the simulator itself",
    )
    parser.add_argument(
        "--ledger", action="store_true",
        help="also run each app with a TokenLedger attached and assert "
             "the zero-cost contract (identical cycles, recorded "
             "on/off wall overhead)",
    )
    parser.add_argument(
        "--events", action="store_true",
        help="benchmark the dense/fast/event engine matrix "
             "(BENCH_events.json), asserting cycle-exactness and "
             "recording per-engine speedups",
    )
    args = parser.parse_args(argv)

    if args.sweep:
        return run_sweep_bench(args.output or "BENCH_sweep.json")
    if args.events:
        return run_events_bench(args.output or "BENCH_events.json")
    args.output = args.output or "BENCH_sim.json"

    runs = {}
    for app in APPS:
        row = run_once(app, HARP)
        del row["ff_jumps"], row["ff_cycles_skipped"]
        runs[app] = row
        print(f"{app}: {row['cycles']} cycles in {row['wall_seconds']:.2f}s "
              f"wall ({row['cycles_per_sec']} cyc/s) — VERIFIED")

    payload = {
        "seed": SEED,
        "graph": {"nodes": NODES, "edges": EDGES},
        "runs": runs,
    }

    if args.fast:
        fast_forward: dict = {}
        for profile, platform in PROFILES.items():
            fast_forward[profile] = {}
            for app in APPS:
                dense = run_once(app, platform)
                fast = run_once(app, platform, engine="fast")
                if fast["cycles"] != dense["cycles"]:
                    print(f"FAIL {app} [{profile}]: fast-forward diverged "
                          f"({fast['cycles']} != {dense['cycles']} cycles)",
                          file=sys.stderr)
                    return 1
                speedup = (fast["cycles_per_sec"] / dense["cycles_per_sec"]
                           if dense["cycles_per_sec"] else 0.0)
                fast_forward[profile][app] = {
                    "cycles": dense["cycles"],
                    "dense": dense,
                    "fast": fast,
                    "speedup": round(speedup, 3),
                }
                print(f"{app} [{profile}]: {dense['cycles']} cycles, "
                      f"dense {dense['wall_seconds']:.2f}s vs "
                      f"fast {fast['wall_seconds']:.2f}s "
                      f"({speedup:.2f}x, {fast['ff_jumps']} jumps, "
                      f"{fast['ff_cycles_skipped']} cycles skipped) "
                      f"— CYCLE-EXACT")
        payload["fast_forward"] = fast_forward

    if args.ledger:
        ledger_doc: dict = {}
        for app in APPS:
            off = run_once(app, HARP)
            on = run_once(app, HARP, with_ledger=True)
            if on["cycles"] != off["cycles"]:
                print(f"FAIL {app} [ledger]: recording perturbed the "
                      f"simulation ({on['cycles']} != {off['cycles']} "
                      f"cycles)", file=sys.stderr)
                return 1
            for row in (off, on):
                del row["ff_jumps"], row["ff_cycles_skipped"]
            overhead = (round(on["wall_seconds"] / off["wall_seconds"], 3)
                        if off["wall_seconds"] else 0.0)
            ledger_doc[app] = {
                "cycles": off["cycles"],
                "off": off,
                "on": on,
                "overhead": overhead,
            }
            print(f"{app} [ledger]: {off['cycles']} cycles — off "
                  f"{off['wall_seconds']:.2f}s vs on "
                  f"{on['wall_seconds']:.2f}s ({overhead:.2f}x overhead) "
                  f"— CYCLE-EXACT")
        payload["ledger"] = ledger_doc

    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
