#!/usr/bin/env python
"""Benchmark smoke run: fixed-seed BFS/SSSP cycles plus wall time.

Writes ``BENCH_sim.json`` (or ``--output``) with, per app, the simulated
cycle count (deterministic — a regression gate) and the host wall-clock
seconds of the simulation loop (informational — flags gross slowdowns of
the simulator itself).  Exits non-zero if any run fails to verify.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

sys.path.insert(0, "src")

from repro.apps.registry import build_app                    # noqa: E402
from repro.eval.platforms import HARP                        # noqa: E402
from repro.sim.accelerator import AcceleratorSim             # noqa: E402
from repro.substrates.graphs.generators import random_graph  # noqa: E402

APPS = ("SPEC-BFS", "SPEC-SSSP")
SEED = 7
NODES, EDGES = 300, 900


def build_spec(app: str):
    graph = random_graph(NODES, EDGES, seed=SEED)
    return build_app(app, graph, 0) if app == "SPEC-BFS" \
        else build_app(app, graph)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_sim.json")
    args = parser.parse_args(argv)

    runs = {}
    for app in APPS:
        spec = build_spec(app)
        sim = AcceleratorSim(spec, platform=HARP)
        started = time.perf_counter()
        result = sim.run()
        wall = time.perf_counter() - started
        runs[app] = {
            "cycles": result.cycles,
            "commits": result.stats.commits,
            "utilization": round(result.utilization, 6),
            "wall_seconds": round(wall, 3),
        }
        print(f"{app}: {result.cycles} cycles in {wall:.2f}s wall — VERIFIED")

    payload = {
        "seed": SEED,
        "graph": {"nodes": NODES, "edges": EDGES},
        "runs": runs,
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
