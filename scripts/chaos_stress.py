#!/usr/bin/env python
"""Infrastructure chaos stress for CI: storage and sweep recovery.

Three subcommands, each exiting nonzero on any lost or corrupt record:

``stress``
    Fork N writer processes appending concurrently to ONE result cache
    and ONE run store, then verify every record landed intact: exact
    entry counts, zero corrupt lines, unique run ids.

``sweep``
    Run a seeded sweep (with cache + journal) that a harness can
    SIGKILL mid-flight and later re-invoke with ``--resume``.  Prints
    the sweep summary; exits 0 only when every point has an outcome.

``check``
    Assert a prior ``sweep`` store is fully warm: re-running must be
    100% cache hits with zero simulations, and the journal must mark
    every point done.

Usage (mirrors the CI chaos-stress job)::

    python scripts/chaos_stress.py stress --dir /tmp/chaos --writers 4
    python scripts/chaos_stress.py sweep --dir /tmp/chaos --points 8 &
    kill -9 <pid mid-flight>
    python scripts/chaos_stress.py sweep --dir /tmp/chaos --points 8 --resume
    python scripts/chaos_stress.py check --dir /tmp/chaos --points 8
"""

from __future__ import annotations

import argparse
import multiprocessing
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.eval.platforms import HARP                      # noqa: E402
from repro.exec import (                                   # noqa: E402
    GraphAppSource,
    JobOutcome,
    ResultCache,
    SimJob,
    SweepJournal,
    SweepRunner,
)
from repro.io import read_jsonl                            # noqa: E402
from repro.obs.runstore import RunStore, record_from_outcome  # noqa: E402
from repro.sim.accelerator import SimConfig                # noqa: E402


def fail(message: str) -> None:
    print(f"chaos-stress: FAIL: {message}")
    raise SystemExit(1)


# ---------------------------------------------------------------------------
# stress: concurrent writers, one store
# ---------------------------------------------------------------------------


def _writer(root: str, writer: int, count: int) -> None:
    """One writer process: interleaved cache puts and run appends."""
    cache = ResultCache(root)
    store = RunStore(root)
    config = SimConfig()
    for i in range(count):
        outcome = JobOutcome(app=f"w{writer}", cycles=writer * 10_000 + i)
        cache.put(f"{writer:02d}:{i:04d}", outcome)
        store.append(record_from_outcome(
            "chaos-stress", outcome, platform=HARP, config=config,
            seed=writer,
        ))


def cmd_stress(args: argparse.Namespace) -> int:
    ctx = multiprocessing.get_context("fork")
    procs = [
        ctx.Process(target=_writer, args=(args.dir, w, args.appends))
        for w in range(args.writers)
    ]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(timeout=120)
        if proc.exitcode != 0:
            fail(f"writer exited with {proc.exitcode}")

    expected = args.writers * args.appends
    cache = ResultCache(args.dir)
    report = cache.verify()
    if not report["ok"]:
        fail(f"cache damaged after stress: {report}")
    if report["entries"] != expected:
        fail(f"cache lost records: {report['entries']}/{expected}")

    store = RunStore(args.dir)
    records = store.records()
    if store.skipped:
        fail(f"run store has {store.skipped} corrupt lines")
    if len(records) != expected:
        fail(f"run store lost records: {len(records)}/{expected}")
    run_ids = {record.run_id for record in records}
    if len(run_ids) != expected:
        fail(f"duplicate run ids: {expected - len(run_ids)} collisions")

    raw = read_jsonl(store.path, warn=False)
    if raw.skipped or len(raw.rows) != expected:
        fail(f"raw store read: {len(raw.rows)} rows, "
             f"{len(raw.skipped)} skipped")
    print(f"chaos-stress: stress OK — {args.writers} writers x "
          f"{args.appends} appends, {expected} cache entries, "
          f"{expected} unique run ids, 0 corrupt lines")
    return 0


# ---------------------------------------------------------------------------
# sweep / check: kill-resume recovery
# ---------------------------------------------------------------------------


def sweep_jobs(points: int) -> list[SimJob]:
    """The fixed seeded job grid both `sweep` and `check` agree on.

    Deliberately heterogeneous: the first two points are small (quick
    ``done`` events for a kill harness to synchronize on) and the rest
    are large, so after the first completion the sweep is guaranteed to
    still be mid-flight for several seconds — a SIGKILL landing there
    always finds both finished and unfinished work.
    """
    jobs = []
    for seed in range(points):
        nodes = 200 if seed < 2 else 2400
        jobs.append(SimJob(
            source=GraphAppSource("SPEC-BFS", nodes, nodes * 3,
                                  seed=seed, start=0),
            platform=HARP,
            config=SimConfig(),
            tag=f"chaos-sweep:{seed}",
        ))
    return jobs


def _runner(args: argparse.Namespace, resume: bool) -> SweepRunner:
    return SweepRunner(
        jobs=args.jobs,
        cache=ResultCache(args.dir),
        journal=SweepJournal(args.dir),
        resume=resume,
        strict=True,
    )


def cmd_sweep(args: argparse.Namespace) -> int:
    runner = _runner(args, resume=args.resume)
    outcomes = runner.run(sweep_jobs(args.points))
    print(runner.report.summary())
    bad = [o for o in outcomes if o.error]
    if bad:
        fail(f"{len(bad)} sweep points failed: {bad[0].error}")
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    runner = _runner(args, resume=True)
    outcomes = runner.run(sweep_jobs(args.points))
    report = runner.report
    print(report.summary())
    if any(o.error for o in outcomes):
        fail("warm re-run has failed points")
    if report.hits != args.points or report.executed != 0:
        fail(f"store not fully warm: {report.hits}/{args.points} hits, "
             f"{report.executed} simulated")
    if report.hit_rate != 1.0:
        fail(f"hit rate {report.hit_rate} != 1.0")
    state = SweepJournal(args.dir).load()
    if len(state.done) < args.points:
        fail(f"journal marks only {len(state.done)}/{args.points} done")
    print(f"chaos-stress: check OK — {args.points}/{args.points} cache "
          f"hits, journal complete")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    stress = sub.add_parser("stress", help="concurrent-writer stress")
    stress.add_argument("--dir", required=True)
    stress.add_argument("--writers", type=int, default=4)
    stress.add_argument("--appends", type=int, default=25)
    stress.set_defaults(handler=cmd_stress)

    sweep = sub.add_parser("sweep", help="killable resumable sweep")
    sweep.add_argument("--dir", required=True)
    sweep.add_argument("--points", type=int, default=8)
    sweep.add_argument("--jobs", type=int, default=1)
    sweep.add_argument("--resume", action="store_true")
    sweep.set_defaults(handler=cmd_sweep)

    check = sub.add_parser("check", help="assert store fully warm")
    check.add_argument("--dir", required=True)
    check.add_argument("--points", type=int, default=8)
    check.add_argument("--jobs", type=int, default=1)
    check.set_defaults(handler=cmd_check)

    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
