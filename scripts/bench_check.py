#!/usr/bin/env python
"""Gate a ``bench_smoke.py`` result against the committed baseline.

A thin CLI over :mod:`repro.obs.regress` (the same comparator behind
``repro regress``).  The gates are unchanged since PR 3/5:

* **cycle counts** — fully deterministic, must match the baseline
  *exactly* (any drift is a behaviour change; if intentional, re-run
  ``scripts/bench_smoke.py --fast`` and commit the new baseline);
* **fast-forward speedup** — the fast/dense cycles-per-second ratio is
  machine-normalized (both runs execute on the same host, so hardware
  speed cancels), and must not regress more than ``--tolerance``
  (default 20%) below the baseline's ratio for any app/profile;
* **sweep gates** (``bench_smoke.py --sweep`` documents) — per-point
  cycle counts and the warm-cache hit rate (must be 1.0) are exact,
  while the parallel/serial wall ratio may not fall more than
  ``--sweep-tolerance`` (default 35%) below the baseline;
* **engine-matrix gates** (``bench_smoke.py --events`` documents) —
  cycles exact per profile/app, fast- and event-engine speedups gated
  by ``--tolerance`` against the baseline, and any row carrying an
  absolute ``event_floor`` (the memory-bound 10x event-engine
  contract) gated against it with no tolerance.

Every failure now carries a diagnosis line (what to check, how to
re-record) instead of a bare diff.

Usage::

    python scripts/bench_smoke.py --fast --output BENCH_sim.json
    python scripts/bench_check.py BENCH_sim.json BENCH_baseline.json
    python scripts/bench_smoke.py --sweep --output BENCH_sweep.json
    python scripts/bench_check.py BENCH_sweep.json BENCH_sweep_baseline.json
    python scripts/bench_smoke.py --events --output BENCH_events.json
    python scripts/bench_check.py BENCH_events.json BENCH_events_baseline.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
)

from repro.obs.regress import regress_bench  # noqa: E402


def _load(path: str) -> dict:
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="freshly produced BENCH_sim.json")
    parser.add_argument("baseline", help="committed BENCH_baseline.json")
    parser.add_argument(
        "--tolerance", type=float, default=0.20,
        help="allowed fractional speedup regression (default 0.20)",
    )
    parser.add_argument(
        "--sweep-tolerance", type=float, default=0.35,
        help="allowed fractional parallel-sweep speedup regression "
             "(default 0.35)",
    )
    args = parser.parse_args(argv)

    current, baseline = _load(args.current), _load(args.baseline)
    findings = regress_bench(
        current, baseline,
        speedup_tolerance=args.tolerance,
        sweep_tolerance=args.sweep_tolerance,
    )
    failures = [f for f in findings if f.severity == "fail"]
    warnings_ = [f for f in findings if f.severity != "fail"]

    # Positive confirmation for the gates that passed, as before.
    sweep = current.get("sweep")
    if baseline.get("sweep") and sweep and not any(
        f.where.startswith("sweep/") for f in failures
    ):
        print(f"sweep: parallel {sweep.get('parallel_speedup', 0.0):.2f}x, "
              f"warm-cache hit rate "
              f"{(sweep.get('warm_cache') or {}).get('hit_rate', 0.0):.2f} "
              f"(baseline "
              f"{baseline['sweep'].get('parallel_speedup', 0.0):.2f}x) — OK")
    for profile, base_apps in sorted(
        (baseline.get("fast_forward") or {}).items()
    ):
        for app in sorted(base_apps):
            where = f"fast_forward[{profile}][{app}]"
            if any(f.where == where for f in failures):
                continue
            row = (current.get("fast_forward", {}).get(profile) or {}) \
                .get(app)
            if isinstance(row, dict) and "speedup" in row:
                print(f"{where}: {row['speedup']:.2f}x "
                      f"(baseline {base_apps[app]['speedup']:.2f}x) — OK")
    for profile, base_apps in sorted(
        (baseline.get("engines") or {}).items()
    ):
        for app in sorted(base_apps):
            where = f"engines[{profile}][{app}]"
            if any(f.where == where for f in failures):
                continue
            row = (current.get("engines", {}).get(profile) or {}).get(app)
            if isinstance(row, dict) and "event_speedup" in row:
                floor = base_apps[app].get("event_floor")
                floor_note = (f", floor {floor:.1f}x"
                              if isinstance(floor, (int, float)) else "")
                print(f"{where}: fast {row.get('fast_speedup', 0.0):.2f}x,"
                      f" event {row['event_speedup']:.2f}x (baseline "
                      f"{base_apps[app].get('event_speedup', 0.0):.2f}x"
                      f"{floor_note}) — OK")

    for warning in warnings_:
        print(f"warn [{warning.rule}] {warning.where}: {warning.message}")
    if failures:
        for failure in failures:
            print(f"FAIL {failure.where}: {failure.message}",
                  file=sys.stderr)
            if failure.diagnosis:
                print(f"  -> {failure.diagnosis}", file=sys.stderr)
        return 1
    print("benchmark check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
