#!/usr/bin/env python
"""Gate a ``bench_smoke.py`` result against the committed baseline.

Two checks, in increasing softness:

* **cycle counts** — fully deterministic, must match the baseline
  *exactly* (any drift is a behaviour change; if intentional, re-run
  ``scripts/bench_smoke.py --fast`` and commit the new baseline);
* **fast-forward speedup** — the fast/dense cycles-per-second ratio is
  machine-normalized (both runs execute on the same host, so hardware
  speed cancels), and must not regress more than ``--tolerance``
  (default 20%) below the baseline's ratio for any app/profile.

Sweep-engine results (``bench_smoke.py --sweep``) are gated the same
way: per-point cycle counts and the warm-cache hit rate (must be 1.0)
are exact, while the parallel/serial wall ratio — also same-host
normalized, but noisier because it depends on free cores — must not
fall more than ``--sweep-tolerance`` (default 35%) below the baseline.

Usage::

    python scripts/bench_smoke.py --fast --output BENCH_sim.json
    python scripts/bench_check.py BENCH_sim.json BENCH_baseline.json
    python scripts/bench_smoke.py --sweep --output BENCH_sweep.json
    python scripts/bench_check.py BENCH_sweep.json BENCH_sweep_baseline.json
"""

from __future__ import annotations

import argparse
import json
import sys


def _load(path: str) -> dict:
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="freshly produced BENCH_sim.json")
    parser.add_argument("baseline", help="committed BENCH_baseline.json")
    parser.add_argument(
        "--tolerance", type=float, default=0.20,
        help="allowed fractional speedup regression (default 0.20)",
    )
    parser.add_argument(
        "--sweep-tolerance", type=float, default=0.35,
        help="allowed fractional parallel-sweep speedup regression "
             "(default 0.35)",
    )
    args = parser.parse_args(argv)

    current, baseline = _load(args.current), _load(args.baseline)
    failures: list[str] = []

    for tag, base_cycles in sorted(baseline.get("points", {}).items()):
        cycles = current.get("points", {}).get(tag)
        if cycles is None:
            failures.append(f"points[{tag}]: missing from current result")
        elif cycles != base_cycles:
            failures.append(
                f"points[{tag}]: cycle count drifted "
                f"{cycles} != {base_cycles} (baseline)"
            )

    base_sweep = baseline.get("sweep")
    if base_sweep:
        sweep = current.get("sweep", {})
        hit_rate = sweep.get("warm_cache", {}).get("hit_rate", 0.0)
        if hit_rate < 1.0:
            failures.append(
                f"sweep: warm-cache hit rate {hit_rate:.2f} < 1.0"
            )
        floor = base_sweep["parallel_speedup"] * (1.0 - args.sweep_tolerance)
        speedup = sweep.get("parallel_speedup", 0.0)
        if speedup < floor:
            failures.append(
                f"sweep: parallel speedup regressed to {speedup:.2f}x "
                f"(baseline {base_sweep['parallel_speedup']:.2f}x, "
                f"floor {floor:.2f}x)"
            )
        else:
            print(f"sweep: parallel {speedup:.2f}x, warm-cache hit rate "
                  f"{hit_rate:.2f} (baseline "
                  f"{base_sweep['parallel_speedup']:.2f}x, "
                  f"floor {floor:.2f}x) — OK")

    for app, base_row in sorted(baseline.get("runs", {}).items()):
        row = current.get("runs", {}).get(app)
        if row is None:
            failures.append(f"runs[{app}]: missing from current result")
        elif row["cycles"] != base_row["cycles"]:
            failures.append(
                f"runs[{app}]: cycle count drifted "
                f"{row['cycles']} != {base_row['cycles']} (baseline)"
            )

    for profile, base_apps in sorted(
        baseline.get("fast_forward", {}).items()
    ):
        cur_apps = current.get("fast_forward", {}).get(profile, {})
        for app, base_row in sorted(base_apps.items()):
            row = cur_apps.get(app)
            where = f"fast_forward[{profile}][{app}]"
            if row is None:
                failures.append(f"{where}: missing from current result")
                continue
            if row["cycles"] != base_row["cycles"]:
                failures.append(
                    f"{where}: cycle count drifted "
                    f"{row['cycles']} != {base_row['cycles']} (baseline)"
                )
            floor = base_row["speedup"] * (1.0 - args.tolerance)
            if row["speedup"] < floor:
                failures.append(
                    f"{where}: fast-forward speedup regressed to "
                    f"{row['speedup']:.2f}x "
                    f"(baseline {base_row['speedup']:.2f}x, "
                    f"floor {floor:.2f}x)"
                )
            else:
                print(f"{where}: {row['speedup']:.2f}x "
                      f"(baseline {base_row['speedup']:.2f}x, "
                      f"floor {floor:.2f}x) — OK")

    if failures:
        for failure in failures:
            print(f"FAIL {failure}", file=sys.stderr)
        return 1
    print("benchmark check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
