"""The AOCL-synthesized baseline of Section 2.2 / Table 1."""

from repro.hls_baseline.opencl_model import OpenClBfsModel, opencl_bfs_seconds

__all__ = ["OpenClBfsModel", "opencl_bfs_seconds"]
