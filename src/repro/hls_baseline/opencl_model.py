"""Execution model of the Altera-OpenCL-synthesized BFS (Figure 1(c)).

OpenDwarfs' OpenCL BFS is the classic two-kernel formulation: kernel 1
scans *all* vertices, expanding the frontier's neighbours; kernel 2 scans
all vertices again, promoting "updated" marks into the visited set.  The
host relaunches both kernels once per BFS level until kernel 2 reports no
change.  All inter-loop dependences are resolved by the host + barriers:
newly created work goes back to board memory each round.

On a high-diameter road network this schedule is catastrophic — thousands
of levels, each paying two kernel launches plus two full-array scans —
which is how Table 1's 124.1 s (vs 0.47 s for SPEC-BFS on the same graph)
comes about.  The model below reproduces that mechanism with constants from
the Stratix IV AOCL environment the paper used.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.substrates.graphs.algorithms import INF, bfs_levels
from repro.substrates.graphs.csr import CSRGraph


@dataclass(frozen=True)
class OpenClBfsModel:
    """Timing constants for the AOCL BFS on the Stratix IV board.

    ``launch_overhead_s`` is the host-driver round trip per kernel launch
    over PCIe.  Real AOCL launches cost hundreds of microseconds to a few
    milliseconds; the default here is scaled down with the evaluation
    inputs (see EXPERIMENTS.md) so the launch-to-work ratio matches the
    paper's full-size USA-road regime — Table 1 is reproduced as a ratio,
    not in absolute seconds.  The scan terms stream the vertex/mask arrays
    through the synthesized pipelines at board memory bandwidth.
    """

    launch_overhead_s: float = 60e-6
    kernel_clock_hz: float = 150e6
    board_bandwidth_gbps: float = 6.4
    bytes_per_vertex_scan: int = 16     # mask reads/writes in both kernels
    edge_bytes: int = 8

    def seconds(self, graph: CSRGraph, root: int = 0) -> float:
        """End-to-end AOCL BFS time for ``graph``."""
        levels = bfs_levels(graph, root)
        finite = levels[levels < INF]
        num_levels = int(finite.max()) + 1 if finite.size else 1
        bandwidth = self.board_bandwidth_gbps * 1e9
        per_level_scan = (
            2 * graph.num_vertices * self.bytes_per_vertex_scan / bandwidth
        )
        edge_traffic = graph.num_edges * self.edge_bytes / bandwidth
        launches = 2 * num_levels * self.launch_overhead_s
        return launches + num_levels * per_level_scan + edge_traffic

    def level_count(self, graph: CSRGraph, root: int = 0) -> int:
        levels = bfs_levels(graph, root)
        finite = levels[levels < INF]
        return int(finite.max()) + 1 if finite.size else 1


def opencl_bfs_seconds(graph: CSRGraph, root: int = 0) -> float:
    """Convenience wrapper with the default board constants."""
    return OpenClBfsModel().seconds(graph, root)
