"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``list``        the registered benchmarks and their descriptions
``rules APP``   pretty-print an application's ECA rules
``run APP``     execute on the aggressive software (debug) runtime
``simulate APP``cycle-level accelerator simulation, optional schedule trace
``profile APP`` stall-attribution profile (see docs/observability.md)
``experiment``  regenerate table1 / figure9 / figure10 / resources
``dse APP``     design-space exploration (Pareto frontier)
``fault-campaign``  seeded fault injection with checkpoint/rollback recovery
``runs``        query the cross-run telemetry store (list / show / diff
                / compact)
``cache``       inspect and maintain the sweep result cache
                (stats / verify / compact / prune)
``diagnose``    rank a run's bottlenecks from its stored telemetry
                (``--json`` for machine-readable findings)
``critpath``    per-token provenance: extract the measured critical
                path, its bucket decomposition, and what-if projections
                (``--json``; ``--trace-out`` adds the chain as a
                Perfetto flow-arrow track)
``dashboard``   write the self-contained HTML telemetry dashboard
``sweep-status``status of the running (or crashed) sweep in a store
``regress``     rule-based regression detection over the run store
                and BENCH_*.json trajectories

Sweep-running commands (``experiment``, ``dse``, ``fault-campaign``)
accept ``--jobs N`` (parallel workers), ``--cache/--no-cache``,
``--resume`` — an interrupted sweep restarts, skipping completed points
via the result cache and quarantined poison points via the sweep
journal (see docs/robustness.md) — plus the fleet observability flags
``--progress`` (live stderr heartbeat; a machine-readable
``sweep-status.json`` is always maintained in the store directory) and
``--fleet-trace FILE`` (merged cross-process Chrome trace, one lane per
worker pid; open in Perfetto).

``simulate``, ``profile``, ``fault-campaign`` and ``experiment`` append
a :class:`~repro.obs.runstore.RunRecord` to the run store
(``.repro/runs.jsonl``; ``--no-store`` opts out, ``--store DIR``
relocates it), which ``runs`` / ``diagnose`` / ``dashboard`` consume.

``simulate`` accepts ``--inject SEED`` (seeded fault plan),
``--check-invariants`` (runtime sanitizer), ``--resilient``
(checkpoint/rollback recovery), and the observability exports
``--trace-out FILE`` (Chrome ``trace_event`` JSON, loadable in Perfetto)
and ``--metrics-out FILE`` (metrics-registry snapshot).  All commands
verify functional results where applicable.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Callable

from repro.apps.registry import APP_BUILDERS, build_app
from repro.core.runtime import AggressiveRuntime
from repro.core.eca import parse_rule
from repro.core.eca_format import format_rule
from repro.eval.platforms import EVAL_HARP
from repro.obs import Observability
from repro.obs.profile import format_stall_report
from repro.obs.runstore import (
    DEFAULT_STORE_DIR,
    RunStore,
    diff_records,
    format_diff,
    format_record,
    format_records_table,
    golden_record,
    record_from_result,
)
from repro.sim.accelerator import AcceleratorSim, SimConfig
from repro.sim.trace import ScheduleTracer
from repro.substrates.graphs.generators import random_graph


def _default_spec(app: str):
    """Build ``app`` with a reasonable default input."""
    from repro.eval.workloads import default_workloads

    workloads = default_workloads(scale=0.5)
    if app in workloads:
        return workloads[app].build_spec()
    if app in ("SPEC-CC", "COOR-SSSP"):
        return build_app(app, random_graph(200, 500, seed=1))
    return build_app(app)


def cmd_list(args: argparse.Namespace) -> int:
    from repro.apps.registry import _ensure_registered

    _ensure_registered()
    for name in sorted(APP_BUILDERS):
        spec = _default_spec(name)
        print(f"{name:10s} [{spec.mode:12s}] {spec.description}")
    return 0


def cmd_rules(args: argparse.Namespace) -> int:
    spec = _default_spec(args.app)
    print(f"# rules of {spec.name} ({spec.mode})")
    for name, rule in spec.rules.items():
        print()
        if rule.source:
            print(format_rule(parse_rule(rule.source)))
        else:
            print(f"rule {name}(...)  # compiled without source text")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    spec = _default_spec(args.app)
    if args.threaded:
        from repro.core.futures_runtime import FuturesRuntime

        stats = FuturesRuntime(spec, threads=args.workers).run()
        print(f"{spec.name}: {stats.tasks_executed} tasks on "
              f"{args.workers} OS threads, "
              f"{stats.tasks_squashed} squashed — VERIFIED")
        return 0
    runtime = AggressiveRuntime(spec, workers=args.workers)
    stats = runtime.run()
    print(f"{spec.name}: {stats.tasks_executed} tasks executed, "
          f"{stats.tasks_committed} committed, "
          f"{stats.tasks_squashed} squashed, "
          f"{stats.otherwise_fired} otherwise / "
          f"{stats.clause_fired} clause verdicts — VERIFIED")
    return 0


def _build_fault_plan(spec, config: SimConfig, seed: int,
                      horizon: int, intensity: float):
    from repro.sim.faults import FaultPlan

    return FaultPlan.generate(
        seed,
        horizon=horizon,
        engines=tuple(spec.rules),
        task_sets=tuple(spec.task_sets),
        banks=config.queue_banks,
        rule_lanes=config.rule_lanes,
        intensity=intensity,
    )


def _engine_from_args(args: argparse.Namespace) -> str:
    """Resolve the simulation engine: --engine wins, --fast is an alias."""
    engine = getattr(args, "engine", None)
    if engine:
        return engine
    return "fast" if getattr(args, "fast", False) else "dense"


def _add_engine_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--engine", choices=("dense", "fast", "event"),
                        default=None,
                        help="simulation engine: dense (tick everything), "
                             "fast (scan-based idle skipping), event "
                             "(priority-queue wake-ups) — all cycle-exact")


def _store_from_args(args: argparse.Namespace) -> RunStore | None:
    """The run store this invocation appends to (None = ``--no-store``)."""
    if getattr(args, "no_store", False):
        return None
    return RunStore(getattr(args, "store", DEFAULT_STORE_DIR))


def _add_store_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--store", default=DEFAULT_STORE_DIR,
                        metavar="DIR",
                        help="run-store directory (default .repro)")
    parser.add_argument("--no-store", action="store_true",
                        help="do not record this run in the run store")


def _add_sweep_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for sweep points "
                             "(default 1 = in-process)")
    parser.add_argument("--cache", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="reuse cached results for already-simulated "
                             "sweep points (--no-cache forces "
                             "re-simulation; cache file lives in the "
                             "--store directory)")
    parser.add_argument("--resume", action="store_true",
                        help="resume an interrupted sweep: completed "
                             "points come back as cache hits and "
                             "quarantined (poison) points are skipped "
                             "via the sweep journal")
    parser.add_argument("--progress", action="store_true",
                        help="live sweep heartbeat on stderr (the "
                             "machine-readable sweep-status.json in the "
                             "store directory is always maintained; see "
                             "`repro sweep-status`)")
    parser.add_argument("--fleet-trace", metavar="FILE", default=None,
                        help="record per-worker job spans and write the "
                             "merged Chrome trace_event JSON here "
                             "(open in Perfetto; one lane per worker "
                             "pid)")


def _runner_from_args(args: argparse.Namespace, *, strict: bool = True,
                      retries: int = 1):
    """A :class:`~repro.exec.SweepRunner` configured from CLI flags.

    With caching on, a :class:`~repro.exec.SweepJournal` rides along in
    the same store directory so every CLI sweep is resumable after a
    crash; ``--no-cache`` disables both (resume is meaningless when
    completed points cannot be skipped).

    Fleet observability rides the same store directory: a
    :class:`~repro.obs.fleet.SweepProgress` always maintains
    ``sweep-status.json`` there (heartbeat on stderr only with
    ``--progress``), and ``--fleet-trace`` attaches a
    :class:`~repro.obs.fleet.FleetRecorder` whose merged Chrome trace
    :func:`_write_fleet_trace` exports once the command's sweeps are
    done.
    """
    from repro.exec import ResultCache, SweepJournal, SweepRunner
    from repro.obs.fleet import FleetRecorder, SweepProgress

    store_dir = getattr(args, "store", DEFAULT_STORE_DIR)
    cache = journal = None
    if getattr(args, "cache", True):
        cache = ResultCache(store_dir)
        journal = SweepJournal(store_dir)
    progress = SweepProgress(store_dir,
                             heartbeat=getattr(args, "progress", False))
    fleet = (FleetRecorder(store_dir)
             if getattr(args, "fleet_trace", None) else None)
    return SweepRunner(jobs=getattr(args, "jobs", 1), cache=cache,
                       strict=strict, retries=retries, journal=journal,
                       resume=getattr(args, "resume", False),
                       progress=progress, fleet=fleet)


def _write_fleet_trace(args: argparse.Namespace, runner) -> None:
    """Export the merged fleet trace if ``--fleet-trace`` asked for one.

    The confirmation goes to stderr: the stdout of every sweep-running
    command is byte-stable across ``--jobs`` values and diffed in CI.
    """
    path = getattr(args, "fleet_trace", None)
    if path is None or getattr(runner, "fleet", None) is None:
        return
    from repro.obs.fleet import write_fleet_trace

    doc = write_fleet_trace(path, runner.fleet)
    workers = doc["otherData"]["workers"]
    print(f"wrote {path} ({len(doc['traceEvents'])} events, "
          f"{len(workers)} workers)", file=sys.stderr)


def _store_sweep_record(args: argparse.Namespace, runner,
                        command: str, apps=()) -> None:
    """Append the sweep-level RunRecord (fleet page) to the run store.

    Silent on stdout for the same byte-stability reason as above; the
    run id differs between invocations.
    """
    store = _store_from_args(args)
    if store is None or runner.report.points == 0:
        return
    from repro.obs.runstore import record_from_sweep

    try:
        record = store.append(record_from_sweep(
            runner, command=command, apps=tuple(apps),
        ))
    except OSError as exc:
        print(f"error: could not store sweep record: {exc}",
              file=sys.stderr)
        return
    print(f"stored sweep record {record.run_id} -> {store.path}",
          file=sys.stderr)


def _resolve_run_ref(store: RunStore, ref: str):
    """A store run id, or ``golden:PATH`` for a golden fixture file."""
    if ref.startswith("golden:"):
        with open(ref[len("golden:"):], "r", encoding="utf-8") as handle:
            return golden_record(json.load(handle))
    return store.get(ref)


def _write_observability(args: argparse.Namespace, result) -> None:
    """Export the run's trace / metrics snapshot where requested."""
    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    if trace_out and result.obs is not None:
        result.obs.tracer.write_chrome_trace(trace_out)
        print(f"wrote {trace_out} "
              f"({result.obs.tracer.emitted} events, "
              f"{result.obs.tracer.evicted} evicted)")
    if metrics_out and result.metrics is not None:
        with open(metrics_out, "w", encoding="utf-8") as handle:
            json.dump(result.metrics.snapshot(), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        print(f"wrote {metrics_out}")


def cmd_simulate(args: argparse.Namespace) -> int:
    from repro.sim.accelerator import run_resilient
    from repro.sim.invariants import DEFAULT_CHECK_INTERVAL

    spec = _default_spec(args.app)
    store = _store_from_args(args)
    tracer = ScheduleTracer(max_cycles=args.trace_cycles) if args.trace \
        else None
    obs = Observability() if (args.trace_out or args.metrics_out
                              or store is not None) else None
    platform = EVAL_HARP.scaled(args.bandwidth)
    config = SimConfig(prefetch=args.prefetch,
                       engine=_engine_from_args(args))
    check_interval = (
        args.check_interval
        if args.check_interval is not None
        else (DEFAULT_CHECK_INTERVAL if args.check_invariants else None)
    )

    faults = None
    if args.inject is not None:
        # Size the fault windows from a fault-free baseline run so that
        # every event lands inside the perturbed execution.
        baseline = AcceleratorSim(
            spec, platform=platform, config=config
        ).run(verify=False)
        faults = _build_fault_plan(
            spec, config, args.inject, baseline.cycles, args.intensity,
        )

    wall_start = time.perf_counter()
    stage_names = None
    extra: dict = {}
    if args.resilient:
        res = run_resilient(
            spec, platform=platform, config=config,
            faults=faults,
            check_interval=check_interval
            if check_interval is not None else DEFAULT_CHECK_INTERVAL,
            obs=obs,
        )
        result = res.result
        extra = {"resilient": {"recovered": res.recovered,
                               "attempts": res.attempts,
                               "rollbacks": res.rollbacks,
                               "degradations": res.degradations}}
        print(f"{spec.name}: recovered={res.recovered} "
              f"attempts={res.attempts} rollbacks={res.rollbacks} "
              f"degradations={res.degradations} "
              f"faults={result.stats.faults_injected}")
    else:
        sim = AcceleratorSim(
            spec, platform=platform, config=config,
            tracer=tracer, faults=faults, check_interval=check_interval,
            obs=obs,
        )
        result = sim.run()
        stage_names = [
            stage.name for pipeline in sim.pipelines
            for stage in pipeline.stages
        ]
    wall_seconds = time.perf_counter() - wall_start
    print(f"{spec.name}: {result.cycles} cycles "
          f"({result.seconds * 1e6:.1f} us at 200 MHz), "
          f"utilization {result.utilization * 100:.1f}%, "
          f"squash {result.squash_fraction * 100:.1f}%, "
          f"cache hit {result.memory_hit_rate * 100:.0f}%, "
          f"{result.memory_bytes} bytes over QPI — VERIFIED")
    if config.engine != "dense":
        print(f"{config.engine} engine: {result.ff_jumps} jumps skipped "
              f"{result.ff_cycles_skipped} idle cycles "
              f"({result.ff_cycles_skipped / max(1, result.cycles) * 100:.1f}%"
              " of total)")
    if tracer is not None:
        print()
        print(tracer.timeline(width=args.trace_width))
    if args.profile:
        print()
        print("top stages by stall cycles:")
        stalls = sorted(result.stats.per_stage_stalls.items(),
                        key=lambda kv: -kv[1])[:8]
        for name, count in stalls:
            active = result.stats.per_stage_active.get(name, 0)
            print(f"  {name:40s} stall={count:7d} active={active:7d}")
    _write_observability(args, result)
    if store is not None:
        record = store.append(record_from_result(
            "simulate", spec, result, platform=platform, config=config,
            stage_names=stage_names, seed=args.inject,
            wall_seconds=wall_seconds, extra=extra,
        ))
        print(f"stored run {record.run_id} -> {store.path}")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Stall-attribution profile: where does every stage's time go?

    Runs the simulation with the structured tracer attached, folds the
    event stream into per-stage cycle accounting (active / stalled by
    reason / idle — each row sums exactly to the cycle count) and prints
    the most-stalled stages.  ``--trace-out`` additionally exports the
    Chrome ``trace_event`` JSON for Perfetto.
    """
    spec = _default_spec(args.app)
    store = _store_from_args(args)
    obs = Observability(trace_capacity=args.trace_capacity)
    platform = EVAL_HARP.scaled(args.bandwidth)
    config = SimConfig(engine=_engine_from_args(args))
    sim = AcceleratorSim(spec, platform=platform, config=config, obs=obs)
    wall_start = time.perf_counter()
    result = sim.run()
    wall_seconds = time.perf_counter() - wall_start
    stage_names = [
        stage.name for pipeline in sim.pipelines for stage in pipeline.stages
    ]
    accounting = obs.profiler.accounting(stage_names, result.cycles)
    print(f"{spec.name}: {result.cycles} cycles, "
          f"utilization {result.utilization * 100:.1f}%, "
          f"squash {result.squash_fraction * 100:.1f}% — VERIFIED")
    print()
    print(format_stall_report(accounting, result.cycles, top=args.top))
    _write_observability(args, result)
    if store is not None:
        record = store.append(record_from_result(
            "profile", spec, result, platform=platform, config=config,
            stage_names=stage_names, wall_seconds=wall_seconds,
        ))
        print(f"stored run {record.run_id} -> {store.path}")
    return 0


def cmd_fault_campaign(args: argparse.Namespace) -> int:
    """Seeded fault-injection campaign over a set of benchmarks.

    For each app: run a fault-free baseline to size the fault windows,
    generate a deterministic fault plan from the seed, then run under
    checkpoint/rollback recovery.  The summary is byte-identical across
    repeated invocations with the same seed.
    """
    from repro.eval.platforms import HARP
    from repro.exec import CliAppSource, FaultSpec, SimJob
    from repro.obs.runstore import record_from_outcome
    from repro.sim.stats import SimStats

    config = SimConfig()
    store = _store_from_args(args)
    # Campaign failures (recovery exhaustion) are expected outcomes, and
    # deterministic — retrying would only re-derive them.  Sweep/cache
    # reports go to stderr so the campaign's stdout stays byte-identical
    # across repeated seeded invocations (CI diffs it).
    runner = _runner_from_args(args, strict=False, retries=0)
    all_ok = True
    runs: list[dict] = []
    aggregate = SimStats()
    print(f"fault campaign: seed={args.seed} trials={args.trials} "
          f"intensity={args.intensity}")

    baseline_jobs = [
        SimJob(source=CliAppSource(app), platform=HARP, config=config,
               verify=False, tag=f"campaign-baseline:{app}")
        for app in args.apps
    ]
    baselines = runner.run(baseline_jobs)
    print(runner.report.summary(), file=sys.stderr)
    for app, baseline in zip(args.apps, baselines):
        if baseline.error:
            print(f"  {app:10s} baseline — FAILED: {baseline.error}")
            all_ok = False

    grid = [
        (app, trial, baseline)
        for app, baseline in zip(args.apps, baselines)
        if not baseline.error
        for trial in range(args.trials)
    ]
    trial_jobs = [
        SimJob(
            source=CliAppSource(app),
            platform=HARP,
            config=config,
            fault=FaultSpec(seed=args.seed + trial,
                            horizon=baseline.cycles,
                            intensity=args.intensity),
            resilient=True,
            check_interval=args.check_interval,
            checkpoint_interval=args.checkpoint_interval,
            seed=args.seed + trial,
            tag=f"campaign:{app}#{trial}",
        )
        for app, trial, baseline in grid
    ]
    outcomes = runner.run(trial_jobs)
    print(runner.report.summary(), file=sys.stderr)
    # The merged trace covers both sweeps (baselines, then trials); no
    # sweep-level run record here — the campaign's store contents are
    # part of its byte-stability contract.
    _write_fleet_trace(args, runner)

    for (app, trial, baseline), outcome in zip(grid, outcomes):
        if outcome.error:
            all_ok = False
            print(f"  {app:10s} trial={trial} — FAILED: {outcome.error}")
            continue
        stats = SimStats(**outcome.stats)
        aggregate = aggregate.merge(stats)
        res = outcome.resilient or {}
        if store is not None:
            # Silent append: see the stdout note above.
            store.append(record_from_outcome(
                "fault-campaign", outcome,
                platform=HARP, config=config, seed=args.seed + trial,
                extra={"trial": trial,
                       "baseline_cycles": baseline.cycles,
                       "rollbacks": res.get("rollbacks", 0),
                       "degradations": res.get("degradations", 0)},
            ))
        runs.append({
            "app": app,
            "trial": trial,
            "seed": args.seed + trial,
            "cycles": outcome.cycles,
            "baseline_cycles": baseline.cycles,
            "rollbacks": res.get("rollbacks", 0),
            "metrics": outcome.metrics,
        })
        print(f"  {app:10s} trial={trial} "
              f"injected={stats.faults_injected} "
              f"dropped={stats.events_dropped} "
              f"duplicated={stats.events_duplicated} "
              f"rollbacks={res.get('rollbacks', 0)} "
              f"degradations={res.get('degradations', 0)} "
              f"attempts={res.get('attempts', 1)} "
              f"cycles={outcome.cycles} "
              f"(baseline {baseline.cycles}) — VERIFIED")
        for failure in res.get("failures", []):
            print(f"    recovered@{failure['cycle']}: "
                  f"{failure['error']}")
    if args.metrics_out:
        from dataclasses import asdict

        payload = {
            "seed": args.seed,
            "trials": args.trials,
            "intensity": args.intensity,
            "runs": runs,
            "aggregate": asdict(aggregate),
        }
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.metrics_out} ({len(runs)} run snapshots)")
    print("campaign: " + ("all runs VERIFIED" if all_ok
                          else "some runs FAILED"))
    return 0 if all_ok else 1


def cmd_experiment(args: argparse.Namespace) -> int:
    from repro.eval import experiments, reporting
    from repro.eval.export import export_all, store_experiment_results

    kind = args.kind
    exported = {}
    sweep_pending = None
    apps = tuple(args.apps) if args.apps else None
    engine = getattr(args, "engine", None)
    if kind == "table1":
        result = experiments.run_table1(engine=engine)
        print(reporting.format_table1(result))
        exported["table1"] = result
    elif kind == "figure9":
        runner = _runner_from_args(args)
        result = experiments.run_figure9(
            scale=args.scale, runner=runner, engine=engine,
            **({"apps": apps} if apps else {}),
        )
        print(reporting.format_figure9(result))
        print(runner.report.summary())
        _write_fleet_trace(args, runner)
        sweep_pending = (runner, "experiment:figure9", sorted(result))
        exported["figure9"] = result
    elif kind == "figure10":
        runner = _runner_from_args(args)
        result = experiments.run_figure10(
            scale=args.scale, runner=runner, engine=engine,
            **({"apps": apps} if apps else {}),
        )
        print(reporting.format_figure10(result))
        print(runner.report.summary())
        _write_fleet_trace(args, runner)
        sweep_pending = (runner, "experiment:figure10", sorted(result))
        exported["figure10"] = result
    elif kind == "resources":
        result = experiments.run_resources(scale=min(args.scale, 0.5))
        print(reporting.format_resources(result))
        exported["resources"] = result
    if args.json:
        path = export_all(args.json, **exported)
        print(f"\nwrote {path}")
    store = _store_from_args(args)
    if store is not None and exported:
        count = store_experiment_results(store, **exported)
        print(f"stored {count} experiment records -> {store.path}")
    # Stored last so `--run latest` features the sweep-level record
    # (the fleet page) rather than an arbitrary per-point record.
    if sweep_pending is not None:
        runner, command, sweep_apps = sweep_pending
        _store_sweep_record(args, runner, command, apps=sweep_apps)
    return 0


def _error_line(exc: BaseException) -> str:
    """One printable line for a store/ref failure (no quoted KeyError)."""
    if isinstance(exc, KeyError) and exc.args:
        return str(exc.args[0])
    return str(exc)


def cmd_runs(args: argparse.Namespace) -> int:
    """Query or compact the cross-run telemetry store."""
    store = RunStore(args.store)
    try:
        if args.runs_command == "list":
            # A store that was never written is fine to list (empty
            # table); one that exists but yields nothing readable is an
            # error worth a loud line.
            records = store.records()
            if not records and store.skipped:
                store.ensure_readable()
            if getattr(args, "json", False):
                print(json.dumps([r.to_dict() for r in records],
                                 indent=2, sort_keys=True))
            else:
                print(format_records_table(records))
        elif args.runs_command == "show":
            print(format_record(_resolve_run_ref(store, args.ref)))
        elif args.runs_command == "compact":
            if not store.path.exists():
                raise KeyError(f"run store {store.path} does not exist")
            result = store.compact()
            print(f"compacted {store.path}: "
                  f"{result['before_lines']} -> {result['after_lines']} "
                  f"lines, {result['dropped_corrupt']} corrupt dropped")
        else:  # diff
            a = _resolve_run_ref(store, args.a)
            b = _resolve_run_ref(store, args.b)
            print(format_diff(diff_records(a, b)))
    except (KeyError, OSError, ValueError) as exc:
        # Missing, empty, or corrupt store files (and unreadable
        # golden: files) end in one line on stderr, never a traceback.
        print(f"error: {_error_line(exc)}", file=sys.stderr)
        return 1
    return 0


def _cache_lock_info(cache) -> dict:
    """Holder info of the cache file's lock sidecar, if any."""
    from repro.io.safety import FileLock, pid_alive

    holder = FileLock(cache.path).holder()
    info: dict = {"holder_pid": holder.get("pid"),
                  "mode": holder.get("mode")}
    info["alive"] = pid_alive(holder.get("pid"))
    stamped = holder.get("time")
    info["age_seconds"] = (round(max(0.0, time.time() - stamped), 1)
                           if isinstance(stamped, (int, float)) else None)
    return info


def cmd_cache(args: argparse.Namespace) -> int:
    """Inspect and maintain the sweep result cache."""
    from repro.exec import ResultCache
    from repro.io.safety import lock_telemetry_snapshot

    cache = ResultCache(args.store)
    try:
        if args.cache_command == "stats":
            stats = cache.stats()
            if not stats["exists"]:
                print(f"error: result cache {cache.path} does not exist",
                      file=sys.stderr)
                return 1
            lock = _cache_lock_info(cache)
            if getattr(args, "json", False):
                payload = dict(stats)
                payload["path"] = str(stats["path"])
                payload["lock"] = lock
                payload["lock_telemetry"] = lock_telemetry_snapshot()
                print(json.dumps(payload, indent=2, sort_keys=True))
                return 0
            print(f"result cache {stats['path']}: "
                  f"{stats['entries']} entries in {stats['lines']} lines "
                  f"({stats['bytes']} bytes)")
            print(f"  superseded: {stats['superseded']}  "
                  f"stale-schema: {stats['stale_schema']}  "
                  f"malformed: {stats['malformed']}  "
                  f"corrupt: {stats['corrupt']}")
            if lock["holder_pid"] is not None:
                state = "alive" if lock["alive"] else "dead"
                age = (f", stamped {lock['age_seconds']:.1f}s ago"
                       if lock["age_seconds"] is not None else "")
                print(f"  lock: last holder pid {lock['holder_pid']} "
                      f"({state}{age})")
            return 0
        if args.cache_command == "verify":
            report = cache.verify()
            if not report["exists"]:
                print(f"error: result cache {cache.path} does not exist",
                      file=sys.stderr)
                return 1
            status = "OK" if report["ok"] else "DAMAGED"
            print(f"verify {report['path']}: {status} — "
                  f"{report['entries']} entries, "
                  f"{report['corrupt']} corrupt lines"
                  + (f" (lines {report['corrupt_lines']})"
                     if report["corrupt_lines"] else "")
                  + f", {report['undecodable']} undecodable entries")
            if not report["ok"]:
                print("  run `repro cache compact` to drop the damage",
                      file=sys.stderr)
            return 0 if report["ok"] else 1
        if args.cache_command == "compact":
            result = cache.compact()
            print(f"compacted {cache.path}: "
                  f"{result['before_lines']} -> {result['after_lines']} "
                  f"lines ({result['dropped_corrupt']} corrupt, "
                  f"{result['dropped_superseded']} superseded dropped)")
            return 0
        # prune
        result = cache.prune(args.max_entries)
        print(f"pruned {cache.path}: "
              f"{result['before_lines']} -> {result['after_lines']} lines "
              f"({result['dropped_corrupt']} corrupt, "
              f"{result['dropped_superseded']} superseded, "
              f"{result['dropped_stale_schema']} stale-schema dropped"
              + (f", capped to {args.max_entries} entries"
                 if args.max_entries is not None else "")
              + ")")
        return 0
    except (KeyError, OSError, ValueError) as exc:
        print(f"error: {_error_line(exc)}", file=sys.stderr)
        return 1


def _observed_record(app: str, bandwidth: float, engine: str = "dense"):
    """Run ``app`` once with full observability; return (spec, record)."""
    spec = _default_spec(app)
    obs = Observability()
    platform = EVAL_HARP.scaled(bandwidth)
    config = SimConfig(engine=engine)
    sim = AcceleratorSim(spec, platform=platform, config=config, obs=obs)
    wall_start = time.perf_counter()
    result = sim.run()
    wall_seconds = time.perf_counter() - wall_start
    stage_names = [
        stage.name for pipeline in sim.pipelines for stage in pipeline.stages
    ]
    return spec, record_from_result(
        "diagnose", spec, result, platform=platform, config=config,
        stage_names=stage_names, wall_seconds=wall_seconds,
    )


def cmd_diagnose(args: argparse.Namespace) -> int:
    """Classify a run's bottleneck from its stored (or fresh) telemetry."""
    from repro.obs.diagnose import (
        cross_check,
        diagnose_record,
        format_findings,
    )

    if args.run is not None:
        store = RunStore(args.store)
        try:
            record = _resolve_run_ref(store, args.run)
        except (KeyError, OSError, ValueError) as exc:
            print(f"error: {_error_line(exc)}", file=sys.stderr)
            return 1
    elif args.app is not None:
        _, record = _observed_record(args.app, args.bandwidth,
                                     _engine_from_args(args))
        store = _store_from_args(args)
        if store is not None:
            record = store.append(record)
    else:
        print("error: give an APP to simulate or --run REF to diagnose "
              "a stored run", file=sys.stderr)
        return 1
    findings = diagnose_record(record)
    check = (cross_check(findings, record.critical_path)
             if record.critical_path is not None else None)
    if getattr(args, "json", False):
        payload = {
            "app": record.app,
            "run_id": record.run_id,
            "cycles": record.cycles,
            "bandwidth_scale": record.platform.get("bandwidth_scale", 1.0),
            "utilization": round(record.utilization, 6),
            "findings": [finding.to_dict() for finding in findings],
            "critical_path_cross_check": check,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(format_findings(record, findings))
    if check is not None:
        print(f"  critical-path cross-check: {check['note']}")
    return 0


def cmd_critpath(args: argparse.Namespace) -> int:
    """Extract the measured critical path of a freshly simulated run.

    Runs the app with a :class:`~repro.sim.ledger.TokenLedger` attached,
    walks the per-token provenance record backwards from the last
    retirement (see :mod:`repro.obs.critpath`), and prints the bucket
    decomposition — which sums exactly to the cycle count — plus the
    what-if speedup bounds.  ``--json`` emits the stored summary block
    (engine-invariant: dense/fast/event produce byte-identical output);
    ``--trace-out`` writes the run's Chrome trace with the chain
    appended as a Perfetto flow-arrow track.  The bottleneck
    classifier's verdict is always cross-checked against the path's
    dominant bucket.
    """
    from repro.obs.critpath import (
        critpath_trace_events,
        extract_critical_path,
        format_critpath,
        result_saturation,
        summary_block,
    )
    from repro.obs.diagnose import cross_check, diagnose_record
    from repro.sim.ledger import TokenLedger

    spec = _default_spec(args.app)
    store = _store_from_args(args)
    # Telemetry is always on here: the cross-check needs the stall
    # record, and this is an analysis command — nobody times it.
    obs = Observability()
    platform = EVAL_HARP.scaled(args.bandwidth)
    config = SimConfig(engine=_engine_from_args(args))
    sim = AcceleratorSim(spec, platform=platform, config=config, obs=obs,
                         ledger=TokenLedger())
    wall_start = time.perf_counter()
    result = sim.run()
    wall_seconds = time.perf_counter() - wall_start
    critpath = extract_critical_path(
        result.ledger, result.cycles,
        rule_lanes=config.rule_lanes,
        top_segments=args.top,
        saturation=result_saturation(result, platform),
    )
    summary = summary_block(critpath)

    stage_names = [
        stage.name for pipeline in sim.pipelines
        for stage in pipeline.stages
    ]
    record = record_from_result(
        "critpath", spec, result, platform=platform, config=config,
        stage_names=stage_names, wall_seconds=wall_seconds,
        critical_path=summary,
    )
    check = cross_check(diagnose_record(record), summary)

    # Confirmations go to stderr in --json mode so stdout stays one
    # parseable document (and is byte-identical across engines).
    aside = sys.stderr if args.json else sys.stdout
    if args.json:
        payload = dict(summary)
        payload["app"] = spec.name
        payload["diagnose_cross_check"] = check
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(format_critpath(summary, app=spec.name))
        if check is not None:
            print()
            print(f"  diagnose cross-check: {check['note']}")
    if args.trace_out:
        doc = obs.tracer.chrome_trace()
        doc["traceEvents"].extend(critpath_trace_events(critpath))
        with open(args.trace_out, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, indent=None, separators=(",", ":"))
        print(f"wrote {args.trace_out} ({len(doc['traceEvents'])} events, "
              f"{summary['path_segments']} path segments)", file=aside)
    if store is not None:
        record = store.append(record)
        print(f"stored run {record.run_id} -> {store.path}", file=aside)
    return 0


def cmd_dashboard(args: argparse.Namespace) -> int:
    """Render the self-contained HTML dashboard from the run store."""
    from repro.obs.dashboard import write_dashboard
    from repro.obs.diagnose import diagnose_record

    store = RunStore(args.store)
    history = store.records()
    if args.app is not None:
        _, record = _observed_record(args.app, args.bandwidth,
                                     _engine_from_args(args))
        if not args.no_store:
            record = store.append(record)
            history.append(record)
    else:
        try:
            record = _resolve_run_ref(store, args.run)
        except (KeyError, OSError, ValueError) as exc:
            print(f"error: {_error_line(exc)} — or pass an APP to "
                  "simulate one now", file=sys.stderr)
            return 1
    write_dashboard(args.out, record, diagnose_record(record), history)
    print(f"wrote {args.out} (run {record.run_id or 'unsaved'}, "
          f"{len(history)} stored runs)")
    return 0


def cmd_sweep_status(args: argparse.Namespace) -> int:
    """Report the running / finished / crashed sweep in a store dir.

    Reads the atomically-rewritten ``sweep-status.json`` the runner
    maintains, so it works while the sweep runs *and* after a crash (a
    "running" status whose pid is gone is reported as crashed).
    """
    from repro.obs.fleet import format_status, load_status

    status = load_status(args.store)
    if status is None:
        print(f"error: no sweep status in {args.store} (no sweep has "
              "run there, or the status file is unreadable)",
              file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
    else:
        print(format_status(status))
    return 0


def cmd_regress(args: argparse.Namespace) -> int:
    """Rule-based regression detection (see docs/observability.md).

    Without ``--bench``: group the run store into comparable series and
    flag cycle drift (fail) and wall-clock / throughput outliers (warn).
    With ``--bench CURRENT BASELINE``: compare two ``BENCH_*.json``
    documents using the same gates as ``scripts/bench_check.py``.
    Exit 1 iff any *fail*-severity finding fired; warnings alone exit 0.
    """
    from repro.obs.regress import (
        format_regressions,
        regress_bench,
        regress_store,
    )

    try:
        if args.bench:
            with open(args.bench[0], "r", encoding="utf-8") as handle:
                current = json.load(handle)
            with open(args.bench[1], "r", encoding="utf-8") as handle:
                baseline = json.load(handle)
            findings = regress_bench(
                current, baseline,
                speedup_tolerance=args.speedup_tolerance,
                sweep_tolerance=args.sweep_tolerance,
                wall_band=args.wall_band,
            )
            source = f"{args.bench[0]} vs {args.bench[1]}"
        else:
            store = RunStore(args.store)
            records = store.records()
            findings = regress_store(
                records,
                wall_band=args.wall_band,
                min_wall_samples=args.min_wall_samples,
            )
            source = f"{len(records)} runs in {store.path}"
    except (OSError, ValueError) as exc:
        print(f"error: {_error_line(exc)}", file=sys.stderr)
        return 1
    fails = sum(1 for f in findings if f.severity == "fail")
    if args.json:
        print(json.dumps({
            "source": source,
            "fails": fails,
            "warnings": len(findings) - fails,
            "findings": [f.to_dict() for f in findings],
        }, indent=2, sort_keys=True))
    else:
        print(format_regressions(
            findings, quiet_message=f"no regressions found ({source})"
        ))
    return 1 if fails else 0


def cmd_dse(args: argparse.Namespace) -> int:
    from repro.exec import CliAppSource
    from repro.synthesis.dse import explore, format_frontier

    spec_builder = lambda: _default_spec(args.app)  # noqa: E731
    runner = _runner_from_args(args)
    result = explore(
        spec_builder,
        replica_options=tuple(args.replicas),
        lane_options=tuple(args.lanes),
        platform=EVAL_HARP,
        runner=runner,
        spec_source=CliAppSource(args.app),
    )
    print(format_frontier(result))
    print(runner.report.summary())
    _write_fleet_trace(args, runner)
    _store_sweep_record(args, runner, "dse", apps=(args.app,))
    best = result.best_performance()
    print(f"best performance: {best.label} at {best.cycles} cycles")
    return 0


def cmd_rtl(args: argparse.Namespace) -> int:
    from repro.synthesis.rtl import emit_rtl_for_spec

    text = emit_rtl_for_spec(_default_spec(args.app))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.output} ({len(text.splitlines())} lines)")
    else:
        print(text)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Aggressive pipelining of irregular applications "
                    "(ISCA 2017) — reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmarks").set_defaults(
        handler=cmd_list
    )

    rules = sub.add_parser("rules", help="pretty-print an app's ECA rules")
    rules.add_argument("app")
    rules.set_defaults(handler=cmd_rules)

    run = sub.add_parser("run", help="execute on the software debug runtime")
    run.add_argument("app")
    run.add_argument("--workers", type=int, default=8)
    run.add_argument("--threaded", action="store_true",
                     help="use the futures/promises OS-thread runtime")
    run.set_defaults(handler=cmd_run)

    simulate = sub.add_parser("simulate",
                              help="cycle-level accelerator simulation")
    simulate.add_argument("app")
    simulate.add_argument("--bandwidth", type=float, default=1.0,
                          help="QPI bandwidth multiplier (Figure 10 knob)")
    simulate.add_argument("--prefetch", action="store_true",
                          help="enable next-line prefetch (extension)")
    simulate.add_argument("--fast", action="store_true",
                          help="alias for --engine fast")
    _add_engine_option(simulate)
    simulate.add_argument("--trace", action="store_true",
                          help="print an ASCII schedule timeline")
    simulate.add_argument("--trace-cycles", type=int, default=2000)
    simulate.add_argument("--trace-width", type=int, default=72)
    simulate.add_argument("--profile", action="store_true",
                          help="print the most-stalled stages")
    simulate.add_argument("--inject", type=int, metavar="SEED",
                          help="inject a seeded fault plan")
    simulate.add_argument("--intensity", type=float, default=1.0,
                          help="fault plan intensity multiplier")
    simulate.add_argument("--check-invariants", action="store_true",
                          help="run the invariant sanitizer periodically")
    simulate.add_argument("--check-interval", type=int, default=None,
                          help="cycles between sanitizer passes")
    simulate.add_argument("--resilient", action="store_true",
                          help="run under checkpoint/rollback recovery")
    simulate.add_argument("--trace-out", metavar="FILE",
                          help="write a Chrome trace_event JSON "
                               "(load in Perfetto / chrome://tracing)")
    simulate.add_argument("--metrics-out", metavar="FILE",
                          help="write a metrics-registry snapshot JSON")
    _add_store_options(simulate)
    simulate.set_defaults(handler=cmd_simulate)

    profile = sub.add_parser(
        "profile",
        help="stall-attribution profile of a simulated run",
    )
    profile.add_argument("app")
    profile.add_argument("--bandwidth", type=float, default=1.0,
                         help="QPI bandwidth multiplier (Figure 10 knob)")
    profile.add_argument("--fast", action="store_true",
                         help="alias for --engine fast")
    _add_engine_option(profile)
    profile.add_argument("--top", type=int, default=16,
                         help="rows to print (most-stalled first)")
    profile.add_argument("--trace-capacity", type=int, default=65536,
                         help="event ring-buffer capacity")
    profile.add_argument("--trace-out", metavar="FILE",
                         help="also write the Chrome trace_event JSON")
    profile.add_argument("--metrics-out", metavar="FILE",
                         help="also write the metrics snapshot JSON")
    _add_store_options(profile)
    profile.set_defaults(handler=cmd_profile)

    campaign = sub.add_parser(
        "fault-campaign",
        help="seeded fault injection with checkpoint/rollback recovery",
    )
    campaign.add_argument("--seed", type=int, default=7)
    campaign.add_argument("--apps", nargs="+",
                          default=["SPEC-BFS", "SPEC-SSSP"])
    campaign.add_argument("--trials", type=int, default=1,
                          help="fault plans per app (seed, seed+1, ...)")
    campaign.add_argument("--intensity", type=float, default=1.0)
    campaign.add_argument("--check-interval", type=int, default=2048)
    campaign.add_argument("--checkpoint-interval", type=int, default=5000)
    _add_sweep_options(campaign)
    campaign.add_argument("--metrics-out", metavar="FILE",
                          help="write per-run metric snapshots plus the "
                               "merged aggregate as JSON")
    _add_store_options(campaign)
    campaign.set_defaults(handler=cmd_fault_campaign)

    experiment = sub.add_parser("experiment",
                                help="regenerate a paper table/figure")
    experiment.add_argument(
        "kind", choices=("table1", "figure9", "figure10", "resources")
    )
    experiment.add_argument("--scale", type=float, default=1.0)
    experiment.add_argument("--apps", nargs="+", metavar="APP",
                            help="restrict figure9/figure10 to these "
                                 "benchmarks (default: all six)")
    _add_engine_option(experiment)
    _add_sweep_options(experiment)
    experiment.add_argument("--json", help="also export results to JSON")
    _add_store_options(experiment)
    experiment.set_defaults(handler=cmd_experiment)

    runs = sub.add_parser("runs", help="query the cross-run telemetry "
                                       "store (.repro/runs.jsonl)")
    runs.add_argument("--store", default=DEFAULT_STORE_DIR, metavar="DIR")
    runs_sub = runs.add_subparsers(dest="runs_command", required=True)
    runs_list = runs_sub.add_parser("list", help="table of every stored "
                                                 "run")
    runs_list.add_argument("--json", action="store_true",
                           help="emit the full records as JSON instead "
                                "of the table")
    runs_show = runs_sub.add_parser("show", help="one run in detail")
    runs_show.add_argument("ref", help="run id, prefix, 'latest', a "
                                       "negative index, or golden:PATH")
    runs_diff = runs_sub.add_parser(
        "diff", help="per-stall-bucket cycle deltas between two runs "
                     "(or against a golden: baseline)")
    runs_diff.add_argument("a")
    runs_diff.add_argument("b")
    runs_sub.add_parser(
        "compact", help="rewrite the store dropping corrupt/torn lines "
                        "(run ids are preserved)")
    runs.set_defaults(handler=cmd_runs)

    cache = sub.add_parser(
        "cache", help="inspect and maintain the sweep result cache "
                      "(.repro/simcache.jsonl)")
    cache.add_argument("--store", default=DEFAULT_STORE_DIR, metavar="DIR",
                       help="directory holding the cache (default .repro)")
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_stats = cache_sub.add_parser(
        "stats", help="entry/line/corruption accounting plus lock "
                      "holder info")
    cache_stats.add_argument("--json", action="store_true",
                             help="emit stats, lock holder, and lock "
                                  "telemetry as JSON")
    cache_sub.add_parser("verify", help="deep check: every entry must "
                                        "decode; exit 1 on damage")
    cache_sub.add_parser("compact", help="drop corrupt and superseded "
                                         "lines (atomic rewrite)")
    cache_prune = cache_sub.add_parser(
        "prune", help="compact plus drop stale-schema entries, "
                      "optionally capping the entry count")
    cache_prune.add_argument("--max-entries", type=int, default=None,
                             metavar="N",
                             help="keep only the N most recent entries")
    cache.set_defaults(handler=cmd_cache)

    diagnose = sub.add_parser(
        "diagnose", help="rank the bottlenecks of a run "
                         "(memory / bandwidth / rule-lane / queue / "
                         "squash / host-launch)")
    diagnose.add_argument("app", nargs="?",
                          help="simulate this app with observability on")
    diagnose.add_argument("--run", metavar="REF",
                          help="diagnose a stored run instead")
    diagnose.add_argument("--bandwidth", type=float, default=1.0)
    diagnose.add_argument("--fast", action="store_true",
                          help="alias for --engine fast")
    diagnose.add_argument("--json", action="store_true",
                          help="emit the ranked findings (and the "
                               "critical-path cross-check, when the "
                               "record has one) as JSON")
    _add_engine_option(diagnose)
    _add_store_options(diagnose)
    diagnose.set_defaults(handler=cmd_diagnose)

    critpath = sub.add_parser(
        "critpath", help="extract the measured critical path of a run "
                         "(per-token provenance walk; bucket "
                         "decomposition + what-if speedup bounds)")
    critpath.add_argument("app",
                          help="simulate this app with a TokenLedger "
                               "attached")
    critpath.add_argument("--bandwidth", type=float, default=1.0,
                          help="QPI bandwidth multiplier (Figure 10 "
                               "knob)")
    critpath.add_argument("--fast", action="store_true",
                          help="alias for --engine fast")
    _add_engine_option(critpath)
    critpath.add_argument("--top", type=int, default=12,
                          help="longest segments to print (default 12)")
    critpath.add_argument("--json", action="store_true",
                          help="emit the summary block as JSON "
                               "(byte-identical across engines)")
    critpath.add_argument("--trace-out", metavar="FILE",
                          help="write the Chrome trace with the "
                               "critical path as a flow-arrow track "
                               "(open in Perfetto)")
    _add_store_options(critpath)
    critpath.set_defaults(handler=cmd_critpath)

    dashboard = sub.add_parser(
        "dashboard", help="write the self-contained HTML dashboard")
    dashboard.add_argument("app", nargs="?",
                           help="simulate this app first (else use --run)")
    dashboard.add_argument("--run", metavar="REF", default="latest",
                           help="stored run to feature (default latest)")
    dashboard.add_argument("--out", default="dashboard.html",
                           metavar="FILE")
    dashboard.add_argument("--bandwidth", type=float, default=1.0)
    dashboard.add_argument("--fast", action="store_true",
                           help="alias for --engine fast")
    _add_engine_option(dashboard)
    _add_store_options(dashboard)
    dashboard.set_defaults(handler=cmd_dashboard)

    status = sub.add_parser(
        "sweep-status", help="status of the running (or crashed) sweep "
                             "in a store directory")
    status.add_argument("--store", default=DEFAULT_STORE_DIR,
                        metavar="DIR",
                        help="store directory holding sweep-status.json "
                             "(default .repro)")
    status.add_argument("--json", action="store_true",
                        help="emit the raw status document")
    status.set_defaults(handler=cmd_sweep_status)

    regress = sub.add_parser(
        "regress", help="rule-based regression detection over the run "
                        "store or BENCH_*.json files (exit 1 on any "
                        "fail-severity finding)")
    regress.add_argument("--store", default=DEFAULT_STORE_DIR,
                         metavar="DIR",
                         help="run store to analyze (default .repro)")
    regress.add_argument("--bench", nargs=2,
                         metavar=("CURRENT", "BASELINE"),
                         help="compare two BENCH_*.json documents "
                              "instead of the run store")
    regress.add_argument("--wall-band", type=float, default=0.5,
                         metavar="F",
                         help="wall-clock / throughput noise band "
                              "(default 0.5 = +50%%, warn only)")
    regress.add_argument("--min-wall-samples", type=int, default=4,
                         metavar="N",
                         help="series length before wall-clock warnings "
                              "apply (default 4)")
    regress.add_argument("--speedup-tolerance", type=float, default=0.20,
                         metavar="F",
                         help="fast-forward speedup floor tolerance "
                              "(default 0.20)")
    regress.add_argument("--sweep-tolerance", type=float, default=0.35,
                         metavar="F",
                         help="parallel-sweep speedup floor tolerance "
                              "(default 0.35)")
    regress.add_argument("--json", action="store_true",
                         help="emit findings as JSON")
    regress.set_defaults(handler=cmd_regress)

    rtl = sub.add_parser("rtl", help="emit the SystemVerilog skeleton")
    rtl.add_argument("app")
    rtl.add_argument("--output", help="write to a file instead of stdout")
    rtl.set_defaults(handler=cmd_rtl)

    dse = sub.add_parser("dse", help="design-space exploration")
    dse.add_argument("app")
    dse.add_argument("--replicas", type=int, nargs="+", default=[1, 2, 4])
    dse.add_argument("--lanes", type=int, nargs="+", default=[16, 64])
    dse.add_argument("--store", default=DEFAULT_STORE_DIR, metavar="DIR",
                     help="directory holding the result cache "
                          "(default .repro)")
    _add_sweep_options(dse)
    dse.set_defaults(handler=cmd_dse)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
