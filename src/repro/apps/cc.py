"""SPEC-CC: speculative connected components (extension benchmark).

Not part of the paper's six benchmarks, but the framework is problem-
independent (Section 1); this app exercises the same speculative pattern as
SPEC-SSSP on a different invariant: minimum-label propagation.  Every
vertex proposes its own id; a propagation task commits a combining-min
write to its vertex's label and, when it improved it, pushes the label to
the neighbours.  The rule squashes propagations that a commit has already
made useless.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.eca import compile_rule
from repro.core.kernel import (
    AllocRule,
    Alu,
    Enqueue,
    Expand,
    Guard,
    Kernel,
    Load,
    Rendezvous,
    Store,
)
from repro.core.spec import ApplicationSpec, make_task_sets
from repro.core.state import MemorySpace
from repro.errors import SimulationError
from repro.substrates.graphs.algorithms import connected_components
from repro.substrates.graphs.csr import CSRGraph

UNLABELLED = np.iinfo(np.int64).max

SPEC_CC_RULE = """
rule label_conflict(my_index, addr, mylabel):
    on reach propagate.setLabel
        if event.addr == addr and event.value <= mylabel
        do return false
    otherwise immediately return true
"""


def _expand_neighbors(env: dict[str, Any], state: MemorySpace) -> list[dict]:
    graph: CSRGraph = state.object("graph")
    return [{"w": int(u)} for u in graph.neighbors(env["vertex"])]


def _neighbor_traffic(env: dict[str, Any], state: MemorySpace) -> int:
    graph: CSRGraph = state.object("graph")
    return 16 + 8 * graph.degree(env["vertex"])


def spec_cc(graph: CSRGraph) -> ApplicationSpec:
    """Build the SPEC-CC specification for ``graph``."""
    oracle = connected_components(graph)

    def make_state() -> MemorySpace:
        state = MemorySpace()
        state.add_array(
            "comp", np.full(graph.num_vertices, UNLABELLED, dtype=np.int64),
            element_bytes=8,
        )
        state.add_object("graph", graph)
        return state

    def verify(state: MemorySpace) -> None:
        comp = np.asarray(state.region("comp").storage)
        if np.any(comp == UNLABELLED):
            raise SimulationError("some vertices were never labelled")
        # Same partition as the oracle, and each label is the component's
        # minimum vertex id.
        for vertex in range(graph.num_vertices):
            members = np.flatnonzero(oracle == oracle[vertex])
            expected = int(members.min())
            if comp[vertex] != expected:
                raise SimulationError(
                    f"vertex {vertex}: label {comp[vertex]}, "
                    f"expected component minimum {expected}"
                )

    propagate_kernel = Kernel("propagate", [
        Alu("__addr__", lambda env: env["vertex"] * 8, reads=("vertex",)),
        AllocRule("label_conflict", lambda env: {
            "addr": env["__addr__"], "mylabel": env["label"]}),
        Load("cur", "comp", lambda env: env["vertex"]),
        Guard(lambda env: env["label"] < env["cur"]),
        Rendezvous("commit"),
        Store("comp", lambda env: env["vertex"], lambda env: env["label"],
              label="setLabel", combine=min, dst="old"),
        Expand(_expand_neighbors, traffic=_neighbor_traffic),
        Enqueue("propagate",
                lambda env: {"vertex": env["w"], "label": env["label"]},
                when=lambda env: env["label"] < env["old"]),
    ])

    def initial_tasks(state: MemorySpace) -> list[tuple[str, dict]]:
        return [
            ("propagate", {"vertex": v, "label": v})
            for v in range(graph.num_vertices)
        ]

    return ApplicationSpec(
        name="SPEC-CC",
        mode="speculative",
        task_sets=make_task_sets([
            ("propagate", "for-each", ("vertex", "label")),
        ]),
        kernels={"propagate": propagate_kernel},
        rules={"label_conflict": compile_rule(SPEC_CC_RULE)},
        make_state=make_state,
        initial_tasks=initial_tasks,
        verify=verify,
        description="speculative connected components by label propagation",
    )
