"""COOR-SSSP: coordinative delta-stepping SSSP (extension benchmark).

The coordinative counterpart to SPEC-SSSP, analogous to how COOR-BFS
relates to SPEC-BFS: relaxations are priority-indexed by their distance
*bucket* (Meyer & Sanders' delta-stepping), and a gate rule releases a
whole bucket of relaxations together once every lighter bucket has
drained.  Work efficiency improves (fewer wasted relaxations than the
speculative version) at the cost of bucket-boundary coordination — the
classic speculative/coordinative trade the paper's Section 2.4 describes.

Correctness does not depend on the gating: the commit is the same
combining-min store as SPEC-SSSP, so the gate only *orders* work.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.eca import compile_rule
from repro.core.kernel import (
    AllocRule,
    Enqueue,
    Expand,
    Guard,
    Kernel,
    Load,
    Rendezvous,
    Store,
)
from repro.core.spec import ApplicationSpec, make_task_sets
from repro.core.state import MemorySpace
from repro.errors import SimulationError
from repro.substrates.graphs.algorithms import dijkstra_distances
from repro.substrates.graphs.csr import CSRGraph

INT_INF = np.iinfo(np.int64).max // 4

BUCKET_GATE = """
rule bucket_gate():
    otherwise return true
"""


def coor_sssp(graph: CSRGraph, root: int = 0, delta: int = 64
              ) -> ApplicationSpec:
    """Build the COOR-SSSP specification (bucket width ``delta``)."""
    if delta < 1:
        raise SimulationError("delta must be positive")
    expected = dijkstra_distances(graph, root)

    def make_state() -> MemorySpace:
        state = MemorySpace()
        dist = np.full(graph.num_vertices, INT_INF, dtype=np.int64)
        dist[root] = 0
        state.add_array("dist", dist, element_bytes=8)
        state.add_object("graph", graph)
        return state

    def verify(state: MemorySpace) -> None:
        got = np.asarray(state.region("dist").storage, dtype=np.float64)
        got[got >= INT_INF] = np.inf
        if not np.array_equal(got, expected):
            bad = int(np.flatnonzero(got != expected)[0])
            raise SimulationError(
                f"COOR-SSSP distances wrong: vertex {bad} got {got[bad]}, "
                f"expected {expected[bad]}"
            )

    def expand_relaxations(env: dict[str, Any], state: MemorySpace):
        g: CSRGraph = state.object("graph")
        v = env["vertex"]
        return [
            {
                "w": int(u),
                "cand2": env["cand"] + int(weight),
                "bucket2": (env["cand"] + int(weight)) // delta,
            }
            for u, weight in zip(g.neighbors(v), g.neighbor_weights(v))
        ]

    def relax_traffic(env: dict[str, Any], state: MemorySpace) -> int:
        g: CSRGraph = state.object("graph")
        return 16 + 16 * g.degree(env["vertex"])

    relax_kernel = Kernel("relax", [
        # The gate: wait until this bucket ties the minimum live bucket.
        AllocRule("bucket_gate", lambda env: {}),
        Rendezvous("gate"),
        Load("cur", "dist", lambda env: env["vertex"]),
        Guard(lambda env: env["cand"] < env["cur"]),
        Store("dist", lambda env: env["vertex"], lambda env: env["cand"],
              label="setDist", combine=min, dst="old"),
        Guard(lambda env: env["cand"] < env["old"]),
        Expand(expand_relaxations, traffic=relax_traffic),
        Enqueue("relax", lambda env: {
            "vertex": env["w"], "cand": env["cand2"],
            "bucket": env["bucket2"]}),
    ])

    def initial_tasks(state: MemorySpace) -> list[tuple[str, dict]]:
        return [
            ("relax", {"vertex": int(u), "cand": int(w),
                       "bucket": int(w) // delta})
            for u, w in zip(graph.neighbors(root),
                            graph.neighbor_weights(root))
        ]

    return ApplicationSpec(
        name="COOR-SSSP",
        mode="coordinative",
        task_sets=make_task_sets([
            ("relax", "for-each", ("vertex", "cand", "bucket")),
        ]),
        kernels={"relax": relax_kernel},
        rules={"bucket_gate": compile_rule(BUCKET_GATE)},
        make_state=make_state,
        initial_tasks=initial_tasks,
        verify=verify,
        priority_fields={"relax": "bucket"},
        description="coordinative delta-stepping SSSP (bucket gates)",
    )
