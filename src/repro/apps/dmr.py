"""SPEC-DMR: speculative Delaunay mesh refinement (Section 6.1).

After Kulkarni et al. [33]: bad triangles are refinement tasks; a task
computes the cavity of its triangle's circumcenter, and two tasks conflict
exactly when their cavities overlap.  The rule squashes a task when an
earlier in-flight task commits an overlapping cavity; tasks whose triangle
has been destroyed, or is no longer bad, are squashed outright ("if a bad
triangle doesn't overlap with others anymore, its corresponding task is
squashed").  Commit-time re-validation guards the window between cavity
computation and rule allocation, as thread-level-speculation runtimes do.

Initial bad triangles are pushed incrementally from the host processor
(HostFeed), matching the paper's setup — this is why DMR's speedup scales
linearly with QPI bandwidth in Figure 10.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.core.eca import compile_rule
from repro.core.kernel import (
    AllocRule,
    Call,
    Enqueue,
    Expand,
    Guard,
    Kernel,
    Rendezvous,
)
from repro.core.spec import ApplicationSpec, HostFeed, make_task_sets
from repro.core.state import MemorySpace
from repro.errors import SimulationError
from repro.substrates.mesh.delaunay import Mesh, triangulate
from repro.substrates.mesh.refinement import (
    bad_triangles,
    cavity_of,
    is_bad,
    random_points,
    retriangulate_cavity,
    _center_in_bounds,
)

SPEC_DMR_RULE = """
rule cavity_conflict(my_index, my_cavity):
    on reach refine.cavityCommit
        if event.cavity overlaps my_cavity and event.index < my_index
        do return false
    otherwise immediately return true
"""


def _check_and_cavity(env: dict[str, Any], state: MemorySpace) -> dict[str, Any]:
    """Load the triangle, re-test badness, and walk the cavity."""
    mesh: Mesh = state.object("mesh")
    tri = env["tri"]
    min_angle = state.object("params")["min_angle"]
    if tri not in mesh or not is_bad(mesh, tri, min_angle):
        return {"valid": False, "cavity": (), "center": None}
    center, cavity = cavity_of(mesh, tri)
    if not _center_in_bounds(mesh, center):
        # Hull-encroaching circumcenter: skipped, as in the reference
        # refinement (a full Ruppert pass would split boundary segments).
        return {"valid": False, "cavity": (), "center": None}
    return {"valid": True, "cavity": tuple(cavity), "center": center}


def _cavity_cost(env: dict[str, Any]) -> int:
    return 12 + 6 * len(env.get("cavity", ()))


def _cavity_traffic(env: dict[str, Any]) -> int:
    return 96 + 96 * len(env.get("cavity", ()))


def _commit_retriangulate(
    env: dict[str, Any], state: MemorySpace
) -> dict[str, Any]:
    """Validate the cavity is still intact, then retriangulate it."""
    mesh: Mesh = state.object("mesh")
    min_angle = state.object("params")["min_angle"]
    cavity = env["cavity"]
    if any(tri not in mesh for tri in cavity):
        return {"committed": False, "created_bad": (), "cavity": cavity}
    created = retriangulate_cavity(mesh, env["center"], list(cavity))
    if created is None:
        # Degenerate insertion: drop this circumcenter (mesh untouched),
        # recording the skip so verification accepts the leftover triangle
        # (the sequential oracle skips these the same way).
        state.object("params")["skipped"].add(env["tri"])
        return {"committed": False, "created_bad": (), "cavity": cavity,
                "degenerate": True}
    created_bad = tuple(
        t for t in created if is_bad(mesh, t, min_angle)
    )
    return {"committed": True, "created_bad": created_bad, "cavity": cavity}


def spec_dmr(
    n_points: int = 120,
    seed: int = 0,
    min_angle: float = 25.0,
    host_batch: int = 16,
) -> ApplicationSpec:
    """Build the SPEC-DMR specification over a random point cloud."""
    base_points = random_points(n_points, seed)

    def make_state() -> MemorySpace:
        state = MemorySpace()
        state.add_object("mesh", triangulate(base_points))
        state.add_object("params", {"min_angle": min_angle,
                                    "skipped": set()})
        return state

    def verify(state: MemorySpace) -> None:
        mesh: Mesh = state.object("mesh")
        if not mesh.is_valid_triangulation():
            raise SimulationError("refined mesh is structurally invalid")
        # All remaining bad triangles must be skips the sequential oracle
        # makes too: hull-encroaching circumcenters or degenerate insertions.
        skipped = state.object("params")["skipped"]
        for tri in bad_triangles(mesh, min_angle):
            if tri in skipped:
                continue
            center, _ = cavity_of(mesh, tri)
            if _center_in_bounds(mesh, center):
                raise SimulationError(
                    f"triangle {tri} is still bad and refinable"
                )

    refine_kernel = Kernel("refine", [
        Call(_check_and_cavity, cycles=_cavity_cost, traffic=_cavity_traffic,
             profile="geometry"),
        Guard(lambda env: env["valid"]),
        AllocRule("cavity_conflict",
                  lambda env: {"my_cavity": env["cavity"]}),
        Rendezvous("commit", abort_ops=(
            # Conflicting cavity: retry; re-execution recomputes the cavity.
            Enqueue("refine", lambda env: {"tri": env["tri"]}),
        )),
        Call(_commit_retriangulate, cycles=lambda env: 20 + 8 * len(env["cavity"]),
             traffic=lambda env: 128 + 128 * len(env["cavity"]),
             label="cavityCommit", profile="geometry"),
        Guard(lambda env: env["committed"], else_ops=(
            Enqueue("refine", lambda env: {"tri": env["tri"]},
                    when=lambda env: not env.get("degenerate", False)),
        )),
        Expand(lambda env, state: [{"newtri": t} for t in env["created_bad"]]),
        Enqueue("refine", lambda env: {"tri": env["newtri"]}),
    ])

    def host_batches(state: MemorySpace) -> Iterator[list[tuple[str, dict]]]:
        mesh: Mesh = state.object("mesh")
        initial = bad_triangles(mesh, min_angle)
        for start in range(0, len(initial), host_batch):
            yield [
                ("refine", {"tri": tri})
                for tri in initial[start:start + host_batch]
            ]

    return ApplicationSpec(
        name="SPEC-DMR",
        mode="speculative",
        task_sets=make_task_sets([
            ("refine", "for-each", ("tri",)),
        ]),
        kernels={"refine": refine_kernel},
        rules={"cavity_conflict": compile_rule(SPEC_DMR_RULE)},
        make_state=make_state,
        initial_tasks=lambda state: [],
        verify=verify,
        host_feed=HostFeed(host_batches, bytes_per_task=8),
        description="speculative Delaunay refinement with cavity conflicts",
    )
