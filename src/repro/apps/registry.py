"""Benchmark registry: name -> spec builder."""

from __future__ import annotations

from typing import Any, Callable

from repro.core.spec import ApplicationSpec
from repro.errors import InputError

APP_BUILDERS: dict[str, Callable[..., ApplicationSpec]] = {}


def register(name: str) -> Callable:
    def decorator(builder: Callable[..., ApplicationSpec]) -> Callable:
        APP_BUILDERS[name] = builder
        return builder
    return decorator


def build_app(name: str, *args: Any, **kwargs: Any) -> ApplicationSpec:
    """Instantiate a registered benchmark by its paper name."""
    _ensure_registered()
    try:
        builder = APP_BUILDERS[name]
    except KeyError:
        raise InputError(
            f"unknown benchmark {name!r}; known: {sorted(APP_BUILDERS)}"
        ) from None
    return builder(*args, **kwargs)


def _ensure_registered() -> None:
    """Import the app modules so their builders register (lazy, idempotent)."""
    from repro.apps import (  # noqa: F401
        bfs, cc, coor_sssp, dmr, mst, sparselu, sssp,
    )

    if "SPEC-BFS" not in APP_BUILDERS:
        APP_BUILDERS["SPEC-BFS"] = bfs.spec_bfs
        APP_BUILDERS["COOR-BFS"] = bfs.coor_bfs
        APP_BUILDERS["SPEC-SSSP"] = sssp.spec_sssp
        APP_BUILDERS["SPEC-MST"] = mst.spec_mst
        APP_BUILDERS["SPEC-DMR"] = dmr.spec_dmr
        APP_BUILDERS["COOR-LU"] = sparselu.coor_lu
        # Extension benchmarks (not in the paper's six).
        APP_BUILDERS["SPEC-CC"] = cc.spec_cc
        APP_BUILDERS["COOR-SSSP"] = coor_sssp.coor_sssp
