"""SPEC-SSSP: speculative single-source shortest path (Section 6.1).

Aggressively parallelized Bellman-Ford after Hassaan et al. [21]: each task
relaxes one vertex with a candidate distance; if the relaxation improves the
vertex, all its neighbours are (re-)enqueued.  The rule broadcasts the
distance of committing vertices to all running tasks: a task whose candidate
can no longer improve its vertex is squashed before reaching the commit
stage.  The commit itself is a combining (min) store, the fused
compare-and-store unit handcrafted SSSP accelerators use [52].

Distances are kept as scaled int64 (weights are integral in the road-network
inputs), so equality with the Dijkstra oracle is exact.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.eca import compile_rule
from repro.core.kernel import (
    AllocRule,
    Alu,
    Enqueue,
    Expand,
    Guard,
    Kernel,
    Load,
    Rendezvous,
    Store,
)
from repro.core.spec import ApplicationSpec, make_task_sets
from repro.core.state import MemorySpace
from repro.errors import SimulationError
from repro.substrates.graphs.algorithms import dijkstra_distances
from repro.substrates.graphs.csr import CSRGraph

INT_INF = np.iinfo(np.int64).max // 4  # headroom so dist + weight never wraps

SPEC_SSSP_RULE = """
rule relax_conflict(my_index, addr, cand):
    on reach relax.setDist
        if event.addr == addr and event.value <= cand
        do return false
    otherwise immediately return true
"""


def _expand_relaxations(env: dict[str, Any], state: MemorySpace) -> list[dict]:
    graph: CSRGraph = state.object("graph")
    v = env["vertex"]
    return [
        {"w": int(u), "cand2": env["cand"] + int(weight)}
        for u, weight in zip(graph.neighbors(v), graph.neighbor_weights(v))
    ]


def _relax_traffic(env: dict[str, Any], state: MemorySpace) -> int:
    graph: CSRGraph = state.object("graph")
    return 16 + 16 * graph.degree(env["vertex"])  # ids + weights


def spec_sssp(graph: CSRGraph, root: int = 0) -> ApplicationSpec:
    """Build the SPEC-SSSP specification for ``graph``."""
    expected = dijkstra_distances(graph, root)

    def make_state() -> MemorySpace:
        state = MemorySpace()
        dist = np.full(graph.num_vertices, INT_INF, dtype=np.int64)
        dist[root] = 0
        state.add_array("dist", dist, element_bytes=8)
        state.add_object("graph", graph)
        return state

    def verify(state: MemorySpace) -> None:
        got = np.asarray(state.region("dist").storage, dtype=np.float64)
        got[got >= INT_INF] = np.inf
        if not np.array_equal(got, expected):
            bad = int(np.flatnonzero(got != expected)[0])
            raise SimulationError(
                f"SSSP distances wrong: vertex {bad} got {got[bad]}, "
                f"expected {expected[bad]}"
            )

    relax_kernel = Kernel("relax", [
        Alu("__addr__", lambda env: env["vertex"] * 8, reads=("vertex",)),
        AllocRule(
            "relax_conflict",
            lambda env: {"addr": env["__addr__"], "cand": env["cand"]},
        ),
        Load("cur", "dist", lambda env: env["vertex"]),
        Guard(lambda env: env["cand"] < env["cur"]),
        Rendezvous("commit"),
        Store("dist", lambda env: env["vertex"], lambda env: env["cand"],
              label="setDist", combine=min, dst="old"),
        Guard(lambda env: env["cand"] < env["old"]),
        Expand(_expand_relaxations, traffic=_relax_traffic),
        Enqueue("relax",
                lambda env: {"vertex": env["w"], "cand": env["cand2"]}),
    ])

    def initial_tasks(state: MemorySpace) -> list[tuple[str, dict]]:
        # Initial tasks are the neighbours of the root (Section 6.1).
        return [
            ("relax", {"vertex": int(u), "cand": int(weight)})
            for u, weight in zip(graph.neighbors(root),
                                 graph.neighbor_weights(root))
        ]

    return ApplicationSpec(
        name="SPEC-SSSP",
        mode="speculative",
        task_sets=make_task_sets([
            ("relax", "for-each", ("vertex", "cand")),
        ]),
        kernels={"relax": relax_kernel},
        rules={"relax_conflict": compile_rule(SPEC_SSSP_RULE)},
        make_state=make_state,
        initial_tasks=initial_tasks,
        verify=verify,
        description="speculative Bellman-Ford with distance broadcast",
    )
