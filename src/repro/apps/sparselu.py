"""COOR-LU: coordinative blocked sparse LU factorization (Section 6.1).

The BOTS sparselu kernel [17] coordinated with Kinetic-Dependence-Graph
style rules [22]: the host streams the well-ordered block-task list (lu0,
fwd, bdiv, bmod) into the accelerator, and each task's gate rule releases it
as soon as the block commits it depends on have been observed on the event
bus — no barriers, no host round trips:

* ``lu0(k)`` gates on the otherwise clause alone: it proceeds when it is the
  minimum live task, which structurally serializes panel factorizations (and
  with them, the k-steps) while everything inside a k-step overlaps.
* ``fwd(k, j)`` / ``bdiv(i, k)`` gate on ``lu0(k)``'s commit event.
* ``bmod(k, i, j)`` gates on both ``fwd(k, j)`` and ``bdiv(i, k)``.

All block tasks form a single task set priority-indexed by their position
in the host's sequential task list, so the well-order across kinds is the
BOTS program order.  The per-kind gate is selected by a rule-engine demux
(a kind-dispatched AllocRule).  Task kinds are encoded as integers in
events: lu0=0, fwd=1, bdiv=2, bmod=3.

Verification is the relative residual ||LU - A|| / ||A|| — concurrent bmod
accumulation orders differ from the sequential oracle only by floating-point
rounding.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.core.eca import compile_rule
from repro.core.kernel import AllocRule, Call, Kernel, Rendezvous
from repro.core.spec import ApplicationSpec, HostFeed, make_task_sets
from repro.core.state import MemorySpace
from repro.errors import SimulationError
from repro.substrates.sparse.block import (
    BlockSparseMatrix,
    LUTask,
    apply_lu_task,
    lu_block_tasks,
    lu_residual,
    make_sparselu_instance,
)

KIND_CODES = {"lu0": 0, "fwd": 1, "bdiv": 2, "bmod": 3}
KIND_NAMES = {code: name for name, code in KIND_CODES.items()}

LU0_GATE = """
rule lu0_gate():
    otherwise return true
"""

FWD_BDIV_GATE = """
rule panel_gate(k) requires diag_ready:
    on reach lutask.blockCommit
        if event.ckind == 0 and event.ck == k
        do satisfy diag_ready
    otherwise return true
"""

BMOD_GATE = """
rule bmod_gate(k, i, j) requires row_ready, col_ready:
    on reach lutask.blockCommit
        if event.ckind == 1 and event.ck == k and event.cj == j
        do satisfy row_ready
    on reach lutask.blockCommit
        if event.ckind == 2 and event.ck == k and event.ci == i
        do satisfy col_ready
    otherwise return true
"""

_GATE_BY_KIND = {0: "lu0_gate", 1: "panel_gate", 2: "panel_gate",
                 3: "bmod_gate"}


def _gate_name(env: dict[str, Any]) -> str:
    return _GATE_BY_KIND[env["kind"]]


def _gate_args(env: dict[str, Any]) -> dict[str, Any]:
    kind = env["kind"]
    if kind == 0:
        return {}
    if kind in (1, 2):
        return {"k": env["k"]}
    return {"k": env["k"], "i": env["i"], "j": env["j"]}


def _block_kernel_cost(env: dict[str, Any]) -> int:
    """Cycles for one dense block kernel on a pipelined MACC array.

    A ``b x b`` kernel is O(b^3) MACCs; the template streams them through a
    fixed 32-lane array, so latency scales with b^3 / 32.
    """
    b = env["bsize"]
    work = {0: b ** 3 // 3, 1: b ** 3 // 2, 2: b ** 3 // 2, 3: b ** 3}
    return max(4, work[env["kind"]] // 32)


def _block_kernel_traffic(env: dict[str, Any]) -> int:
    b = env["bsize"]
    reads = {0: 1, 1: 2, 2: 2, 3: 3}[env["kind"]]
    return (reads + 1) * b * b * 8  # read operand blocks + write one block


def _apply_block_kernel(
    env: dict[str, Any], state: MemorySpace
) -> dict[str, Any]:
    matrix: BlockSparseMatrix = state.object("matrix")
    apply_lu_task(
        matrix, LUTask(KIND_NAMES[env["kind"]], env["k"], env["i"], env["j"])
    )
    return {"ckind": env["kind"], "ck": env["k"], "ci": env["i"],
            "cj": env["j"]}


def coor_lu(
    grid: int = 8,
    block_size: int = 8,
    density: float = 0.35,
    seed: int = 0,
    host_batch: int = 24,
    residual_tolerance: float = 1e-8,
) -> ApplicationSpec:
    """Build the COOR-LU specification for a synthetic BOTS-like matrix."""
    original = make_sparselu_instance(grid, block_size, density, seed)
    tasks = lu_block_tasks(original)

    def make_state() -> MemorySpace:
        state = MemorySpace()
        state.add_object("matrix", original.copy())
        return state

    def verify(state: MemorySpace) -> None:
        matrix: BlockSparseMatrix = state.object("matrix")
        residual = lu_residual(original, matrix)
        if residual > residual_tolerance:
            raise SimulationError(
                f"LU residual {residual:.3e} exceeds {residual_tolerance:.0e}"
            )

    lu_kernel = Kernel("lutask", [
        AllocRule(_gate_name, _gate_args),
        Rendezvous("gate"),
        Call(_apply_block_kernel, cycles=_block_kernel_cost,
             traffic=_block_kernel_traffic, label="blockCommit",
             profile="macc", completes_task=True),
    ])

    def seed_task(seq: int, task: LUTask) -> tuple[str, dict]:
        return ("lutask", {
            "kind": KIND_CODES[task.kind], "k": task.k, "i": task.i,
            "j": task.j, "bsize": block_size, "seq": seq,
        })

    def host_batches(state: MemorySpace) -> Iterator[list[tuple[str, dict]]]:
        for start in range(0, len(tasks), host_batch):
            yield [
                seed_task(start + offset, task)
                for offset, task in enumerate(tasks[start:start + host_batch])
            ]

    return ApplicationSpec(
        name="COOR-LU",
        mode="coordinative",
        task_sets=make_task_sets([
            ("lutask", "for-each", ("kind", "k", "i", "j", "bsize", "seq")),
        ]),
        kernels={"lutask": lu_kernel},
        rules={
            "lu0_gate": compile_rule(LU0_GATE),
            "panel_gate": compile_rule(FWD_BDIV_GATE),
            "bmod_gate": compile_rule(BMOD_GATE),
        },
        make_state=make_state,
        initial_tasks=lambda state: [],
        verify=verify,
        host_feed=HostFeed(host_batches, bytes_per_task=24),
        priority_fields={"lutask": "seq"},
        # lu0's gate is its otherwise clause; releasing it requires that
        # every earlier block task has drained, which only the global
        # minimum can witness.  Ordered admission keeps that minimum able
        # to reach its rendezvous under full rule lanes.
        otherwise_scope="global",
        ordered_admission=True,
        description="coordinative BOTS sparse LU with block-commit gates",
    )
