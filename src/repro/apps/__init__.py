"""The paper's six benchmarks, expressed as application specifications."""

from repro.apps.registry import APP_BUILDERS, build_app

__all__ = ["APP_BUILDERS", "build_app"]
