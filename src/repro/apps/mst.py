"""SPEC-MST: speculative Kruskal's minimum spanning tree (Section 6.1).

Following Blelloch et al.'s deterministic-reservation Kruskal [9]: edges are
sorted by weight and fired speculatively; an edge conflicts with a smaller
in-flight edge when their endpoint components overlap, in which case the
larger edge is squashed and retried.  Commits are serialized in weight order
through the rendezvous' minimum-waiting escape; everything before the commit
(the two component lookups, the heaviest part of Kruskal) overlaps across
the pipeline.

The task set is priority-indexed on the edge's weight-sorted rank so a
retried edge keeps its place in the well-order.
"""

from __future__ import annotations

from typing import Any

from repro.core.eca import compile_rule
from repro.core.kernel import (
    AllocRule,
    Call,
    Enqueue,
    Guard,
    Kernel,
    Rendezvous,
)
from repro.core.spec import ApplicationSpec, make_task_sets
from repro.core.state import MemorySpace
from repro.errors import SimulationError
from repro.substrates.dsu import DisjointSet
from repro.substrates.graphs.algorithms import kruskal_mst
from repro.substrates.graphs.csr import CSRGraph

SPEC_MST_RULE = """
rule edge_conflict(my_index, my_roots):
    on reach mstedge.unionCommit
        if event.roots overlaps my_roots and event.index < my_index
        do return false
    otherwise return true
"""


def _find_roots(env: dict[str, Any], state: MemorySpace) -> dict[str, Any]:
    dsu: DisjointSet = state.object("dsu")
    ru, rv = dsu.find(env["u"]), dsu.find(env["v"])
    return {"ru": ru, "rv": rv, "roots": (ru, rv)}


def _commit_union(env: dict[str, Any], state: MemorySpace) -> dict[str, Any]:
    dsu: DisjointSet = state.object("dsu")
    merged = dsu.union(env["u"], env["v"])
    if merged:
        mst_weight = state.object("mst")
        mst_weight["weight"] += env["w"]
        mst_weight["edges"] += 1
    return {"merged": merged, "roots": (env["ru"], env["rv"])}


def spec_mst(graph: CSRGraph) -> ApplicationSpec:
    """Build the SPEC-MST specification for ``graph``.

    ``graph`` is treated as undirected; each unique edge becomes one task
    whose rank in the weight order is its well-order priority.
    """
    edges = graph.unique_undirected_edges()
    _, expected_weight = kruskal_mst(graph)

    def make_state() -> MemorySpace:
        state = MemorySpace()
        state.add_object("dsu", DisjointSet(graph.num_vertices))
        state.add_object("mst", {"weight": 0.0, "edges": 0})
        return state

    def verify(state: MemorySpace) -> None:
        got = state.object("mst")["weight"]
        if abs(got - expected_weight) > 1e-9:
            raise SimulationError(
                f"MST weight wrong: got {got}, expected {expected_weight}"
            )

    edge_kernel = Kernel("mstedge", [
        # Component lookups: two dependent pointer chases through the
        # disjoint-set parent array in shared memory (~one QPI round trip).
        Call(_find_roots, cycles=40, traffic=128),
        # Self-loop within a component: the edge is simply rejected.
        Guard(lambda env: env["ru"] != env["rv"]),
        AllocRule("edge_conflict",
                  lambda env: {"my_roots": env["roots"]}),
        Rendezvous("commit", abort_ops=(
            # Squash-and-retry: the edge re-enters the workset with the
            # same rank so the weight order is preserved.
            Enqueue("mstedge", lambda env: {
                "u": env["u"], "v": env["v"], "w": env["w"],
                "rank": env["rank"],
            }),
        )),
        Call(_commit_union, cycles=4, traffic=32, label="unionCommit",
             completes_task=True),
        Guard(lambda env: env["merged"]),
    ])

    def initial_tasks(state: MemorySpace) -> list[tuple[str, dict]]:
        return [
            ("mstedge", {"u": u, "v": v, "w": w, "rank": rank})
            for rank, (u, v, w) in enumerate(edges)
        ]

    return ApplicationSpec(
        name="SPEC-MST",
        mode="speculative",
        task_sets=make_task_sets([
            ("mstedge", "for-each", ("u", "v", "w", "rank")),
        ]),
        kernels={"mstedge": edge_kernel},
        rules={"edge_conflict": compile_rule(SPEC_MST_RULE)},
        make_state=make_state,
        initial_tasks=initial_tasks,
        verify=verify,
        priority_fields={"mstedge": "rank"},
        # Kruskal's correctness *is* commit order, so the otherwise escape
        # must see every live task, and admission is credit-limited so the
        # minimum edge can always reach its rendezvous (a deterministic-
        # reservation window in hardware).
        otherwise_scope="global",
        ordered_admission=True,
        description="speculative Kruskal with component-overlap squashing",
    )
