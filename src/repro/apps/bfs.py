"""Breadth-first search: SPEC-BFS and COOR-BFS (Sections 2, 4.2, 6.1).

Both variants label each vertex with its BFS level from a root.  The
*speculative* variant (after Kulkarni et al.'s optimistic parallelism)
issues Update tasks optimistically and squashes an update when a commit to
the same vertex makes it useless.  The *coordinative* variant (after
Leiserson & Schardl) relies on the observation that all Visits carrying the
minimum level can execute simultaneously — expressed here by priority-
indexing the visit task set on its ``level`` field, so same-level tasks tie
in the well-order and the gate rule releases a whole level at once, with no
barriers.

Both commits are *combining-min* stores — the fused compare-and-store unit
handcrafted BFS accelerators place at the commit stage (e.g. Umuroglu et
al. compare in-pipeline addresses against ready-to-commit BRAM contents).
A combining commit makes the level array monotone non-increasing, so any
release order the rule engines produce converges to the exact BFS levels;
the rules' job is purely to squash wasted work early, which is how the
handcrafted pipelines of Figure 2(b) behave.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.eca import compile_rule
from repro.core.kernel import (
    AllocRule,
    Alu,
    Enqueue,
    Expand,
    Guard,
    Kernel,
    Load,
    Rendezvous,
    Store,
)
from repro.core.spec import ApplicationSpec, make_task_sets
from repro.core.state import MemorySpace
from repro.errors import SimulationError
from repro.substrates.graphs.algorithms import INF, bfs_levels
from repro.substrates.graphs.csr import CSRGraph

SPEC_BFS_RULE = """
rule update_conflict(my_index, addr, mylevel):
    on reach update.setLevel
        if event.addr == addr and event.value <= mylevel
        do return false
    otherwise immediately return true
"""

COOR_BFS_RULE = """
rule level_gate():
    otherwise return true
"""


def _expand_neighbors(env: dict[str, Any], state: MemorySpace) -> list[dict]:
    graph: CSRGraph = state.object("graph")
    return [{"u": int(u)} for u in graph.neighbors(env["vertex"])]


def _neighbor_traffic(env: dict[str, Any], state: MemorySpace) -> int:
    graph: CSRGraph = state.object("graph")
    # One indptr pair plus the neighbour ids, 8 bytes each.
    return 16 + 8 * graph.degree(env["vertex"])


def _make_level_state(graph: CSRGraph, root: int):
    def make_state() -> MemorySpace:
        state = MemorySpace()
        level = np.full(graph.num_vertices, INF, dtype=np.int64)
        level[root] = 0
        state.add_array("level", level, element_bytes=8)
        state.add_object("graph", graph)
        return state

    return make_state


def _verify_against(graph: CSRGraph, root: int):
    expected = bfs_levels(graph, root)

    def verify(state: MemorySpace) -> None:
        got = np.asarray(state.region("level").storage)
        if not np.array_equal(got, expected):
            bad = int(np.flatnonzero(got != expected)[0])
            raise SimulationError(
                f"BFS levels wrong: vertex {bad} got {got[bad]}, "
                f"expected {expected[bad]}"
            )

    return verify


def spec_bfs(graph: CSRGraph, root: int = 0) -> ApplicationSpec:
    """SPEC-BFS: two task sets (visit for-each, update for-all nested).

    The visit stage expands a vertex's neighbours into update tasks; the
    update stage optimistically reads the level, commits a combining-min
    write behind a speculative rendezvous, and activates the next-level
    visit when its commit improved the vertex.  The rule squashes an update
    as soon as any commit makes it useless — the forwarding/squashing
    schedule of Figure 2(b)'s handcrafted pipeline.
    """

    visit_kernel = Kernel("visit", [
        Expand(_expand_neighbors, traffic=_neighbor_traffic),
        Enqueue("update", lambda env: {"u": env["u"], "level": env["level"]}),
    ])

    update_kernel = Kernel("update", [
        Alu("__addr__", lambda env: env["u"] * 8, reads=("u",)),
        AllocRule(
            "update_conflict",
            lambda env: {"addr": env["__addr__"], "mylevel": env["level"]},
        ),
        Load("cur", "level", lambda env: env["u"]),
        Guard(lambda env: env["level"] < env["cur"]),
        Rendezvous("commit"),
        Store("level", lambda env: env["u"], lambda env: env["level"],
              label="setLevel", combine=min, dst="old"),
        Enqueue("visit",
                lambda env: {"vertex": env["u"], "level": env["level"] + 1},
                when=lambda env: env["level"] < env["old"]),
    ])

    return ApplicationSpec(
        name="SPEC-BFS",
        mode="speculative",
        task_sets=make_task_sets([
            ("visit", "for-each", ("vertex", "level")),
            ("update", "for-all", ("u", "level")),
        ]),
        kernels={"visit": visit_kernel, "update": update_kernel},
        rules={"update_conflict": compile_rule(SPEC_BFS_RULE)},
        make_state=_make_level_state(graph, root),
        initial_tasks=lambda state: [("visit", {"vertex": root, "level": 1})],
        verify=_verify_against(graph, root),
        description="speculative BFS with setLevel conflict squashing",
    )


def coor_bfs(graph: CSRGraph, root: int = 0) -> ApplicationSpec:
    """COOR-BFS: one visit task set, priority-indexed by level.

    A visit waits at a gate rendezvous until its level ties the minimum
    allocated gate lane; the whole level then proceeds together (the runtime
    scheduler of Figure 3(b), self-scheduled without barriers).  Same-level
    visits to a common neighbour race benignly: the combining commit keeps
    the level array monotone.
    """

    visit_kernel = Kernel("visit", [
        AllocRule("level_gate", lambda env: {}),
        Rendezvous("gate"),
        Expand(_expand_neighbors, traffic=_neighbor_traffic),
        Load("cur", "level", lambda env: env["u"]),
        Guard(lambda env: env["level"] < env["cur"]),
        Store("level", lambda env: env["u"], lambda env: env["level"],
              label="setLevel", combine=min, dst="old"),
        Enqueue("visit",
                lambda env: {"vertex": env["u"], "level": env["level"] + 1},
                when=lambda env: env["level"] < env["old"]),
    ])

    return ApplicationSpec(
        name="COOR-BFS",
        mode="coordinative",
        task_sets=make_task_sets([
            ("visit", "for-each", ("vertex", "level")),
        ]),
        kernels={"visit": visit_kernel},
        rules={"level_gate": compile_rule(COOR_BFS_RULE)},
        make_state=_make_level_state(graph, root),
        initial_tasks=lambda state: [("visit", {"vertex": root, "level": 1})],
        verify=_verify_against(graph, root),
        priority_fields={"visit": "level"},
        description="coordinative level-synchronous BFS without barriers",
    )
