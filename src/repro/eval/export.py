"""JSON export of experiment results.

Serializes the experiment dataclasses so CI pipelines, notebooks, or
plotting scripts can consume the reproduction's numbers without re-running
simulations.  ``export_all`` writes one JSON document containing every
table/figure plus the paper's reference numbers.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.eval.experiments import (
    Figure9Result,
    Figure10Series,
    PAPER_FIGURE9_BANDS,
    PAPER_RULE_ENGINE_SHARE,
    PAPER_TABLE1,
    ResourceRow,
    Table1Result,
)


def table1_to_dict(result: Table1Result) -> dict[str, Any]:
    return {
        "graph": result.graph,
        "levels": result.levels,
        "seconds": {
            "OpenCL": result.opencl_seconds,
            "SPEC-BFS": result.spec_bfs_seconds,
            "COOR-BFS": result.coor_bfs_seconds,
        },
        "ratios": {
            "opencl_vs_spec": result.opencl_vs_spec,
            "opencl_vs_coor": result.opencl_vs_coor,
        },
        "paper_seconds": dict(PAPER_TABLE1),
    }


def figure9_to_dict(result: Figure9Result) -> dict[str, Any]:
    return {
        "paper_bands": {k: list(v) for k, v in PAPER_FIGURE9_BANDS.items()},
        "rows": {
            app: {
                "accel_seconds": row.accel_seconds,
                "sequential_seconds": row.sequential_seconds,
                "parallel_seconds": row.parallel_seconds,
                "speedup_vs_1core": row.speedup_vs_1core,
                "speedup_vs_10core": row.speedup_vs_10core,
                "utilization": row.utilization,
            }
            for app, row in result.rows.items()
        },
    }


def figure10_to_dict(series_by_app: dict[str, Figure10Series]
                     ) -> dict[str, Any]:
    return {
        app: [
            {
                "bandwidth_scale": p.bandwidth_scale,
                "seconds": p.seconds,
                "speedup_over_baseline": p.speedup_over_baseline,
                "utilization": p.utilization,
                "squash_fraction": p.squash_fraction,
            }
            for p in series.points
        ]
        for app, series in series_by_app.items()
    }


def resources_to_dict(rows: dict[str, ResourceRow]) -> dict[str, Any]:
    return {
        "paper_rule_engine_share": list(PAPER_RULE_ENGINE_SHARE),
        "rows": {
            app: {
                "pipelines": row.pipelines,
                "rule_lanes": row.rule_lanes,
                "rule_engine_register_share":
                    row.rule_engine_register_share,
                "register_utilization": row.register_utilization,
                "alm_utilization": row.alm_utilization,
                "bram_utilization": row.bram_utilization,
            }
            for app, row in rows.items()
        },
    }


def export_all(
    destination: str | Path,
    table1: Table1Result | None = None,
    figure9: Figure9Result | None = None,
    figure10: dict[str, Figure10Series] | None = None,
    resources: dict[str, ResourceRow] | None = None,
) -> Path:
    """Write the provided results to a single JSON file; returns the path."""
    document: dict[str, Any] = {"paper": "Li et al., ISCA 2017"}
    if table1 is not None:
        document["table1"] = table1_to_dict(table1)
    if figure9 is not None:
        document["figure9"] = figure9_to_dict(figure9)
    if figure10 is not None:
        document["figure10"] = figure10_to_dict(figure10)
    if resources is not None:
        document["resources"] = resources_to_dict(resources)
    path = Path(destination)
    path.write_text(json.dumps(document, indent=2, sort_keys=True))
    return path


# ---------------------------------------------------------------------------
# Run-store wiring: experiment results as RunRecords
# ---------------------------------------------------------------------------


def experiment_records(
    table1: Table1Result | None = None,
    figure9: Figure9Result | None = None,
    figure10: dict[str, Figure10Series] | None = None,
    resources: dict[str, ResourceRow] | None = None,
) -> list:
    """Experiment results as :class:`~repro.obs.runstore.RunRecord` rows.

    One record per simulated (app, platform) point, ``kind="experiment"``
    and the same schema as direct ``repro simulate`` records — so a
    figure-10 sweep lands in the store as the per-bandwidth series the
    dashboard plots, and ``repro runs diff`` works across experiment
    re-runs.  Cycle counts are recovered from the reported seconds at the
    evaluation clock; resource rows (no timing) store cycles = 0 with the
    structural numbers in ``extra``.
    """
    from repro.eval.platforms import EVAL_HARP
    from repro.obs.runstore import RunRecord, platform_to_dict

    def record(app: str, seconds: float, utilization: float,
               squash: float, platform, extra: dict[str, Any]) -> RunRecord:
        return RunRecord(
            kind="experiment",
            app=app,
            cycles=int(round(seconds * platform.clock_hz)),
            seconds=seconds,
            utilization=utilization,
            squash_fraction=squash,
            verified=True,
            platform=platform_to_dict(platform),
            extra=extra,
        )

    records: list = []
    if table1 is not None:
        for app, seconds in (("SPEC-BFS", table1.spec_bfs_seconds),
                             ("COOR-BFS", table1.coor_bfs_seconds)):
            records.append(record(
                app, seconds, 0.0, 0.0, EVAL_HARP,
                {"experiment": "table1", "graph": table1.graph,
                 "levels": table1.levels,
                 "opencl_seconds": table1.opencl_seconds},
            ))
    if figure9 is not None:
        for app, row in figure9.rows.items():
            records.append(record(
                app, row.accel_seconds, row.utilization, 0.0, EVAL_HARP,
                {"experiment": "figure9",
                 "speedup_vs_1core": round(row.speedup_vs_1core, 4),
                 "speedup_vs_10core": round(row.speedup_vs_10core, 4)},
            ))
    if figure10 is not None:
        for app, series in figure10.items():
            for point in series.points:
                records.append(record(
                    app, point.seconds, point.utilization,
                    point.squash_fraction,
                    EVAL_HARP.scaled(point.bandwidth_scale),
                    {"experiment": "figure10",
                     "speedup_over_baseline":
                         round(point.speedup_over_baseline, 4)},
                ))
    if resources is not None:
        for app, row in resources.items():
            records.append(record(
                app, 0.0, 0.0, 0.0, EVAL_HARP,
                {"experiment": "resources",
                 "pipelines": row.pipelines,
                 "rule_lanes": row.rule_lanes,
                 "rule_engine_register_share":
                     round(row.rule_engine_register_share, 4)},
            ))
    return records


def store_experiment_results(store, **results) -> int:
    """Append every experiment record to ``store``; returns the count."""
    records = experiment_records(**results)
    for item in records:
        store.append(item)
    return len(records)
