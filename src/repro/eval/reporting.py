"""Paper-style rendering of experiment results."""

from __future__ import annotations

from repro.eval.experiments import (
    Figure9Result,
    Figure10Series,
    PAPER_FIGURE9_BANDS,
    PAPER_TABLE1,
    ResourceRow,
    Table1Result,
)


def format_table1(result: Table1Result) -> str:
    """Render Table 1: best times in seconds, plus paper reference."""
    lines = [
        "Table 1: Comparison of BFS in OpenCL to SPEC-BFS and COOR-BFS "
        "(seconds)",
        f"  graph: {result.graph} ({result.levels} BFS levels)",
        f"  {'Accelerator':12s} {'measured':>12s} {'paper':>10s}",
        f"  {'OpenCL':12s} {result.opencl_seconds:12.3f} "
        f"{PAPER_TABLE1['OpenCL']:10.2f}",
        f"  {'SPEC-BFS':12s} {result.spec_bfs_seconds:12.4f} "
        f"{PAPER_TABLE1['SPEC-BFS']:10.2f}",
        f"  {'COOR-BFS':12s} {result.coor_bfs_seconds:12.4f} "
        f"{PAPER_TABLE1['COOR-BFS']:10.2f}",
        f"  OpenCL / SPEC-BFS ratio: {result.opencl_vs_spec:8.1f}x "
        f"(paper: {PAPER_TABLE1['OpenCL'] / PAPER_TABLE1['SPEC-BFS']:.0f}x)",
    ]
    return "\n".join(lines)


def format_figure9(result: Figure9Result) -> str:
    """Render Figure 9 as the two speedup series."""
    lo1, hi1 = PAPER_FIGURE9_BANDS["vs_1core"]
    lo10, hi10 = PAPER_FIGURE9_BANDS["vs_10core"]
    lines = [
        "Figure 9: Speedup of synthesized accelerators over Xeon software",
        f"  paper bands: {lo1}-{hi1}x vs 1 core, {lo10}-{hi10}x vs 10 cores",
        f"  {'app':10s} {'vs 1-core':>10s} {'vs 10-core':>11s} "
        f"{'accel(ms)':>10s}",
    ]
    for app, row in result.rows.items():
        lines.append(
            f"  {app:10s} {row.speedup_vs_1core:9.2f}x "
            f"{row.speedup_vs_10core:10.2f}x "
            f"{row.accel_seconds * 1e3:10.3f}"
        )
    return "\n".join(lines)


def format_figure10(series_by_app: dict[str, Figure10Series]) -> str:
    """Render Figure 10: speedup (solid) and utilization (dash) series."""
    lines = ["Figure 10: Speedup over 1x-QPI baseline and pipeline "
             "utilization vs bandwidth"]
    for app, series in series_by_app.items():
        bw = " ".join(f"{p.bandwidth_scale:4.0f}x" for p in series.points)
        sp = " ".join(
            f"{p.speedup_over_baseline:5.2f}" for p in series.points
        )
        ut = " ".join(f"{p.utilization:5.3f}" for p in series.points)
        lines.append(f"  {app:10s} bandwidth: {bw}")
        lines.append(f"  {'':10s} speedup:   {sp}")
        lines.append(f"  {'':10s} util:      {ut}")
    return "\n".join(lines)


def format_resources(rows: dict[str, ResourceRow]) -> str:
    """Render the Section 6.2 structural summary."""
    lines = [
        "Section 6.2: datapath structure after heuristic tuning",
        "  paper: rule engines take 4.8-10% of registers",
        f"  {'app':10s} {'pipes':>5s} {'lanes':>5s} {'rule-share':>10s} "
        f"{'regs':>6s} {'alms':>6s}",
    ]
    for app, row in rows.items():
        lines.append(
            f"  {app:10s} {row.pipelines:5d} {row.rule_lanes:5d} "
            f"{row.rule_engine_register_share * 100:9.1f}% "
            f"{row.register_utilization * 100:5.1f}% "
            f"{row.alm_utilization * 100:5.1f}%"
        )
    return "\n".join(lines)
