"""Evaluation harness: platforms, experiments, reporting."""

from repro.eval.platforms import HARP, XEON_E5_2680V2, HarpPlatform, XeonPlatform

__all__ = ["HARP", "XEON_E5_2680V2", "HarpPlatform", "XeonPlatform"]
