"""Platform models: every timing/size constant in one place.

Numbers come from the paper and its citations:

* HARP (Section 5.2, 6.3; Choi et al. [14]): 200 MHz fabric clock on the
  Stratix V, 64 KB FPGA-side cache with 70 ns (14-cycle) read-hit latency,
  over 200 ns miss latency, and ~7.0 GB/s QPI shared-memory bandwidth.
* Xeon E5-2680 v2 (Section 6.3): 10 cores / 20 threads at 2.8 GHz; we use
  public figures for its memory system (~50 GB/s peak on 4-channel DDR3-1866,
  ~80 ns DRAM latency) and a sustained-IPC model for -O3 scalar pointer-chasing
  code.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class HarpPlatform:
    """Intel HARP: Xeon + Stratix V as a cache-coherent QPI peer."""

    clock_hz: float = 200e6
    cache_bytes: int = 64 * 1024
    cache_line_bytes: int = 64
    cache_ways: int = 4
    cache_hit_cycles: int = 14          # 70 ns at 200 MHz [14]
    miss_extra_cycles: int = 40         # ~200 ns total on a direct miss
    qpi_bandwidth_gbps: float = 7.0     # GB/s, paper Section 6.3
    bandwidth_scale: float = 1.0        # Figure 10 sweeps this multiplier

    @property
    def cycle_seconds(self) -> float:
        return 1.0 / self.clock_hz

    @property
    def qpi_bytes_per_cycle(self) -> float:
        """Sustained QPI payload bytes per FPGA cycle (scaled)."""
        return (
            self.qpi_bandwidth_gbps * self.bandwidth_scale * 1e9 / self.clock_hz
        )

    def scaled(self, factor: float) -> "HarpPlatform":
        """The Figure 10 emulator knob: same platform, scaled bandwidth."""
        return replace(self, bandwidth_scale=factor)


@dataclass(frozen=True)
class XeonPlatform:
    """Xeon E5-2680 v2 software-counterpart model."""

    clock_hz: float = 2.8e9
    cores: int = 10
    threads: int = 20
    sustained_ipc: float = 1.6          # scalar irregular code at -O3
    l2_hit_cycles: int = 12
    dram_latency_ns: float = 80.0
    dram_bandwidth_gbps: float = 50.0
    llc_bytes: int = 25 * 1024 * 1024   # shared L3
    mlp: float = 4.0                    # sustained memory-level parallelism
    # Multi-threaded aggressive runtimes pay per-task scheduling overhead
    # and per-round synchronization (Section 7: "run-time overhead in these
    # approaches could be huge due to fine-grained synchronizations").
    parallel_efficiency: float = 0.45
    sync_overhead_ns: float = 250.0     # per global round (amortized)
    task_overhead_ns: float = 25.0      # per task: queueing + conflict checks

    @property
    def cycle_seconds(self) -> float:
        return 1.0 / self.clock_hz

    @property
    def dram_latency_cycles(self) -> float:
        return self.dram_latency_ns * 1e-9 * self.clock_hz


@dataclass(frozen=True)
class StratixV:
    """Resource capacity of the Altera Stratix V 5SGXEA7N1F45 (Section 6.3)."""

    alms: int = 234_720
    registers: int = 938_880
    m20k_blocks: int = 2_560
    dsp_blocks: int = 256


HARP = HarpPlatform()
XEON_E5_2680V2 = XeonPlatform()
STRATIX_V = StratixV()

# Scaled evaluation platforms.  The paper's inputs (the 23.9M-node USA road
# network, multi-GB worksets) dwarf both machines' caches, so both sides
# run memory-bound.  Our Python-scale inputs are thousands of times
# smaller; running them against full-size caches would put every platform
# in an all-hits regime the paper never measures.  Following standard
# scaled-down simulation methodology, the evaluation harness shrinks the
# cache capacities with the inputs so the cache-to-working-set ratios (and
# hence the miss-dominated behaviour) match the paper's regime.  All other
# constants — latencies, bandwidths, clocks — stay at their measured
# values.  EXPERIMENTS.md records the chosen ratios.
EVAL_HARP = HarpPlatform(cache_bytes=1024)
EVAL_XEON = XeonPlatform(llc_bytes=16 * 1024, mlp=2.0)
