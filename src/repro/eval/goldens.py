"""Golden-fixture scenarios: canonical fixed-seed runs for regression.

One golden is a fully deterministic observed run of one application —
fixed input seed, fixed platform, default :class:`SimConfig` — reduced
to a canonical JSON-ready dict: the final cycle count, the full
:func:`~repro.sim.stats.stats_digest`, and the trace profile (event
counts per :class:`~repro.obs.events.TraceEventKind`, excluding the
per-cycle ``STAGE_STALL`` events the skipping engines deliberately
elide, so one fixture pins the dense, fast-forward, *and* event-engine
executions alike).

Graph applications are keyed by ``graph`` (nodes/edges/seed fed through
:func:`random_graph`); host-fed applications (COOR-LU's block-sparse
matrix, SPEC-DMR's point cloud) are keyed by ``inputs`` — the builder
kwargs passed straight to :func:`build_app`.

``scripts/update_goldens.py`` regenerates the fixtures under
``tests/golden/`` from these scenarios after an *intentional* behaviour
change; ``tests/sim/test_goldens.py`` fails on any drift.
"""

from __future__ import annotations

from repro.apps.registry import build_app
from repro.eval.platforms import EVAL_HARP, HARP
from repro.obs import Observability, TraceEventKind
from repro.sim.accelerator import AcceleratorSim, SimConfig
from repro.sim.stats import stats_digest
from repro.substrates.graphs import random_graph

_PLATFORMS = {"HARP": HARP, "EVAL_HARP": EVAL_HARP}

# name -> scenario: "app", "platform", "scale", and either "graph"
# (nodes/edges/seed for random_graph) or "inputs" (build_app kwargs).
SCENARIOS = {
    "bfs": {
        "app": "SPEC-BFS",
        "graph": {"nodes": 120, "edges": 360, "seed": 3},
        "platform": "EVAL_HARP", "scale": 0.25,
    },
    "sssp": {
        "app": "SPEC-SSSP",
        "graph": {"nodes": 120, "edges": 360, "seed": 3},
        "platform": "EVAL_HARP", "scale": 0.25,
    },
    "coor_lu": {
        "app": "COOR-LU",
        "inputs": {"grid": 6, "block_size": 4, "seed": 5},
        "platform": "EVAL_HARP", "scale": 0.25,
    },
    "dmr": {
        "app": "SPEC-DMR",
        "inputs": {"n_points": 60, "seed": 2},
        "platform": "EVAL_HARP", "scale": 0.25,
    },
}


def _build_spec(scenario: dict):
    if "graph" in scenario:
        graph = scenario["graph"]
        return build_app(
            scenario["app"],
            random_graph(graph["nodes"], graph["edges"],
                         seed=graph["seed"]),
        )
    return build_app(scenario["app"], **scenario["inputs"])


def collect(name: str, *, engine: str = "dense") -> dict:
    """Run one golden scenario and return its canonical dict."""
    scenario = SCENARIOS[name]
    obs = Observability(trace_capacity=1 << 20)
    sim = AcceleratorSim(
        _build_spec(scenario),
        platform=_PLATFORMS[scenario["platform"]].scaled(scenario["scale"]),
        config=SimConfig(engine=engine),
        obs=obs,
    )
    result = sim.run()
    assert obs.tracer.evicted == 0, "golden trace_capacity too small"
    trace: dict[str, int] = {}
    for event in obs.tracer.events():
        if event.kind is TraceEventKind.STAGE_STALL:
            continue
        trace[event.kind.value] = trace.get(event.kind.value, 0) + 1
    payload = {
        "scenario": name,
        "app": scenario["app"],
        "platform": scenario["platform"],
        "bandwidth_scale": scenario["scale"],
        "cycles": result.cycles,
        "stats": stats_digest(result.stats),
        "trace": {kind: trace[kind] for kind in sorted(trace)},
    }
    if "graph" in scenario:
        payload["graph"] = dict(scenario["graph"])
    else:
        payload["inputs"] = dict(scenario["inputs"])
    return payload
