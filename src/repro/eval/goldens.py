"""Golden-fixture scenarios: canonical fixed-seed runs for regression.

One golden is a fully deterministic observed run of one application —
fixed graph seed, fixed platform, default :class:`SimConfig` — reduced
to a canonical JSON-ready dict: the final cycle count, the full
:func:`~repro.sim.stats.stats_digest`, and the trace profile (event
counts per :class:`~repro.obs.events.TraceEventKind`, excluding the
per-cycle ``STAGE_STALL`` events the fast-forward core deliberately
elides, so one fixture pins both the dense and the fast execution).

``scripts/update_goldens.py`` regenerates the fixtures under
``tests/golden/`` from these scenarios after an *intentional* behaviour
change; ``tests/sim/test_goldens.py`` fails on any drift.
"""

from __future__ import annotations

from repro.apps.registry import build_app
from repro.eval.platforms import EVAL_HARP, HARP
from repro.obs import Observability, TraceEventKind
from repro.sim.accelerator import AcceleratorSim, SimConfig
from repro.sim.stats import stats_digest
from repro.substrates.graphs import random_graph

_PLATFORMS = {"HARP": HARP, "EVAL_HARP": EVAL_HARP}

# name -> (app, nodes, edges, graph seed, platform key, bandwidth scale)
SCENARIOS = {
    "bfs": ("SPEC-BFS", 120, 360, 3, "EVAL_HARP", 0.25),
    "sssp": ("SPEC-SSSP", 120, 360, 3, "EVAL_HARP", 0.25),
}


def collect(name: str, *, fast: bool = False) -> dict:
    """Run one golden scenario and return its canonical dict."""
    app, nodes, edges, seed, platform_key, scale = SCENARIOS[name]
    spec = build_app(app, random_graph(nodes, edges, seed=seed))
    obs = Observability(trace_capacity=1 << 20)
    sim = AcceleratorSim(
        spec,
        platform=_PLATFORMS[platform_key].scaled(scale),
        config=SimConfig(fast_forward=fast),
        obs=obs,
    )
    result = sim.run()
    assert obs.tracer.evicted == 0, "golden trace_capacity too small"
    trace: dict[str, int] = {}
    for event in obs.tracer.events():
        if event.kind is TraceEventKind.STAGE_STALL:
            continue
        trace[event.kind.value] = trace.get(event.kind.value, 0) + 1
    return {
        "scenario": name,
        "app": app,
        "graph": {"nodes": nodes, "edges": edges, "seed": seed},
        "platform": platform_key,
        "bandwidth_scale": scale,
        "cycles": result.cycles,
        "stats": stats_digest(result.stats),
        "trace": {kind: trace[kind] for kind in sorted(trace)},
    }
