"""Experiment harness: regenerates every table and figure (Section 6).

====================  =====================================================
``run_table1``        Table 1 — AOCL BFS vs SPEC-BFS vs COOR-BFS seconds
``run_figure9``       Figure 9 — accelerator speedup over 1-core and
                      10-core Xeon software for all six benchmarks
``run_figure10``      Figure 10 — speedup over the 1x-QPI baseline and
                      pipeline utilization as bandwidth scales
``run_resources``     Section 6.2 — rule-engine share of registers after
                      heuristic tuning
====================  =====================================================

Each returns plain dataclasses so benchmarks, tests and examples can format
or assert on them; ``repro.eval.reporting`` renders them the way the paper
prints them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.cpu.timing import parallel_seconds, sequential_seconds
from repro.eval.platforms import EVAL_HARP, EVAL_XEON, HarpPlatform
from repro.eval.workloads import APP_NAMES, Workload, default_workloads
from repro.exec import CallableSource, SimJob, SweepRunner
from repro.hls_baseline.opencl_model import OpenClBfsModel
from repro.sim.accelerator import SimConfig, simulate_app
from repro.substrates.graphs.generators import road_network
from repro.synthesis.resources import estimate_datapath
from repro.synthesis.tuning import build_tuned_datapath


def _sweep_job(
    workload: Workload,
    platform: HarpPlatform,
    config: SimConfig | None,
    tag: str,
    engine: str | None = None,
) -> SimJob:
    """One figure-sweep point as a runner job.

    Workloads that predate the declarative sources (``source=None``) fall
    back to wrapping their builder — still correct, but uncacheable and
    executed in-process by the runner.  ``engine`` overrides the
    simulation engine while keeping the workload's other knobs (it is
    digest-relevant, so each engine caches separately).
    """
    config = config or workload.config
    if engine is not None:
        config = replace(config, engine=engine, fast_forward=False)
    return SimJob(
        source=workload.source or CallableSource(workload.build_spec),
        platform=platform,
        config=config,
        replicas=workload.replicas,
        tag=tag,
    )


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------

@dataclass
class Table1Result:
    opencl_seconds: float
    spec_bfs_seconds: float
    coor_bfs_seconds: float
    levels: int
    graph: str

    @property
    def opencl_vs_spec(self) -> float:
        return self.opencl_seconds / self.spec_bfs_seconds

    @property
    def opencl_vs_coor(self) -> float:
        return self.opencl_seconds / self.coor_bfs_seconds


def run_table1(
    width: int = 48, height: int = 6, seed: int = 13,
    config: SimConfig | None = None,
    engine: str | None = None,
) -> Table1Result:
    """Reproduce Table 1 on a high-diameter road network.

    The paper uses the full USA road graph (diameter in the thousands);
    our scaled graph keeps the property that drives the result — level
    count far exceeding what host-coordinated kernel relaunches can
    tolerate.
    """
    from repro.apps.registry import build_app

    graph = road_network(width, height, seed=seed)
    model = OpenClBfsModel()
    config = config or SimConfig()
    if engine is not None:
        config = replace(config, engine=engine, fast_forward=False)
    spec_result = simulate_app(
        build_app("SPEC-BFS", graph, 0), platform=EVAL_HARP, config=config
    )
    coor_result = simulate_app(
        build_app("COOR-BFS", graph, 0), platform=EVAL_HARP, config=config
    )
    return Table1Result(
        opencl_seconds=model.seconds(graph, 0),
        spec_bfs_seconds=spec_result.seconds,
        coor_bfs_seconds=coor_result.seconds,
        levels=model.level_count(graph, 0),
        graph=f"road {width}x{height}",
    )


# ---------------------------------------------------------------------------
# Figure 9
# ---------------------------------------------------------------------------

@dataclass
class Figure9Row:
    app: str
    accel_seconds: float
    sequential_seconds: float
    parallel_seconds: float
    utilization: float

    @property
    def speedup_vs_1core(self) -> float:
        return self.sequential_seconds / self.accel_seconds

    @property
    def speedup_vs_10core(self) -> float:
        return self.parallel_seconds / self.accel_seconds


@dataclass
class Figure9Result:
    rows: dict[str, Figure9Row] = field(default_factory=dict)

    def speedups_1core(self) -> dict[str, float]:
        return {k: r.speedup_vs_1core for k, r in self.rows.items()}

    def speedups_10core(self) -> dict[str, float]:
        return {k: r.speedup_vs_10core for k, r in self.rows.items()}


def run_figure9(
    scale: float = 1.0,
    apps: tuple[str, ...] = APP_NAMES,
    config: SimConfig | None = None,
    workloads: dict[str, Workload] | None = None,
    runner: SweepRunner | None = None,
    engine: str | None = None,
) -> Figure9Result:
    """Reproduce Figure 9: accelerator vs Xeon software counterparts."""
    workloads = workloads or default_workloads(scale)
    runner = runner or SweepRunner()
    jobs = [
        _sweep_job(workloads[app], EVAL_HARP, config, tag=f"fig9:{app}",
                   engine=engine)
        for app in apps
    ]
    outcomes = runner.run(jobs)
    result = Figure9Result()
    for app, outcome in zip(apps, outcomes):
        workload = workloads[app]
        result.rows[app] = Figure9Row(
            app=app,
            accel_seconds=outcome.seconds,
            sequential_seconds=sequential_seconds(workload.profile,
                                                  EVAL_XEON),
            parallel_seconds=parallel_seconds(workload.profile, EVAL_XEON),
            utilization=outcome.utilization,
        )
    return result


# ---------------------------------------------------------------------------
# Figure 10
# ---------------------------------------------------------------------------

@dataclass
class Figure10Point:
    bandwidth_scale: float
    seconds: float
    speedup_over_baseline: float
    utilization: float
    squash_fraction: float


@dataclass
class Figure10Series:
    app: str
    points: list[Figure10Point] = field(default_factory=list)

    def speedups(self) -> list[float]:
        return [p.speedup_over_baseline for p in self.points]

    def utilizations(self) -> list[float]:
        return [p.utilization for p in self.points]


def run_figure10(
    scale: float = 1.0,
    apps: tuple[str, ...] = APP_NAMES,
    bandwidth_scales: tuple[float, ...] = (1.0, 2.0, 4.0, 8.0),
    config: SimConfig | None = None,
    workloads: dict[str, Workload] | None = None,
    runner: SweepRunner | None = None,
    engine: str | None = None,
) -> dict[str, Figure10Series]:
    """Reproduce Figure 10: the QPI-bandwidth-scaling emulator sweep.

    The full app x bandwidth grid is submitted as one batch so a parallel
    runner can overlap every point; results come back in input order, so
    the series (and the baseline-relative speedups) are identical to the
    serial loop this replaced.
    """
    workloads = workloads or default_workloads(scale)
    runner = runner or SweepRunner()
    grid = [(app, factor) for app in apps for factor in bandwidth_scales]
    jobs = [
        _sweep_job(workloads[app], EVAL_HARP.scaled(factor), config,
                   tag=f"fig10:{app}@{factor:g}x", engine=engine)
        for app, factor in grid
    ]
    outcomes = runner.run(jobs)
    results: dict[str, Figure10Series] = {}
    for (app, factor), outcome in zip(grid, outcomes):
        series = results.setdefault(app, Figure10Series(app))
        baseline_seconds = (
            series.points[0].seconds if series.points else outcome.seconds
        )
        series.points.append(Figure10Point(
            bandwidth_scale=factor,
            seconds=outcome.seconds,
            speedup_over_baseline=baseline_seconds / outcome.seconds,
            utilization=outcome.utilization,
            squash_fraction=outcome.squash_fraction,
        ))
    return results


# ---------------------------------------------------------------------------
# Section 6.2 — structure / resources
# ---------------------------------------------------------------------------

@dataclass
class ResourceRow:
    app: str
    pipelines: int
    rule_lanes: int
    rule_engine_register_share: float
    register_utilization: float
    alm_utilization: float
    bram_utilization: float


def run_resources(
    scale: float = 0.5,
    apps: tuple[str, ...] = APP_NAMES,
    workloads: dict[str, Workload] | None = None,
) -> dict[str, ResourceRow]:
    """Reproduce the Section 6.2 structural comparison."""
    workloads = workloads or default_workloads(scale)
    rows: dict[str, ResourceRow] = {}
    for app in apps:
        spec = workloads[app].build_spec()
        datapath = build_tuned_datapath(spec)
        estimate = estimate_datapath(datapath)
        usage = estimate.utilization()
        engine = next(iter(datapath.rule_engines.values()))
        rows[app] = ResourceRow(
            app=app,
            pipelines=datapath.total_pipelines,
            rule_lanes=engine.lanes,
            rule_engine_register_share=estimate.rule_engine_register_share,
            register_utilization=usage["registers"],
            alm_utilization=usage["alms"],
            bram_utilization=usage["m20k"],
        )
    return rows


# ---------------------------------------------------------------------------
# Paper reference numbers (for EXPERIMENTS.md comparisons)
# ---------------------------------------------------------------------------

PAPER_TABLE1 = {"OpenCL": 124.1, "SPEC-BFS": 0.47, "COOR-BFS": 0.64}
PAPER_FIGURE9_BANDS = {"vs_1core": (2.3, 5.9), "vs_10core": (0.5, 1.9)}
PAPER_RULE_ENGINE_SHARE = (0.048, 0.10)
