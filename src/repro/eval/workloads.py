"""Default evaluation workloads: one input per benchmark.

The paper evaluates BFS/SSSP on the DIMACS USA road network (23.9M
vertices), MST on road-class graphs, DMR on Kulkarni et al.'s meshes and LU
on BOTS matrices.  At laptop scale no single graph can reproduce both
properties the USA input has — thousands of BFS levels *and* thousands of
vertices of parallel work per level — so the harness splits them:

* Table 1 uses a narrow road lattice (the level count is what kills the
  host-coordinated OpenCL schedule);
* Figures 9/10 use a wide scale-free (RMAT) graph for BFS/SSSP so the
  accelerator runs in the bandwidth-bound regime the full-size road input
  creates (see EXPERIMENTS.md for the substitution argument).

Each workload also carries the accelerator configuration the heuristic
tuner would pick for it at evaluation scale: pipeline replicas and rule
lanes for the wide graph applications, the deterministic-reservation window
for the ordered ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.apps.registry import build_app
from repro.core.spec import ApplicationSpec
from repro.exec.job import WorkloadSource
from repro.cpu.counters import (
    WorkloadProfile,
    bfs_profile,
    dmr_profile,
    lu_profile,
    mst_profile,
    sssp_profile,
)
from repro.sim.accelerator import SimConfig
from repro.substrates.graphs.generators import (
    random_graph,
    rmat_graph,
    road_network,
)
from repro.substrates.sparse.block import make_sparselu_instance

APP_NAMES = (
    "SPEC-BFS", "COOR-BFS", "SPEC-SSSP", "SPEC-MST", "SPEC-DMR", "COOR-LU",
)

# Wide graph applications: many pipelines, lanes sized so lane occupancy
# across the ~40-cycle load shadow does not throttle issue.
WIDE_CONFIG = SimConfig(station_depth=16, rule_lanes=128)
# Ordered applications: the rule-lane count doubles as the deterministic-
# reservation window.
ORDERED_CONFIG = SimConfig(station_depth=8, rule_lanes=32,
                           minimum_broadcast_interval=6)


@dataclass
class Workload:
    """An application spec plus its matched CPU profile and sim settings."""

    app: str
    spec_builder: Callable[[], ApplicationSpec]
    profile: WorkloadProfile
    params: dict[str, Any]
    config: SimConfig = field(default_factory=SimConfig)
    replicas: dict[str, int] | None = None
    # Declarative, picklable recipe for spec_builder (same spec, rebuilt
    # inside a pool worker); None means this workload only runs in-process.
    source: Any = None

    def build_spec(self) -> ApplicationSpec:
        return self.spec_builder()


def default_workloads(scale: float = 1.0) -> dict[str, Workload]:
    """The default per-benchmark inputs, optionally scaled."""
    s = max(0.25, scale)
    rmat_scale = 9 if s >= 0.75 else 8
    wide = rmat_graph(rmat_scale, edge_factor=8, seed=4)
    mst_graph = random_graph(int(600 * s), int(1800 * s), seed=5)
    dmr_points, dmr_seed = int(140 * s), 3
    lu_grid, lu_block = 8, 24
    lu_matrix = make_sparselu_instance(lu_grid, lu_block, 0.30, seed=7)

    return {
        "SPEC-BFS": Workload(
            "SPEC-BFS",
            lambda: build_app("SPEC-BFS", wide, 0),
            bfs_profile(wide, 0),
            {"graph": f"rmat 2^{rmat_scale}"},
            config=WIDE_CONFIG,
            replicas={"visit": 4, "update": 2},
            source=WorkloadSource("SPEC-BFS", "default", s),
        ),
        "COOR-BFS": Workload(
            "COOR-BFS",
            lambda: build_app("COOR-BFS", wide, 0),
            bfs_profile(wide, 0),
            {"graph": f"rmat 2^{rmat_scale}"},
            config=WIDE_CONFIG,
            replicas={"visit": 4},
            source=WorkloadSource("COOR-BFS", "default", s),
        ),
        "SPEC-SSSP": Workload(
            "SPEC-SSSP",
            lambda: build_app("SPEC-SSSP", wide, 0),
            sssp_profile(wide, 0),
            {"graph": f"rmat 2^{rmat_scale}"},
            config=WIDE_CONFIG,
            replicas={"relax": 4},
            source=WorkloadSource("SPEC-SSSP", "default", s),
        ),
        "SPEC-MST": Workload(
            "SPEC-MST",
            lambda: build_app("SPEC-MST", mst_graph),
            mst_profile(mst_graph),
            {"graph": f"random {mst_graph.num_vertices}v"},
            config=ORDERED_CONFIG,
            replicas={"mstedge": 2},
            source=WorkloadSource("SPEC-MST", "default", s),
        ),
        "SPEC-DMR": Workload(
            "SPEC-DMR",
            lambda: build_app("SPEC-DMR", n_points=dmr_points, seed=dmr_seed),
            dmr_profile(dmr_points, dmr_seed),
            {"points": dmr_points},
            config=ORDERED_CONFIG,
            replicas={"refine": 2},
            source=WorkloadSource("SPEC-DMR", "default", s),
        ),
        "COOR-LU": Workload(
            "COOR-LU",
            lambda: build_app(
                "COOR-LU", grid=lu_grid, block_size=lu_block,
                density=0.30, seed=7,
            ),
            lu_profile(lu_matrix),
            {"grid": lu_grid, "block": lu_block},
            config=ORDERED_CONFIG,
            replicas={"lutask": 2},
            source=WorkloadSource("COOR-LU", "default", s),
        ),
    }


def road_workloads(scale: float = 1.0) -> dict[str, Workload]:
    """Road-network variants of the graph benchmarks (Table 1 regime)."""
    s = max(0.25, scale)
    road = road_network(int(36 * s), int(22 * s), seed=11)
    return {
        "SPEC-BFS": Workload(
            "SPEC-BFS",
            lambda: build_app("SPEC-BFS", road, 0),
            bfs_profile(road, 0),
            {"graph": "road"},
            source=WorkloadSource("SPEC-BFS", "road", s),
        ),
        "COOR-BFS": Workload(
            "COOR-BFS",
            lambda: build_app("COOR-BFS", road, 0),
            bfs_profile(road, 0),
            {"graph": "road"},
            source=WorkloadSource("COOR-BFS", "road", s),
        ),
        "SPEC-SSSP": Workload(
            "SPEC-SSSP",
            lambda: build_app("SPEC-SSSP", road, 0),
            sssp_profile(road, 0),
            {"graph": "road"},
            source=WorkloadSource("SPEC-SSSP", "road", s),
        ),
    }
