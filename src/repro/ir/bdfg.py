"""Boolean Dataflow Graph structures.

A BDFG (Buck [10]) extends synchronous dataflow with boolean-controlled
switch/select actors, which is exactly what rendezvous steering needs: the
rule's return value is the control token and the task token is routed to
the commit or abort branch.  Actors here correspond one-to-one with the
hardware templates of Section 5.2.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.errors import LoweringError


class ActorKind(enum.Enum):
    """Primitive actor kinds, each backed by a parameterized template."""

    SOURCE = "source"           # task-queue pop port
    CONST = "const"
    ALU = "alu"
    LOAD = "load"               # out-of-order load unit port
    STORE = "store"             # commit unit (optionally combining)
    SWITCH = "switch"           # boolean steering (guards, rendezvous)
    EXPAND = "expand"           # dynamic-rate token multiplication
    ALLOC_RULE = "alloc_rule"   # rule-engine lane allocation port
    RENDEZVOUS = "rendezvous"   # switch fed by the rule's return buffer
    ENQUEUE = "enqueue"         # task-queue push port
    CALL = "call"               # pipelined problem-specific function unit
    LABEL = "label"             # event-bus broadcast tap
    SINK = "sink"               # token retirement


# Actor kinds whose template contains out-of-order matching logic
# (Section 5.2 limits out-of-order execution to these to stay frugal).
OUT_OF_ORDER_KINDS = frozenset({ActorKind.LOAD, ActorKind.RENDEZVOUS})


@dataclass
class Actor:
    """One node of the BDFG.

    ``params`` carries template parameters (latency, widths, the original
    kernel op for semantics); ``outputs`` maps port names to channels.
    Every actor has the implicit input port ``in``.
    """

    name: str
    kind: ActorKind
    params: dict[str, Any] = field(default_factory=dict)

    def __hash__(self) -> int:
        return hash(self.name)


@dataclass
class Channel:
    """A FIFO edge between two actor ports."""

    src: Actor
    src_port: str
    dst: Actor
    dst_port: str = "in"
    capacity: int = 2


class Bdfg:
    """A dataflow graph for one application: actors plus channels.

    Kernels lower into per-task-set chains; the graph also contains the
    task-queue and rule-engine boundary actors those chains attach to.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.actors: dict[str, Actor] = {}
        self.channels: list[Channel] = []
        self._ids = itertools.count()

    # -- construction -----------------------------------------------------

    def add(self, kind: ActorKind, prefix: str, **params: Any) -> Actor:
        name = f"{prefix}.{kind.value}{next(self._ids)}"
        if name in self.actors:
            raise LoweringError(f"duplicate actor name {name}")
        actor = Actor(name, kind, params)
        self.actors[name] = actor
        return actor

    def connect(
        self,
        src: Actor,
        dst: Actor,
        src_port: str = "out",
        dst_port: str = "in",
        capacity: int = 2,
    ) -> Channel:
        if src.name not in self.actors or dst.name not in self.actors:
            raise LoweringError("cannot connect actors outside this graph")
        channel = Channel(src, src_port, dst, dst_port, capacity)
        self.channels.append(channel)
        return channel

    # -- queries ------------------------------------------------------------

    def outgoing(self, actor: Actor) -> list[Channel]:
        return [c for c in self.channels if c.src is actor]

    def incoming(self, actor: Actor) -> list[Channel]:
        return [c for c in self.channels if c.dst is actor]

    def successors(self, actor: Actor) -> list[Actor]:
        return [c.dst for c in self.outgoing(actor)]

    def by_kind(self, kind: ActorKind) -> list[Actor]:
        return [a for a in self.actors.values() if a.kind is kind]

    def sources(self) -> list[Actor]:
        return self.by_kind(ActorKind.SOURCE)

    def iter_reachable(self, start: Actor) -> Iterator[Actor]:
        seen = {start.name}
        frontier = [start]
        while frontier:
            actor = frontier.pop()
            yield actor
            for succ in self.successors(actor):
                if succ.name not in seen:
                    seen.add(succ.name)
                    frontier.append(succ)

    def stats(self) -> dict[str, int]:
        """Actor-kind histogram (feeds the resource model and tests)."""
        counts: dict[str, int] = {}
        for actor in self.actors.values():
            counts[actor.kind.value] = counts.get(actor.kind.value, 0) + 1
        return counts

    def out_of_order_actors(self) -> list[Actor]:
        return [
            a for a in self.actors.values() if a.kind in OUT_OF_ORDER_KINDS
        ]
