"""Graphviz export of BDFGs (for documentation and debugging)."""

from __future__ import annotations

from repro.ir.bdfg import ActorKind, Bdfg

_SHAPES = {
    ActorKind.SOURCE: "invhouse",
    ActorKind.SINK: "house",
    ActorKind.SWITCH: "diamond",
    ActorKind.RENDEZVOUS: "Mdiamond",
    ActorKind.ALLOC_RULE: "hexagon",
    ActorKind.ENQUEUE: "cds",
    ActorKind.EXPAND: "trapezium",
    ActorKind.LOAD: "box3d",
    ActorKind.STORE: "box3d",
}


def to_dot(graph: Bdfg) -> str:
    """Render the BDFG as Graphviz dot text."""
    lines = [f'digraph "{graph.name}" {{', "  rankdir=LR;"]
    for actor in graph.actors.values():
        shape = _SHAPES.get(actor.kind, "box")
        label = actor.kind.value
        if "label" in actor.params and actor.params["label"]:
            label += f"\\n{actor.params['label']}"
        if "region" in actor.params:
            label += f"\\n{actor.params['region']}"
        if "task_set" in actor.params:
            label += f"\\n{actor.params['task_set']}"
        lines.append(
            f'  "{actor.name}" [shape={shape}, label="{label}"];'
        )
    for channel in graph.channels:
        style = ' [label="false", style=dashed]' \
            if channel.src_port == "false" else ""
        lines.append(
            f'  "{channel.src.name}" -> "{channel.dst.name}"{style};'
        )
    lines.append("}")
    return "\n".join(lines)
