"""Dataflow intermediate representation (Section 5.1).

Specifications lower to a Boolean Dataflow Graph (BDFG) — actors connected
by token channels, with *switch* actors encoding the control dependences as
data dependences so no centralized control unit is needed.  The BDFG is the
bridge between the task/rule abstraction and the template-based FPGA
datapath (Figure 6).
"""

from repro.ir.bdfg import Actor, ActorKind, Bdfg, Channel
from repro.ir.lowering import lower_kernel, lower_spec
from repro.ir.passes import check_graph

__all__ = [
    "Actor",
    "ActorKind",
    "Bdfg",
    "Channel",
    "lower_kernel",
    "lower_spec",
    "check_graph",
]
