"""Verification passes over lowered BDFGs.

Checks that the graph is well-formed before synthesis: reachability from a
source, port discipline per actor kind, rendezvous/alloc pairing along every
path, and acyclicity of each pipeline chain (recurrence flows through task
queues, never through pipeline channels — that is what makes the datapath a
feed-forward pipeline).
"""

from __future__ import annotations

from repro.errors import LoweringError
from repro.ir.bdfg import Actor, ActorKind, Bdfg

# Output-port discipline: which ports each kind may drive.
_ALLOWED_PORTS: dict[ActorKind, set[str]] = {
    ActorKind.SOURCE: {"out"},
    ActorKind.CONST: {"out"},
    ActorKind.ALU: {"out"},
    ActorKind.LOAD: {"out"},
    ActorKind.STORE: {"out"},
    ActorKind.SWITCH: {"out", "false"},
    ActorKind.EXPAND: {"out"},
    ActorKind.ALLOC_RULE: {"out"},
    ActorKind.RENDEZVOUS: {"out", "false"},
    ActorKind.ENQUEUE: {"out"},
    ActorKind.CALL: {"out"},
    ActorKind.LABEL: {"out"},
    ActorKind.SINK: set(),
}


def check_graph(graph: Bdfg) -> None:
    """Raise :class:`LoweringError` on any structural defect."""
    if not graph.sources():
        raise LoweringError(f"graph {graph.name!r} has no source actor")
    _check_ports(graph)
    _check_reachability(graph)
    _check_termination(graph)
    _check_acyclic(graph)
    _check_rendezvous_pairing(graph)


def _check_ports(graph: Bdfg) -> None:
    for channel in graph.channels:
        allowed = _ALLOWED_PORTS[channel.src.kind]
        if channel.src_port not in allowed:
            raise LoweringError(
                f"{channel.src.name} drives illegal port "
                f"{channel.src_port!r} (allowed: {sorted(allowed)})"
            )
    for actor in graph.actors.values():
        out_ports = {c.src_port for c in graph.outgoing(actor)}
        if actor.kind is ActorKind.SINK:
            if out_ports:
                raise LoweringError(f"sink {actor.name} has outputs")
            continue
        if "out" not in out_ports:
            raise LoweringError(
                f"{actor.name} ({actor.kind.value}) has no 'out' consumer"
            )
        if actor.kind in (ActorKind.SWITCH, ActorKind.RENDEZVOUS):
            if "false" not in out_ports:
                raise LoweringError(
                    f"{actor.name} lacks a 'false' branch consumer"
                )
        for port in out_ports:
            fanout = [
                c for c in graph.outgoing(actor) if c.src_port == port
            ]
            if len(fanout) > 1:
                raise LoweringError(
                    f"{actor.name} port {port!r} fans out {len(fanout)} "
                    "ways; insert explicit copy actors"
                )


def _check_reachability(graph: Bdfg) -> None:
    reachable: set[str] = set()
    for source in graph.sources():
        for actor in graph.iter_reachable(source):
            reachable.add(actor.name)
    unreachable = set(graph.actors) - reachable
    if unreachable:
        raise LoweringError(
            f"unreachable actors: {sorted(unreachable)}"
        )


def _check_termination(graph: Bdfg) -> None:
    """Every path must end in a sink or an enqueue-terminated chain."""
    for actor in graph.actors.values():
        if actor.kind is ActorKind.SINK:
            continue
        if not graph.successors(actor):
            raise LoweringError(
                f"{actor.name} ({actor.kind.value}) dead-ends without a sink"
            )


def _check_acyclic(graph: Bdfg) -> None:
    state: dict[str, int] = {}

    def visit(actor: Actor) -> None:
        state[actor.name] = 1
        for succ in graph.successors(actor):
            mark = state.get(succ.name, 0)
            if mark == 1:
                raise LoweringError(
                    f"pipeline cycle through {succ.name}; recurrence must "
                    "flow through task queues"
                )
            if mark == 0:
                visit(succ)
        state[actor.name] = 2

    for source in graph.sources():
        if state.get(source.name, 0) == 0:
            visit(source)


def _check_rendezvous_pairing(graph: Bdfg) -> None:
    """Along every source->rendezvous path, allocs >= rendezvous met."""
    for source in graph.sources():
        _walk_pairing(graph, source, 0, set())


def _walk_pairing(
    graph: Bdfg, actor: Actor, pending: int, seen: set[str]
) -> None:
    if actor.name in seen:
        return
    seen.add(actor.name)
    if actor.kind is ActorKind.ALLOC_RULE:
        pending += 1
    elif actor.kind is ActorKind.RENDEZVOUS:
        if pending <= 0:
            raise LoweringError(
                f"{actor.name}: rendezvous with no pending rule allocation"
            )
        pending -= 1
    for succ in graph.successors(actor):
        _walk_pairing(graph, succ, pending, seen)
