"""Lowering: kernels + rules -> BDFG (Section 5.1).

Task bodies and the condition/action parts of rules are transformed into
dataflow actors, "with task queues (inferred from for-each/for-all
constructs), rule constructors and rule rendezvous inserted as primitive
operations in the graph".  Control flow becomes switch actors: a guard's
false branch and a rendezvous' abort branch are epilogue chains ending in
sinks, so the only control tokens are the booleans steering the switches —
eliminating the centralized control unit of HLS-style designs.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.kernel import (
    AllocRule,
    Alu,
    Call,
    Const,
    Enqueue,
    Expand,
    Guard,
    Kernel,
    Label,
    Load,
    Op,
    Rendezvous,
    Store,
)
from repro.core.spec import ApplicationSpec
from repro.errors import LoweringError
from repro.ir.bdfg import Actor, ActorKind, Bdfg


def lower_spec(spec: ApplicationSpec) -> Bdfg:
    """Lower a full application: one pipeline chain per task set."""
    graph = Bdfg(spec.name)
    for task_set, kernel in spec.kernels.items():
        lower_kernel(graph, kernel, prefix=task_set)
    return graph


def lower_kernel(graph: Bdfg, kernel: Kernel, prefix: str) -> Actor:
    """Lower one kernel into ``graph``; returns its source actor."""
    source = graph.add(
        ActorKind.SOURCE, prefix, task_set=kernel.task_set
    )
    tail = _lower_chain(graph, kernel.ops, source, prefix)
    _terminate(graph, tail, prefix)
    return source


def _terminate(graph: Bdfg, tail: Actor, prefix: str) -> None:
    if tail.kind is not ActorKind.SINK:
        sink = graph.add(ActorKind.SINK, prefix)
        graph.connect(tail, sink)


def _lower_chain(
    graph: Bdfg, ops: Sequence[Op], head: Actor, prefix: str
) -> Actor:
    """Lower a straight-line op sequence; returns the chain's last actor."""
    current = head
    for op in ops:
        current = _lower_op(graph, op, current, prefix)
    return current


def _lower_op(graph: Bdfg, op: Op, prev: Actor, prefix: str) -> Actor:
    if isinstance(op, Const):
        actor = graph.add(ActorKind.CONST, prefix, op=op, dst=op.dst)
    elif isinstance(op, Alu):
        actor = graph.add(ActorKind.ALU, prefix, op=op, dst=op.dst,
                          latency=op.latency)
    elif isinstance(op, Load):
        actor = graph.add(ActorKind.LOAD, prefix, op=op, region=op.region,
                          dst=op.dst)
    elif isinstance(op, Store):
        actor = graph.add(
            ActorKind.STORE, prefix, op=op, region=op.region,
            label=op.label, combining=op.combine is not None,
        )
    elif isinstance(op, Guard):
        actor = graph.add(ActorKind.SWITCH, prefix, op=op)
        graph.connect(prev, actor)
        false_head = graph.add(ActorKind.SINK, prefix) if not op.else_ops \
            else None
        if false_head is not None:
            graph.connect(actor, false_head, src_port="false")
        else:
            first, tail = _lower_branch(graph, op.else_ops, prefix)
            graph.connect(actor, first, src_port="false")
            _terminate(graph, tail, prefix)
        return actor  # true continues from the switch's "out" port
    elif isinstance(op, Expand):
        actor = graph.add(ActorKind.EXPAND, prefix, op=op,
                          per_item_cycles=op.per_item_cycles)
    elif isinstance(op, AllocRule):
        rule = op.rule_name if isinstance(op.rule_name, str) else "<dynamic>"
        actor = graph.add(ActorKind.ALLOC_RULE, prefix, op=op, rule=rule)
    elif isinstance(op, Rendezvous):
        actor = graph.add(ActorKind.RENDEZVOUS, prefix, op=op,
                          label=op.label)
        graph.connect(prev, actor)
        if op.abort_ops:
            first, tail = _lower_branch(graph, op.abort_ops, prefix)
            graph.connect(actor, first, src_port="false")
            _terminate(graph, tail, prefix)
        else:
            sink = graph.add(ActorKind.SINK, prefix)
            graph.connect(actor, sink, src_port="false")
        return actor
    elif isinstance(op, Enqueue):
        actor = graph.add(ActorKind.ENQUEUE, prefix, op=op,
                          task_set=op.task_set, guarded=op.when is not None)
    elif isinstance(op, Call):
        actor = graph.add(ActorKind.CALL, prefix, op=op, label=op.label)
    elif isinstance(op, Label):
        actor = graph.add(ActorKind.LABEL, prefix, op=op, label=op.label)
    else:
        raise LoweringError(f"cannot lower op {op!r}")
    graph.connect(prev, actor)
    return actor


def _lower_branch(
    graph: Bdfg, ops: Sequence[Op], prefix: str
) -> tuple[Actor, Actor]:
    """Lower an epilogue branch; returns (first actor, last actor)."""
    if not ops:
        raise LoweringError("empty branch should use a direct sink")
    first = _lower_op_headless(graph, ops[0], prefix)
    tail = _lower_chain(graph, ops[1:], first, prefix)
    return first, tail


def _lower_op_headless(graph: Bdfg, op: Op, prefix: str) -> Actor:
    """Lower a branch's first op without a predecessor connection."""
    marker = graph.add(ActorKind.LABEL, f"{prefix}.branchhead", op=None,
                       label="")
    actor = _lower_op(graph, op, marker, prefix)
    # Remove the placeholder marker and its channel: the switch connects
    # directly to the branch's first actor.
    graph.channels = [
        c for c in graph.channels if c.src is not marker and c.dst is not marker
    ]
    del graph.actors[marker.name]
    return actor
