"""The sweep runner: serial or process-pool execution of SimJobs.

Guarantees, independent of ``jobs``:

* **Deterministic ordering** — results come back in input order, never
  completion order, so a parallel sweep is byte-identical to a serial
  one.
* **Graceful degradation** — ``jobs=1``, a single pending point, or an
  unpicklable job all run in-process with no pool; a broken pool falls
  back to in-process execution for the affected points.
* **Bounded failures** — each job gets a wall-clock budget (enforced by
  ``SIGALRM`` inside the worker, since a running pool future cannot be
  cancelled) and one retry; errors are folded into the outcome and, in
  strict mode, raised once as a :class:`SweepError` after every point
  has been collected.
"""

from __future__ import annotations

import multiprocessing
import pickle
import signal
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass
from typing import Sequence

from repro.exec.cache import ResultCache
from repro.exec.job import JobOutcome, JobTimeoutError, SimJob, execute_job


def run_job_with_timeout(job: SimJob, timeout: float | None) -> JobOutcome:
    """Pool entry point: one job under an optional SIGALRM budget."""
    if not timeout or timeout <= 0 or not hasattr(signal, "SIGALRM"):
        return execute_job(job)

    def _expired(signum, frame):
        raise JobTimeoutError(
            f"job {job.app!r} exceeded {timeout:.0f}s"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(max(1, int(timeout)))
    try:
        return execute_job(job)
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


class SweepError(RuntimeError):
    """One or more sweep points failed (strict mode)."""


@dataclass
class SweepReport:
    """What one :meth:`SweepRunner.run` call did."""

    points: int = 0
    hits: int = 0
    executed: int = 0
    retried: int = 0
    errors: int = 0
    jobs: int = 1
    wall_seconds: float = 0.0
    fallback: str = ""   # why a parallel request ran in-process, if it did

    @property
    def hit_rate(self) -> float:
        return self.hits / self.points if self.points else 0.0

    def summary(self) -> str:
        text = (f"sweep: {self.points} points, {self.hits} cache hits, "
                f"{self.executed} simulated, jobs={self.jobs}, "
                f"{self.wall_seconds:.2f}s")
        if self.retried:
            text += f", {self.retried} retried"
        if self.errors:
            text += f", {self.errors} FAILED"
        if self.fallback:
            text += f" (in-process: {self.fallback})"
        return text


class SweepRunner:
    """Execute batches of :class:`SimJob` with caching and parallelism."""

    def __init__(
        self,
        jobs: int = 1,
        cache: ResultCache | None = None,
        timeout: float | None = None,
        retries: int = 1,
        strict: bool = True,
    ) -> None:
        self.jobs = max(1, jobs)
        self.cache = cache
        self.timeout = timeout
        self.retries = max(0, retries)
        self.strict = strict
        self.report = SweepReport()

    # -- execution ------------------------------------------------------------

    def run(self, sim_jobs: Sequence[SimJob]) -> list[JobOutcome]:
        """All outcomes, in input order."""
        jobs = list(sim_jobs)
        report = self.report = SweepReport(points=len(jobs), jobs=self.jobs)
        start = time.perf_counter()
        results: list[JobOutcome | None] = [None] * len(jobs)
        digests = [job.digest() for job in jobs]

        pending: list[int] = []
        for index, job in enumerate(jobs):
            hit = self.cache.get(digests[index]) if self.cache else None
            if hit is not None:
                hit.cached = True
                results[index] = hit
                report.hits += 1
            else:
                pending.append(index)
        report.executed = len(pending)

        if pending:
            if self.jobs > 1 and len(pending) > 1:
                reason = self._unpicklable(jobs, pending)
                if reason:
                    report.fallback = reason
                    executed = self._run_serial(jobs, pending)
                else:
                    executed = self._run_pool(jobs, pending)
            else:
                executed = self._run_serial(jobs, pending)
            for index in pending:
                results[index] = executed[index]
            # Store in input order so the cache file is deterministic too.
            if self.cache is not None:
                for index in pending:
                    self.cache.put(digests[index], executed[index])

        outcomes = [
            outcome if outcome is not None else JobOutcome(
                app=jobs[i].app, error="InternalError: job never completed"
            )
            for i, outcome in enumerate(results)
        ]
        report.errors = sum(1 for o in outcomes if o.error)
        report.wall_seconds = round(time.perf_counter() - start, 6)
        if self.strict and report.errors:
            failures = [
                f"{jobs[i].tag or o.app}: {o.error}"
                for i, o in enumerate(outcomes) if o.error
            ]
            raise SweepError(
                f"{report.errors} of {report.points} sweep points failed: "
                + "; ".join(failures[:4])
            )
        return outcomes

    # -- serial path ----------------------------------------------------------

    def _attempt(self, job: SimJob) -> JobOutcome:
        outcome = run_job_with_timeout(job, self.timeout)
        for _ in range(self.retries):
            if not outcome.error:
                break
            self.report.retried += 1
            outcome = run_job_with_timeout(job, self.timeout)
        return outcome

    def _run_serial(
        self, jobs: list[SimJob], pending: list[int]
    ) -> dict[int, JobOutcome]:
        return {index: self._attempt(jobs[index]) for index in pending}

    # -- pool path ------------------------------------------------------------

    @staticmethod
    def _unpicklable(jobs: list[SimJob], pending: list[int]) -> str:
        """Non-empty reason when any pending job cannot cross a fork."""
        for index in pending:
            try:
                pickle.dumps(jobs[index])
            except Exception as exc:   # noqa: BLE001 — reason only
                return (f"job {jobs[index].app!r} is not picklable "
                        f"({type(exc).__name__})")
        return ""

    def _run_pool(
        self, jobs: list[SimJob], pending: list[int]
    ) -> dict[int, JobOutcome]:
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else methods[0]
        )
        out: dict[int, JobOutcome] = {}
        attempts = dict.fromkeys(pending, 0)
        workers = min(self.jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers, mp_context=ctx) as pool:
            remaining = {
                pool.submit(run_job_with_timeout, jobs[i], self.timeout): i
                for i in pending
            }
            while remaining:
                done, _ = wait(remaining, return_when=FIRST_COMPLETED)
                for future in done:
                    index = remaining.pop(future)
                    try:
                        outcome = future.result()
                    except Exception as exc:   # worker died / pool broke
                        outcome = JobOutcome(
                            app=jobs[index].app,
                            error=f"{type(exc).__name__}: {exc}",
                        )
                    if outcome.error and attempts[index] < self.retries:
                        attempts[index] += 1
                        self.report.retried += 1
                        try:
                            retry = pool.submit(
                                run_job_with_timeout, jobs[index],
                                self.timeout,
                            )
                            remaining[retry] = index
                            continue
                        except Exception:   # pool unusable: run inline
                            outcome = run_job_with_timeout(
                                jobs[index], self.timeout
                            )
                    out[index] = outcome
        return out
