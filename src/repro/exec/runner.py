"""The sweep runner: serial or process-pool execution of SimJobs.

Guarantees, independent of ``jobs``:

* **Deterministic ordering** — results come back in input order, never
  completion order, so a parallel sweep is byte-identical to a serial
  one.
* **Graceful degradation** — ``jobs=1``, a single pending point, or an
  unpicklable job all run in-process with no pool; a broken pool falls
  back to in-process execution for the affected points.
* **Bounded failures** — each job gets a wall-clock budget (enforced by
  an interval timer inside the worker, since a running pool future
  cannot be cancelled) and supervised retries: seeded-deterministic
  exponential backoff with jitter between attempts, and poison-job
  quarantine — a job whose total failure count (accumulated across
  runs in the sweep journal) crosses ``quarantine_after`` is recorded
  as quarantined and the sweep *continues* instead of raising.
* **Resumability** — with a :class:`~repro.exec.journal.SweepJournal`
  attached, an interrupted sweep restarts with ``resume=True``:
  completed digests come back as cache hits, quarantined digests are
  skipped with a synthetic error outcome, and earlier failure counts
  carry over.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import pickle
import random
import signal
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass
from typing import Sequence

from repro.exec.cache import ResultCache
from repro.exec.chaos import maybe_crash_worker
from repro.exec.job import JobOutcome, JobTimeoutError, SimJob, execute_job
from repro.exec.journal import JournalState, SweepJournal
from repro.io.safety import lock_telemetry_delta, lock_telemetry_snapshot
from repro.obs.fleet import FleetRecorder, SweepProgress, record_job_span
from repro.obs.metrics import MetricsRegistry

DEFAULT_QUARANTINE_AFTER = 3


def run_job_with_timeout(job: SimJob, timeout: float | None) -> JobOutcome:
    """Pool entry point: one job under an optional wall-clock budget.

    Uses :func:`signal.setitimer` where available so sub-second budgets
    are honoured exactly (``signal.alarm`` only counts whole seconds);
    the timer is *always* cancelled in the ``finally`` block so a
    leftover SIGALRM can never fire into a later job executed by the
    same pool worker.

    Every executed job also emits one fleet span from whichever process
    ran it (a no-op — one environment probe — unless a
    :class:`~repro.obs.fleet.FleetRecorder` is active in the sweep).
    """
    maybe_crash_worker(job)
    if not timeout or timeout <= 0 or not hasattr(signal, "SIGALRM"):
        outcome = execute_job(job)
        record_job_span(job, outcome)
        return outcome

    def _expired(signum, frame):
        raise JobTimeoutError(
            f"job {job.app!r} exceeded {timeout:g}s"
        )

    use_itimer = hasattr(signal, "setitimer")
    previous = signal.signal(signal.SIGALRM, _expired)
    if use_itimer:
        signal.setitimer(signal.ITIMER_REAL, timeout)
    else:  # pragma: no cover - platforms without setitimer
        signal.alarm(max(1, int(timeout)))
    try:
        outcome = execute_job(job)
    finally:
        if use_itimer:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
        else:  # pragma: no cover
            signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)
    record_job_span(job, outcome)
    return outcome


def _delayed_run(job: SimJob, timeout: float | None,
                 delay: float) -> JobOutcome:
    """Retry entry point: back off inside the worker, not the master,
    so the scheduling loop keeps collecting other completions."""
    if delay > 0:
        time.sleep(delay)
    return run_job_with_timeout(job, timeout)


class SweepError(RuntimeError):
    """One or more sweep points failed (strict mode)."""


@dataclass
class SweepReport:
    """What one :meth:`SweepRunner.run` call did."""

    points: int = 0
    hits: int = 0
    executed: int = 0
    retried: int = 0
    errors: int = 0
    quarantined: int = 0
    jobs: int = 1
    wall_seconds: float = 0.0
    fallback: str = ""   # why a parallel request ran in-process, if it did

    @property
    def hit_rate(self) -> float:
        return self.hits / self.points if self.points else 0.0

    def summary(self) -> str:
        text = (f"sweep: {self.points} points, {self.hits} cache hits, "
                f"{self.executed} simulated, jobs={self.jobs}, "
                f"{self.wall_seconds:.2f}s")
        if self.retried:
            text += f", {self.retried} retried"
        if self.quarantined:
            text += f", {self.quarantined} quarantined"
        if self.errors:
            text += f", {self.errors} FAILED"
        if self.fallback:
            text += f" (in-process: {self.fallback})"
        return text


class SweepRunner:
    """Execute batches of :class:`SimJob` with caching and parallelism."""

    def __init__(
        self,
        jobs: int = 1,
        cache: ResultCache | None = None,
        timeout: float | None = None,
        retries: int = 1,
        strict: bool = True,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        backoff_seed: int = 0,
        quarantine_after: int = DEFAULT_QUARANTINE_AFTER,
        journal: SweepJournal | None = None,
        resume: bool = False,
        progress: SweepProgress | None = None,
        fleet: FleetRecorder | None = None,
    ) -> None:
        self.jobs = max(1, jobs)
        self.cache = cache
        self.timeout = timeout
        self.retries = max(0, retries)
        self.strict = strict
        self.backoff_base = max(0.0, backoff_base)
        self.backoff_cap = max(0.0, backoff_cap)
        self.backoff_seed = backoff_seed
        self.quarantine_after = max(1, quarantine_after)
        self.journal = journal
        self.resume = resume
        self.progress = progress
        self.fleet = fleet
        self.report = SweepReport()
        # Refreshed per run(): exec.* metrics and the per-job span list
        # that feed the sweep-level RunRecord and the fleet dashboard.
        self.metrics = MetricsRegistry()
        self.job_spans: list[dict] = []
        self._failures: dict[int, int] = {}
        self._keys: dict[int, str] = {}
        self._digests: list[str | None] = []
        self._submitted: dict[int, float] = {}
        self._completed = 0
        self._errors_seen = 0

    # -- supervision ----------------------------------------------------------

    def backoff_delay(self, key: str, attempt: int) -> float:
        """Deterministic exponential backoff with jitter.

        Seeded from (runner seed, job key, attempt) so two runs of the
        same sweep sleep identically — retry schedules are part of the
        reproducibility contract, like everything else here.  Jitter
        spans [0.5x, 1.5x) of the exponential step to decorrelate
        concurrent retries against a shared bottleneck.
        """
        if self.backoff_base <= 0:
            return 0.0
        step = self.backoff_base * (2 ** attempt)
        rng = random.Random(f"{self.backoff_seed}:{key}:{attempt}")
        return min(self.backoff_cap, step * rng.uniform(0.5, 1.5))

    @staticmethod
    def _job_key(job: SimJob, digest: str | None, index: int) -> str:
        """The supervision key a job is journaled under."""
        if digest:
            return digest
        if job.tag:
            return f"tag:{job.tag}"
        return f"index:{index}"

    def _sweep_id(self) -> str:
        blob = "\n".join(self._keys[i] for i in sorted(self._keys))
        return hashlib.sha256(blob.encode()).hexdigest()[:12]

    # -- execution ------------------------------------------------------------

    def run(self, sim_jobs: Sequence[SimJob]) -> list[JobOutcome]:
        """All outcomes, in input order."""
        jobs = list(sim_jobs)
        report = self.report = SweepReport(points=len(jobs), jobs=self.jobs)
        self.metrics = MetricsRegistry()
        self.job_spans = []
        self._submitted = {}
        self._completed = 0
        self._errors_seen = 0
        if self.cache is not None:
            self.cache.metrics = self.metrics
        lock_base = lock_telemetry_snapshot()
        sweep_t0 = time.time()
        start = time.perf_counter()
        results: list[JobOutcome | None] = [None] * len(jobs)
        digests = self._digests = [job.digest() for job in jobs]
        self._failures = {}
        self._keys = {
            i: self._job_key(job, digests[i], i)
            for i, job in enumerate(jobs)
        }
        sweep_id = self._sweep_id()

        pending: list[int] = []
        for index, job in enumerate(jobs):
            # "is not None", not truthiness: an empty ResultCache is
            # falsy (__len__ == 0), but its misses must still be looked
            # up (and counted) like any other lookup.
            hit = (self.cache.get(digests[index])
                   if self.cache is not None else None)
            if hit is not None:
                hit.cached = True
                results[index] = hit
                report.hits += 1
            else:
                pending.append(index)

        state = JournalState()
        if self.journal is not None:
            state = self.journal.begin(
                sweep_id, len(jobs), resume=self.resume
            )
            # Poison jobs recorded by an earlier (crashed or exhausted)
            # run are skipped outright: the sweep keeps going.
            runnable = []
            for index in pending:
                key = self._keys[index]
                if state.is_quarantined(key):
                    outcome = JobOutcome(
                        app=jobs[index].app,
                        error=(f"quarantined after "
                               f"{state.failure_count(key)} failures "
                               f"(journal {self.journal.path}): "
                               f"{state.errors.get(key, 'unknown error')}"),
                        quarantined=True,
                    )
                    results[index] = outcome
                    report.quarantined += 1
                else:
                    runnable.append(index)
            pending = runnable
        report.executed = len(pending)

        if self.fleet is not None:
            self.fleet.begin(sweep_id, len(jobs))
        if self.progress is not None:
            self.progress.begin(sweep_id, len(jobs), self.jobs,
                                hits=report.hits)
            if report.quarantined:
                self.progress.update(quarantined=report.quarantined)
        try:
            if pending:
                if self.jobs > 1 and len(pending) > 1:
                    reason = self._unpicklable(jobs, pending)
                    if reason:
                        report.fallback = reason
                        executed = self._run_serial(jobs, pending, state)
                    else:
                        executed = self._run_pool(jobs, pending, state)
                else:
                    executed = self._run_serial(jobs, pending, state)
                for index in pending:
                    results[index] = executed[index]
        finally:
            if self.fleet is not None:
                self.fleet.record_span(
                    "sweep", sweep_t0, time.time(),
                    sweep_id=sweep_id, points=len(jobs),
                    hits=report.hits,
                )
                self.fleet.end()

        outcomes = [
            outcome if outcome is not None else JobOutcome(
                app=jobs[i].app, error="InternalError: job never completed"
            )
            for i, outcome in enumerate(results)
        ]
        report.errors = sum(1 for o in outcomes if o.error)
        report.quarantined = sum(1 for o in outcomes if o.quarantined)
        report.wall_seconds = round(time.perf_counter() - start, 6)
        self._finish_metrics(report, lock_base)
        if self.progress is not None:
            self.progress.update(errors=report.errors,
                                 quarantined=report.quarantined,
                                 retried=report.retried)
            hard_errors = report.errors - report.quarantined
            self.progress.finish("failed" if hard_errors > 0 else "done")
        hard_failures = [
            (i, o) for i, o in enumerate(outcomes)
            if o.error and not o.quarantined
        ]
        if self.strict and hard_failures:
            failures = [
                f"{jobs[i].tag or o.app}: {o.error}"
                for i, o in hard_failures
            ]
            raise SweepError(
                f"{len(hard_failures)} of {report.points} sweep points "
                "failed: " + "; ".join(failures[:4])
            )
        return outcomes

    def _finish_metrics(self, report: SweepReport, lock_base: dict) -> None:
        """Fold the finished sweep into ``self.metrics``.

        Lock telemetry is the parent-side delta over this run — cache
        puts, journal appends, and run-store writes all happen in the
        parent, which is where contention with concurrent CLI
        invocations shows up.
        """
        m = self.metrics
        m.counter("exec.jobs.points").inc(report.points)
        m.counter("exec.jobs.executed").inc(report.executed)
        m.counter("exec.jobs.retried").inc(report.retried)
        m.counter("exec.jobs.errors").inc(report.errors)
        m.counter("exec.jobs.quarantined").inc(report.quarantined)
        workers = min(self.jobs, report.executed)
        m.gauge("exec.workers.pool_size").set(workers)
        if report.wall_seconds > 0:
            busy = sum(
                max(0.0, span["end"] - span["start"])
                for span in self.job_spans
            )
            if workers:
                m.gauge("exec.workers.busy_fraction").set(
                    round(min(1.0, busy / (workers * report.wall_seconds)),
                          4)
                )
            m.gauge("exec.sweep.points_per_sec").set(
                round(report.points / report.wall_seconds, 3)
            )
        delta = lock_telemetry_delta(lock_base)
        m.counter("io.lock.acquires").inc(delta["acquires"])
        m.counter("io.lock.contended").inc(delta["contended"])
        m.counter("io.lock.wait_ms").inc(
            int(delta["wait_seconds"] * 1000)
        )
        m.counter("io.lock.stale_broken").inc(delta["stale_broken"])
        m.counter("io.lock.timeouts").inc(delta["timeouts"])
        if self.journal is not None:
            try:
                injections = self.journal.load().chaos
            except Exception:   # noqa: BLE001 - telemetry only
                injections = []
            if injections:
                m.counter("exec.chaos.injections").inc(len(injections))
                for event in injections:
                    m.counter(
                        f"exec.chaos.{event.get('kind', 'unknown')}"
                    ).inc()

    def _observe(self, job: SimJob, index: int,
                 outcome: JobOutcome) -> None:
        """Per-executed-point metrics, span bookkeeping, and progress."""
        m = self.metrics
        m.histogram("exec.job.run_wall_ms").record(
            int(outcome.wall_seconds * 1000)
        )
        submit = self._submitted.get(index)
        if submit and outcome.started:
            m.histogram("exec.job.queue_wait_ms").record(
                max(0, int((outcome.started - submit) * 1000))
            )
        if outcome.worker_pid and outcome.started:
            self.job_spans.append({
                "tag": job.tag or job.app,
                "app": job.app,
                "pid": outcome.worker_pid,
                "start": round(outcome.started, 6),
                "end": round(outcome.started + outcome.wall_seconds, 6),
                "error": bool(outcome.error),
            })
        self._completed += 1
        if outcome.error:
            self._errors_seen += 1
        if self.progress is not None:
            self.progress.update(executed=self._completed,
                                 errors=self._errors_seen,
                                 retried=self.report.retried)

    def _finalize(
        self,
        jobs: list[SimJob],
        index: int,
        outcome: JobOutcome,
        state: JournalState,
    ) -> JobOutcome:
        """Durability point: journal and cache one completed sweep point.

        Called the moment a point's outcome is final (retries exhausted
        or success), not at end of batch, so a sweep killed mid-flight
        resumes from every point that finished instead of losing the
        whole batch.  A job's failure count accumulates across runs
        (the journal carries it); crossing ``quarantine_after`` marks
        the outcome quarantined so strict mode lets the sweep's result
        stand and a resumed sweep skips the job entirely.
        """
        key = self._keys[index]
        tag = jobs[index].tag or outcome.app
        if not outcome.error:
            # Cache BEFORE journaling done: a crash between the two
            # leaves a cached-but-unjournaled point (harmless — resume
            # still hits the cache), never a journaled-done point whose
            # result is missing.
            commit_t0 = time.perf_counter()
            if self.cache is not None:
                self.cache.put(self._digests[index], outcome)
            if self.journal is not None:
                self.journal.record_done(key, tag)
            if self.cache is not None or self.journal is not None:
                self.metrics.histogram("exec.store.commit_us").record(
                    int((time.perf_counter() - commit_t0) * 1e6)
                )
        else:
            total = state.failure_count(key) + self._failures.get(index, 1)
            if self.journal is not None:
                self.journal.record_fail(key, tag, outcome.error, total)
            if total >= self.quarantine_after:
                outcome.quarantined = True
                outcome.error = (
                    f"quarantined after {total} failures: {outcome.error}"
                )
                if self.journal is not None:
                    self.journal.record_quarantine(
                        key, tag, outcome.error, total
                    )
        self._observe(jobs[index], index, outcome)
        return outcome

    # -- serial path ----------------------------------------------------------

    def _attempt(self, index: int, job: SimJob) -> JobOutcome:
        outcome = run_job_with_timeout(job, self.timeout)
        failures = 1 if outcome.error else 0
        for attempt in range(self.retries):
            if not outcome.error:
                break
            self.report.retried += 1
            delay = self.backoff_delay(self._keys[index], attempt)
            if delay > 0:
                time.sleep(delay)
            outcome = run_job_with_timeout(job, self.timeout)
            if outcome.error:
                failures += 1
        self._failures[index] = failures
        return outcome

    def _run_serial(
        self, jobs: list[SimJob], pending: list[int], state: JournalState
    ) -> dict[int, JobOutcome]:
        out: dict[int, JobOutcome] = {}
        for index in pending:
            self._submitted[index] = time.time()
            out[index] = self._finalize(
                jobs, index, self._attempt(index, jobs[index]), state
            )
        return out

    # -- pool path ------------------------------------------------------------

    @staticmethod
    def _unpicklable(jobs: list[SimJob], pending: list[int]) -> str:
        """Non-empty reason when any pending job cannot cross a fork."""
        for index in pending:
            try:
                pickle.dumps(jobs[index])
            except Exception as exc:   # noqa: BLE001 — reason only
                return (f"job {jobs[index].app!r} is not picklable "
                        f"({type(exc).__name__})")
        return ""

    def _run_pool(
        self, jobs: list[SimJob], pending: list[int], state: JournalState
    ) -> dict[int, JobOutcome]:
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else methods[0]
        )
        out: dict[int, JobOutcome] = {}
        attempts = dict.fromkeys(pending, 0)
        failures = dict.fromkeys(pending, 0)
        workers = min(self.jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers, mp_context=ctx) as pool:
            remaining = {}
            for i in pending:
                self._submitted[i] = time.time()
                remaining[
                    pool.submit(run_job_with_timeout, jobs[i], self.timeout)
                ] = i
            while remaining:
                done, _ = wait(remaining, return_when=FIRST_COMPLETED)
                for future in done:
                    index = remaining.pop(future)
                    try:
                        outcome = future.result()
                    except Exception as exc:   # worker died / pool broke
                        outcome = JobOutcome(
                            app=jobs[index].app,
                            error=f"{type(exc).__name__}: {exc}",
                        )
                    if outcome.error:
                        failures[index] += 1
                    if outcome.error and attempts[index] < self.retries:
                        delay = self.backoff_delay(
                            self._keys[index], attempts[index]
                        )
                        attempts[index] += 1
                        self.report.retried += 1
                        try:
                            retry = pool.submit(
                                _delayed_run, jobs[index],
                                self.timeout, delay,
                            )
                            self._submitted[index] = time.time()
                            remaining[retry] = index
                            continue
                        except Exception:   # pool unusable: run inline
                            if delay > 0:
                                time.sleep(delay)
                            outcome = run_job_with_timeout(
                                jobs[index], self.timeout
                            )
                            if outcome.error:
                                failures[index] += 1
                    self._failures[index] = failures[index]
                    out[index] = self._finalize(jobs, index, outcome, state)
        return out
