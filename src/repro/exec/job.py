"""Picklable simulation jobs with canonical content digests.

A :class:`SimJob` fully describes one cycle-level simulation — what to
build, on which platform, with which knobs, under which fault plan — as
plain data, so it can cross a process boundary (the parallel runner) and
be hashed into a cache key (the result cache).

Application specs themselves are *not* picklable (they carry lambdas),
so a job holds a declarative *source* that rebuilds the spec inside the
worker: :class:`WorkloadSource` (named evaluation workloads),
:class:`GraphAppSource` (an app over a seeded random graph),
:class:`CliAppSource` (the CLI's default input), or
:class:`CallableSource` as an escape hatch for arbitrary builders (which
forfeits caching unless an explicit ``key`` is given, and parallelism
unless the callable pickles).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import asdict, dataclass, field, fields
from typing import Any, Callable

from repro.eval.platforms import HARP, HarpPlatform
from repro.sim.accelerator import SimConfig

# Bump when execute_job's behaviour changes in a way that invalidates
# previously cached outcomes (it salts every job digest).
JOB_SCHEMA = 1


# ---------------------------------------------------------------------------
# Spec sources
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WorkloadSource:
    """A named workload from :mod:`repro.eval.workloads`."""

    app: str
    family: str = "default"   # "default" | "road"
    scale: float = 1.0

    def build(self):
        return _workload(self.family, self.scale)[self.app].build_spec()


@dataclass(frozen=True)
class GraphAppSource:
    """An app built over a seeded random graph (benchmarks, tests)."""

    app: str
    nodes: int
    edges: int
    seed: int
    start: int | None = None

    def build(self):
        from repro.apps.registry import build_app
        from repro.substrates.graphs.generators import random_graph

        graph = random_graph(self.nodes, self.edges, seed=self.seed)
        if self.start is not None:
            return build_app(self.app, graph, self.start)
        return build_app(self.app, graph)


@dataclass(frozen=True)
class CliAppSource:
    """The CLI's default input for ``app`` (mirrors ``repro simulate``)."""

    app: str
    scale: float = 0.5

    def build(self):
        from repro.apps.registry import build_app
        from repro.substrates.graphs.generators import random_graph

        workloads = _workload("default", self.scale)
        if self.app in workloads:
            return workloads[self.app].build_spec()
        if self.app in ("SPEC-CC", "COOR-SSSP"):
            return build_app(self.app, random_graph(200, 500, seed=1))
        return build_app(self.app)


@dataclass(frozen=True)
class CallableSource:
    """Wraps an arbitrary spec builder.

    Parallel execution needs the callable to pickle (the runner checks
    and falls back in-process when it does not); caching needs a caller-
    supplied ``key`` that uniquely names what the builder produces — with
    no key the job is uncacheable, never wrongly shared.
    """

    builder: Callable[[], Any]
    key: str = ""

    def build(self):
        return self.builder()


# Worker-side memo: workload tables regenerate their input graphs on
# every call, so a pool worker running many points of one sweep builds
# them once.  Keyed by (family, scale); safe because sequential sims
# over a shared input graph is the pattern the serial harness always
# used.
_WORKLOAD_MEMO: dict[tuple[str, float], dict] = {}


def _workload(family: str, scale: float) -> dict:
    table = _WORKLOAD_MEMO.get((family, scale))
    if table is None:
        from repro.eval.workloads import default_workloads, road_workloads

        maker = road_workloads if family == "road" else default_workloads
        table = _WORKLOAD_MEMO[(family, scale)] = maker(scale)
    return table


def _source_key(source) -> dict[str, Any] | None:
    """The source's contribution to the job digest; None = uncacheable."""
    if isinstance(source, CallableSource):
        if not source.key:
            return None
        return {"type": "CallableSource", "key": source.key}
    return {"type": type(source).__name__, **asdict(source)}


# ---------------------------------------------------------------------------
# The job
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FaultSpec:
    """Declarative stand-in for a generated FaultPlan.

    The plan itself holds an RNG and closures; workers regenerate it
    from the seed, the baseline-run horizon, and the intensity — the
    exact inputs :meth:`repro.sim.faults.FaultPlan.generate` consumes.
    """

    seed: int
    horizon: int
    intensity: float = 1.0


@dataclass
class SimJob:
    """One simulation point of a sweep."""

    source: Any
    platform: HarpPlatform = HARP
    config: SimConfig = field(default_factory=SimConfig)
    replicas: dict[str, int] | None = None
    fault: FaultSpec | None = None
    resilient: bool = False
    check_interval: int | None = None
    checkpoint_interval: int = 5000
    verify: bool = True
    # Informational only (display label, runstore seed column) — neither
    # changes what the simulator computes, so neither enters the digest.
    seed: int | None = None
    tag: str = ""

    @property
    def app(self) -> str:
        return getattr(self.source, "app", None) or self.tag or "?"

    def canonical(self) -> dict[str, Any] | None:
        """Digest payload; None when the source is uncacheable."""
        source = _source_key(self.source)
        if source is None:
            return None
        return {
            "schema": JOB_SCHEMA,
            "source": source,
            "platform": asdict(self.platform),
            "config": asdict(self.config),
            "replicas": dict(sorted(self.replicas.items()))
            if self.replicas else None,
            "fault": asdict(self.fault) if self.fault else None,
            "resilient": self.resilient,
            "check_interval": self.check_interval,
            "checkpoint_interval": self.checkpoint_interval,
            "verify": self.verify,
        }

    def digest(self) -> str | None:
        """Stable sha256 over the canonical payload (cache key)."""
        payload = self.canonical()
        if payload is None:
            return None
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()[:16]


# ---------------------------------------------------------------------------
# The outcome
# ---------------------------------------------------------------------------


@dataclass
class JobOutcome:
    """Everything a sweep consumer reads from one simulated point.

    Plain JSON-ready data (no SimStats / registry objects) so outcomes
    round-trip through the result cache and across process boundaries
    byte-identically.
    """

    app: str
    cycles: int = 0
    seconds: float = 0.0
    utilization: float = 0.0
    squash_fraction: float = 0.0
    memory_bytes: int = 0
    memory_loads: int = 0
    memory_hit_rate: float = 0.0
    bandwidth_scale: float = 1.0
    ff_jumps: int = 0
    ff_cycles_skipped: int = 0
    verified: bool = False
    app_mode: str = ""
    host_fed: bool = False
    stats: dict[str, Any] = field(default_factory=dict)
    metrics: dict[str, Any] | None = None
    resilient: dict[str, Any] | None = None
    error: str = ""
    # Set with error when the job crossed the poison threshold and the
    # sweep kept going; strict mode does not raise for these.
    quarantined: bool = False
    wall_seconds: float = 0.0
    # Fleet telemetry: which process ran the job, when it started (epoch
    # seconds), and per-phase [offset, duration] pairs relative to that
    # start ({"spec-rebuild": [...], "simulate": [...]}).  Host-dependent,
    # so excluded from to_dict() — they cross the pool boundary by
    # pickling but never enter the cache or any determinism comparison.
    worker_pid: int = 0
    started: float = 0.0
    phases: dict[str, Any] | None = None
    # Set by the runner when this outcome came from the cache; not
    # persisted (a cached copy of a cached copy is still one result).
    cached: bool = False

    # Host/process-local fields stripped before persisting or comparing.
    _EPHEMERAL = ("cached", "worker_pid", "started", "phases")

    def to_dict(self) -> dict[str, Any]:
        data = asdict(self)
        for name in self._EPHEMERAL:
            del data[name]
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "JobOutcome":
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


class JobTimeoutError(Exception):
    """The per-job wall-clock budget expired."""


def _outcome_from_result(job: SimJob, result, resilient) -> JobOutcome:
    from repro.sim.stats import stats_digest

    return JobOutcome(
        app=result.app,
        cycles=result.cycles,
        seconds=result.seconds,
        utilization=result.utilization,
        squash_fraction=result.squash_fraction,
        memory_bytes=result.memory_bytes,
        memory_loads=result.memory_loads,
        memory_hit_rate=result.memory_hit_rate,
        bandwidth_scale=result.bandwidth_scale,
        ff_jumps=result.ff_jumps,
        ff_cycles_skipped=result.ff_cycles_skipped,
        verified=job.verify,
        stats=stats_digest(result.stats),
        metrics=result.metrics.snapshot() if result.metrics else None,
        resilient=resilient,
    )


def _execute(job: SimJob, phases: dict[str, Any] | None = None) -> JobOutcome:
    from repro.sim.accelerator import AcceleratorSim, run_resilient
    from repro.sim.invariants import DEFAULT_CHECK_INTERVAL

    t0 = time.perf_counter()
    spec = job.source.build()
    if phases is not None:
        phases["spec-rebuild"] = [0.0, round(time.perf_counter() - t0, 6)]
    faults = None
    if job.fault is not None:
        from repro.sim.faults import FaultPlan

        faults = FaultPlan.generate(
            job.fault.seed,
            horizon=job.fault.horizon,
            engines=tuple(spec.rules),
            task_sets=tuple(spec.task_sets),
            banks=job.config.queue_banks,
            rule_lanes=job.config.rule_lanes,
            intensity=job.fault.intensity,
        )
    sim_t0 = time.perf_counter()
    if job.resilient:
        res = run_resilient(
            spec,
            platform=job.platform,
            config=job.config,
            replicas=job.replicas,
            faults=faults,
            check_interval=(
                job.check_interval if job.check_interval is not None
                else DEFAULT_CHECK_INTERVAL
            ),
            checkpoint_interval=job.checkpoint_interval,
            verify=job.verify,
        )
        resilient = {
            "attempts": res.attempts,
            "rollbacks": res.rollbacks,
            "degradations": res.degradations,
            "recovered": res.recovered,
            "failures": [
                {"cycle": f.cycle, "attempt": f.attempt, "error": f.error}
                for f in res.failures
            ],
        }
        result = res.result
    else:
        sim = AcceleratorSim(
            spec, platform=job.platform, config=job.config,
            replicas=job.replicas, faults=faults,
            check_interval=job.check_interval,
        )
        result = sim.run(verify=job.verify)
        resilient = None
    if phases is not None:
        phases["simulate"] = [
            round(sim_t0 - t0, 6),
            round(time.perf_counter() - sim_t0, 6),
        ]
    outcome = _outcome_from_result(job, result, resilient)
    outcome.app_mode = spec.mode
    outcome.host_fed = spec.host_feed is not None
    return outcome


def execute_job(job: SimJob) -> JobOutcome:
    """Run one job to an outcome; failures become ``outcome.error``.

    Never raises: errors (including per-job timeouts, delivered as
    :class:`JobTimeoutError` via SIGALRM) are folded into the outcome so
    a pool worker always returns a picklable value and the runner can
    keep result ordering deterministic.
    """
    started = time.time()
    start = time.perf_counter()
    phases: dict[str, Any] = {}
    try:
        outcome = _execute(job, phases)
    except Exception as exc:   # noqa: BLE001 — fold into the outcome
        outcome = JobOutcome(
            app=job.app, error=f"{type(exc).__name__}: {exc}"
        )
    outcome.wall_seconds = round(time.perf_counter() - start, 6)
    outcome.worker_pid = os.getpid()
    outcome.started = started
    outcome.phases = phases or None
    return outcome
