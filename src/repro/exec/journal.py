"""The sweep journal: what a sweep did, durable enough to resume.

One JSONL file per store directory (``.repro/sweep-journal.jsonl``),
appended through :mod:`repro.io.safety` so records survive worker
crashes and concurrent writers.  The runner writes one event line per
job transition:

``begin``       a sweep started (sweep id, point count, resume flag)
``done``        a job completed successfully (its digest is now cached)
``fail``        a job exhausted its attempts this run (total failure
                count across runs rides along)
``quarantine``  a job crossed the poison threshold; resumed sweeps skip
                it instead of burning retries on it again
``chaos``       an injected infrastructure fault fired (worker SIGKILL,
                torn append, planted stale lock) — written by the chaos
                layer itself, keyed by the digest/path it hit, so a
                chaos-test failure is diagnosable from the artifact

:meth:`SweepJournal.load` folds the event log into per-digest state:
a later ``done`` clears earlier failures (the job recovered — e.g. a
transient host issue), while ``quarantine`` sticks until a success.
Uncacheable jobs (no digest) are keyed by their tag so supervision
still applies; two distinct uncacheable jobs sharing a tag share fate,
which is why sources should provide digests where possible.

An interrupted sweep therefore restarts as: completed digests hit the
result cache, quarantined digests are skipped with a synthetic error
outcome, and previously-failed digests resume with their failure count
intact — ``repro ... --resume`` in the CLI.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.io.safety import append_line, read_jsonl, replace_file

JOURNAL_FILENAME = "sweep-journal.jsonl"
JOURNAL_SCHEMA = 1


@dataclass
class JournalState:
    """The folded view of a journal file."""

    done: set[str] = field(default_factory=set)
    failures: dict[str, int] = field(default_factory=dict)
    quarantined: set[str] = field(default_factory=set)
    errors: dict[str, str] = field(default_factory=dict)
    chaos: list[dict] = field(default_factory=list)  # injected faults
    sweep_id: str = ""
    points: int = 0
    skipped: int = 0   # corrupt journal lines tolerated on load

    def failure_count(self, key: str | None) -> int:
        return self.failures.get(key, 0) if key else 0

    def is_quarantined(self, key: str | None) -> bool:
        return key in self.quarantined if key else False


class SweepJournal:
    """Append-only JSONL journal of sweep progress.

    ``begin(resume=False)`` truncates the journal (a fresh sweep owns
    the file); ``begin(resume=True)`` loads and returns the prior state
    first, then appends a new ``begin`` marker so the log shows the
    restart.  All appends are locked + fsynced single lines.
    """

    def __init__(self, root: str | Path = ".repro",
                 lock_timeout: float = 10.0) -> None:
        self.root = Path(root)
        self.path = self.root / JOURNAL_FILENAME
        self.lock_timeout = lock_timeout

    # -- writing --------------------------------------------------------------

    def _append(self, event: str, **payload) -> None:
        entry = {"schema": JOURNAL_SCHEMA, "event": event, **payload}
        append_line(self.path, json.dumps(entry, sort_keys=True),
                    timeout=self.lock_timeout)

    def begin(self, sweep_id: str, points: int,
              resume: bool = False) -> JournalState:
        """Open the journal for one :meth:`SweepRunner.run` call."""
        state = self.load() if resume else JournalState()
        line = json.dumps(
            {"schema": JOURNAL_SCHEMA, "event": "begin",
             "sweep_id": sweep_id, "points": points, "resume": resume},
            sort_keys=True,
        )
        if resume:
            append_line(self.path, line, timeout=self.lock_timeout)
        else:
            replace_file(self.path, line + "\n")
        return state

    def record_done(self, key: str, tag: str = "") -> None:
        self._append("done", key=key, tag=tag)

    def record_fail(self, key: str, tag: str, error: str,
                    failures: int) -> None:
        self._append("fail", key=key, tag=tag, error=error[:500],
                     failures=failures)

    def record_quarantine(self, key: str, tag: str, error: str,
                          failures: int) -> None:
        self._append("quarantine", key=key, tag=tag, error=error[:500],
                     failures=failures)

    def record_chaos(self, kind: str, key: str = "",
                     detail: str = "") -> None:
        """Log one injected infrastructure fault (crash/torn/stale-lock),
        keyed by whatever it hit (job digest, file path)."""
        self._append("chaos", kind=kind, key=key or kind,
                     detail=detail[:200], pid=os.getpid())

    # -- reading --------------------------------------------------------------

    def load(self) -> JournalState:
        """Fold the event log (tolerating torn lines) into state."""
        state = JournalState()
        read = read_jsonl(self.path)
        state.skipped = len(read.skipped)
        for _, data in read.rows:
            if data.get("schema") != JOURNAL_SCHEMA:
                continue
            event = data.get("event")
            key = data.get("key")
            if event == "begin":
                state.sweep_id = data.get("sweep_id", "")
                state.points = data.get("points", 0)
                continue
            if event == "chaos":
                state.chaos.append({
                    "kind": data.get("kind", "?"),
                    "key": data.get("key", ""),
                    "detail": data.get("detail", ""),
                    "pid": data.get("pid", 0),
                })
                continue
            if not isinstance(key, str) or not key:
                continue
            if event == "done":
                state.done.add(key)
                state.failures.pop(key, None)
                state.quarantined.discard(key)
                state.errors.pop(key, None)
            elif event == "fail":
                state.done.discard(key)
                state.failures[key] = max(
                    state.failures.get(key, 0),
                    data.get("failures", 0) or 0,
                )
                state.errors[key] = data.get("error", "")
            elif event == "quarantine":
                state.done.discard(key)
                state.quarantined.add(key)
                state.failures[key] = max(
                    state.failures.get(key, 0),
                    data.get("failures", 0) or 0,
                )
                state.errors[key] = data.get("error", "")
        return state
