"""Digest-keyed result cache: never simulate the same point twice.

An append-only JSONL file living alongside the run store
(``.repro/simcache.jsonl`` by default).  Each line is one successful
:class:`~repro.exec.job.JobOutcome` keyed by its job's content digest;
re-running a sweep looks every point up first and only simulates the
misses.  The file format mirrors the run store's robustness rules:
corrupt lines and newer-schema entries are skipped on read, never
fatal, and each entry is a single one-line ``write`` so concurrent
appends never interleave.

Invalidation is purely key-based: the digest covers every input that
can change a simulation's outcome (source, platform, config, replicas,
fault spec, execution mode) plus :data:`~repro.exec.job.JOB_SCHEMA`,
which is bumped whenever the executor's behaviour changes — so stale
entries are simply never looked up again and need no eviction pass.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.exec.job import JOB_SCHEMA, JobOutcome

DEFAULT_CACHE_DIR = ".repro"
CACHE_FILENAME = "simcache.jsonl"


class ResultCache:
    """Append-only digest -> :class:`JobOutcome` store."""

    def __init__(self, root: str | Path = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)
        self.path = self.root / CACHE_FILENAME
        self._entries: dict[str, dict] | None = None

    def _load(self) -> dict[str, dict]:
        if self._entries is not None:
            return self._entries
        entries: dict[str, dict] = {}
        if self.path.exists():
            with open(self.path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        data = json.loads(line)
                    except json.JSONDecodeError:
                        continue
                    if not isinstance(data, dict):
                        continue
                    if data.get("schema") != JOB_SCHEMA:
                        continue
                    digest = data.get("digest")
                    outcome = data.get("outcome")
                    if isinstance(digest, str) and isinstance(outcome, dict):
                        entries[digest] = outcome  # last write wins
        self._entries = entries
        return entries

    def __len__(self) -> int:
        return len(self._load())

    def get(self, digest: str | None) -> JobOutcome | None:
        """The stored outcome for ``digest`` (a fresh object), or None."""
        if digest is None:
            return None
        data = self._load().get(digest)
        if data is None:
            return None
        try:
            return JobOutcome.from_dict(data)
        except TypeError:
            return None

    def put(self, digest: str | None, outcome: JobOutcome) -> bool:
        """Persist a successful outcome; returns True when stored.

        Failed outcomes are never cached — an error (timeout, broken
        worker, transient fault) must not masquerade as a result on the
        next run.
        """
        if digest is None or outcome.error:
            return False
        entry = {
            "schema": JOB_SCHEMA,
            "digest": digest,
            "outcome": outcome.to_dict(),
        }
        self.root.mkdir(parents=True, exist_ok=True)
        line = json.dumps(entry, sort_keys=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
        self._load()[digest] = entry["outcome"]
        return True
