"""Digest-keyed result cache: never simulate the same point twice.

An append-only JSONL file living alongside the run store
(``.repro/simcache.jsonl`` by default).  Each line is one successful
:class:`~repro.exec.job.JobOutcome` keyed by its job's content digest;
re-running a sweep looks every point up first and only simulates the
misses.

Storage goes through :mod:`repro.io.safety`: every append is a single
line written + flushed + fsynced under the file's advisory lock, so
concurrent writers (a parallel sweep, several CLI invocations, a future
daemon) never interleave records, and a writer killed mid-append leaves
at most one torn trailing line — which the tolerant reader skips with a
warning and :meth:`ResultCache.compact` removes.  ``repro cache
stats|verify|compact|prune`` expose the maintenance surface.

Invalidation is purely key-based: the digest covers every input that
can change a simulation's outcome (source, platform, config, replicas,
fault spec, execution mode) plus :data:`~repro.exec.job.JOB_SCHEMA`,
which is bumped whenever the executor's behaviour changes — so stale
entries are simply never looked up again; ``prune`` reclaims the space
they occupy.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.exec.job import JOB_SCHEMA, JobOutcome
from repro.io.safety import FileLock, append_line, read_jsonl, replace_file

DEFAULT_CACHE_DIR = ".repro"
CACHE_FILENAME = "simcache.jsonl"


class ResultCache:
    """Append-only digest -> :class:`JobOutcome` store."""

    def __init__(
        self,
        root: str | Path = DEFAULT_CACHE_DIR,
        lock_timeout: float = 10.0,
    ) -> None:
        self.root = Path(root)
        self.path = self.root / CACHE_FILENAME
        self.lock_timeout = lock_timeout
        self._entries: dict[str, dict] | None = None
        self.skipped = 0   # corrupt lines seen by the last load
        # Optional MetricsRegistry (set by the runner): when present,
        # get() records hit/miss counters and a lookup-latency histogram
        # under exec.cache.*.  None keeps the hot path untouched.
        self.metrics = None

    # -- reading --------------------------------------------------------------

    @staticmethod
    def _entry_digest(data: dict) -> str | None:
        """The digest of a live (current-schema, well-formed) entry."""
        if data.get("schema") != JOB_SCHEMA:
            return None
        digest = data.get("digest")
        outcome = data.get("outcome")
        if isinstance(digest, str) and isinstance(outcome, dict):
            return digest
        return None

    def _load(self) -> dict[str, dict]:
        if self._entries is not None:
            return self._entries
        entries: dict[str, dict] = {}
        read = read_jsonl(self.path)
        self.skipped = len(read.skipped)
        for _, data in read.rows:
            digest = self._entry_digest(data)
            if digest is not None:
                entries[digest] = data["outcome"]  # last write wins
        self._entries = entries
        return entries

    def __len__(self) -> int:
        return len(self._load())

    def get(self, digest: str | None) -> JobOutcome | None:
        """The stored outcome for ``digest`` (a fresh object), or None."""
        if self.metrics is None:
            return self._get(digest)
        t0 = time.perf_counter()
        outcome = self._get(digest)
        self.metrics.histogram("exec.cache.lookup_us").record(
            int((time.perf_counter() - t0) * 1e6)
        )
        if digest is None:
            self.metrics.counter("exec.cache.uncacheable").inc()
        elif outcome is None:
            self.metrics.counter("exec.cache.misses").inc()
        else:
            self.metrics.counter("exec.cache.hits").inc()
        return outcome

    def _get(self, digest: str | None) -> JobOutcome | None:
        if digest is None:
            return None
        data = self._load().get(digest)
        if data is None:
            return None
        try:
            return JobOutcome.from_dict(data)
        except TypeError:
            return None

    def put(self, digest: str | None, outcome: JobOutcome) -> bool:
        """Persist a successful outcome; returns True when stored.

        Failed outcomes are never cached — an error (timeout, broken
        worker, transient fault) must not masquerade as a result on the
        next run.  The append is durable: one line, fsynced, under the
        cache file's lock.
        """
        if digest is None or outcome.error:
            return False
        entry = {
            "schema": JOB_SCHEMA,
            "digest": digest,
            "outcome": outcome.to_dict(),
        }
        append_line(
            self.path,
            json.dumps(entry, sort_keys=True),
            timeout=self.lock_timeout,
        )
        self._load()[digest] = entry["outcome"]
        return True

    # -- maintenance (repro cache stats|verify|compact|prune) -----------------

    def _scan(self) -> dict:
        """Line-level accounting of the cache file, fresh from disk."""
        read = read_jsonl(self.path, warn=False)
        live: dict[str, int] = {}    # digest -> lineno of last write
        stale_schema = 0
        malformed = 0
        for lineno, data in read.rows:
            digest = self._entry_digest(data)
            if digest is not None:
                live[digest] = lineno
            elif isinstance(data.get("schema"), int) \
                    and data["schema"] != JOB_SCHEMA:
                stale_schema += 1
            else:
                malformed += 1
        return {
            "path": str(self.path),
            "exists": not read.missing,
            "bytes": self.path.stat().st_size if not read.missing else 0,
            "lines": read.lines,
            "entries": len(live),
            "superseded": sum(
                1 for lineno, data in read.rows
                if (d := self._entry_digest(data)) is not None
                and live[d] != lineno
            ),
            "stale_schema": stale_schema,
            "malformed": malformed,
            "corrupt": len(read.skipped),
            "corrupt_lines": list(read.skipped),
        }

    def stats(self) -> dict:
        """Cache-file accounting (entries, dead lines, corrupt lines)."""
        return self._scan()

    def verify(self) -> dict:
        """Deep check: scan plus per-entry decodability.

        ``ok`` is True when every line is either a live decodable entry
        or a deliberately retained historical one (superseded / stale
        schema) — i.e. no corruption and nothing undecodable.
        """
        scan = self._scan()
        undecodable = 0
        read = read_jsonl(self.path, warn=False)
        live_seen: set[str] = set()
        for _, data in reversed(read.rows):
            digest = self._entry_digest(data)
            if digest is None or digest in live_seen:
                continue
            live_seen.add(digest)
            try:
                JobOutcome.from_dict(data["outcome"])
            except TypeError:
                undecodable += 1
        scan["undecodable"] = undecodable
        scan["ok"] = (
            scan["corrupt"] == 0
            and scan["malformed"] == 0
            and undecodable == 0
        )
        return scan

    def _rewrite(self, keep_stale_schema: bool, max_entries: int | None):
        """Shared compaction core; returns (before, after) scan stats."""
        with FileLock(self.path, timeout=self.lock_timeout):
            before = self._scan()
            read = read_jsonl(self.path, warn=False)
            # Last write wins, preserved in last-write file order so the
            # rewritten file replays the append history.
            latest: dict[tuple, tuple[int, dict]] = {}
            for lineno, data in read.rows:
                digest = data.get("digest")
                schema = data.get("schema")
                if self._entry_digest(data) is not None:
                    latest[("live", digest)] = (lineno, data)
                elif keep_stale_schema and isinstance(schema, int) \
                        and isinstance(digest, str) \
                        and isinstance(data.get("outcome"), dict):
                    latest[(schema, digest)] = (lineno, data)
            kept = sorted(latest.values(), key=lambda pair: pair[0])
            if max_entries is not None and len(kept) > max_entries:
                kept = kept[-max_entries:]
            text = "".join(
                json.dumps(data, sort_keys=True) + "\n"
                for _, data in kept
            )
            if before["exists"] or text:
                replace_file(self.path, text)
            self._entries = None
            after = self._scan()
        return before, after

    def compact(self) -> dict:
        """Rewrite the file keeping one line per entry (any schema).

        Drops corrupt/torn lines and superseded duplicates; keeps
        other-schema entries untouched so a version downgrade still
        finds its results.  Atomic: tmp + fsync + rename under the lock.
        """
        before, after = self._rewrite(keep_stale_schema=True,
                                      max_entries=None)
        return {
            "before_lines": before["lines"],
            "after_lines": after["lines"],
            "dropped_corrupt": before["corrupt"],
            "dropped_superseded": before["superseded"],
            "entries": after["entries"],
        }

    def prune(self, max_entries: int | None = None) -> dict:
        """Compact *and* drop entries the current code can never use
        (stale schemas, malformed), optionally capping the file to the
        ``max_entries`` most recent live entries."""
        before, after = self._rewrite(keep_stale_schema=False,
                                      max_entries=max_entries)
        return {
            "before_lines": before["lines"],
            "after_lines": after["lines"],
            "dropped_corrupt": before["corrupt"],
            "dropped_superseded": before["superseded"],
            "dropped_stale_schema": before["stale_schema"]
            + before["malformed"],
            "dropped_over_cap": max(
                0,
                before["entries"] - after["entries"]
            ) if max_entries is not None else 0,
            "entries": after["entries"],
        }
