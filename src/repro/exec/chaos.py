"""Deterministic infrastructure chaos for the exec/storage layer.

The simulator got fault injection in PR 1; this module stresses the
*infrastructure around it* the same way — seeded, deterministic, and
cheap to leave compiled in.  Three injection primitives:

* **Worker crashes** — :func:`maybe_crash_worker` is called at the top
  of every pool job; when a :class:`ChaosConfig` is active (via the
  ``REPRO_CHAOS`` environment variable, which crosses the fork into
  pool workers) it SIGKILLs the *worker process* for a deterministic,
  digest-keyed subset of jobs.  The parent sees a broken pool future —
  exactly what a real OOM-kill or segfault produces — and must retry,
  fall back in-process, and journal the failure.
* **Torn writes** — :func:`torn_append` plants a partial trailing line
  (no newline, truncated mid-record) exactly as a writer killed between
  ``write`` and ``fsync`` would, so tests can assert readers skip it
  and compaction removes it.
* **Stale locks** — :func:`plant_stale_lock` fabricates a lock sidecar
  owned by a dead pid with an old timestamp, the droppings of a crashed
  lock holder, so tests can assert acquisition breaks or bypasses it.

Every decision hashes ``(seed, kind, key)`` — no global RNG state, so
a chaos campaign is reproducible from its seed alone and two processes
agree on which jobs die without coordinating.

Crash injection only ever fires inside a *pool worker* (a process with
a parent in the same program): killing the orchestrating process would
test nothing, and killing a user's shell would be rude.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import signal
import time
from dataclasses import asdict, dataclass

from repro.io.safety import FileLock

CHAOS_ENV = "REPRO_CHAOS"


@dataclass(frozen=True)
class ChaosConfig:
    """A seeded chaos plan, serializable into the environment."""

    seed: int = 0
    crash_rate: float = 0.0        # fraction of pool jobs whose worker dies
    crash_signal: int = int(getattr(signal, "SIGKILL", 9))
    # Store directory whose sweep journal receives a "chaos" event per
    # injection (empty = don't journal).  Crosses the fork with the rest
    # of the plan so even a worker about to die can leave a record.
    journal_dir: str = ""

    def to_env(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_env(cls, text: str) -> "ChaosConfig | None":
        try:
            data = json.loads(text)
        except (ValueError, TypeError):
            return None
        if not isinstance(data, dict):
            return None
        types = {"seed": int, "crash_rate": (int, float),
                 "crash_signal": int, "journal_dir": str}
        known = {}
        for field, expected in types.items():
            if field not in data:
                continue
            value = data[field]
            if isinstance(value, bool) or not isinstance(value, expected):
                return None
            known[field] = value
        try:
            return cls(**known)
        except TypeError:
            return None

    def install(self) -> None:
        """Activate for this process and every future child."""
        os.environ[CHAOS_ENV] = self.to_env()

    @staticmethod
    def uninstall() -> None:
        os.environ.pop(CHAOS_ENV, None)


def active_chaos() -> ChaosConfig | None:
    """The chaos plan in force, if any (reread per call: jobs are
    heavyweight, and pool workers must see post-fork changes)."""
    text = os.environ.get(CHAOS_ENV)
    if not text:
        return None
    return ChaosConfig.from_env(text)


def should_fire(seed: int, kind: str, key: str, rate: float) -> bool:
    """Deterministic Bernoulli draw: hash (seed, kind, key) to [0, 1)."""
    if rate <= 0:
        return False
    if rate >= 1:
        return True
    blob = f"{seed}:{kind}:{key}".encode()
    draw = int.from_bytes(hashlib.sha256(blob).digest()[:8], "big")
    return draw / 2 ** 64 < rate


def _in_pool_worker() -> bool:
    return multiprocessing.parent_process() is not None


def maybe_crash_worker(job) -> None:
    """Kill this pool worker if the active chaos plan selects ``job``.

    No-op without an installed plan, outside pool workers, and for
    unselected jobs.  Selection is keyed by the job digest (falling
    back to tag/app) so the *same* jobs die on every run of a seeded
    chaos campaign — and because the retry lands either in a fresh
    worker or inline in the parent, recovery is still exercised
    deterministically.
    """
    chaos = active_chaos()
    if chaos is None or chaos.crash_rate <= 0 or not _in_pool_worker():
        return
    key = None
    digest = getattr(job, "digest", None)
    if callable(digest):
        key = digest()
    if not key:
        key = getattr(job, "tag", "") or getattr(job, "app", "?")
    if should_fire(chaos.seed, "crash", str(key), chaos.crash_rate):
        _journal_injection(
            chaos.journal_dir, "worker-crash", str(key),
            f"signal {chaos.crash_signal} to pid {os.getpid()}",
        )
        os.kill(os.getpid(), chaos.crash_signal)
        time.sleep(5)  # pragma: no cover - SIGKILL needs no help


def _journal_injection(journal_dir, kind: str, key: str,
                       detail: str) -> None:
    """Record one injection in the sweep journal; never raises (chaos
    must not fail differently because its *logging* failed)."""
    if not journal_dir:
        return
    try:
        from repro.exec.journal import SweepJournal

        SweepJournal(journal_dir).record_chaos(kind, key=key, detail=detail)
    except Exception:   # noqa: BLE001 - telemetry only
        pass


# ---------------------------------------------------------------------------
# Storage chaos: torn writes and stale locks
# ---------------------------------------------------------------------------


def torn_append(path, line: str, keep: float = 0.5,
                journal_dir: str = "") -> str:
    """Append a deliberately torn record: a prefix of ``line``, no
    newline — byte-for-byte what a writer killed mid-append leaves.

    Returns the torn fragment.  Takes the file's lock like a real
    writer would (the crash happened *after* acquiring it; the lock
    then evaporated with the process, which flock models for free).
    """
    fragment = line[: max(1, int(len(line) * keep))]
    with FileLock(path):
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(fragment)
            handle.flush()
            os.fsync(handle.fileno())
    _journal_injection(journal_dir, "torn-append", str(path),
                       f"{len(fragment)} torn bytes: {fragment[:60]!r}")
    return fragment


def find_dead_pid() -> int:
    """A pid that is certainly not a live process (for stale locks)."""
    pid = 2 ** 22 - 7   # above any default pid_max's live range
    while True:
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return pid
        except OSError:
            return pid
        pid -= 13


def plant_stale_lock(target, pid: int | None = None,
                     age: float = 3600.0, journal_dir: str = "") -> str:
    """Fabricate ``<target>.lock`` held by a dead pid, ``age`` seconds
    old — what a crashed softlock holder leaves behind."""
    lock_path = str(target) + ".lock"
    os.makedirs(os.path.dirname(lock_path) or ".", exist_ok=True)
    holder = pid if pid is not None else find_dead_pid()
    info = {"pid": holder, "time": time.time() - age, "mode": "softlock"}
    with open(lock_path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(info))
    then = time.time() - age
    os.utime(lock_path, (then, then))
    _journal_injection(journal_dir, "stale-lock", lock_path,
                       f"holder pid {holder}, age {age:g}s")
    return lock_path
