"""Sweep execution engine: parallel simulation jobs with result caching.

Every multi-point evaluation in the repo (figure sweeps, DSE grids,
fault campaigns) reduces to running many independent cycle-level
simulations.  This package gives them one execution path:

* :class:`~repro.exec.job.SimJob` — a picklable, digestable description
  of one simulation (input source, platform, config, fault plan, mode);
* :class:`~repro.exec.cache.ResultCache` — a digest-keyed JSONL cache so
  re-running a sweep never re-simulates a point it already has;
* :class:`~repro.exec.runner.SweepRunner` — serial or process-pool
  execution with deterministic input-order results, per-job timeout,
  supervised retries (seeded exponential backoff with jitter,
  poison-job quarantine), and cache hit/miss reporting;
* :class:`~repro.exec.journal.SweepJournal` — a durable progress
  journal so an interrupted sweep resumes, skipping completed digests
  (cache hits) and quarantined poison jobs;
* :mod:`~repro.exec.chaos` — deterministic infrastructure fault
  injection (worker crashes, torn writes, stale locks) for the chaos
  test harness and CI stress jobs.
"""

from repro.exec.cache import ResultCache
from repro.exec.chaos import ChaosConfig
from repro.exec.job import (
    CallableSource,
    CliAppSource,
    FaultSpec,
    GraphAppSource,
    JobOutcome,
    SimJob,
    WorkloadSource,
    execute_job,
)
from repro.exec.journal import JournalState, SweepJournal
from repro.exec.runner import SweepError, SweepReport, SweepRunner

__all__ = [
    "CallableSource",
    "ChaosConfig",
    "JournalState",
    "SweepJournal",
    "CliAppSource",
    "FaultSpec",
    "GraphAppSource",
    "JobOutcome",
    "ResultCache",
    "SimJob",
    "SweepError",
    "SweepReport",
    "SweepRunner",
    "WorkloadSource",
    "execute_job",
]
