"""Sweep execution engine: parallel simulation jobs with result caching.

Every multi-point evaluation in the repo (figure sweeps, DSE grids,
fault campaigns) reduces to running many independent cycle-level
simulations.  This package gives them one execution path:

* :class:`~repro.exec.job.SimJob` — a picklable, digestable description
  of one simulation (input source, platform, config, fault plan, mode);
* :class:`~repro.exec.cache.ResultCache` — a digest-keyed JSONL cache so
  re-running a sweep never re-simulates a point it already has;
* :class:`~repro.exec.runner.SweepRunner` — serial or process-pool
  execution with deterministic input-order results, per-job timeout,
  one retry, and cache hit/miss reporting.
"""

from repro.exec.cache import ResultCache
from repro.exec.job import (
    CallableSource,
    CliAppSource,
    FaultSpec,
    GraphAppSource,
    JobOutcome,
    SimJob,
    WorkloadSource,
    execute_job,
)
from repro.exec.runner import SweepError, SweepReport, SweepRunner

__all__ = [
    "CallableSource",
    "CliAppSource",
    "FaultSpec",
    "GraphAppSource",
    "JobOutcome",
    "ResultCache",
    "SimJob",
    "SweepError",
    "SweepReport",
    "SweepRunner",
    "WorkloadSource",
    "execute_job",
]
