"""The metrics registry: named counters, gauges, and log-scaled histograms.

Components register instruments against the registry instead of poking
fields on a stats dataclass; :class:`~repro.sim.stats.SimStats` is then
re-derived from the registry for backward compatibility.  Instruments are
bound once at construction (an increment is one attribute add, the same
cost as the ``dataclass.field += 1`` it replaces), and a registry
snapshot is a plain sorted dict that serializes deterministically.

Histograms use log2 buckets — bucket *k* holds values whose bit length
is *k*, i.e. ``2**(k-1) <= value < 2**k`` (bucket 0 holds zeros) — the
right shape for queue occupancies and memory latencies that span orders
of magnitude.
"""

from __future__ import annotations

from repro.errors import SimulationError


class Counter:
    """A monotonically increasing integer.

    ``value`` is public on purpose: per-cycle call sites add to it
    directly (``counter.value += n``), skipping the method dispatch that
    :meth:`inc` costs — profiled at ~8% of the dense cycle loop before
    the change.  ``inc`` remains for everything off the hot path.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A value that goes up and down (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def set(self, value) -> None:
        self.value = value


class Histogram:
    """Log2-bucketed distribution of non-negative integers."""

    __slots__ = ("name", "count", "total", "buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0
        self.buckets: list[int] = []

    def record(self, value) -> None:
        value = int(value)
        if value < 0:
            value = 0
        idx = value.bit_length()
        buckets = self.buckets
        if idx >= len(buckets):
            buckets.extend([0] * (idx + 1 - len(buckets)))
        buckets[idx] += 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, fraction: float) -> float:
        """Estimate the ``fraction`` quantile (0 < fraction <= 1).

        The estimate walks the cumulative bucket counts to the bucket
        holding the target rank and interpolates linearly inside its
        value range ``[2**(k-1), 2**k)`` — exact for buckets 0 and 1
        (which hold a single value each), within one octave otherwise,
        and always deterministic, so snapshots stay diffable.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"percentile fraction must be in (0, 1], "
                             f"got {fraction!r}")
        if self.count == 0:
            return 0.0
        rank = fraction * self.count
        cumulative = 0
        for k, bucket in enumerate(self.buckets):
            if bucket == 0:
                continue
            cumulative += bucket
            if cumulative >= rank:
                if k <= 1:
                    return float(k)  # bucket 0 holds 0s, bucket 1 holds 1s
                low, high = 1 << (k - 1), 1 << k
                within = (rank - (cumulative - bucket)) / bucket
                return low + within * (high - 1 - low)
        return float(1 << (len(self.buckets) - 1))  # pragma: no cover

    def percentiles(self) -> dict[str, float]:
        """The standard p50/p95/p99 summary used by snapshots."""
        return {
            "p50": round(self.percentile(0.50), 3),
            "p95": round(self.percentile(0.95), 3),
            "p99": round(self.percentile(0.99), 3),
        }

    def bucket_labels(self) -> list[str]:
        return ["0" if k == 0 else f"<{1 << k}"
                for k in range(len(self.buckets))]


class MetricsRegistry:
    """Get-or-create instrument store keyed by dotted metric names."""

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    def _get(self, table: dict, cls, name: str):
        instrument = table.get(name)
        if instrument is None:
            for other in (self.counters, self.gauges, self.histograms):
                if other is not table and name in other:
                    raise SimulationError(
                        f"metric {name!r} already registered with a "
                        "different instrument type"
                    )
            instrument = table[name] = cls(name)
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(self.counters, Counter, name)

    def gauge(self, name: str) -> Gauge:
        return self._get(self.gauges, Gauge, name)

    def histogram(self, name: str) -> Histogram:
        return self._get(self.histograms, Histogram, name)

    def counter_value(self, name: str, default: int = 0) -> int:
        counter = self.counters.get(name)
        return counter.value if counter is not None else default

    # -- export ---------------------------------------------------------------

    def snapshot(self) -> dict:
        """A deterministic, JSON-serializable view of every instrument."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self.counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self.gauges.items())
            },
            "histograms": {
                name: {
                    "count": h.count,
                    "sum": h.total,
                    "mean": round(h.mean, 6),
                    **h.percentiles(),
                    "buckets": dict(zip(h.bucket_labels(), h.buckets)),
                }
                for name, h in sorted(self.histograms.items())
            },
        }
