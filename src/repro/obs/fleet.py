"""Fleet observability: cross-process sweep tracing and live progress.

The per-sim tracer (PR 2) sees one simulation from the inside; this
module sees the *sweep* from the outside — which worker ran which job
when, what each job spent rebuilding its spec vs simulating, and how far
a running (or crashed) sweep has progressed.

Three cooperating pieces:

* :class:`FleetRecorder` — span collection.  The parent opens a spans
  file (``fleet-spans.jsonl``) and advertises it through the
  ``REPRO_FLEET`` environment variable, which crosses the fork into pool
  workers exactly like ``REPRO_CHAOS`` does.  Each worker appends one
  span line per executed job via the crash-safe :func:`append_line`
  primitive (lock held, no fsync — telemetry rides the same torn-
  tolerant reader as everything else, and a lost tail costs one span,
  not a result).  Zero-cost when no recorder is active: a single
  ``os.environ`` probe per job.
* :func:`merge_fleet_trace` — post-hoc merge of the span file into one
  Chrome ``trace_event`` JSON, one lane per real worker pid, with
  nested spec-rebuild/simulate phase slices under each job span and the
  sweep-level span on the master lane.  Opens directly in Perfetto;
  per-sim tracer documents can be merged alongside.
* :class:`SweepProgress` — live progress.  A throttled stderr heartbeat
  plus a machine-readable ``sweep-status.json`` rewritten atomically
  (:func:`replace_file`) on every completed point, so ``repro
  sweep-status`` can read a consistent snapshot while the sweep runs —
  or after it crashed (the dead pid tells the reader which).
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path
from typing import Any

from repro.io.safety import append_line, pid_alive, read_jsonl, replace_file

FLEET_ENV = "REPRO_FLEET"
SPANS_FILENAME = "fleet-spans.jsonl"
STATUS_FILENAME = "sweep-status.json"
SPAN_SCHEMA = 1
STATUS_SCHEMA = 1


# ---------------------------------------------------------------------------
# Span recording
# ---------------------------------------------------------------------------


class FleetRecorder:
    """Collects job spans from every process of a sweep into one file."""

    def __init__(self, root: str | Path = ".repro") -> None:
        self.root = Path(root)
        self.path = self.root / SPANS_FILENAME
        self._installed = False
        self._begun = False

    def begin(self, sweep_id: str, points: int) -> None:
        """Start (or extend) recording and advertise the file to workers.

        The first ``begin`` of a recorder truncates any stale span file;
        later ones (a command running several sweeps back to back, e.g.
        a fault campaign's baselines then trials) append a fresh meta
        line so the merged trace keeps every sweep.
        """
        meta = json.dumps({
            "schema": SPAN_SCHEMA,
            "kind": "meta",
            "sweep_id": sweep_id,
            "points": points,
            "t0": time.time(),
            "pid": os.getpid(),
        }, sort_keys=True)
        if not self._begun:
            self.root.mkdir(parents=True, exist_ok=True)
            replace_file(self.path, meta + "\n")
            self._begun = True
        else:
            append_line(self.path, meta, fsync=False)
        os.environ[FLEET_ENV] = json.dumps({"path": str(self.path)})
        self._installed = True

    def end(self) -> None:
        if self._installed:
            os.environ.pop(FLEET_ENV, None)
            self._installed = False

    def record_span(self, name: str, start: float, end: float,
                    **args: Any) -> None:
        """Parent-side span (sweep, store-commit, ...)."""
        _write_span(self.path, {
            "schema": SPAN_SCHEMA,
            "kind": "span",
            "name": name,
            "pid": os.getpid(),
            "start": start,
            "end": end,
            **({"args": args} if args else {}),
        })

    def spans(self) -> list[dict]:
        return read_jsonl(self.path, warn=False).dicts


def _write_span(path: str | Path, row: dict) -> None:
    # fsync=False: spans are telemetry, not results — a torn tail after
    # a crash loses at most one span and read_jsonl skips it.
    try:
        append_line(path, json.dumps(row, sort_keys=True), fsync=False)
    except OSError:
        pass  # never let telemetry take down a job


def active_fleet() -> dict | None:
    """The recorder advertised to this process, or None."""
    raw = os.environ.get(FLEET_ENV)
    if not raw:
        return None
    try:
        data = json.loads(raw)
    except ValueError:
        return None
    if not isinstance(data, dict) or "path" not in data:
        return None
    return data


def record_job_span(job, outcome) -> None:
    """Append one job span from whichever process executed the job.

    Called by the runner after every *executed* (non-cache-hit) job —
    inside the pool worker for parallel sweeps, in the parent for serial
    ones.  No-op unless a :class:`FleetRecorder` is active.
    """
    fleet = active_fleet()
    if fleet is None:
        return
    start = outcome.started or time.time()
    _write_span(fleet["path"], {
        "schema": SPAN_SCHEMA,
        "kind": "job",
        "name": job.tag or job.app,
        "app": job.app,
        "key": job.digest() or "",
        "pid": outcome.worker_pid or os.getpid(),
        "start": start,
        "end": start + outcome.wall_seconds,
        "phases": outcome.phases or {},
        "error": bool(outcome.error),
    })


# ---------------------------------------------------------------------------
# Chrome-trace merge
# ---------------------------------------------------------------------------


def merge_fleet_trace(
    source: FleetRecorder | str | Path | list,
    sim_traces: list[dict] | tuple = (),
) -> dict:
    """Merge recorded spans into one Chrome ``trace_event`` document.

    One trace process per real worker pid (the sweep master's lane is
    labelled as such), "X" complete events for jobs with nested phase
    slices, all timestamps in microseconds relative to the earliest
    sweep ``t0``.  ``sim_traces`` (documents from the per-sim
    :class:`~repro.obs.tracer.EventTracer`) are appended untouched —
    their synthetic pids 1–5 never collide with real worker pids.
    """
    if isinstance(source, FleetRecorder):
        rows = source.spans()
    elif isinstance(source, (str, Path)):
        rows = read_jsonl(source, warn=False).dicts
    else:
        rows = list(source)

    metas = [r for r in rows if r.get("kind") == "meta"]
    spans = [r for r in rows if r.get("kind") in ("job", "span")]
    starts = [r["start"] for r in spans
              if isinstance(r.get("start"), (int, float))]
    t0 = min(
        [m["t0"] for m in metas if isinstance(m.get("t0"), (int, float))]
        + starts,
        default=0.0,
    )
    master_pids = {m.get("pid") for m in metas}

    events: list[dict] = []
    seen_pids: list[int] = []

    def lane(pid: int) -> None:
        if pid in seen_pids:
            return
        seen_pids.append(pid)
        label = ("sweep master" if pid in master_pids
                 else f"worker {pid}")
        events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": label},
        })

    def us(seconds: float) -> int:
        return max(0, int(round((seconds - t0) * 1e6)))

    for row in spans:
        start, end = row.get("start"), row.get("end")
        if not isinstance(start, (int, float)):
            continue
        if not isinstance(end, (int, float)) or end < start:
            end = start
        pid = row.get("pid") or 0
        lane(pid)
        args = dict(row.get("args") or {})
        if row.get("kind") == "job":
            args.update({
                "app": row.get("app", ""),
                "key": row.get("key", ""),
                "error": bool(row.get("error")),
            })
        events.append({
            "name": row.get("name", "?"),
            "cat": "fleet" if row.get("kind") == "span" else "job",
            "ph": "X",
            "pid": pid,
            "tid": 0,
            "ts": us(start),
            "dur": max(0, int(round((end - start) * 1e6))),
            "args": args,
        })
        phases = row.get("phases") or {}
        for phase, window in sorted(phases.items()):
            if (not isinstance(window, (list, tuple)) or len(window) != 2
                    or not all(isinstance(v, (int, float))
                               for v in window)):
                continue
            offset, duration = window
            events.append({
                "name": phase,
                "cat": "phase",
                "ph": "X",
                "pid": pid,
                "tid": 0,
                "ts": us(start + offset),
                "dur": max(0, int(round(duration * 1e6))),
                "args": {"job": row.get("name", "?")},
            })

    # Metadata first, then slices in timestamp order — Perfetto does not
    # require the sort, but it makes the document diffable and lets the
    # tests assert monotonicity.
    meta_events = [e for e in events if e["ph"] == "M"]
    slice_events = sorted(
        (e for e in events if e["ph"] != "M"),
        key=lambda e: (e["ts"], e["pid"], e["name"]),
    )
    merged = meta_events + slice_events
    for doc in sim_traces:
        merged.extend(doc.get("traceEvents", []))
    return {
        "traceEvents": merged,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro fleet",
            "sweeps": [m.get("sweep_id", "") for m in metas],
            "workers": sorted(p for p in seen_pids
                              if p not in master_pids),
        },
    }


def write_fleet_trace(
    path: str | Path,
    source: FleetRecorder | str | Path | list,
    sim_traces: list[dict] | tuple = (),
) -> dict:
    doc = merge_fleet_trace(source, sim_traces)
    replace_file(path, json.dumps(doc, indent=1, sort_keys=True))
    return doc


# ---------------------------------------------------------------------------
# Live progress
# ---------------------------------------------------------------------------


class SweepProgress:
    """Heartbeat + crash-readable status file for one sweep.

    The status file is rewritten atomically on every update, so a reader
    never sees a torn snapshot; the heartbeat goes to stderr (stdout of
    every sweep-running command is byte-stable and diffed in CI).
    """

    def __init__(
        self,
        root: str | Path | None,
        *,
        heartbeat: bool = False,
        stream=None,
        interval: float = 0.5,
    ) -> None:
        self.root = Path(root) if root is not None else None
        self.path = (self.root / STATUS_FILENAME
                     if self.root is not None else None)
        self.heartbeat = heartbeat
        self.stream = stream if stream is not None else sys.stderr
        self.interval = interval
        self._state: dict[str, Any] = {}
        self._last_beat = 0.0

    def begin(self, sweep_id: str, points: int, jobs: int,
              hits: int = 0) -> None:
        self._state = {
            "schema": STATUS_SCHEMA,
            "sweep_id": sweep_id,
            "state": "running",
            "points": points,
            "done": hits,
            "hits": hits,
            "executed": 0,
            "retried": 0,
            "errors": 0,
            "quarantined": 0,
            "jobs": jobs,
            "pid": os.getpid(),
            "started": time.time(),
            "updated": time.time(),
        }
        self._write()
        self._beat(force=True)

    def update(self, **counts: int) -> None:
        if not self._state:
            return
        self._state.update(counts)
        self._state["done"] = (
            self._state["hits"] + self._state["executed"]
        )
        self._state["updated"] = time.time()
        self._write()
        self._beat()

    def finish(self, state: str = "done") -> None:
        if not self._state:
            return
        self._state["state"] = state
        self._state["updated"] = time.time()
        self._write()
        self._beat(force=True)

    # -- internals ---------------------------------------------------------

    def _write(self) -> None:
        if self.path is None:
            return
        try:
            replace_file(
                self.path, json.dumps(self._state, sort_keys=True) + "\n"
            )
        except OSError:
            pass  # progress must never take down the sweep

    def _beat(self, force: bool = False) -> None:
        if not self.heartbeat:
            return
        now = time.monotonic()
        if not force and now - self._last_beat < self.interval:
            return
        self._last_beat = now
        print(f"\r{format_status(self._state, brief=True)}",
              end="" if self._state.get("state") == "running" else "\n",
              file=self.stream, flush=True)


def load_status(root: str | Path) -> dict | None:
    """Read ``sweep-status.json`` from a store directory, or None."""
    path = Path(root) / STATUS_FILENAME
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(data, dict) or "state" not in data:
        return None
    # A "running" sweep whose recorded pid is gone crashed (or was
    # killed) between updates — report that instead of a live sweep.
    if data.get("state") == "running" and not pid_alive(data.get("pid")):
        data["state"] = "crashed"
    return data


def format_status(status: dict, brief: bool = False) -> str:
    done = status.get("done", 0)
    points = status.get("points", 0)
    state = status.get("state", "?")
    parts = [
        f"{done}/{points} points",
        f"{status.get('hits', 0)} cache hits",
        f"{status.get('executed', 0)} simulated",
    ]
    if status.get("retried"):
        parts.append(f"{status['retried']} retried")
    if status.get("errors"):
        parts.append(f"{status['errors']} errors")
    if status.get("quarantined"):
        parts.append(f"{status['quarantined']} quarantined")
    started = status.get("started")
    updated = status.get("updated")
    if isinstance(started, (int, float)) and isinstance(
            updated, (int, float)):
        parts.append(f"{max(0.0, updated - started):.1f}s")
    line = f"sweep {state}: " + ", ".join(parts)
    if brief:
        return line
    details = [line]
    if state == "crashed":
        details.append(
            f"  pid {status.get('pid', '?')} is gone; resume with "
            f"--resume to keep completed points"
        )
    elif state == "running":
        details.append(f"  pid {status.get('pid', '?')} alive, "
                       f"{status.get('jobs', 1)} workers")
    if status.get("sweep_id"):
        details.append(f"  sweep id {status['sweep_id']}")
    return "\n".join(details)
