"""Cross-run telemetry store: every CLI run leaves a queryable record.

PR 2's tracer/metrics/stall profiler answer "where did the cycles go?"
for one process; this module makes the answer *persist*.  Every
``repro simulate / profile / experiment / fault-campaign`` invocation
appends one :class:`RunRecord` — app, platform, config digest, seed,
metrics snapshot, exact stall-attribution table, verification result,
wall clock, fast/dense mode — to an append-only JSONL store
(``.repro/runs.jsonl`` by default), so regression questions become
``repro runs diff`` instead of re-running simulations by hand.

The schema is versioned (:data:`SCHEMA_VERSION`); records with an
unknown schema or corrupt lines are skipped on read, never fatal, so an
old store survives upgrades.  Records are plain sorted-key JSON and the
store is append-only; writes go through :mod:`repro.io.safety` — each
record is one line, written + flushed + fsynced under the store file's
advisory lock (run-id assignment happens inside the same critical
section), so concurrent writers never interleave or duplicate ids, and
a writer killed mid-append leaves at most one torn trailing line, which
reads skip with a warning and :meth:`RunStore.compact` removes.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Iterable

from repro.io.safety import FileLock, append_line, read_jsonl, replace_file
from repro.obs.profile import COLUMNS

SCHEMA_VERSION = 1
DEFAULT_STORE_DIR = ".repro"
STORE_FILENAME = "runs.jsonl"

# Stall buckets a diff aggregates across stages (profiler column order).
STALL_BUCKETS = COLUMNS[1:]


def config_digest(config) -> str:
    """A stable short digest of a :class:`SimConfig` (field-order free)."""
    payload = json.dumps(asdict(config), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:12]


def platform_to_dict(platform) -> dict[str, Any]:
    """The platform facts diagnosis needs, JSON-ready."""
    return {
        "clock_hz": platform.clock_hz,
        "cache_bytes": platform.cache_bytes,
        "bandwidth_scale": platform.bandwidth_scale,
        "qpi_bytes_per_cycle": round(platform.qpi_bytes_per_cycle, 6),
    }


@dataclass
class RunRecord:
    """One stored run.  ``stalls``/``timeline`` are present when the run

    was observed (an :class:`~repro.obs.Observability` bundle attached);
    ``extra`` carries kind-specific payloads (experiment rows, campaign
    recovery counts).
    """

    kind: str                      # simulate | profile | fault-campaign |
    app: str                       # experiment | bench
    cycles: int
    seconds: float
    utilization: float
    squash_fraction: float
    verified: bool
    run_id: str = ""
    schema: int = SCHEMA_VERSION
    timestamp: str = ""
    app_mode: str = ""             # speculative | coordinative
    host_fed: bool = False
    sim_mode: str = "dense"        # dense | fast | event | sweep
    seed: int | None = None
    wall_seconds: float = 0.0
    platform: dict[str, Any] = field(default_factory=dict)
    config: dict[str, Any] = field(default_factory=dict)
    config_digest: str = ""
    memory: dict[str, Any] = field(default_factory=dict)
    metrics: dict[str, Any] | None = None
    stalls: dict[str, dict[str, int]] | None = None
    timeline: dict[str, Any] | None = None
    # Critical-path summary (obs/critpath.summary_block) when the run
    # carried a TokenLedger: bucket decomposition, dominant bucket,
    # top segments, what-if projections.  None for unledgered runs.
    critical_path: dict[str, Any] | None = None
    extra: dict[str, Any] = field(default_factory=dict)

    # -- derived views used by diff/diagnose/dashboard -----------------------

    def stall_totals(self) -> dict[str, int]:
        """Cycles per stall bucket, aggregated over every stage.

        ``stalled`` is the undifferentiated bucket golden fixtures use
        (they keep per-stage totals, not the per-reason split).
        """
        buckets = ("active",) + STALL_BUCKETS + ("idle", "stalled")
        totals = dict.fromkeys(buckets, 0)
        for row in (self.stalls or {}).values():
            for bucket in buckets:
                totals[bucket] += row.get(bucket, 0)
        if not totals["stalled"]:
            del totals["stalled"]
        return totals

    def stage_stalled(self) -> dict[str, int]:
        """Stalled cycles per stage (all reasons summed)."""
        return {
            stage: sum(row.get(bucket, 0)
                       for bucket in STALL_BUCKETS + ("stalled",))
            for stage, row in (self.stalls or {}).items()
        }

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RunRecord":
        known = {f.name for f in cls.__dataclass_fields__.values()}
        return cls(**{k: v for k, v in data.items() if k in known})


def record_from_result(
    kind: str,
    spec,
    result,
    *,
    platform,
    config,
    stage_names: Iterable[str] | None = None,
    seed: int | None = None,
    verified: bool = True,
    wall_seconds: float = 0.0,
    critical_path: dict[str, Any] | None = None,
    extra: dict[str, Any] | None = None,
) -> RunRecord:
    """Reduce a :class:`~repro.sim.accelerator.SimResult` to a record.

    ``critical_path`` takes an :func:`repro.obs.critpath.summary_block`;
    when omitted but the result carries a ledger, the summary is
    extracted here so every ledgered run stores its bottleneck chain.
    """
    obs = result.obs
    stalls = timeline = None
    if obs is not None and stage_names is not None:
        stalls = obs.profiler.accounting(list(stage_names), result.cycles)
        timeline = obs.timeline.to_dict(result.stats.total_stages)
    if critical_path is None and getattr(result, "ledger", None) is not None:
        from repro.obs.critpath import (
            extract_critical_path,
            result_saturation,
            summary_block,
        )

        critical_path = summary_block(extract_critical_path(
            result.ledger, result.cycles,
            rule_lanes=getattr(config, "rule_lanes", 32),
            saturation=result_saturation(result, platform),
        ))
    return RunRecord(
        kind=kind,
        app=result.app,
        app_mode=spec.mode,
        host_fed=spec.host_feed is not None,
        sim_mode=config.resolved_engine(),
        cycles=result.cycles,
        seconds=result.seconds,
        utilization=result.utilization,
        squash_fraction=result.squash_fraction,
        verified=verified,
        seed=seed,
        wall_seconds=round(wall_seconds, 6),
        platform=platform_to_dict(platform),
        config=asdict(config),
        config_digest=config_digest(config),
        memory={
            "bytes": result.memory_bytes,
            "loads": result.memory_loads,
            "hit_rate": round(result.memory_hit_rate, 6),
        },
        metrics=result.metrics.snapshot() if result.metrics else None,
        stalls=stalls,
        timeline=timeline,
        critical_path=critical_path,
        extra=extra or {},
    )


def record_from_outcome(
    kind: str,
    outcome,
    *,
    platform,
    config,
    seed: int | None = None,
    extra: dict[str, Any] | None = None,
) -> RunRecord:
    """Reduce a :class:`~repro.exec.job.JobOutcome` to a record.

    The sweep-runner counterpart of :func:`record_from_result`: outcomes
    are plain data (they may have crossed a process boundary or come out
    of the result cache), so everything a record needs is already a
    field — no spec or live metrics registry required.
    """
    return RunRecord(
        kind=kind,
        app=outcome.app,
        app_mode=outcome.app_mode,
        host_fed=outcome.host_fed,
        sim_mode=config.resolved_engine(),
        cycles=outcome.cycles,
        seconds=outcome.seconds,
        utilization=outcome.utilization,
        squash_fraction=outcome.squash_fraction,
        verified=outcome.verified,
        seed=seed,
        wall_seconds=round(outcome.wall_seconds, 6),
        platform=platform_to_dict(platform),
        config=asdict(config),
        config_digest=config_digest(config),
        memory={
            "bytes": outcome.memory_bytes,
            "loads": outcome.memory_loads,
            "hit_rate": round(outcome.memory_hit_rate, 6),
        },
        metrics=outcome.metrics,
        extra=extra or {},
    )


def record_from_sweep(
    runner,
    *,
    command: str = "sweep",
    apps: Iterable[str] = (),
    max_job_spans: int = 200,
    extra: dict[str, Any] | None = None,
) -> RunRecord:
    """Reduce a finished :class:`~repro.exec.runner.SweepRunner` run to a
    sweep-level record (``kind="sweep"``).

    Carries the runner's exec metrics snapshot (queue-wait/run-wall
    histograms, cache economics, lock contention) plus per-job worker
    spans in ``extra["jobs"]`` — the fleet dashboard's raw material.
    Per-point wall clocks are host-dependent by nature, which is why
    sweep records are only stored by commands whose run-store output is
    not part of a byte-stability contract (``repro experiment``, not
    ``repro fault-campaign``).
    """
    report = runner.report
    snapshot = runner.metrics.snapshot()
    app_list = sorted(set(apps))
    spans = list(runner.job_spans)
    if len(spans) > max_job_spans:
        spans = spans[:max_job_spans]
    payload = {
        "command": command,
        "sweep": {
            "points": report.points,
            "hits": report.hits,
            "executed": report.executed,
            "retried": report.retried,
            "errors": report.errors,
            "quarantined": report.quarantined,
            "jobs": report.jobs,
            "hit_rate": round(report.hit_rate, 6),
            "points_per_sec": round(
                report.points / report.wall_seconds, 3
            ) if report.wall_seconds else 0.0,
            "fallback": report.fallback,
        },
        "jobs": spans,
        **(extra or {}),
    }
    return RunRecord(
        kind="sweep",
        app="+".join(app_list)[:48] or command,
        cycles=0,
        seconds=0.0,
        utilization=snapshot["gauges"].get(
            "exec.workers.busy_fraction", 0.0
        ),
        squash_fraction=0.0,
        verified=report.errors == 0,
        sim_mode="sweep",
        wall_seconds=round(report.wall_seconds, 6),
        metrics=snapshot,
        extra=payload,
    )


class RunStore:
    """Append-only JSONL store of :class:`RunRecord` documents."""

    def __init__(
        self,
        root: str | Path = DEFAULT_STORE_DIR,
        lock_timeout: float = 10.0,
    ) -> None:
        self.root = Path(root)
        self.path = self.root / STORE_FILENAME
        self.lock_timeout = lock_timeout
        self.skipped = 0   # corrupt lines seen by the last records() read

    # -- writing --------------------------------------------------------------

    def append(self, record: RunRecord) -> RunRecord:
        """Assign a run id and persist the record; returns it.

        Id assignment and the append happen under the store file's
        advisory lock, so concurrent writers cannot race to the same id
        or interleave lines; the line is fsynced before the lock drops.
        """
        if not record.timestamp:
            record.timestamp = time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
            )
        with FileLock(self.path, timeout=self.lock_timeout):
            if not record.run_id:
                record.run_id = f"{self._next_id():06d}"
            line = json.dumps(record.to_dict(), sort_keys=True)
            append_line(self.path, line, lock=False)
        return record

    def _next_id(self) -> int:
        """One past the highest id in use (not the line count, which
        shrinks under compaction and would recycle ids)."""
        if not self.path.exists():
            return 1
        highest = lines = 0
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                lines += 1
                try:
                    run_id = json.loads(line).get("run_id", "")
                except (json.JSONDecodeError, AttributeError):
                    continue
                if isinstance(run_id, str) and run_id.isdigit():
                    highest = max(highest, int(run_id))
        return max(highest, lines) + 1

    # -- reading --------------------------------------------------------------

    def records(self) -> list[RunRecord]:
        """Every readable record, oldest first.

        Corrupt lines — including a torn trailing line from a writer
        killed mid-append — are skipped with a warning naming the file
        and line number; the count lands in :attr:`skipped`.
        """
        read = read_jsonl(self.path)
        self.skipped = len(read.skipped)
        out: list[RunRecord] = []
        for _, data in read.rows:
            if data.get("schema", 0) > SCHEMA_VERSION:
                continue
            try:
                out.append(RunRecord.from_dict(data))
            except TypeError:
                self.skipped += 1
        return out

    def ensure_readable(self) -> list[RunRecord]:
        """Records, or a KeyError whose message says in one line why
        there are none (missing file / empty / entirely corrupt)."""
        if not self.path.exists():
            raise KeyError(f"run store {self.path} does not exist — "
                           "run e.g. `repro simulate SPEC-BFS` first")
        records = self.records()
        if not records:
            if self.skipped:
                raise KeyError(
                    f"run store {self.path} has no readable records "
                    f"({self.skipped} corrupt lines — "
                    "try `repro runs compact`)")
            raise KeyError(f"run store {self.path} is empty")
        return records

    def get(self, ref: str) -> RunRecord:
        """Resolve ``ref``: a run id (zero-padding optional), an id

        prefix, or ``latest`` / a negative index counted from the end.
        """
        records = self.ensure_readable()
        if ref in ("latest", "-1"):
            return records[-1]
        if ref.startswith("-") and ref[1:].isdigit():
            index = int(ref)
            if -len(records) <= index:
                return records[index]
            raise KeyError(f"run index {ref} out of range "
                           f"({len(records)} records)")
        matches = [r for r in records if r.run_id == ref]
        if not matches and ref.isdigit():
            matches = [r for r in records if r.run_id == f"{int(ref):06d}"]
        if not matches:
            matches = [r for r in records if r.run_id.startswith(ref)]
        if not matches:
            raise KeyError(f"no run {ref!r} in {self.path}")
        return matches[-1]

    # -- maintenance (repro runs compact) -------------------------------------

    def compact(self) -> dict:
        """Rewrite the store dropping corrupt/torn lines only.

        Run ids are preserved (they are stored in the records, not
        derived from line numbers on read), and records from *newer*
        schemas are kept verbatim — compaction must never destroy data
        a future version could still read.  Atomic under the lock.
        """
        with FileLock(self.path, timeout=self.lock_timeout):
            read = read_jsonl(self.path, warn=False)
            text = "".join(
                json.dumps(data, sort_keys=True) + "\n"
                for _, data in read.rows
            )
            if not read.missing:
                replace_file(self.path, text)
        return {
            "before_lines": read.lines,
            "after_lines": len(read.rows),
            "dropped_corrupt": len(read.skipped),
        }


# -- diffing ----------------------------------------------------------------


def diff_records(a: RunRecord, b: RunRecord) -> dict[str, Any]:
    """Structured b-minus-a delta: cycles, per-stall-bucket totals,

    per-stage stalled-cycle movers, and ``sim.*`` counter deltas.
    """
    diff: dict[str, Any] = {
        "a": a.run_id or a.app,
        "b": b.run_id or b.app,
        "apps": [a.app, b.app],
        "cycles": {"a": a.cycles, "b": b.cycles,
                   "delta": b.cycles - a.cycles},
        "utilization_delta": round(b.utilization - a.utilization, 6),
        "squash_fraction_delta": round(
            b.squash_fraction - a.squash_fraction, 6
        ),
    }
    if a.stalls is not None and b.stalls is not None:
        totals_a, totals_b = a.stall_totals(), b.stall_totals()
        diff["stall_buckets"] = {
            bucket: {
                "a": totals_a.get(bucket, 0),
                "b": totals_b.get(bucket, 0),
                "delta": totals_b.get(bucket, 0) - totals_a.get(bucket, 0),
            }
            for bucket in {**totals_a, **totals_b}
        }
        stalled_a, stalled_b = a.stage_stalled(), b.stage_stalled()
        movers = {
            stage: stalled_b.get(stage, 0) - stalled_a.get(stage, 0)
            for stage in set(stalled_a) | set(stalled_b)
        }
        diff["stage_movers"] = dict(sorted(
            ((s, d) for s, d in movers.items() if d),
            key=lambda item: -abs(item[1]),
        )[:10])
    if a.critical_path is not None and b.critical_path is not None:
        cp_a, cp_b = a.critical_path, b.critical_path
        buckets_a = cp_a.get("buckets", {})
        buckets_b = cp_b.get("buckets", {})
        diff["critical_path"] = {
            "dominant": {"a": cp_a.get("dominant", "?"),
                         "b": cp_b.get("dominant", "?")},
            "buckets": {
                bucket: {
                    "a": buckets_a.get(bucket, 0),
                    "b": buckets_b.get(bucket, 0),
                    "delta": (buckets_b.get(bucket, 0)
                              - buckets_a.get(bucket, 0)),
                }
                for bucket in {**buckets_a, **buckets_b}
            },
        }
    counters_a = (a.metrics or {}).get("counters", {})
    counters_b = (b.metrics or {}).get("counters", {})
    if counters_a and counters_b:
        deltas = {
            name: counters_b.get(name, 0) - counters_a.get(name, 0)
            for name in sorted(set(counters_a) | set(counters_b))
            if counters_b.get(name, 0) != counters_a.get(name, 0)
        }
        diff["counters"] = deltas
    return diff


def golden_record(golden: dict[str, Any]) -> RunRecord:
    """Adapt a golden fixture (``tests/golden/*.json``) into a record

    diffable against stored runs.  Goldens carry per-stage stall totals
    but no per-reason split, so only cycles/counter deltas and stage
    movers are available against them.
    """
    stats = golden.get("stats", {})
    cycles = golden.get("cycles", 0)
    per_stage_stalls = stats.get("per_stage_stalls", {})
    stalls = {
        stage: {"active": stats.get("per_stage_active", {}).get(stage, 0),
                "stalled": stalled}
        for stage, stalled in per_stage_stalls.items()
    } or None
    return RunRecord(
        kind="golden",
        app=golden.get("app", "?"),
        run_id=f"golden:{golden.get('scenario', '?')}",
        cycles=cycles,
        seconds=0.0,
        utilization=0.0,
        squash_fraction=0.0,
        verified=True,
        platform={"bandwidth_scale": golden.get("bandwidth_scale", 1.0)},
        metrics={"counters": {
            f"sim.{name}": value for name, value in stats.items()
            if isinstance(value, int)
        }},
        stalls=stalls,
    )


def format_records_table(records: list[RunRecord]) -> str:
    """The ``repro runs list`` table."""
    if not records:
        return "(run store is empty)"
    header = (f"{'id':>8s}  {'kind':14s} {'app':10s} {'bw':>4s} "
              f"{'mode':5s} {'cycles':>10s} {'util':>6s} {'squash':>6s} "
              f"{'verified':8s} {'when':20s}")
    lines = [header]
    for r in records:
        bw = r.platform.get("bandwidth_scale", 1.0)
        lines.append(
            f"{r.run_id:>8s}  {r.kind:14s} {r.app:10s} {bw:4.1f} "
            f"{r.sim_mode:5s} {r.cycles:>10d} "
            f"{r.utilization * 100:5.1f}% {r.squash_fraction * 100:5.1f}% "
            f"{'yes' if r.verified else 'NO':8s} {r.timestamp:20s}"
        )
    return "\n".join(lines)


def format_record(record: RunRecord) -> str:
    """The ``repro runs show`` rendering: headline plus stall totals."""
    lines = [
        f"run {record.run_id} [{record.kind}] {record.app} "
        f"({record.app_mode or 'n/a'}"
        + (", host-fed" if record.host_fed else "") + ")",
        f"  schema v{record.schema}  recorded {record.timestamp or 'n/a'}"
        f"  wall {record.wall_seconds:.3f}s",
        f"  platform: bandwidth x{record.platform.get('bandwidth_scale', 1)}"
        f"  config {record.config_digest or 'n/a'}"
        + (f"  seed {record.seed}" if record.seed is not None else ""),
        f"  cycles {record.cycles}  utilization "
        f"{record.utilization * 100:.1f}%  squash "
        f"{record.squash_fraction * 100:.1f}%  "
        f"{'VERIFIED' if record.verified else 'NOT VERIFIED'}",
    ]
    if record.memory:
        lines.append(
            f"  memory: {record.memory.get('bytes', 0)} bytes, "
            f"{record.memory.get('loads', 0)} loads, hit rate "
            f"{record.memory.get('hit_rate', 0.0) * 100:.0f}%"
        )
    if record.stalls is not None:
        totals = record.stall_totals()
        cells = "  ".join(f"{k}={v}" for k, v in totals.items())
        lines.append(f"  stall buckets (cycles x stages): {cells}")
    if record.critical_path is not None:
        buckets = record.critical_path.get("buckets", {})
        cells = "  ".join(f"{k}={v}" for k, v in buckets.items() if v)
        lines.append(
            f"  critical path (dominant "
            f"{record.critical_path.get('dominant', '?')}): {cells}"
        )
    if record.extra:
        lines.append("  extra: "
                     + json.dumps(record.extra, sort_keys=True)[:200])
    return "\n".join(lines)


def format_diff(diff: dict[str, Any]) -> str:
    """Render a :func:`diff_records` result for the terminal."""
    cycles = diff["cycles"]
    lines = [
        f"diff {diff['a']} -> {diff['b']} "
        f"({diff['apps'][0]} vs {diff['apps'][1]})",
        f"  cycles: {cycles['a']} -> {cycles['b']} "
        f"({cycles['delta']:+d})",
        f"  utilization: {diff['utilization_delta']:+.4f}  "
        f"squash fraction: {diff['squash_fraction_delta']:+.4f}",
    ]
    buckets = diff.get("stall_buckets")
    if buckets:
        lines.append("  per-bucket cycle deltas (summed over stages):")
        for bucket, cells in buckets.items():
            lines.append(
                f"    {bucket:14s} {cells['a']:>10d} -> {cells['b']:>10d} "
                f"({cells['delta']:+d})"
            )
    critpath = diff.get("critical_path")
    if critpath:
        dominant = critpath["dominant"]
        shift = (" (BOTTLENECK SHIFTED)"
                 if dominant["a"] != dominant["b"] else "")
        lines.append(f"  critical path: dominant {dominant['a']} -> "
                     f"{dominant['b']}{shift}")
        for bucket, cells in sorted(critpath["buckets"].items(),
                                    key=lambda kv: -abs(kv[1]["delta"])):
            if cells["delta"]:
                lines.append(
                    f"    {bucket:14s} {cells['a']:>10d} -> "
                    f"{cells['b']:>10d} ({cells['delta']:+d})"
                )
    movers = diff.get("stage_movers")
    if movers:
        lines.append("  top stage movers (stalled cycles):")
        for stage, delta in movers.items():
            lines.append(f"    {stage:40s} {delta:+d}")
    counters = diff.get("counters")
    if counters:
        lines.append("  counter deltas:")
        for name, delta in list(counters.items())[:12]:
            lines.append(f"    {name:40s} {delta:+d}")
    return "\n".join(lines)
