"""Rule-based regression detection over run-store series and benchmarks.

``repro runs diff`` answers "what changed between these two runs?";
this module answers the question CI actually asks: *did anything get
worse, and why?*  Two comparators share one finding type:

* :func:`regress_store` — walks a run store, groups records into series
  (same kind, app, seed, config digest, bandwidth, sim mode), and
  applies the rules to each series' trajectory.  Running it twice on an
  unchanged store reports the same (possibly empty) findings — it never
  mutates anything.
* :func:`regress_bench` — compares a freshly generated ``BENCH_*.json``
  against a committed baseline: exact cycle equality, warm-cache hit
  rate, and machine-normalized speedup floors (the same gates
  ``scripts/bench_check.py`` has enforced since PR 3, now with a
  diagnosis attached to every failure).

Rules and noise bands:

===============  ========  ==================================================
rule             severity  trigger
===============  ========  ==================================================
cycle-drift      fail      exact cycle count changed within a series /
                           differs from the benchmark baseline (cycles are
                           fully deterministic — any drift is a behaviour
                           change, not noise)
hit-rate         fail      warm-cache sweep hit rate below 1.0
speedup-floor    fail      fast-forward, engine-matrix, or parallel-sweep
                           speedup below ``baseline * (1 - tolerance)``,
                           or an event-engine speedup below its row's
                           absolute ``event_floor``
wall-clock       warn      latest wall clock above the series median by
                           more than ``wall_band`` (needs >=
                           ``min_wall_samples`` records — thin series are
                           all noise)
points-per-sec   warn      sweep throughput below baseline by more than
                           the band (wall-clock rules warn, never fail:
                           they are host-dependent)
critpath-shift   warn      the dominant critical-path bucket changed
                           between the two latest ledgered runs of a
                           series — the bottleneck regime moved even if
                           the cycle count did not
===============  ========  ==================================================

``regress_bench`` additionally understands the ``ledger`` section of
``BENCH_*.json`` (zero-cost contract): ledger-off cycles must match the
baseline exactly, ledger-on must finish at the same cycle as ledger-off
(both fail), and the ledger-off wall clock / recording overhead get the
usual warn-only noise band.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Iterable

DEFAULT_WALL_BAND = 0.5        # +50% over the series median
DEFAULT_MIN_WALL_SAMPLES = 4
DEFAULT_SPEEDUP_TOLERANCE = 0.2
DEFAULT_SWEEP_TOLERANCE = 0.35

_CYCLE_DIAGNOSIS = (
    "cycle counts are deterministic: any drift is a behaviour change, "
    "not noise. Localize it with `repro runs diff` / `repro diagnose`; "
    "if the change is intentional, re-record the baseline "
    "(scripts/bench_smoke.py) and commit it."
)
_SPEEDUP_DIAGNOSIS = (
    "machine-normalized speedup regressed beyond its tolerance band — "
    "profile the affected path (`repro profile --fast`, or the sweep "
    "fleet page in `repro dashboard`) before re-recording baselines."
)
_WALL_DIAGNOSIS = (
    "wall clock is host-dependent, so this is a warning: check the "
    "fleet page (worker timeline, lock contention, cache economics) "
    "to see where the time went."
)
_CRITPATH_DIAGNOSIS = (
    "the dominant critical-path bucket moved between runs of the same "
    "configuration: the bottleneck regime changed even if the cycle "
    "count did not. Compare the chains with `repro runs diff` or "
    "`repro critpath APP --json`."
)
_LEDGER_DIAGNOSIS = (
    "a disabled TokenLedger must be zero-cost: ledger-off cycles must "
    "match the committed baseline exactly, and ledger-on runs must "
    "finish at the same cycle. Any drift means the provenance hooks "
    "leaked into simulated behaviour."
)


@dataclass
class Regression:
    """One rule violation, with enough context to act on it."""

    rule: str                 # cycle-drift | hit-rate | speedup-floor | ...
    where: str                # series / benchmark section it fired in
    message: str
    severity: str = "fail"    # "fail" (exit non-zero) | "warn"
    diagnosis: str = ""
    current: float | None = None
    baseline: float | None = None

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)


# ---------------------------------------------------------------------------
# Run-store series
# ---------------------------------------------------------------------------


def series_key(record) -> tuple | None:
    """The identity under which runs are comparable, or None to skip.

    Everything that legitimately changes cycles is part of the key:
    app, seed, config digest, platform bandwidth, sim mode (fast is
    cycle-exact vs dense by contract, but regress keeps them separate so
    a fast-path bug reads as *its* series drifting, not as noise in a
    mixed one).  Sweep and golden records are handled separately.
    """
    if record.kind in ("golden", "sweep") or record.cycles <= 0:
        return None
    return (
        record.kind,
        record.app,
        record.seed,
        record.config_digest,
        record.platform.get("bandwidth_scale", 1.0),
        record.sim_mode,
        bool(record.extra.get("faults")) if record.extra else False,
    )


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def regress_store(
    records: Iterable,
    *,
    wall_band: float = DEFAULT_WALL_BAND,
    min_wall_samples: int = DEFAULT_MIN_WALL_SAMPLES,
) -> list[Regression]:
    """Apply the rules to every series in a run store's records."""
    series: dict[tuple, list] = {}
    sweeps: dict[tuple, list] = {}
    for record in records:
        key = series_key(record)
        if key is not None:
            series.setdefault(key, []).append(record)
            continue
        if record.kind == "sweep":
            sweep = (record.extra or {}).get("sweep", {})
            skey = (record.app, (record.extra or {}).get("command", ""),
                    sweep.get("jobs", 1))
            sweeps.setdefault(skey, []).append(record)

    findings: list[Regression] = []
    for key, runs in sorted(series.items()):
        kind, app, seed, digest, bandwidth, mode = key[:6]
        where = (f"{kind}/{app} bw={bandwidth:g} mode={mode}"
                 + (f" seed={seed}" if seed is not None else ""))
        latest = runs[-1]
        prior = runs[:-1]
        if prior and latest.cycles != prior[-1].cycles:
            delta = latest.cycles - prior[-1].cycles
            pct = 100.0 * delta / prior[-1].cycles
            findings.append(Regression(
                rule="cycle-drift",
                where=where,
                severity="fail",
                message=(f"cycles {prior[-1].cycles} -> {latest.cycles} "
                         f"({delta:+d}, {pct:+.1f}%) between runs "
                         f"{prior[-1].run_id} and {latest.run_id}"),
                diagnosis=_CYCLE_DIAGNOSIS,
                current=float(latest.cycles),
                baseline=float(prior[-1].cycles),
            ))
        paths = [r for r in runs
                 if getattr(r, "critical_path", None) is not None]
        if len(paths) >= 2:
            want = paths[-2].critical_path.get("dominant", "?")
            have = paths[-1].critical_path.get("dominant", "?")
            if want != have:
                findings.append(Regression(
                    rule="critpath-shift",
                    where=where,
                    severity="warn",
                    message=(f"dominant critical-path bucket {want} -> "
                             f"{have} between runs "
                             f"{paths[-2].run_id} and {paths[-1].run_id}"),
                    diagnosis=_CRITPATH_DIAGNOSIS,
                ))
        walls = [r.wall_seconds for r in prior if r.wall_seconds > 0]
        if (len(walls) + 1 >= min_wall_samples and walls
                and latest.wall_seconds > 0):
            median = _median(walls)
            if median > 0 and latest.wall_seconds > median * (1 + wall_band):
                findings.append(Regression(
                    rule="wall-clock",
                    where=where,
                    severity="warn",
                    message=(f"wall {latest.wall_seconds:.3f}s vs series "
                             f"median {median:.3f}s "
                             f"(+{100 * (latest.wall_seconds / median - 1):.0f}%"
                             f" > {wall_band:.0%} band, "
                             f"{len(walls)} prior runs)"),
                    diagnosis=_WALL_DIAGNOSIS,
                    current=latest.wall_seconds,
                    baseline=median,
                ))

    for skey, runs in sorted(sweeps.items()):
        app, command, jobs = skey
        where = f"sweep/{command or app} jobs={jobs}"
        rates = [
            (r.extra or {}).get("sweep", {}).get("points_per_sec", 0.0)
            for r in runs
        ]
        prior = [rate for rate in rates[:-1] if rate > 0]
        latest = rates[-1]
        if len(prior) + 1 >= min_wall_samples and latest > 0:
            median = _median(prior)
            if median > 0 and latest < median / (1 + wall_band):
                findings.append(Regression(
                    rule="points-per-sec",
                    where=where,
                    severity="warn",
                    message=(f"throughput {latest:.2f} points/s vs median "
                             f"{median:.2f} ({wall_band:.0%} band)"),
                    diagnosis=_WALL_DIAGNOSIS,
                    current=latest,
                    baseline=median,
                ))
    return findings


# ---------------------------------------------------------------------------
# BENCH_*.json trajectories
# ---------------------------------------------------------------------------


def _cycle_drift(where: str, want, have) -> Regression | None:
    if have is None:
        return Regression(
            rule="cycle-drift", where=where, severity="fail",
            message="present in baseline, missing from current result",
            diagnosis=_CYCLE_DIAGNOSIS,
            baseline=float(want) if isinstance(want, (int, float)) else None,
        )
    if want is not None and have != want:
        return Regression(
            rule="cycle-drift", where=where, severity="fail",
            message=(f"cycles {want} -> {have} ({have - want:+d}, "
                     f"{100.0 * (have - want) / want:+.1f}%)"),
            diagnosis=_CYCLE_DIAGNOSIS,
            current=float(have), baseline=float(want),
        )
    return None


def _speedup_floor(where: str, want, have, tolerance: float,
                   label: str) -> Regression | None:
    """Multiplicative floor, matching bench_check's historical gate:
    ``floor = baseline * (1 - tolerance)``."""
    if not isinstance(want, (int, float)) \
            or not isinstance(have, (int, float)):
        return None
    floor = want * (1.0 - tolerance)
    if have >= floor:
        return None
    return Regression(
        rule="speedup-floor", where=where, severity="fail",
        message=(f"{label} regressed to {have:.2f}x "
                 f"(baseline {want:.2f}x, floor {floor:.2f}x)"),
        diagnosis=_SPEEDUP_DIAGNOSIS,
        current=float(have), baseline=float(want),
    )


def regress_bench(
    current: dict,
    baseline: dict,
    *,
    speedup_tolerance: float = DEFAULT_SPEEDUP_TOLERANCE,
    sweep_tolerance: float = DEFAULT_SWEEP_TOLERANCE,
    wall_band: float = DEFAULT_WALL_BAND,
) -> list[Regression]:
    """Compare a fresh benchmark document against a committed baseline.

    Understands all three ``bench_smoke.py`` shapes: ``--sweep``
    documents (``points`` tag->cycles, ``sweep``
    serial/parallel/warm_cache), ``--fast`` documents (``runs``
    app->{cycles,...}, ``fast_forward`` profile->app->{cycles,
    speedup}), and ``--events`` documents (``engines``
    profile->app->{cycles, fast_speedup, event_speedup}, where rows may
    carry an absolute ``event_floor``).
    """
    findings: list[Regression] = []

    # points: tag -> cycles (int), exact.
    cur_points = current.get("points") or {}
    for tag, want in sorted((baseline.get("points") or {}).items()):
        finding = _cycle_drift(f"points[{tag}]", want, cur_points.get(tag))
        if finding:
            findings.append(finding)

    # runs: app -> {"cycles": int, ...}, exact.
    cur_runs = current.get("runs") or {}
    for app, base_row in sorted((baseline.get("runs") or {}).items()):
        row = cur_runs.get(app)
        finding = _cycle_drift(
            f"runs[{app}]",
            base_row.get("cycles") if isinstance(base_row, dict) else None,
            row.get("cycles") if isinstance(row, dict) else None,
        )
        if finding:
            findings.append(finding)

    # fast_forward: profile -> app -> {"cycles", "speedup"}.
    cur_ff = current.get("fast_forward") or {}
    for profile, base_apps in sorted(
        (baseline.get("fast_forward") or {}).items()
    ):
        cur_apps = cur_ff.get(profile) or {}
        for app, base_row in sorted(base_apps.items()):
            if not isinstance(base_row, dict):
                continue
            row = cur_apps.get(app)
            where = f"fast_forward[{profile}][{app}]"
            if not isinstance(row, dict):
                findings.append(Regression(
                    rule="cycle-drift", where=where, severity="fail",
                    message="present in baseline, missing from current "
                            "result",
                    diagnosis=_CYCLE_DIAGNOSIS,
                ))
                continue
            finding = _cycle_drift(where, base_row.get("cycles"),
                                   row.get("cycles"))
            if finding:
                findings.append(finding)
            finding = _speedup_floor(
                where, base_row.get("speedup"), row.get("speedup"),
                speedup_tolerance, "fast-forward speedup",
            )
            if finding:
                findings.append(finding)

    # engines: profile -> app -> {"cycles", "fast_speedup",
    # "event_speedup"[, "event_floor"]}.  Cycles are exact; per-engine
    # speedups get the relative floor against the baseline, and rows
    # that declare an absolute "event_floor" (the memory-bound 10x
    # contract) are additionally gated against it with no tolerance.
    cur_engines = current.get("engines") or {}
    for profile, base_apps in sorted(
        (baseline.get("engines") or {}).items()
    ):
        cur_apps = cur_engines.get(profile) or {}
        for app, base_row in sorted(base_apps.items()):
            if not isinstance(base_row, dict):
                continue
            row = cur_apps.get(app)
            where = f"engines[{profile}][{app}]"
            if not isinstance(row, dict):
                findings.append(Regression(
                    rule="cycle-drift", where=where, severity="fail",
                    message="present in baseline, missing from current "
                            "result",
                    diagnosis=_CYCLE_DIAGNOSIS,
                ))
                continue
            finding = _cycle_drift(where, base_row.get("cycles"),
                                   row.get("cycles"))
            if finding:
                findings.append(finding)
            for key, label in (("fast_speedup", "fast-engine speedup"),
                               ("event_speedup", "event-engine speedup")):
                finding = _speedup_floor(
                    where, base_row.get(key), row.get(key),
                    speedup_tolerance, label,
                )
                if finding:
                    findings.append(finding)
            floor = base_row.get("event_floor")
            have = row.get("event_speedup")
            if (isinstance(floor, (int, float))
                    and isinstance(have, (int, float)) and have < floor):
                findings.append(Regression(
                    rule="speedup-floor", where=where, severity="fail",
                    message=(f"event-engine speedup {have:.2f}x below "
                             f"the absolute {floor:.2f}x floor"),
                    diagnosis=_SPEEDUP_DIAGNOSIS,
                    current=float(have), baseline=float(floor),
                ))

    # ledger: app -> {"cycles", "off": {...}, "on": {...}, "overhead"}.
    # The zero-cost contract: ledger-off cycles match the baseline
    # exactly AND ledger-on finishes at the same cycle (both fail);
    # ledger-off wall clock and recording overhead are warn-band gated
    # like every other host-dependent number.
    cur_ledger = current.get("ledger") or {}
    for app, base_row in sorted((baseline.get("ledger") or {}).items()):
        if not isinstance(base_row, dict):
            continue
        row = cur_ledger.get(app)
        where = f"ledger[{app}]"
        if not isinstance(row, dict):
            findings.append(Regression(
                rule="cycle-drift", where=where, severity="fail",
                message="present in baseline, missing from current "
                        "result",
                diagnosis=_LEDGER_DIAGNOSIS,
            ))
            continue
        finding = _cycle_drift(where, base_row.get("cycles"),
                               row.get("cycles"))
        if finding:
            finding.diagnosis = _LEDGER_DIAGNOSIS
            findings.append(finding)
        on_cycles = (row.get("on") or {}).get("cycles")
        off_cycles = (row.get("off") or {}).get("cycles")
        if (isinstance(on_cycles, int) and isinstance(off_cycles, int)
                and on_cycles != off_cycles):
            findings.append(Regression(
                rule="cycle-drift", where=f"{where}/on-vs-off",
                severity="fail",
                message=(f"ledger-on run finished at {on_cycles} cycles "
                         f"vs {off_cycles} ledger-off — recording "
                         "perturbed the simulation"),
                diagnosis=_LEDGER_DIAGNOSIS,
                current=float(on_cycles), baseline=float(off_cycles),
            ))
        want_wall = (base_row.get("off") or {}).get("wall_seconds")
        have_wall = (row.get("off") or {}).get("wall_seconds")
        if (isinstance(want_wall, (int, float)) and want_wall > 0
                and isinstance(have_wall, (int, float))
                and have_wall > want_wall * (1 + wall_band)):
            findings.append(Regression(
                rule="wall-clock", where=f"{where}/off",
                severity="warn",
                message=(f"ledger-off wall {have_wall:.2f}s vs baseline "
                         f"{want_wall:.2f}s (> {wall_band:.0%} band) — "
                         "the disabled ledger should cost nothing"),
                diagnosis=_WALL_DIAGNOSIS,
                current=float(have_wall), baseline=float(want_wall),
            ))
        want_over = base_row.get("overhead")
        have_over = row.get("overhead")
        if (isinstance(want_over, (int, float)) and want_over > 0
                and isinstance(have_over, (int, float))
                and have_over > want_over * (1 + wall_band)):
            findings.append(Regression(
                rule="wall-clock", where=f"{where}/overhead",
                severity="warn",
                message=(f"ledger recording overhead {have_over:.2f}x vs "
                         f"baseline {want_over:.2f}x "
                         f"(> {wall_band:.0%} band)"),
                diagnosis=_WALL_DIAGNOSIS,
                current=float(have_over), baseline=float(want_over),
            ))

    # sweep: warm-cache hit rate (exact), parallel speedup (floor),
    # wall clocks (warn-only noise band).
    base_sweep = baseline.get("sweep") or {}
    cur_sweep = current.get("sweep") or {}
    if base_sweep and cur_sweep:
        hit_rate = (cur_sweep.get("warm_cache") or {}).get("hit_rate", 0.0)
        if isinstance(hit_rate, (int, float)) and hit_rate < 1.0:
            findings.append(Regression(
                rule="hit-rate", where="sweep/warm_cache",
                severity="fail",
                message=(f"warm-cache hit rate {hit_rate:.2f} < 1.00 — "
                         "digests are unstable or the cache dropped "
                         "entries"),
                diagnosis=("a warm rerun of an identical sweep must hit "
                           "on every point; check JOB_SCHEMA bumps and "
                           "`repro cache verify`"),
                current=float(hit_rate), baseline=1.0,
            ))
        finding = _speedup_floor(
            "sweep/parallel_speedup", base_sweep.get("parallel_speedup"),
            cur_sweep.get("parallel_speedup"), sweep_tolerance,
            "parallel speedup",
        )
        if finding:
            findings.append(finding)
        for leg in ("serial", "parallel"):
            want = (base_sweep.get(leg) or {}).get("wall_seconds")
            have = (cur_sweep.get(leg) or {}).get("wall_seconds")
            if (isinstance(want, (int, float)) and want > 0
                    and isinstance(have, (int, float))
                    and have > want * (1 + wall_band)):
                findings.append(Regression(
                    rule="points-per-sec", where=f"sweep/{leg}",
                    severity="warn",
                    message=(f"{leg} wall {have:.2f}s vs baseline "
                             f"{want:.2f}s (> {wall_band:.0%} band)"),
                    diagnosis=_WALL_DIAGNOSIS,
                    current=float(have), baseline=float(want),
                ))
    return findings


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def format_regressions(findings: list[Regression],
                       quiet_message: str = "no regressions found") -> str:
    if not findings:
        return quiet_message
    fails = [f for f in findings if f.severity == "fail"]
    warns = [f for f in findings if f.severity != "fail"]
    lines = [f"{len(fails)} regression(s), {len(warns)} warning(s):"]
    for finding in fails + warns:
        marker = "FAIL" if finding.severity == "fail" else "warn"
        lines.append(f"  {marker} [{finding.rule}] {finding.where}: "
                     f"{finding.message}")
        if finding.diagnosis:
            lines.append(f"       -> {finding.diagnosis}")
    return "\n".join(lines)
