"""Stall-attribution profiling: fold the event stream into cycle accounting.

The profiler is an online tracer sink, so it sees every stage event even
after the ring buffer wraps.  For each stage it classifies every cycle
as exactly one of *active*, one of the four :class:`StallReason` buckets,
or *idle* — a fire beats a stall recorded in the same cycle, the first
stall reason wins among stalls — so the per-stage rows sum **exactly** to
the total simulated cycle count.  The accounting state is part of the
simulator's checkpointed object graph: a rollback restores it along with
the rest of the machine, so replayed cycles are never double-counted.
"""

from __future__ import annotations

from repro.obs.events import StallReason, TraceEvent, TraceEventKind

# Column order of one accounting row; "active" must sort before every
# stall reason (classification precedence is the column index).
COLUMNS = (
    "active",
    StallReason.QUEUE.value,
    StallReason.MEMORY.value,
    StallReason.RULE.value,
    StallReason.BACKPRESSURE.value,
)
_REASON_INDEX = {
    StallReason.QUEUE: 1,
    StallReason.MEMORY: 2,
    StallReason.RULE: 3,
    StallReason.BACKPRESSURE: 4,
}


class StallProfiler:
    """Per-stage cycle accounting, folded online from the event stream."""

    def __init__(self) -> None:
        # stage -> [active, queue, memory, rule, backpressure]
        self._committed: dict[str, list[int]] = {}
        # stage -> (cycle, column) for the cycle still being observed.
        self._open: dict[str, tuple[int, int]] = {}

    # -- sink -----------------------------------------------------------------

    def on_event(self, event: TraceEvent) -> None:
        kind = event.kind
        if kind is TraceEventKind.STAGE_FIRE:
            column = 0
        elif kind is TraceEventKind.STAGE_STALL:
            column = _REASON_INDEX[event.reason]
        else:
            return
        stage = event.name
        open_cell = self._open.get(stage)
        if open_cell is not None:
            cycle, held = open_cell
            if cycle == event.cycle:
                # Same cycle observed twice: a fire beats any stall; among
                # stalls, the first recorded reason wins.
                if column == 0 and held != 0:
                    self._open[stage] = (cycle, 0)
                return
            self._commit(stage, held)
        self._open[stage] = (event.cycle, column)

    def _commit(self, stage: str, column: int) -> None:
        row = self._committed.get(stage)
        if row is None:
            row = self._committed[stage] = [0] * len(COLUMNS)
        row[column] += 1

    # -- fast-forward crediting ------------------------------------------------

    def credit(self, stage: str, reason: StallReason, count: int) -> None:
        """Account ``count`` skipped cycles that repeat the open stall.

        The fast-forward core skips cycles only when the machine is
        stationary, so each skipped cycle would have re-recorded the
        probe cycle's (already open) stall cell.  Dense equivalent:
        ``count`` repeats commit the open cell plus ``count - 1`` copies
        and leave the last repeat open — i.e. the committed row grows by
        ``count`` and the open cell slides forward by ``count`` cycles.
        """
        if count <= 0:
            return
        row = self._committed.get(stage)
        if row is None:
            row = self._committed[stage] = [0] * len(COLUMNS)
        row[_REASON_INDEX[reason]] += count
        open_cell = self._open.get(stage)
        if open_cell is not None:
            self._open[stage] = (open_cell[0] + count, open_cell[1])

    # -- reporting ------------------------------------------------------------

    def accounting(
        self, stage_names: list[str], total_cycles: int
    ) -> dict[str, dict[str, int]]:
        """Non-destructive per-stage rows; each sums to ``total_cycles``.

        ``idle`` absorbs the cycles a stage neither fired nor stalled —
        including out-of-order stations waiting on completions with spare
        capacity (see docs/observability.md for the exact semantics).
        """
        report: dict[str, dict[str, int]] = {}
        for stage in stage_names:
            row = list(self._committed.get(stage, [0] * len(COLUMNS)))
            open_cell = self._open.get(stage)
            if open_cell is not None and open_cell[0] < total_cycles:
                row[open_cell[1]] += 1
            cells = dict(zip(COLUMNS, row))
            cells["idle"] = total_cycles - sum(row)
            cells["total"] = total_cycles
            report[stage] = cells
        return report


class UtilizationTimeline:
    """Bounded-memory pipeline-activity timeline, folded from the stream.

    Counts ``STAGE_FIRE`` events into fixed-width cycle buckets; when a
    run outgrows ``max_buckets`` the resolution halves (adjacent buckets
    merge, the width doubles), so any run folds into at most
    ``max_buckets`` points — the series the dashboard's utilization
    timeline plots.  Like the profiler it is an online tracer sink, so
    the timeline is complete even after the ring buffer wraps, and it is
    plain data, so checkpoints copy it and rollbacks restore it.
    """

    def __init__(self, max_buckets: int = 256) -> None:
        if max_buckets < 2:
            raise ValueError("timeline needs at least 2 buckets")
        self.max_buckets = max_buckets
        self.bucket_cycles = 1
        self.counts: list[int] = []

    def on_event(self, event: TraceEvent) -> None:
        if event.kind is not TraceEventKind.STAGE_FIRE:
            return
        index = event.cycle // self.bucket_cycles
        while index >= self.max_buckets:
            counts = self.counts
            self.counts = [
                counts[i] + (counts[i + 1] if i + 1 < len(counts) else 0)
                for i in range(0, len(counts), 2)
            ]
            self.bucket_cycles *= 2
            index = event.cycle // self.bucket_cycles
        counts = self.counts
        if index >= len(counts):
            counts.extend([0] * (index + 1 - len(counts)))
        counts[index] += 1

    def series(self, total_stages: int) -> list[float]:
        """Per-bucket utilization: active stage-cycles over capacity."""
        capacity = max(1, total_stages) * self.bucket_cycles
        return [round(count / capacity, 6) for count in self.counts]

    def to_dict(self, total_stages: int) -> dict:
        """The JSON form stored in a run record."""
        return {
            "bucket_cycles": self.bucket_cycles,
            "utilization": self.series(total_stages),
        }


def format_stall_report(
    accounting: dict[str, dict[str, int]],
    total_cycles: int,
    top: int | None = None,
) -> str:
    """Render the accounting as the ``repro profile`` table.

    Stages are ordered by stalled cycles (most-stalled first); ``top``
    truncates the table, with a note counting the elided stages.
    """
    headers = ("stage",) + COLUMNS + ("idle", "total")
    stall_cols = COLUMNS[1:]

    def stalled(cells: dict[str, int]) -> int:
        return sum(cells[c] for c in stall_cols)

    ordered = sorted(
        accounting.items(),
        key=lambda item: (-stalled(item[1]), -item[1]["active"], item[0]),
    )
    elided = 0
    if top is not None and len(ordered) > top:
        elided = len(ordered) - top
        ordered = ordered[:top]
    name_width = max([len(headers[0])] + [len(name) for name, _ in ordered])
    col_width = max(
        max(len(h) for h in headers[1:]) + 2,
        len(str(total_cycles)) + 2,
    )
    lines = [
        f"stall attribution over {total_cycles} cycles "
        "(each row sums to total)",
        f"{headers[0]:<{name_width}}"
        + "".join(f"{h:>{col_width}}" for h in headers[1:]),
    ]
    for name, cells in ordered:
        lines.append(
            f"{name:<{name_width}}"
            + "".join(f"{cells[h]:>{col_width}}" for h in headers[1:])
        )
    if elided:
        lines.append(f"... ({elided} fully accounted stages elided)")
    return "\n".join(lines)
