"""Automated bottleneck diagnosis over stored run telemetry.

Rule-based classifiers fold a :class:`~repro.obs.runstore.RunRecord`
into ranked, human-readable findings — the regimes Section 6 of the
paper narrates by hand: memory-bound, QPI-bandwidth-bound,
rule-lane-bound, queue/backpressure-bound, squash-bound (wasted
speculation), host-launch-bound.  Each finding carries a severity in
``[0, 1]`` and the evidence lines supporting it, so ``repro diagnose``
output reads like the paper's own analysis ("extra bandwidth floods the
pipelines with speculative updates that get squashed or guard-dropped").

Two modelling decisions keep the classification faithful:

* **Backpressure folds to its root cause.**  A ``backpressure`` stall
  means "blocked by another stage", which is a symptom: the pipe behind
  a load station full of QPI misses reads as backpressure even though
  memory is the bottleneck.  The engine re-attributes aggregate
  backpressure cycles proportionally onto the real resource stalls
  (queue / memory / rule); only when no resource stall exists does
  backpressure stand alone as a finding.
* **Wasted speculation counts guard drops.**  The simulator squashes
  mis-speculated tasks *and* drops stale updates at guards; both are
  cycles spent on work the commit order rejected, so the squash-bound
  classifier scores ``(squashes + guard_drops) / all verdicts`` — the
  quantity that makes SPEC-BFS degrade at 8x bandwidth while its
  utilization keeps rising (EXPERIMENTS.md, EXP-F10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.obs.runstore import RunRecord, STALL_BUCKETS

# Classifier gates (shares of cycles unless stated otherwise).
MEMORY_MIN_STAGE_SHARE = 0.05      # memory stalls must be non-trivial
MEMORY_MAX_HIT_RATE = 0.95         # all-hits runs are not memory-bound
BANDWIDTH_MIN_SATURATION = 0.75    # bytes/cycle vs QPI capacity
RULE_MIN_STAGE_SHARE = 0.10
QUEUE_MIN_STAGE_SHARE = 0.15
SQUASH_MIN_WASTED = 0.20           # fraction of verdicts rejected
SQUASH_MAX_SATURATION = 0.50       # else the channel is the bottleneck
HOST_MAX_UTILIZATION = 0.05


@dataclass
class Finding:
    """One ranked diagnosis: what binds the run, and why we think so."""

    code: str
    title: str
    severity: float                # 0..1, ranks findings
    evidence: list[str] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "code": self.code,
            "title": self.title,
            "severity": round(self.severity, 4),
            "evidence": list(self.evidence),
        }


# ---------------------------------------------------------------------------
# Signal extraction
# ---------------------------------------------------------------------------


def _signals(record: RunRecord) -> dict[str, Any]:
    """Normalize a record into the quantities the classifiers test.

    Shares are fractions of total stage-cycles (cycles x stages); a
    record stored without stall attribution yields zero shares and the
    bucket-driven classifiers stay silent rather than guessing.
    """
    counters = (record.metrics or {}).get("counters", {})
    commits = counters.get("sim.commits", 0)
    squashes = counters.get("sim.squashes", 0)
    guard_drops = counters.get("sim.guard_drops", 0)
    verdicts = commits + squashes + guard_drops

    totals = record.stall_totals() if record.stalls else {}
    stage_cycles = sum(
        row.get("total", 0) for row in (record.stalls or {}).values()
    )
    share = {
        bucket: totals.get(bucket, 0) / stage_cycles if stage_cycles else 0.0
        for bucket in ("active", "idle") + STALL_BUCKETS
    }
    # Root-cause folding: distribute backpressure over the resources.
    resource = {k: share[k] for k in ("queue", "memory", "rule")}
    resource_total = sum(resource.values())
    folded = dict(resource)
    unfolded_backpressure = share["backpressure"]
    if resource_total > 0 and share["backpressure"] > 0:
        for k in folded:
            folded[k] += share["backpressure"] * resource[k] / resource_total
        unfolded_backpressure = 0.0

    qpi_capacity = record.platform.get("qpi_bytes_per_cycle", 0.0)
    bytes_per_cycle = (
        record.memory.get("bytes", 0) / record.cycles
        if record.cycles else 0.0
    )
    saturation = bytes_per_cycle / qpi_capacity if qpi_capacity else 0.0

    load_latency = (record.metrics or {}).get("histograms", {}).get(
        "mem.load_latency", {}
    )
    return {
        "record": record,
        "share": share,
        "folded": folded,
        "unfolded_backpressure": unfolded_backpressure,
        "has_stalls": record.stalls is not None,
        "hit_rate": record.memory.get("hit_rate", 1.0),
        "bytes_per_cycle": bytes_per_cycle,
        "qpi_capacity": qpi_capacity,
        "saturation": saturation,
        "commits": commits,
        "squashes": squashes,
        "guard_drops": guard_drops,
        "wasted_fraction": (
            (squashes + guard_drops) / verdicts if verdicts else 0.0
        ),
        "load_latency_p95": load_latency.get("p95", 0.0),
        "rule_lanes": record.config.get("rule_lanes", 0),
        "lane_p95": _max_histogram_p95(record, "rules."),
        "queue_p95": _max_histogram_p95(record, "queue."),
    }


def _max_histogram_p95(record: RunRecord, prefix: str) -> float:
    histograms = (record.metrics or {}).get("histograms", {})
    return max(
        (h.get("p95", 0.0) for name, h in histograms.items()
         if name.startswith(prefix)),
        default=0.0,
    )


# ---------------------------------------------------------------------------
# Classifiers — each returns a Finding or None
# ---------------------------------------------------------------------------


def _diagnose_memory(s: dict[str, Any]) -> Finding | None:
    if not s["has_stalls"]:
        return None
    folded_memory = s["folded"]["memory"]
    if (s["share"]["memory"] < MEMORY_MIN_STAGE_SHARE
            or s["hit_rate"] > MEMORY_MAX_HIT_RATE):
        return None
    evidence = [
        f"memory stalls hold {s['share']['memory'] * 100:.1f}% of "
        f"stage-cycles ({folded_memory * 100:.1f}% after folding "
        "backpressure onto its root cause)",
        f"cache hit rate {s['hit_rate'] * 100:.1f}%",
    ]
    if s["load_latency_p95"]:
        evidence.append(
            f"p95 load latency {s['load_latency_p95']:.0f} cycles"
        )
    return Finding(
        "memory-bound",
        "Pipelines stall on the memory system (load stations full of "
        "outstanding misses)",
        min(1.0, folded_memory + (1.0 - s["hit_rate"]) * 0.2),
        evidence,
    )


def _diagnose_bandwidth(s: dict[str, Any]) -> Finding | None:
    if s["saturation"] < BANDWIDTH_MIN_SATURATION:
        return None
    return Finding(
        "qpi-bandwidth-bound",
        "The QPI channel is saturated; more bandwidth would move the "
        "needle (Figure 10 regime)",
        min(1.0, s["saturation"]),
        [
            f"sustained {s['bytes_per_cycle']:.1f} bytes/cycle of "
            f"{s['qpi_capacity']:.1f} available "
            f"({s['saturation'] * 100:.0f}% of channel capacity)",
            f"cache hit rate {s['hit_rate'] * 100:.1f}%",
        ],
    )


def _diagnose_rule_lanes(s: dict[str, Any]) -> Finding | None:
    if not s["has_stalls"] or s["folded"]["rule"] < RULE_MIN_STAGE_SHARE:
        return None
    evidence = [
        f"rule stalls (lane allocation / rendezvous admission / ordered-"
        f"admission credits) hold {s['share']['rule'] * 100:.1f}% of "
        f"stage-cycles ({s['folded']['rule'] * 100:.1f}% folded)",
    ]
    if s["rule_lanes"] and s["lane_p95"]:
        evidence.append(
            f"p95 lane occupancy {s['lane_p95']:.0f} of "
            f"{s['rule_lanes']} lanes"
        )
    return Finding(
        "rule-lane-bound",
        "Rule-engine lanes (or the ordered-admission window they size) "
        "throttle task issue",
        min(1.0, s["folded"]["rule"]),
        evidence,
    )


def _diagnose_queue(s: dict[str, Any]) -> Finding | None:
    if not s["has_stalls"]:
        return None
    pressure = s["folded"]["queue"] + s["unfolded_backpressure"]
    if pressure < QUEUE_MIN_STAGE_SHARE:
        return None
    evidence = [
        f"queue stalls hold {s['share']['queue'] * 100:.1f}% and "
        f"unattributed backpressure "
        f"{s['unfolded_backpressure'] * 100:.1f}% of stage-cycles",
    ]
    if s["queue_p95"]:
        evidence.append(f"p95 queue occupancy {s['queue_p95']:.0f}")
    return Finding(
        "queue-backpressure",
        "Workset queues / inter-stage FIFOs exert backpressure with no "
        "single resource to blame",
        min(1.0, pressure),
        evidence,
    )


def _diagnose_squash(s: dict[str, Any]) -> Finding | None:
    record: RunRecord = s["record"]
    if record.app_mode and record.app_mode != "speculative":
        return None
    if (s["wasted_fraction"] < SQUASH_MIN_WASTED
            or s["saturation"] > SQUASH_MAX_SATURATION):
        return None
    rejected = s["squashes"] + s["guard_drops"]
    return Finding(
        "squash-bound",
        "Speculative work floods the pipelines and is squashed or "
        "guard-dropped; utilization rises while speedup does not "
        "(the SPEC-BFS high-bandwidth anomaly)",
        min(1.0, s["wasted_fraction"] * (1.0 - s["saturation"])),
        [
            f"{rejected} of {s['commits'] + rejected} verdicts rejected "
            f"({s['wasted_fraction'] * 100:.0f}%): "
            f"{s['squashes']} squashed, {s['guard_drops']} guard-dropped",
            f"channel only {s['saturation'] * 100:.0f}% saturated — "
            "bandwidth is not the binding constraint",
        ],
    )


def _diagnose_host(s: dict[str, Any]) -> Finding | None:
    record: RunRecord = s["record"]
    if not record.host_fed or record.utilization > HOST_MAX_UTILIZATION:
        return None
    idle = s["share"]["idle"]
    evidence = [
        f"tasks stream from the host over QPI (Section 6.1 feed); "
        f"pipeline utilization only {record.utilization * 100:.2f}%",
    ]
    if s["has_stalls"]:
        evidence.append(
            f"{idle * 100:.0f}% of stage-cycles idle waiting for work"
        )
    if s["saturation"]:
        evidence.append(
            f"feed rate tracks the channel "
            f"({s['saturation'] * 100:.0f}% saturated) — speedup scales "
            "linearly with bandwidth (Figure 10)"
        )
    return Finding(
        "host-launch-bound",
        "End-to-end time is dominated by the host streaming the task "
        "list into the accelerator",
        min(1.0, max(idle, 1.0 - record.utilization / HOST_MAX_UTILIZATION)),
        evidence,
    )


CLASSIFIERS: tuple[Callable[[dict[str, Any]], Finding | None], ...] = (
    _diagnose_host,
    _diagnose_bandwidth,
    _diagnose_memory,
    _diagnose_squash,
    _diagnose_rule_lanes,
    _diagnose_queue,
)


def diagnose_record(record: RunRecord) -> list[Finding]:
    """Ranked findings (most severe first) for one stored run."""
    signals = _signals(record)
    findings = [
        finding for classifier in CLASSIFIERS
        if (finding := classifier(signals)) is not None
    ]
    findings.sort(key=lambda f: (-f.severity, f.code))
    return findings


# Which critical-path buckets corroborate each classifier code.  The
# classifiers see aggregate stage-share signals; the critical path sees
# the one causal chain that set the cycle count — when they disagree the
# aggregate picture is misleading (e.g. stalls everywhere off the path).
EXPECTED_DOMINANT: dict[str, tuple[str, ...]] = {
    "memory-bound": ("memory",),
    "qpi-bandwidth-bound": ("memory", "host"),
    "rule-lane-bound": ("rule",),
    "queue-backpressure": ("queue", "backpressure"),
    "squash-bound": ("speculation",),
    "host-launch-bound": ("host", "queue"),
}


def cross_check(findings: list[Finding],
                critpath: dict[str, Any]) -> dict[str, Any] | None:
    """Compare the top classifier against the measured critical path.

    Returns None when there is nothing to check (no findings, or a
    critpath without a dominant bucket); otherwise a verdict dict whose
    ``agrees`` says whether the path's dominant bucket is one the top
    finding predicts, with a human-readable ``note`` either way.
    """
    dominant = (critpath or {}).get("dominant")
    if not findings or not dominant:
        return None
    top = findings[0]
    expected = EXPECTED_DOMINANT.get(top.code, ())
    agrees = dominant in expected
    if agrees:
        note = (f"classifier '{top.code}' and the critical path agree: "
                f"the dominant bucket is '{dominant}'")
    else:
        note = (f"classifier '{top.code}' predicts "
                f"{' or '.join(repr(e) for e in expected) or 'nothing'} "
                f"dominant, but the measured path is bound by "
                f"'{dominant}' — the aggregate stall picture disagrees "
                "with the causal chain; trust the path")
    return {
        "classifier": top.code,
        "expected": list(expected),
        "dominant": dominant,
        "agrees": agrees,
        "note": note,
    }


def format_findings(record: RunRecord, findings: list[Finding]) -> str:
    """The ``repro diagnose`` rendering."""
    head = (
        f"{record.app}: {record.cycles} cycles, utilization "
        f"{record.utilization * 100:.1f}%, bandwidth "
        f"x{record.platform.get('bandwidth_scale', 1)}"
    )
    if not findings:
        return (f"{head}\n  no bottleneck classifier fired — the run "
                "looks balanced at the configured thresholds")
    lines = [head]
    for rank, finding in enumerate(findings, 1):
        lines.append(
            f"  {rank}. [{finding.severity:4.2f}] {finding.code}: "
            f"{finding.title}"
        )
        for item in finding.evidence:
            lines.append(f"       - {item}")
    return "\n".join(lines)
