"""Ring-buffered structured event tracer with Chrome trace export.

The tracer keeps the most recent ``capacity`` events in a ring (old
events fall off the back, so tracing a long run is bounded-memory) and
fans every event out to online *sinks* as it is emitted — sinks such as
the stall-attribution profiler therefore see the complete stream even
when the ring has wrapped.

The ring exports to the Chrome ``trace_event`` JSON format, loadable in
``chrome://tracing`` or https://ui.perfetto.dev: stage activity becomes
per-stage duration slices, queue traffic becomes counter tracks, rule
and memory events become instants.  Cycle *n* is rendered at timestamp
*n* microseconds.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Callable

from repro.obs.events import StallReason, TraceEvent, TraceEventKind

# Synthetic process ids grouping the Chrome trace tracks.
_PID_PIPELINES = 1
_PID_QUEUES = 2
_PID_RULES = 3
_PID_MEMORY = 4
_PID_RECOVERY = 5

_PROCESS_NAMES = {
    _PID_PIPELINES: "pipelines",
    _PID_QUEUES: "task queues",
    _PID_RULES: "rule engines",
    _PID_MEMORY: "memory system",
    _PID_RECOVERY: "checkpoint/rollback",
}


class EventTracer:
    """Bounded ring of :class:`TraceEvent` plus online fan-out."""

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError("trace capacity must be >= 1")
        self.capacity = capacity
        self.ring: deque[TraceEvent] = deque(maxlen=capacity)
        self.sinks: list[Callable[[TraceEvent], None]] = []
        self.emitted = 0

    # -- emission -------------------------------------------------------------

    def add_sink(self, sink: Callable[[TraceEvent], None]) -> None:
        self.sinks.append(sink)

    def emit(
        self,
        cycle: int,
        kind: TraceEventKind,
        name: str,
        reason: StallReason | None = None,
        data: dict | None = None,
    ) -> None:
        event = TraceEvent(cycle, kind, name, reason, data)
        self.ring.append(event)
        self.emitted += 1
        for sink in self.sinks:
            sink(event)

    @property
    def evicted(self) -> int:
        """Events that fell off the ring (still seen by the sinks)."""
        return self.emitted - len(self.ring)

    def events(self) -> list[TraceEvent]:
        return list(self.ring)

    # -- Chrome trace_event export ---------------------------------------------

    def chrome_trace(self) -> dict:
        """The ring as a Chrome ``trace_event`` JSON document (a dict).

        Besides the stage slices and instants, three families of counter
        tracks ("C" events) render Perfetto load curves: per-queue
        occupancy, per-engine live rule lanes, and the outstanding QPI
        request count (reconstructed from issue/complete instants, so it
        is relative to the start of the ring when old events were
        evicted).
        """
        out: list[dict] = []
        tids: dict[tuple[int, str], int] = {}
        qpi_outstanding = 0

        def tid(pid: int, name: str) -> int:
            key = (pid, name)
            ident = tids.get(key)
            if ident is None:
                ident = len(tids) + 1
                tids[key] = ident
                out.append({
                    "ph": "M", "name": "thread_name", "pid": pid,
                    "tid": ident, "args": {"name": name},
                })
            return ident

        for pid, pname in _PROCESS_NAMES.items():
            out.append({
                "ph": "M", "name": "process_name", "pid": pid,
                "args": {"name": pname},
            })

        for ev in self.ring:
            kind = ev.kind
            if kind is TraceEventKind.STAGE_FIRE:
                out.append({
                    "name": "active", "ph": "X", "ts": ev.cycle, "dur": 1,
                    "pid": _PID_PIPELINES, "tid": tid(_PID_PIPELINES, ev.name),
                })
            elif kind is TraceEventKind.STAGE_STALL:
                out.append({
                    "name": f"stall:{ev.reason.value}", "ph": "X",
                    "ts": ev.cycle, "dur": 1,
                    "pid": _PID_PIPELINES, "tid": tid(_PID_PIPELINES, ev.name),
                })
            elif kind in (TraceEventKind.TOKEN_ENQ, TraceEventKind.TOKEN_DEQ):
                out.append({
                    "name": f"queue:{ev.name}", "ph": "C", "ts": ev.cycle,
                    "pid": _PID_QUEUES,
                    "args": {"occupancy": (ev.data or {}).get("occupancy", 0)},
                })
            elif kind in (TraceEventKind.RULE_PROMISE,
                          TraceEventKind.RULE_RENDEZVOUS,
                          TraceEventKind.RULE_RETURN,
                          TraceEventKind.RULE_SQUASH):
                out.append({
                    "name": kind.value, "ph": "i", "s": "t", "ts": ev.cycle,
                    "pid": _PID_RULES, "tid": tid(_PID_RULES, ev.name),
                    "args": dict(ev.data) if ev.data else {},
                })
                if kind in (TraceEventKind.RULE_PROMISE,
                            TraceEventKind.RULE_RETURN):
                    out.append({
                        "name": f"lanes:{ev.name}", "ph": "C",
                        "ts": ev.cycle, "pid": _PID_RULES,
                        "args": {
                            "lanes": (ev.data or {}).get("occupancy", 0),
                        },
                    })
            elif kind in (TraceEventKind.MEM_ISSUE, TraceEventKind.MEM_HIT,
                          TraceEventKind.MEM_MISS,
                          TraceEventKind.MEM_COMPLETE):
                out.append({
                    "name": kind.value, "ph": "i", "s": "t", "ts": ev.cycle,
                    "pid": _PID_MEMORY, "tid": tid(_PID_MEMORY, "channel"),
                    "args": dict(ev.data) if ev.data else {},
                })
                if kind is TraceEventKind.MEM_ISSUE:
                    qpi_outstanding += 1
                elif kind is TraceEventKind.MEM_COMPLETE:
                    qpi_outstanding = max(0, qpi_outstanding - 1)
                if kind in (TraceEventKind.MEM_ISSUE,
                            TraceEventKind.MEM_COMPLETE):
                    out.append({
                        "name": "qpi:outstanding", "ph": "C",
                        "ts": ev.cycle, "pid": _PID_MEMORY,
                        "args": {"outstanding": qpi_outstanding},
                    })
            else:  # CHECKPOINT / ROLLBACK
                out.append({
                    "name": kind.value, "ph": "i", "s": "g", "ts": ev.cycle,
                    "pid": _PID_RECOVERY, "tid": tid(_PID_RECOVERY, "recovery"),
                    "args": dict(ev.data) if ev.data else {},
                })
        return {
            "traceEvents": out,
            "displayTimeUnit": "ms",
            "otherData": {
                "emitted": self.emitted,
                "evicted": self.evicted,
                "timestampUnit": "1 us == 1 simulated cycle",
            },
        }

    def write_chrome_trace(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.chrome_trace(), handle, indent=None,
                      separators=(",", ":"), sort_keys=False)
