"""The structured trace-event taxonomy (see docs/observability.md).

Every observable thing the simulator does maps to one
:class:`TraceEventKind`; stage stalls additionally carry a
:class:`StallReason` so the profiler can attribute every stalled cycle to
the resource the stage was blocked on.  Events are plain timestamped
records — the tracer ring-buffers them and fans them out to online sinks,
so an event object is never mutated after it is emitted.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any


class TraceEventKind(enum.Enum):
    """What happened, at the granularity the schedule analyses need."""

    # Task-queue traffic.
    TOKEN_ENQ = "token-enq"          # a task entered a workset queue
    TOKEN_DEQ = "token-deq"          # a task was popped into a pipeline
    # Pipeline stages.
    STAGE_FIRE = "stage-fire"        # a stage advanced a token this cycle
    STAGE_STALL = "stage-stall"      # a stage held a token (reason attached)
    # Rule engines.
    RULE_PROMISE = "rule-promise"    # a lane was allocated (promise made)
    RULE_RENDEZVOUS = "rule-rendezvous"  # the parent reached its rendezvous
    RULE_RETURN = "rule-return"      # a verdict was consumed, lane freed
    RULE_SQUASH = "rule-squash"      # the verdict squashed the task
    # Memory system.
    MEM_ISSUE = "mem-issue"          # a load/store/stream request was issued
    MEM_HIT = "mem-hit"              # a load hit the FPGA cache
    MEM_MISS = "mem-miss"            # a load crossed the QPI channel
    MEM_COMPLETE = "mem-complete"    # an outstanding request retired
    # Robustness subsystem.
    CHECKPOINT = "checkpoint"        # a snapshot was captured
    ROLLBACK = "rollback"            # execution rolled back to a snapshot


class StallReason(enum.Enum):
    """The resource a stalled stage was blocked on.

    ``QUEUE``        a workset queue was full (Enqueue) or its banks
                     refused pops (Source under a bank-stall fault);
    ``MEMORY``       a load/expand/call station was full of in-flight
                     memory or function-unit requests;
    ``RULE``         no rule-engine lane was free (AllocRule), the
                     rendezvous station was full of unresolved promises,
                     or admission credits — bounded by the lane count —
                     ran out (Source);
    ``BACKPRESSURE`` the downstream FIFO (or epilogue entry) was full.
    """

    QUEUE = "queue"
    MEMORY = "memory"
    RULE = "rule"
    BACKPRESSURE = "backpressure"


@dataclass
class TraceEvent:
    """One timestamped observation.

    ``name`` identifies the component (stage, queue, engine); ``reason``
    is set only for ``STAGE_STALL``; ``data`` carries small kind-specific
    payloads (occupancy, verdict, address, latency).
    """

    __slots__ = ("cycle", "kind", "name", "reason", "data")

    cycle: int
    kind: TraceEventKind
    name: str
    reason: StallReason | None
    data: dict[str, Any] | None

    def __deepcopy__(self, memo):
        # Events are immutable once emitted; sharing them keeps checkpoint
        # snapshots of a large trace ring cheap.
        return self
