"""Simulator-wide observability: tracing, metrics, stall attribution.

Three pillars (see docs/observability.md):

* a structured **event tracer** (`tracer.py`) — ring-buffered typed
  events exported as Chrome ``trace_event`` JSON for Perfetto, or folded
  into the legacy ASCII timeline;
* a **metrics registry** (`metrics.py`) — named counters, gauges, and
  log-scaled histograms that components register against, from which
  :class:`~repro.sim.stats.SimStats` is re-derived;
* a **stall-attribution profiler** (`profile.py`) — per-stage cycle
  accounting (active / stalled-by-reason / idle) that sums exactly to
  the simulated cycle count.

An :class:`Observability` instance bundles all three for one simulation
run and is handed to :class:`~repro.sim.accelerator.AcceleratorSim` via
its ``obs=`` parameter.  The contract mirrors the fault hooks: every
component holds ``obs = None`` by default and pays a single identity
test on the hot path, so with observability disabled the simulator's
behaviour — including cycle counts — is bit-identical.  The bundle lives
inside the simulator's checkpointed object graph, so a rollback restores
trace/profile/metric state and replayed cycles are never double-counted.
"""

from __future__ import annotations

from repro.obs.events import StallReason, TraceEvent, TraceEventKind
from repro.obs.fleet import (
    FleetRecorder,
    SweepProgress,
    format_status,
    load_status,
    merge_fleet_trace,
    write_fleet_trace,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profile import (
    StallProfiler,
    UtilizationTimeline,
    format_stall_report,
)
from repro.obs.regress import (
    Regression,
    format_regressions,
    regress_bench,
    regress_store,
)
from repro.obs.tracer import EventTracer


class Observability:
    """One run's tracer + registry + profiler, plus the emission hooks.

    ``now`` is the simulator's current cycle, refreshed once per
    :meth:`~repro.sim.accelerator.AcceleratorSim.step`; hooks on
    components that do not carry a cycle of their own (queues, engines,
    request retirement) timestamp with it.
    """

    def __init__(self, trace_capacity: int = 65536) -> None:
        self.tracer = EventTracer(trace_capacity)
        self.registry = MetricsRegistry()
        self.profiler = StallProfiler()
        self.timeline = UtilizationTimeline()
        self.tracer.add_sink(self.profiler.on_event)
        self.tracer.add_sink(self.timeline.on_event)
        self.now = 0

    # -- pipeline stages -------------------------------------------------------

    def stage_fire(self, cycle: int, stage: str) -> None:
        self.tracer.emit(cycle, TraceEventKind.STAGE_FIRE, stage)

    def stage_stall(self, cycle: int, stage: str, reason: StallReason) -> None:
        self.tracer.emit(cycle, TraceEventKind.STAGE_STALL, stage,
                         reason=reason)

    def credit_skipped_stalls(self, stage: str, reason: StallReason,
                              count: int) -> None:
        """Fast-forward skip: fold ``count`` repeated stall cycles into
        the profiler's accounting without emitting per-cycle trace events
        (the one place fast and dense traces deliberately differ)."""
        self.profiler.credit(stage, reason, count)

    # -- task queues -----------------------------------------------------------

    def queue_push(self, task_set: str, occupancy: int) -> None:
        self.registry.histogram(f"queue.{task_set}.occupancy").record(
            occupancy
        )
        self.tracer.emit(self.now, TraceEventKind.TOKEN_ENQ, task_set,
                         data={"occupancy": occupancy})

    def queue_pop(self, task_set: str, occupancy: int) -> None:
        self.tracer.emit(self.now, TraceEventKind.TOKEN_DEQ, task_set,
                         data={"occupancy": occupancy})

    # -- rule engines ----------------------------------------------------------

    def rule_promise(self, engine: str, occupancy: int) -> None:
        self.registry.histogram(f"rules.{engine}.lane_occupancy").record(
            occupancy
        )
        self.tracer.emit(self.now, TraceEventKind.RULE_PROMISE, engine,
                         data={"occupancy": occupancy})

    def rule_rendezvous(self, engine: str) -> None:
        self.tracer.emit(self.now, TraceEventKind.RULE_RENDEZVOUS, engine)

    def rule_return(self, engine: str, verdict: str,
                    occupancy: int = 0) -> None:
        self.tracer.emit(self.now, TraceEventKind.RULE_RETURN, engine,
                         data={"verdict": verdict, "occupancy": occupancy})

    def rule_squash(self, cycle: int, engine: str) -> None:
        self.tracer.emit(cycle, TraceEventKind.RULE_SQUASH, engine)

    # -- memory system ---------------------------------------------------------

    def mem_issue(self, cycle: int, kind: str, nbytes: int) -> None:
        self.registry.counter(f"mem.{kind}s_issued").inc()
        self.tracer.emit(cycle, TraceEventKind.MEM_ISSUE, kind,
                         data={"bytes": nbytes})

    def mem_load(self, cycle: int, addr: int, hit: bool,
                 latency: int) -> None:
        self.registry.histogram("mem.load_latency").record(latency)
        self.tracer.emit(
            cycle,
            TraceEventKind.MEM_HIT if hit else TraceEventKind.MEM_MISS,
            "load", data={"addr": addr, "latency": latency},
        )

    def mem_complete(self, kind: str = "load") -> None:
        self.tracer.emit(self.now, TraceEventKind.MEM_COMPLETE, kind)

    # -- robustness ------------------------------------------------------------

    def checkpoint(self, cycle: int, count: int) -> None:
        self.registry.counter("recovery.checkpoints").inc()
        self.tracer.emit(cycle, TraceEventKind.CHECKPOINT, "checkpoint",
                         data={"count": count})

    def rollback(self, cycle: int) -> None:
        self.registry.counter("recovery.rollbacks").inc()
        self.tracer.emit(cycle, TraceEventKind.ROLLBACK, "rollback",
                         data={"to_cycle": cycle})


__all__ = [
    "Counter",
    "EventTracer",
    "FleetRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "Regression",
    "StallProfiler",
    "StallReason",
    "SweepProgress",
    "TraceEvent",
    "TraceEventKind",
    "UtilizationTimeline",
    "format_regressions",
    "format_stall_report",
    "format_status",
    "load_status",
    "merge_fleet_trace",
    "regress_bench",
    "regress_store",
    "write_fleet_trace",
]
