"""Zero-dependency HTML dashboard over stored run telemetry.

``render_dashboard`` turns one :class:`~repro.obs.runstore.RunRecord`
(plus optional diagnosis findings and store history) into a single
self-contained static HTML page — inline CSS, inline SVG, no JavaScript,
no external assets — so ``repro dashboard`` output can be opened from a
CI artifact or mailed around as one file.

Sections: run headline, ranked diagnosis findings, the stall-attribution
waterfall (stacked per-stage bars with a numeric table view), the
pipeline-utilization timeline reconstructed from the trace, metrics
tables (counters and latency/occupancy histograms with p50/p95/p99), and
a Figure-10-style bandwidth-sweep chart over every stored run of the
same store (speedup vs the app's own 1x baseline).

Chart conventions follow the repo's dataviz rules: categorical hues in a
fixed order (color follows the bucket/app, never its rank), idle drawn
as neutral gray, 2px gaps between stacked fills, 2px lines, a legend for
two or more series, values and labels in ink — never in the series
color — and native ``<title>`` tooltips so the page stays script-free.
"""

from __future__ import annotations

import html
from typing import Any, Iterable, Sequence

from repro.obs.runstore import RunRecord, STALL_BUCKETS

# Categorical palette, fixed assignment order (light-mode steps).
PALETTE = (
    "#2a78d6",  # 1 blue
    "#eb6834",  # 2 orange
    "#1baf7a",  # 3 aqua
    "#eda100",  # 4 yellow
    "#e87ba4",  # 5 magenta
    "#008300",  # 6 green
    "#4a3aa7",  # 7 violet
    "#e34948",  # 8 red
)
NEUTRAL = "#c9c8c2"           # idle — absence of work, not a series
SURFACE = "#fcfcfb"
INK = "#21201c"
INK_2 = "#5f5e58"
GRID = "#e8e7e3"

# Stall-bucket colors: fixed by bucket identity (active is always blue,
# memory always aqua, ...), idle always the neutral.
BUCKET_COLORS = {
    "active": PALETTE[0],
    "queue": PALETTE[1],
    "memory": PALETTE[2],
    "rule": PALETTE[3],
    "backpressure": PALETTE[4],
    "stalled": PALETTE[7],
    "idle": NEUTRAL,
}

# Critical-path buckets: shared buckets keep their stall colors, the
# path-only buckets (compute / host / speculation) extend the palette.
CRITPATH_COLORS = {
    "compute": PALETTE[0],
    "queue": PALETTE[1],
    "memory": PALETTE[2],
    "rule": PALETTE[3],
    "backpressure": PALETTE[4],
    "host": PALETTE[5],
    "speculation": PALETTE[7],
}

# Severity → status step (never reused for data series) + text label.
_STATUS = (
    (0.75, "#d03b3b", "critical"),
    (0.50, "#ec835a", "serious"),
    (0.25, "#fab219", "warning"),
    (0.00, "#0ca30c", "minor"),
)

_CSS = """
:root { color-scheme: light; }
body { margin: 0; padding: 24px; background: %(surface)s; color: %(ink)s;
       font: 14px/1.5 system-ui, sans-serif; }
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 28px 0 8px; }
.sub { color: %(ink2)s; }
.card { background: #fff; border: 1px solid %(grid)s; border-radius: 8px;
        padding: 16px; margin: 12px 0; max-width: 860px; }
table { border-collapse: collapse; margin: 8px 0; }
th, td { text-align: left; padding: 3px 12px 3px 0; }
th { color: %(ink2)s; font-weight: 600; border-bottom: 1px solid %(grid)s; }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
.legend { display: flex; gap: 16px; flex-wrap: wrap; margin: 6px 0;
          color: %(ink2)s; }
.legend span { display: inline-flex; align-items: center; gap: 6px; }
.swatch { width: 10px; height: 10px; border-radius: 3px;
          display: inline-block; }
.finding { margin: 10px 0; }
.badge { display: inline-block; padding: 0 8px; border-radius: 9px;
         color: #fff; font-size: 12px; }
.evidence { margin: 4px 0 0; color: %(ink2)s; }
details summary { cursor: pointer; color: %(ink2)s; }
svg text { fill: %(ink2)s; font: 11px system-ui, sans-serif; }
""" % {"surface": SURFACE, "ink": INK, "ink2": INK_2, "grid": GRID}


def _esc(value: Any) -> str:
    return html.escape(str(value), quote=True)


def _severity_badge(severity: float) -> str:
    for floor, color, label in _STATUS:
        if severity >= floor:
            return (f'<span class="badge" style="background:{color}">'
                    f'{label} {severity:.2f}</span>')
    return ""  # pragma: no cover - the 0.0 floor always matches


def _legend(entries: Iterable[tuple[str, str]]) -> str:
    spans = "".join(
        f'<span><i class="swatch" style="background:{color}"></i>'
        f'{_esc(name)}</span>'
        for name, color in entries
    )
    return f'<div class="legend">{spans}</div>'


# ---------------------------------------------------------------------------
# SVG helpers
# ---------------------------------------------------------------------------


def _stall_waterfall(record: RunRecord) -> str:
    """Stacked horizontal bars: one row per stage, cycles by bucket."""
    stalls = record.stalls or {}
    if not stalls:
        return '<p class="sub">run was stored without stall attribution ' \
               '(observability off)</p>'
    buckets = ("active",) + STALL_BUCKETS + ("stalled", "idle")
    rows = sorted(
        stalls.items(),
        key=lambda item: -sum(item[1].get(b, 0) for b in buckets[1:-1]),
    )
    label_w, chart_w, bar_h, gap = 230, 560, 14, 8
    height = len(rows) * (bar_h + gap) + 24
    parts = [
        f'<svg viewBox="0 0 {label_w + chart_w + 8} {height}" '
        f'width="{label_w + chart_w + 8}" role="img" '
        'aria-label="stall attribution per stage">'
    ]
    for i, (stage, cells) in enumerate(rows):
        y = i * (bar_h + gap)
        total = cells.get("total", record.cycles) or 1
        parts.append(
            f'<text x="{label_w - 8}" y="{y + bar_h - 3}" '
            f'text-anchor="end">{_esc(stage)}</text>'
        )
        x = float(label_w)
        for bucket in buckets:
            cycles = cells.get(bucket, 0)
            if not cycles:
                continue
            width = cycles / total * chart_w
            # 2px surface gap between stacked fills.
            draw_w = max(width - 2, 0.5)
            share = cycles / total * 100
            parts.append(
                f'<rect x="{x:.1f}" y="{y}" width="{draw_w:.1f}" '
                f'height="{bar_h}" rx="2" '
                f'fill="{BUCKET_COLORS[bucket]}">'
                f'<title>{_esc(stage)} — {bucket}: {cycles} cycles '
                f'({share:.1f}%)</title></rect>'
            )
            x += width
    parts.append("</svg>")
    legend = _legend(
        (b, BUCKET_COLORS[b]) for b in buckets
        if any(r.get(b, 0) for r in stalls.values())
    )
    table = _stall_table(rows, buckets)
    return legend + "".join(parts) + table


def _stall_table(rows, buckets) -> str:
    head = "".join(f'<th class="num">{_esc(b)}</th>' for b in buckets)
    body = []
    for stage, cells in rows:
        nums = "".join(
            f'<td class="num">{cells.get(b, 0)}</td>' for b in buckets
        )
        body.append(f"<tr><td>{_esc(stage)}</td>{nums}</tr>")
    return (
        '<details><summary>table view</summary><table>'
        f"<tr><th>stage</th>{head}</tr>{''.join(body)}</table></details>"
    )


def _critpath_section(record: RunRecord) -> str:
    """The measured critical path: one stacked bar over ``[0, cycles]``,
    the what-if projection table, and the longest segments."""
    critpath = record.critical_path
    if not critpath:
        return ('<p class="sub">run was stored without a token ledger — '
                'simulate with <code>repro critpath APP</code> to '
                'extract the path</p>')
    total = critpath.get("total_cycles", 0) or 1
    buckets = critpath.get("buckets", {})
    order = [b for b in CRITPATH_COLORS if buckets.get(b, 0)]
    w, bar_h = 760, 18
    parts = [
        f'<svg viewBox="0 0 {w} {bar_h + 20}" width="{w}" role="img" '
        'aria-label="critical path bucket decomposition">'
    ]
    x = 0.0
    for bucket in order:
        cycles = buckets[bucket]
        width = cycles / total * w
        parts.append(
            f'<rect x="{x:.1f}" y="0" width="{max(width - 2, 0.5):.1f}" '
            f'height="{bar_h}" rx="2" fill="{CRITPATH_COLORS[bucket]}">'
            f'<title>{bucket}: {cycles} cycles '
            f'({cycles / total * 100:.1f}%)</title></rect>'
        )
        x += width
    parts.append(
        f'<text x="0" y="{bar_h + 14}">cycle 0</text>'
        f'<text x="{w}" y="{bar_h + 14}" text-anchor="end">'
        f'cycle {total}</text></svg>'
    )
    legend = _legend((b, CRITPATH_COLORS[b]) for b in order)
    waste = critpath.get("wasted_speculation", {})
    headline = (
        f'<p class="sub">dominant bucket <strong>'
        f'{_esc(critpath.get("dominant", "?"))}</strong> · '
        f'{critpath.get("path_tokens", 0)} tokens, '
        f'{critpath.get("path_segments", 0)} segments on the path · '
        f'{waste.get("tokens", 0)} doomed tokens '
        f'({waste.get("cycles", 0)} token-cycles) off it</p>'
    )
    what_if = critpath.get("what_if", {})
    projections = "<table><tr><th>what-if</th>" \
        '<th class="num">saves &le;</th><th class="num">speedup &le;' \
        "</th></tr>" + "".join(
            f"<tr><td>{_esc(name)}</td>"
            f'<td class="num">{proj.get("saved_cycles", 0)}</td>'
            f'<td class="num">{proj.get("speedup_bound", 1.0):.3f}x'
            "</td></tr>"
            for name, proj in sorted(what_if.items())
        ) + "</table>"
    segments = critpath.get("segments", [])
    seg_rows = "".join(
        f'<tr><td class="num">{s.get("cycles", 0)}</td>'
        f'<td class="num">[{s.get("start", 0)}, {s.get("end", 0)})</td>'
        f'<td>{_esc(s.get("bucket", "?"))}</td>'
        f'<td>{_esc(s.get("detail", ""))}</td></tr>'
        for s in segments
    )
    seg_table = (
        '<details><summary>longest segments</summary><table>'
        '<tr><th class="num">cycles</th><th class="num">span</th>'
        f"<th>bucket</th><th>detail</th></tr>{seg_rows}</table></details>"
        if segments else ""
    )
    return headline + legend + "".join(parts) + projections + seg_table


def _line_points(
    values: Sequence[float], width: float, height: float, pad: float,
    y_max: float,
) -> list[tuple[float, float]]:
    n = len(values)
    span = width - 2 * pad
    step = span / max(n - 1, 1)
    return [
        (pad + i * step,
         height - pad - (v / y_max) * (height - 2 * pad))
        for i, v in enumerate(values)
    ]


def _utilization_timeline(record: RunRecord) -> str:
    timeline = record.timeline or {}
    series = timeline.get("utilization") or []
    if not series:
        return '<p class="sub">no utilization timeline in this record</p>'
    bucket = timeline.get("bucket_cycles", 1)
    w, h, pad = 760, 180, 28
    y_max = max(max(series), 0.001)
    pts = _line_points(series, w, h, pad, y_max)
    path = " ".join(f"{x:.1f},{y:.1f}" for x, y in pts)
    grid = "".join(
        f'<line x1="{pad}" y1="{h - pad - frac * (h - 2 * pad):.1f}" '
        f'x2="{w - pad}" y2="{h - pad - frac * (h - 2 * pad):.1f}" '
        f'stroke="{GRID}"/>'
        f'<text x="{pad - 6}" y="{h - pad - frac * (h - 2 * pad) + 4:.1f}" '
        f'text-anchor="end">{frac * y_max * 100:.0f}%</text>'
        for frac in (0.0, 0.5, 1.0)
    )
    # Invisible per-bucket hover strips give native tooltips without JS.
    strip_w = (w - 2 * pad) / len(series)
    hovers = "".join(
        f'<rect x="{pad + i * strip_w:.1f}" y="{pad}" '
        f'width="{strip_w:.2f}" height="{h - 2 * pad}" fill="transparent">'
        f'<title>cycles {i * bucket}–{(i + 1) * bucket}: '
        f'{v * 100:.2f}% utilized</title></rect>'
        for i, v in enumerate(series)
    )
    return (
        f'<svg viewBox="0 0 {w} {h}" width="{w}" role="img" '
        'aria-label="pipeline utilization over time">'
        f"{grid}"
        f'<polyline points="{path}" fill="none" stroke="{PALETTE[0]}" '
        'stroke-width="2"/>'
        f"{hovers}"
        f'<text x="{pad}" y="{h - 6}">cycle 0</text>'
        f'<text x="{w - pad}" y="{h - 6}" text-anchor="end">'
        f'cycle {len(series) * bucket}</text>'
        "</svg>"
        f'<p class="sub">bucket width {bucket} cycles; utilization = '
        "active stage-cycles / (stages × cycles)</p>"
    )


def _bandwidth_sweep(history: Sequence[RunRecord]) -> str:
    """Figure-10-style speedup-vs-bandwidth lines from the run store."""
    by_app: dict[str, dict[float, RunRecord]] = {}
    for rec in history:
        if rec.kind == "golden" or not rec.cycles:
            continue
        bw = rec.platform.get("bandwidth_scale", 1.0)
        by_app.setdefault(rec.app, {})[bw] = rec  # latest run wins
    series: list[tuple[str, list[tuple[float, float]]]] = []
    for app, points in by_app.items():  # first-seen order = color order
        if len(points) < 2:
            continue
        baseline = points.get(1.0) or points[min(points)]
        pts = sorted(
            (bw, baseline.cycles / rec.cycles)
            for bw, rec in points.items()
        )
        series.append((app, pts))
    if not series:
        return ('<p class="sub">need runs of one app at two or more '
                'bandwidth scales to draw the sweep — e.g. '
                '<code>repro simulate SPEC-BFS --bandwidth 2</code></p>')
    w, h, pad = 760, 220, 36
    bws = sorted({bw for _, pts in series for bw, _ in pts})
    y_max = max(max(s for _, s in pts) for _, pts in series) * 1.1
    x_min, x_max = min(bws), max(bws)

    def sx(bw: float) -> float:
        span = (x_max - x_min) or 1.0
        return pad + (bw - x_min) / span * (w - 2 * pad)

    def sy(speedup: float) -> float:
        return h - pad - (speedup / y_max) * (h - 2 * pad)

    grid = "".join(
        f'<line x1="{sx(bw):.1f}" y1="{pad}" x2="{sx(bw):.1f}" '
        f'y2="{h - pad}" stroke="{GRID}"/>'
        f'<text x="{sx(bw):.1f}" y="{h - pad + 14}" text-anchor="middle">'
        f'{bw:g}x</text>'
        for bw in bws
    ) + "".join(
        f'<line x1="{pad}" y1="{sy(v):.1f}" x2="{w - pad}" '
        f'y2="{sy(v):.1f}" stroke="{GRID}"/>'
        f'<text x="{pad - 6}" y="{sy(v) + 4:.1f}" text-anchor="end">'
        f'{v:g}</text>'
        for v in (1.0, y_max / 1.1)
    )
    marks = []
    for index, (app, pts) in enumerate(series):
        color = PALETTE[index % len(PALETTE)]
        path = " ".join(f"{sx(bw):.1f},{sy(s):.1f}" for bw, s in pts)
        marks.append(
            f'<polyline points="{path}" fill="none" stroke="{color}" '
            'stroke-width="2"/>'
        )
        for bw, speedup in pts:
            marks.append(
                f'<circle cx="{sx(bw):.1f}" cy="{sy(speedup):.1f}" r="4" '
                f'fill="{color}" stroke="#fff" stroke-width="2">'
                f'<title>{_esc(app)} @ {bw:g}x bandwidth: '
                f'{speedup:.2f}x speedup</title></circle>'
            )
    legend = _legend(
        (app, PALETTE[i % len(PALETTE)]) for i, (app, _) in
        enumerate(series)
    )
    rows = "".join(
        f"<tr><td>{_esc(app)}</td>"
        + "".join(f'<td class="num">{s:.2f}</td>' for _, s in pts)
        + "</tr>"
        for app, pts in series
    )
    table = (
        '<details><summary>table view</summary><table>'
        "<tr><th>app</th>"
        + "".join(f'<th class="num">{bw:g}x</th>' for bw in bws)
        + f"</tr>{rows}</table></details>"
    )
    return (
        legend
        + f'<svg viewBox="0 0 {w} {h}" width="{w}" role="img" '
        'aria-label="speedup versus bandwidth scale">'
        f'{grid}{"".join(marks)}'
        f'<text x="{w - pad}" y="{h - 4}" text-anchor="end">'
        "QPI bandwidth scale</text></svg>"
        '<p class="sub">speedup relative to each app\'s own 1x-bandwidth '
        "run (cycle ratio), latest stored run per (app, bandwidth)</p>"
        + table
    )


def _fleet_timeline(record: RunRecord) -> str:
    """Worker-timeline SVG: one lane per pid, one bar per executed job."""
    spans = (record.extra or {}).get("jobs") or []
    spans = [
        s for s in spans
        if isinstance(s.get("start"), (int, float))
        and isinstance(s.get("end"), (int, float))
    ]
    if not spans:
        return ('<p class="sub">no per-job spans in this record (all '
                "points were cache hits, or the sweep stored none)</p>")
    t0 = min(s["start"] for s in spans)
    t1 = max(max(s["end"], s["start"]) for s in spans)
    span_s = max(t1 - t0, 1e-6)
    pids = sorted({s.get("pid", 0) for s in spans})
    label_w, chart_w, bar_h, gap = 120, 640, 16, 8
    height = len(pids) * (bar_h + gap) + 24
    parts = [
        f'<svg viewBox="0 0 {label_w + chart_w + 8} {height}" '
        f'width="{label_w + chart_w + 8}" role="img" '
        'aria-label="worker timeline">'
    ]
    lane = {pid: i for i, pid in enumerate(pids)}
    for pid in pids:
        y = lane[pid] * (bar_h + gap)
        parts.append(
            f'<text x="{label_w - 8}" y="{y + bar_h - 4}" '
            f'text-anchor="end">pid {pid}</text>'
        )
    for index, s in enumerate(sorted(spans, key=lambda s: s["start"])):
        y = lane[s.get("pid", 0)] * (bar_h + gap)
        x = label_w + (s["start"] - t0) / span_s * chart_w
        width = max((s["end"] - s["start"]) / span_s * chart_w, 0.5)
        # Errors in the status red, healthy jobs cycling the palette;
        # 2px surface gaps between adjacent fills.
        color = "#d03b3b" if s.get("error") else \
            PALETTE[index % len(PALETTE)]
        dur = s["end"] - s["start"]
        parts.append(
            f'<rect x="{x:.1f}" y="{y}" width="{max(width - 2, 0.5):.1f}" '
            f'height="{bar_h}" rx="2" fill="{color}">'
            f'<title>{_esc(s.get("tag", "?"))} on pid '
            f'{s.get("pid", "?")}: {dur:.3f}s'
            f'{" — FAILED" if s.get("error") else ""}</title></rect>'
        )
    parts.append(
        f'<text x="{label_w}" y="{height - 4}">0s</text>'
        f'<text x="{label_w + chart_w}" y="{height - 4}" '
        f'text-anchor="end">{span_s:.2f}s</text></svg>'
    )
    return "".join(parts)


def _fleet_section(record: RunRecord) -> str:
    """Sweep-level "fleet" page: worker timeline, cache economics,
    lock contention — rendered only for ``kind == "sweep"`` records."""
    sweep = (record.extra or {}).get("sweep") or {}
    metrics = record.metrics or {}
    counters = metrics.get("counters", {})
    histograms = metrics.get("histograms", {})
    gauges = metrics.get("gauges", {})

    facts = [
        ("points", sweep.get("points", 0)),
        ("cache hits", sweep.get("hits", 0)),
        ("simulated", sweep.get("executed", 0)),
        ("retried", sweep.get("retried", 0)),
        ("errors", sweep.get("errors", 0)),
        ("quarantined", sweep.get("quarantined", 0)),
        ("workers", sweep.get("jobs", 1)),
        ("hit rate", f"{sweep.get('hit_rate', 0.0) * 100:.0f}%"),
        ("points/s", f"{sweep.get('points_per_sec', 0.0):.2f}"),
        ("busy fraction",
         f"{gauges.get('exec.workers.busy_fraction', 0.0) * 100:.0f}%"),
    ]
    summary = "<table>" + "".join(
        f"<tr><th>{_esc(k)}</th><td class=\"num\">{_esc(v)}</td></tr>"
        for k, v in facts
    ) + "</table>"

    lookup = histograms.get("exec.cache.lookup_us", {})
    commit = histograms.get("exec.store.commit_us", {})
    economics = "<table><tr><th>cache economics</th>" \
        "<th class=\"num\">value</th></tr>" + "".join(
            f"<tr><td>{_esc(name)}</td><td class=\"num\">{_esc(v)}</td></tr>"
            for name, v in (
                ("lookups (hit)", counters.get("exec.cache.hits", 0)),
                ("lookups (miss)", counters.get("exec.cache.misses", 0)),
                ("uncacheable", counters.get("exec.cache.uncacheable", 0)),
                ("lookup p95", f"{lookup.get('p95', 0.0):.0f} µs"),
                ("commit p95", f"{commit.get('p95', 0.0):.0f} µs"),
            )
        ) + "</table>"

    contention = "<table><tr><th>lock contention</th>" \
        "<th class=\"num\">value</th></tr>" + "".join(
            f"<tr><td>{_esc(name)}</td><td class=\"num\">{_esc(v)}</td></tr>"
            for name, v in (
                ("acquires", counters.get("io.lock.acquires", 0)),
                ("contended", counters.get("io.lock.contended", 0)),
                ("total wait", f"{counters.get('io.lock.wait_ms', 0)} ms"),
                ("stale broken", counters.get("io.lock.stale_broken", 0)),
                ("timeouts", counters.get("io.lock.timeouts", 0)),
            )
        ) + "</table>"

    return summary + _fleet_timeline(record) + economics + contention


# ---------------------------------------------------------------------------
# Non-chart sections
# ---------------------------------------------------------------------------


def _headline(record: RunRecord) -> str:
    facts = [
        ("cycles", f"{record.cycles}"),
        ("time", f"{record.seconds * 1e6:.1f} µs"),
        ("utilization", f"{record.utilization * 100:.1f}%"),
        ("squash", f"{record.squash_fraction * 100:.1f}%"),
        ("hit rate",
         f"{record.memory.get('hit_rate', 0.0) * 100:.0f}%"),
        ("bandwidth",
         f"x{record.platform.get('bandwidth_scale', 1):g}"),
        ("mode", record.sim_mode),
        ("verified", "yes" if record.verified else "NO"),
    ]
    cells = "".join(
        f"<tr><th>{_esc(k)}</th><td class=\"num\">{_esc(v)}</td></tr>"
        for k, v in facts
    )
    meta = (
        f"run {record.run_id or 'unsaved'} · {record.kind} · "
        f"{record.app_mode or 'n/a'}"
        + (" · host-fed" if record.host_fed else "")
        + f" · config {record.config_digest or 'n/a'}"
        + (f" · seed {record.seed}" if record.seed is not None else "")
        + (f" · {record.timestamp}" if record.timestamp else "")
    )
    return (f'<p class="sub">{_esc(meta)}</p><table>{cells}</table>')


def _findings_section(findings) -> str:
    if not findings:
        return ('<p class="sub">no bottleneck classifier fired — the run '
                "looks balanced</p>")
    blocks = []
    for rank, finding in enumerate(findings, 1):
        evidence = "".join(
            f"<li>{_esc(line)}</li>" for line in finding.evidence
        )
        blocks.append(
            f'<div class="finding">{rank}. '
            f"{_severity_badge(finding.severity)} "
            f"<strong>{_esc(finding.code)}</strong> — "
            f"{_esc(finding.title)}"
            f'<ul class="evidence">{evidence}</ul></div>'
        )
    return "".join(blocks)


def _metrics_tables(record: RunRecord) -> str:
    metrics = record.metrics or {}
    counters = metrics.get("counters", {})
    histograms = metrics.get("histograms", {})
    parts = []
    if counters:
        rows = "".join(
            f"<tr><td>{_esc(name)}</td><td class=\"num\">{value}</td></tr>"
            for name, value in sorted(counters.items())
        )
        parts.append(
            "<table><tr><th>counter</th><th class=\"num\">value</th></tr>"
            f"{rows}</table>"
        )
    if histograms:
        rows = "".join(
            f"<tr><td>{_esc(name)}</td>"
            f"<td class=\"num\">{h.get('count', 0)}</td>"
            f"<td class=\"num\">{h.get('mean', 0.0):.2f}</td>"
            f"<td class=\"num\">{h.get('p50', 0.0):.1f}</td>"
            f"<td class=\"num\">{h.get('p95', 0.0):.1f}</td>"
            f"<td class=\"num\">{h.get('p99', 0.0):.1f}</td>"
            f"<td class=\"num\">{h.get('max', 0)}</td></tr>"
            for name, h in sorted(histograms.items())
        )
        parts.append(
            "<table><tr><th>histogram</th><th class=\"num\">count</th>"
            "<th class=\"num\">mean</th><th class=\"num\">p50</th>"
            "<th class=\"num\">p95</th><th class=\"num\">p99</th>"
            "<th class=\"num\">max</th></tr>"
            f"{rows}</table>"
        )
    if not parts:
        return '<p class="sub">record carries no metrics snapshot</p>'
    return "".join(parts)


def _history_table(history: Sequence[RunRecord]) -> str:
    recent = list(history)[-12:]
    rows = "".join(
        f"<tr><td>{_esc(r.run_id)}</td><td>{_esc(r.kind)}</td>"
        f"<td>{_esc(r.app)}</td>"
        f"<td class=\"num\">{r.platform.get('bandwidth_scale', 1):g}x</td>"
        f"<td class=\"num\">{r.cycles}</td>"
        f"<td class=\"num\">{r.utilization * 100:.1f}%</td>"
        f"<td>{'yes' if r.verified else 'NO'}</td>"
        f"<td>{_esc(r.timestamp)}</td></tr>"
        for r in reversed(recent)
    )
    return (
        "<table><tr><th>id</th><th>kind</th><th>app</th>"
        "<th class=\"num\">bw</th><th class=\"num\">cycles</th>"
        "<th class=\"num\">util</th><th>verified</th><th>when</th></tr>"
        f"{rows}</table>"
    )


# ---------------------------------------------------------------------------
# Page assembly
# ---------------------------------------------------------------------------


def render_dashboard(
    record: RunRecord,
    findings=None,
    history: Sequence[RunRecord] | None = None,
) -> str:
    """The whole page as one HTML string."""
    history = list(history or [])
    if record.kind == "sweep" or (record.extra or {}).get("sweep"):
        sections = [
            ("Fleet (sweep execution)", _fleet_section(record)),
            ("Metrics", _metrics_tables(record)),
        ]
    else:
        sections = [
            ("Diagnosis", _findings_section(findings or [])),
            ("Stall attribution", _stall_waterfall(record)),
            ("Critical path", _critpath_section(record)),
            ("Pipeline utilization", _utilization_timeline(record)),
            ("Bandwidth sweep (Figure 10)", _bandwidth_sweep(history)),
            ("Metrics", _metrics_tables(record)),
        ]
    if history:
        sections.append(("Recent runs", _history_table(history)))
    body = "".join(
        f'<div class="card"><h2>{_esc(title)}</h2>{content}</div>'
        for title, content in sections
    )
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">'
        f"<title>repro dashboard — {_esc(record.app)}</title>"
        f"<style>{_CSS}</style></head><body>"
        f"<h1>{_esc(record.app)} run telemetry</h1>"
        f"{_headline(record)}{body}"
        "</body></html>"
    )


def write_dashboard(
    path,
    record: RunRecord,
    findings=None,
    history: Sequence[RunRecord] | None = None,
) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_dashboard(record, findings, history))
