"""Critical-path extraction and what-if projection over a TokenLedger.

The extractor walks the per-token provenance record backwards from the
last-retiring token: within a token it attributes every inter-event span
to a stall bucket; at causal edges it jumps — to the parent that
enqueued the task, to the Expand parent that forked it, to the token
whose event decided a binding rule rendezvous, or down the host batch
launch chain.  The result is one contiguous chain of segments covering
``[0, total_cycles]`` exactly: the measured critical path, decomposed
into the same vocabulary as the stall profiler —

==============  ============================================================
bucket          the path was bounded by
==============  ============================================================
compute         a stage or function unit doing one token's work per cycle
queue           workset occupancy: waiting for a pop grant or queue room
memory          a cache miss, an operand/row stream, or a full station
rule            a pending rendezvous promise, lane allocation, or verdict
                propagation over the event bus
backpressure    a decided/completed token blocked by a full downstream FIFO
host            the host-side launch chain (batch DMA + turnaround)
speculation     doomed work (later squashed or guard-dropped) holding the
                pipeline slots the path was waiting for
==============  ============================================================

``speculation`` is the bucket the stage profiler cannot see: a stage
does not know a token is doomed, but the ledger — holding every token's
eventual verdict — does.  Pop-port and FIFO waits with no single causal
owner are *folded* onto the waits concurrently in flight (the same
root-cause folding ``repro diagnose`` applies to aggregate
backpressure).  In that fold a doomed token's residency counts as
speculation only while the QPI channel is unsaturated: wasted work binds
the run when the resource it wastes has headroom (diagnose's squash
gate); on a saturated channel the same miss cycles are memory-bound
whether or not the load was doomed, so doomed tokens add no extra weight
and their waits fold to their resource.

What-if projections re-weight the extracted path instead of re-running
the simulator: shrinking a bucket's edge weights can only shorten the
path (some *other* chain then becomes critical), so
``total / (total - saved)`` is an upper bound on the speedup the edit
can achieve — validated against actual re-simulation in the tests.
Projections are bounds, not predictions: they ignore second-order
contention shifts (a faster channel drains queues sooner, etc.).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Any

from repro.sim.ledger import (
    BORN,
    FIRE,
    FORK,
    ISSUE,
    READY,
    RELEASE,
    RETIRE,
    TokenLedger,
)

BUCKETS = ("compute", "queue", "memory", "rule", "backpressure", "host",
           "speculation")

# Above this channel saturation, doomed tokens' resource waits fold to
# the resource rather than to speculation (diagnose's SQUASH_MAX_SATURATION
# gate: waste only binds when the channel it burns is not the bottleneck).
_WASTE_BINDS_BELOW = 0.5

# Deterministic carve order for folded gap segments (and the remainder
# tie-break); the emitted chain must be byte-identical across engines.
_FOLD_ORDER = ("speculation", "memory", "rule", "compute")

# How long a token nominally spends reaching the next stage when nothing
# blocks it: one cycle (push at c, FIFO commit, pop at c+1).  The first
# cycle of a fire/issue span is pipeline-depth compute; any excess is a
# stall attributed by the stage's kind.
_NOMINAL_HOP = 1

_READY_BUCKETS = {
    "mem_hit": "memory",
    "mem_miss": "memory",
    "mem_stream": "memory",
    "fu": "compute",
    "clause": "rule",
    "requires": "rule",
    "otherwise": "rule",
}

_STALL_BUCKETS = {
    "alloc_rule": "rule",
    "rendezvous": "rule",
    "enqueue": "queue",
    "load": "memory",
    "expand": "memory",
    "call": "memory",
}


@dataclass(slots=True)
class Segment:
    """One span of the critical path."""

    start: int
    end: int
    bucket: str
    token: int
    detail: str

    @property
    def cycles(self) -> int:
        return self.end - self.start

    def to_dict(self) -> dict[str, Any]:
        return {
            "start": self.start, "end": self.end, "cycles": self.cycles,
            "bucket": self.bucket, "token": self.token,
            "detail": self.detail,
        }


def _stage_kind(stage: str) -> str:
    return stage.rsplit(".", 1)[-1]


class _Cumulative:
    """Piecewise-linear cumulative weight over cycles.

    ``add(a, b, w)`` raises the slope by ``w`` on ``[a, b)``; after
    ``freeze`` the curve answers ``weight_over(a, b)`` — the
    multiplicity-weighted cycles the tracked intervals spend inside a
    window — in O(log n).  All integer arithmetic, so fold shares are
    exactly reproducible.
    """

    __slots__ = ("_deltas", "_xs", "_cum", "_slope")

    def __init__(self) -> None:
        self._deltas: dict[int, int] = {}

    def add(self, start: int, end: int, weight: int = 1) -> None:
        if end <= start:
            return
        self._deltas[start] = self._deltas.get(start, 0) + weight
        self._deltas[end] = self._deltas.get(end, 0) - weight

    def freeze(self) -> None:
        self._xs = sorted(self._deltas)
        self._cum: list[int] = []
        self._slope: list[int] = []
        cum = slope = 0
        previous = None
        for x in self._xs:
            if previous is not None:
                cum += slope * (x - previous)
            self._cum.append(cum)
            slope += self._deltas[x]
            self._slope.append(slope)
            previous = x

    def _at(self, x: int) -> int:
        index = bisect.bisect_right(self._xs, x) - 1
        if index < 0:
            return 0
        return self._cum[index] + self._slope[index] * (x - self._xs[index])

    def weight_over(self, start: int, end: int) -> int:
        return self._at(end) - self._at(start)


class _Walker:
    """Backward walk state: emits segments in reverse time order."""

    def __init__(self, ledger: TokenLedger, total_cycles: int,
                 saturation: float = 0.0) -> None:
        self.ledger = ledger
        self.total = total_cycles
        self.segments: list[Segment] = []
        self.visited: set[tuple[int, int]] = set()
        # Per-source birth order (chronological): token n's queue wait
        # ends when the pop port grants it, and what delayed the grant is
        # the in-flight history of the token granted just before it.
        self.births: dict[str, list[tuple[int, int]]] = {}
        for uid, events in ledger.tokens.items():
            first = events[0]
            if first[0] == BORN and len(first) > 5:
                self.births.setdefault(first[5], []).append((first[1], uid))
        for grants in self.births.values():
            grants.sort()
        # Concurrent-wait mix for root-cause folding (module docstring):
        # while the channel has headroom a doomed token's whole residency
        # weighs as speculation; on a saturated channel doomed tokens add
        # nothing extra and their waits weigh as their resource.
        waste_binds = saturation < _WASTE_BINDS_BELOW
        self.mix = {bucket: _Cumulative() for bucket in _FOLD_ORDER}
        for uid, events in ledger.tokens.items():
            last = events[-1]
            doomed = (waste_binds and last[0] == RETIRE
                      and last[2] in ("squash", "drop"))
            if doomed:
                # The presence span covers the waits too; skip them below.
                self.mix["speculation"].add(events[0][1], last[1])
            pending = None
            for event in events:
                if event[0] == ISSUE:
                    pending = event[1]
                elif event[0] == READY and pending is not None:
                    if not doomed:
                        bucket = _READY_BUCKETS.get(event[4], "memory")
                        self.mix[bucket].add(pending, event[1])
                    pending = None
        for curve in self.mix.values():
            curve.freeze()

    def emit(self, start: int, end: int, bucket: str, token: int,
             detail: str) -> None:
        if end > start:
            self.segments.append(Segment(start, end, bucket, token, detail))

    def _fold(self, start: int, end: int, token: int, detail: str) -> None:
        """Attribute an owner-less wait by the concurrent wait mix.

        Carves ``[start, end)`` into per-bucket chunks proportional to
        the weighted cycles each bucket's waits spent inside the window
        (largest-remainder rounding, so the chunks sum exactly).  With
        nothing in flight the window stays plain backpressure.
        """
        gap = end - start
        if gap <= 0:
            return
        weights = {
            bucket: max(0, curve.weight_over(start, end))
            for bucket, curve in self.mix.items()
        }
        total = sum(weights.values())
        if total == 0:
            self.emit(start, end, "backpressure", token, detail)
            return
        shares = {b: weights[b] * gap // total for b in _FOLD_ORDER}
        leftover = gap - sum(shares.values())
        for bucket in sorted(
            _FOLD_ORDER,
            key=lambda b: (-(weights[b] * gap % total),
                           _FOLD_ORDER.index(b)),
        ):
            if leftover <= 0:
                break
            shares[bucket] += 1
            leftover -= 1
        # Reverse time order: the walker emits later spans first.
        edge = end
        for bucket in reversed(_FOLD_ORDER):
            chunk = shares[bucket]
            if chunk:
                self.emit(edge - chunk, edge, bucket, token,
                          f"{detail}:folded")
                edge -= chunk

    def _jump(self, uid: int, at: int) -> tuple[int, int] | None:
        """Locate the latest event of ``uid`` at or before cycle ``at``.

        Returns (index, cycle), or None when the target is unusable (not
        in the ledger, already visited, or strictly later than ``at`` —
        which would make the walk go forward in time).
        """
        events = self.ledger.tokens.get(uid)
        if not events:
            return None
        index = len(events) - 1
        while index >= 0 and events[index][1] > at:
            index -= 1
        if index < 0 or (uid, index) in self.visited:
            return None
        return index, events[index][1]

    def _gap_bucket(self, uid: int, index: int, default: str) -> str:
        """Bucket for the gap left when jumping into a token mid-flight.

        The gap falls inside the span the token's *next* event would
        attribute (a load wait, a stalled hop, ...), so classify by that
        event rather than by the kind of jump.
        """
        events = self.ledger.tokens[uid]
        if index + 1 >= len(events):
            return default
        event = events[index + 1]
        kind = event[0]
        if kind == READY:
            return _READY_BUCKETS.get(event[4], "memory")
        if kind in (FIRE, ISSUE):
            # A gap ahead of a plain stage hop means the token was
            # streaming through the pipeline: throughput, i.e. compute.
            return _STALL_BUCKETS.get(_stage_kind(event[2]), "compute")
        return "backpressure"  # release / retire: blocked on the way out

    def _predecessor(
        self, source: str, act_cycle: int, born_cycle: int
    ) -> tuple[int, int, int] | None:
        """The token granted by ``source`` just before ``born_cycle``.

        Only grants made while this token was already queued count — an
        earlier grant finished before we arrived and explains nothing.
        Returns (uid, event_index, event_cycle) positioned at or before
        ``born_cycle``, or None.
        """
        grants = self.births.get(source)
        if not grants:
            return None
        position = bisect.bisect_left(grants, (born_cycle, -1)) - 1
        if position < 0:
            return None
        grant_cycle, pred_uid = grants[position]
        if grant_cycle < act_cycle:
            return None
        target = self._jump(pred_uid, born_cycle)
        if target is None:
            return None
        return pred_uid, target[0], target[1]

    def _host_chain(self, ordinal: int, t: int) -> None:
        """Walk the host launch chain backwards from batch ``ordinal``.

        Batch k's injection waits on its DMA completion and queue room;
        its DMA issue follows batch k-1's injection (the feed is
        sequential).  The chain bottoms out at batch 0, issued at t=0.
        """
        batches = self.ledger.host_batches
        k = ordinal
        while 0 <= k < len(batches):
            issue, done, _injected, _nbytes = batches[k]
            done = min(done, t)
            self.emit(done, t, "queue", -1, f"host-batch[{k}]:room")
            self.emit(issue, done, "host", -1, f"host-batch[{k}]:dma")
            t = issue
            if k == 0:
                break
            prev_injected = batches[k - 1][2]
            if 0 <= prev_injected <= t:
                self.emit(prev_injected, t, "host", -1,
                          f"host-batch[{k}]:turnaround")
                t = prev_injected
                # Continue from the moment batch k-1 entered the queues:
                # what bounded *that* is batch k-1's own DMA, so loop.
            k -= 1
        if t > 0:
            self.emit(0, t, "host", -1, "host-origin")

    def _fire_span(self, prev: int, c: int, stage: str, uid: int) -> None:
        """A fire/issue hop: one nominal compute cycle + attributed excess."""
        if c <= prev:
            return
        hop_end = min(prev + _NOMINAL_HOP, c)
        # Reverse time order: the walker emits later spans first.
        if c > hop_end:
            bucket = _STALL_BUCKETS.get(_stage_kind(stage))
            if bucket is not None:
                self.emit(hop_end, c, bucket, uid, f"{stage}:wait")
            else:
                # A plain stage took extra cycles to accept the token:
                # a FIFO wait with no single owner, so fold it.
                self._fold(hop_end, c, uid, f"{stage}:wait")
        self.emit(prev, hop_end, "compute", uid, stage)

    def walk(self) -> None:
        ledger = self.ledger
        if ledger.final is None:
            # Nothing ever retired: the whole run is host/launch time.
            self.emit(0, self.total, "host", -1, "no-retirement")
            return
        final_cycle, uid = ledger.final
        self.emit(final_cycle, self.total, "compute", uid, "drain")
        events = ledger.tokens[uid]
        index = len(events) - 1
        while True:
            self.visited.add((uid, index))
            event = events[index]
            kind, cycle = event[0], event[1]

            if kind == BORN:
                act_cycle, cause, cause_uid = event[2], event[3], event[4]
                source = event[5] if len(event) > 5 else ""
                # While this token sat queued, the pop port was granting
                # (or failing to grant) other tokens: the wait was bound
                # by the predecessor grant's in-flight work, so the path
                # continues through it rather than flattening the whole
                # backlog into "queue".
                predecessor = self._predecessor(source, act_cycle, cycle)
                if predecessor is not None:
                    pred_uid, pred_index, pred_cycle = predecessor
                    self._fold(pred_cycle, cycle, pred_uid,
                               f"{source}:pop-contention")
                    uid = pred_uid
                    events = ledger.tokens[uid]
                    index = pred_index
                    continue
                self.emit(act_cycle, cycle, "queue", uid, "queue-wait")
                if cause == "task":
                    target = self._jump(cause_uid, act_cycle)
                    if target is not None:
                        index, target_cycle = target
                        self.emit(
                            target_cycle, act_cycle,
                            self._gap_bucket(cause_uid, index, "queue"),
                            cause_uid, "activation",
                        )
                        uid = cause_uid
                        events = ledger.tokens[uid]
                        continue
                elif cause == "host":
                    self._host_chain(cause_uid, act_cycle)
                    return
                # Seed (or unresolvable parent): tasks activated before
                # the first cycle; anything left is launch time.
                self.emit(0, act_cycle, "host", uid, "origin")
                return

            if kind == FORK:
                parent_uid = event[2]
                target = self._jump(parent_uid, cycle)
                if target is not None:
                    index, target_cycle = target
                    self.emit(target_cycle, cycle, "compute", uid,
                              "fork-emission")
                    uid = parent_uid
                    events = ledger.tokens[uid]
                    continue
                self.emit(0, cycle, "compute", uid, "origin")
                return

            prev_cycle = events[index - 1][1]
            if kind == READY:
                stage, cause_uid, ready_kind = event[2], event[3], event[4]
                if (
                    ready_kind in ("clause", "requires")
                    and cause_uid >= 0
                    and cycle > prev_cycle
                ):
                    # A binding rendezvous wait: the promise resolved
                    # when another token's event arrived, so the path
                    # continues through the decider, not this token's
                    # earlier history.
                    target = self._jump(cause_uid, cycle)
                    if target is not None:
                        index, target_cycle = target
                        self.emit(target_cycle, cycle, "rule", uid,
                                  f"{stage}:verdict")
                        uid = cause_uid
                        events = ledger.tokens[uid]
                        continue
                bucket = _READY_BUCKETS.get(ready_kind, "memory")
                self.emit(prev_cycle, cycle, bucket, uid,
                          f"{stage}:{ready_kind}")
            elif kind in (FIRE, ISSUE):
                self._fire_span(prev_cycle, cycle, event[2], uid)
            elif kind == RELEASE:
                # Resource ready but the station exit was blocked by the
                # downstream FIFO: fold onto whoever was clogging it.
                self._fold(prev_cycle, cycle, uid, f"{event[2]}:release")
            else:  # retire
                self.emit(prev_cycle, cycle, "backpressure", uid, "retire")
            index -= 1


def extract_critical_path(
    ledger: TokenLedger,
    total_cycles: int,
    *,
    rule_lanes: int = 32,
    top_segments: int = 12,
    saturation: float = 0.0,
) -> dict[str, Any]:
    """Walk the ledger backwards; return the decomposed critical path.

    The returned dict's ``buckets`` sum exactly to ``total_cycles`` (a
    tested invariant) and ``segments`` carries the top spans by length.
    The full contiguous chain is under ``"chain"`` in time order, for the
    Chrome-trace flow export.  ``saturation`` is the run's sustained
    QPI-channel load (``bytes/cycle / capacity``); it gates whether
    doomed tokens' resource waits fold to ``speculation`` or to the
    resource (module docstring) and is engine-invariant, so passing the
    value from the run's :class:`SimResult` keeps the extraction
    byte-identical across engines.
    """
    walker = _Walker(ledger, total_cycles, saturation)
    walker.walk()
    chain = list(reversed(walker.segments))

    covered = sum(s.cycles for s in chain)
    if covered != total_cycles:
        raise AssertionError(
            f"critical path covers {covered} of {total_cycles} cycles"
        )
    for earlier, later in zip(chain, chain[1:]):
        if earlier.end != later.start:
            raise AssertionError(
                f"critical path discontinuity at cycle {earlier.end} "
                f"-> {later.start}"
            )

    buckets = {bucket: 0 for bucket in BUCKETS}
    for segment in chain:
        buckets[segment.bucket] += segment.cycles
    dominant = max(BUCKETS, key=lambda b: buckets[b])

    top = sorted(chain, key=lambda s: (-s.cycles, s.start))[:top_segments]

    def bound(saved: int) -> dict[str, Any]:
        saved = max(0, min(saved, total_cycles - 1))
        projected = total_cycles - saved
        return {
            "saved_cycles": saved,
            "projected_cycles": projected,
            "speedup_bound": round(total_cycles / projected, 4),
        }

    what_if = {
        # Halving the QPI round-trip latency can at most halve every
        # memory wait on the path (bandwidth queueing is untouched).
        "qpi_latency_x0.5": bound(buckets["memory"] // 2),
        # One extra lane can shave at most 1/(lanes+1) of the rule waits
        # (allocation and rendezvous both scale with lane pressure).
        "rule_lanes_plus1": bound(buckets["rule"] // (rule_lanes + 1)),
        # A zero-overhead host interface deletes the launch chain.
        "zero_launch_overhead": bound(buckets["host"]),
        # An oracle that never issues doomed work frees every pipeline
        # slot speculation held on the path.
        "perfect_speculation": bound(buckets["speculation"]),
    }

    return {
        "total_cycles": total_cycles,
        "buckets": buckets,
        "dominant": dominant,
        "path_tokens": len({s.token for s in chain if s.token >= 0}),
        "path_segments": len(chain),
        "segments": [s.to_dict() for s in top],
        "wasted_speculation": ledger.wasted_speculation(),
        "what_if": what_if,
        "chain": chain,
    }


def summary_block(critpath: dict[str, Any]) -> dict[str, Any]:
    """The JSON-able subset stored in a RunRecord (drops the raw chain)."""
    return {key: value for key, value in critpath.items() if key != "chain"}


def result_saturation(result, platform) -> float:
    """A run's sustained QPI load: ``bytes/cycle / channel capacity``.

    Engine-invariant (``SimResult.memory_bytes`` and ``cycles`` are
    identical across dense/fast/event), so feeding it to
    :func:`extract_critical_path` keeps the chain byte-identical too.
    """
    capacity = getattr(platform, "qpi_bytes_per_cycle", 0.0)
    if not capacity or not result.cycles:
        return 0.0
    return result.memory_bytes / result.cycles / capacity


# -- rendering ----------------------------------------------------------------


def format_critpath(critpath: dict[str, Any], app: str = "") -> str:
    """Text table for the CLI."""
    total = critpath["total_cycles"]
    lines = []
    title = f"Critical path — {app}" if app else "Critical path"
    lines.append(f"{title}: {total} cycles, "
                 f"{critpath['path_tokens']} tokens, "
                 f"{critpath['path_segments']} segments "
                 f"(dominant: {critpath['dominant']})")
    lines.append("")
    lines.append(f"  {'bucket':<14}{'cycles':>10}{'share':>9}")
    for bucket in BUCKETS:
        cycles = critpath["buckets"][bucket]
        share = cycles / total if total else 0.0
        lines.append(f"  {bucket:<14}{cycles:>10}{share:>8.1%}")
    lines.append(f"  {'total':<14}{total:>10}{1:>8.0%}")
    waste = critpath["wasted_speculation"]
    lines.append("")
    lines.append(f"  wasted speculation: {waste['tokens']} tokens, "
                 f"{waste['cycles']} token-cycles off the path")
    lines.append("")
    lines.append("  Longest segments:")
    lines.append(f"  {'cycles':>8}  {'span':<17}{'bucket':<14}detail")
    for segment in critpath["segments"]:
        span = f"[{segment['start']}, {segment['end']})"
        lines.append(f"  {segment['cycles']:>8}  {span:<17}"
                     f"{segment['bucket']:<14}{segment['detail']}")
    lines.append("")
    lines.append("  What-if projections (upper bounds):")
    for name, proj in critpath["what_if"].items():
        lines.append(
            f"    {name:<22}saves <= {proj['saved_cycles']} cycles "
            f"-> >= {proj['projected_cycles']} cycles "
            f"(speedup <= {proj['speedup_bound']:.3f}x)"
        )
    return "\n".join(lines)


# Perfetto renders pid 6 below the existing tracks (pipelines=1 ..
# checkpoint-rollback=5 in obs/tracer.py).
_CRITPATH_PID = 6


def critpath_trace_events(critpath: dict[str, Any]) -> list[dict[str, Any]]:
    """Chrome trace_event rows: the path as slices chained by flow arrows.

    Appended to an EventTracer's ``chrome_trace()`` document, these draw
    the critical path as its own track with Perfetto arrows hopping
    segment-to-segment (and token-to-token).
    """
    chain = critpath.get("chain")
    if chain is None:
        raise ValueError("critpath dict lacks 'chain'; pass the "
                         "extract_critical_path result directly")
    rows: list[dict[str, Any]] = [
        {"ph": "M", "pid": _CRITPATH_PID, "name": "process_name",
         "args": {"name": "critical path"}},
        {"ph": "M", "pid": _CRITPATH_PID, "tid": 0, "name": "thread_name",
         "args": {"name": "measured chain"}},
    ]
    flow_id = 1
    previous = None
    for segment in chain:
        token = ("host" if segment.token < 0
                 else f"token {segment.token}")
        rows.append({
            "ph": "X", "pid": _CRITPATH_PID, "tid": 0,
            "ts": segment.start, "dur": max(segment.cycles, 1),
            "name": f"{segment.bucket}: {segment.detail}",
            "cat": segment.bucket,
            "args": {"token": token, "cycles": segment.cycles},
        })
        if previous is not None and previous.token != segment.token:
            # A causal hop between tokens: draw the arrow.
            rows.append({
                "ph": "s", "pid": _CRITPATH_PID, "tid": 0,
                "ts": max(previous.end - 1, previous.start),
                "id": flow_id, "name": "critical-path",
                "cat": "critpath-flow",
            })
            rows.append({
                "ph": "f", "pid": _CRITPATH_PID, "tid": 0,
                "ts": segment.start, "id": flow_id,
                "name": "critical-path", "cat": "critpath-flow",
                "bp": "e",
            })
            flow_id += 1
        previous = segment
    return rows
