"""Problem substrates the benchmarks are built on.

The paper evaluates its framework on graph analytics (BFS, SSSP, MST),
computational geometry (Delaunay mesh refinement) and sparse linear algebra
(blocked sparse LU).  Each substrate here provides the data structures, input
generators and *reference* (oracle) algorithms used both to drive the
simulated accelerators and to verify their functional results.
"""

from repro.substrates.dsu import DisjointSet

__all__ = ["DisjointSet"]
