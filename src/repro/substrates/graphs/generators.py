"""Synthetic graph generators.

The paper evaluates BFS/SSSP on the DIMACS USA road network, which we cannot
download in this environment.  :func:`road_network` synthesizes a graph with
the two properties that drive the paper's results on that input — very low
average degree (2-4) and very large diameter — so the level-by-level
behaviour of BFS and the relaxation profile of Bellman-Ford match the real
input's shape.  The other generators cover the scale-free and uniform-random
regimes used in ablations.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InputError
from repro.substrates.graphs.csr import CSRGraph


def road_network(
    width: int,
    height: int,
    seed: int = 0,
    shortcut_fraction: float = 0.02,
    drop_fraction: float = 0.05,
    max_weight: int = 100,
) -> CSRGraph:
    """A road-network-like graph: a jittered lattice with sparse shortcuts.

    Vertices form a ``width x height`` lattice with 4-neighbour streets; a
    small fraction of random shortcut edges model highways and a small
    fraction of street edges are removed to break the regularity.  The result
    has average degree ~3.5 and diameter O(width + height), matching the
    qualitative structure of the DIMACS road inputs.
    """
    if width < 2 or height < 2:
        raise InputError("road_network needs width >= 2 and height >= 2")
    rng = np.random.default_rng(seed)
    n = width * height

    def vid(x: int, y: int) -> int:
        return y * width + x

    edges: list[tuple[int, int, float]] = []
    for y in range(height):
        for x in range(width):
            if x + 1 < width:
                edges.append((vid(x, y), vid(x + 1, y),
                              float(rng.integers(1, max_weight + 1))))
            if y + 1 < height:
                edges.append((vid(x, y), vid(x, y + 1),
                              float(rng.integers(1, max_weight + 1))))

    # Drop a few street segments, but never disconnect the lattice spine
    # (keep every edge on row 0 and column 0).
    kept: list[tuple[int, int, float]] = []
    for src, dst, weight in edges:
        on_spine = (src % width == 0 and dst % width == 0) or (
            src < width and dst < width
        )
        if not on_spine and rng.random() < drop_fraction:
            continue
        kept.append((src, dst, weight))

    num_shortcuts = int(shortcut_fraction * len(kept))
    for _ in range(num_shortcuts):
        a, b = rng.integers(0, n, size=2)
        if a != b:
            kept.append((int(a), int(b),
                         float(rng.integers(max_weight, 4 * max_weight))))

    return CSRGraph(n, kept, directed=False)


def grid_graph(width: int, height: int) -> CSRGraph:
    """A plain unweighted 2-D lattice (used by unit tests as a known shape)."""
    if width < 1 or height < 1:
        raise InputError("grid_graph needs positive dimensions")
    edges = []
    for y in range(height):
        for x in range(width):
            v = y * width + x
            if x + 1 < width:
                edges.append((v, v + 1))
            if y + 1 < height:
                edges.append((v, v + width))
    return CSRGraph(width * height, edges, directed=False)


def random_graph(
    num_vertices: int,
    num_edges: int,
    seed: int = 0,
    max_weight: int = 100,
    connected: bool = True,
) -> CSRGraph:
    """Uniform random multigraph-free graph with optional connectivity spine."""
    if num_vertices < 1:
        raise InputError("random_graph needs at least one vertex")
    rng = np.random.default_rng(seed)
    edges: set[tuple[int, int]] = set()
    if connected:
        order = rng.permutation(num_vertices)
        for i in range(1, num_vertices):
            a, b = int(order[i - 1]), int(order[i])
            edges.add((min(a, b), max(a, b)))
    attempts = 0
    while len(edges) < num_edges and attempts < 20 * num_edges + 100:
        a, b = rng.integers(0, num_vertices, size=2)
        attempts += 1
        if a == b:
            continue
        edges.add((min(int(a), int(b)), max(int(a), int(b))))
    weighted = [
        (a, b, float(rng.integers(1, max_weight + 1))) for a, b in sorted(edges)
    ]
    return CSRGraph(num_vertices, weighted, directed=False)


def rmat_graph(
    scale: int,
    edge_factor: int = 8,
    seed: int = 0,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
) -> CSRGraph:
    """Recursive-matrix (Graph500-style) scale-free graph, 2**scale vertices."""
    if scale < 1:
        raise InputError("rmat_graph needs scale >= 1")
    if a + b + c >= 1.0:
        raise InputError("rmat probabilities must satisfy a + b + c < 1")
    rng = np.random.default_rng(seed)
    n = 1 << scale
    num_edges = edge_factor * n
    edges: list[tuple[int, int, float]] = []
    thresholds = np.array([a, a + b, a + b + c])
    for _ in range(num_edges):
        src = dst = 0
        half = n >> 1
        while half >= 1:
            r = rng.random()
            quadrant = int(np.searchsorted(thresholds, r))
            if quadrant in (1, 3):
                dst += half
            if quadrant in (2, 3):
                src += half
            half >>= 1
        if src != dst:
            edges.append((src, dst, float(rng.integers(1, 101))))
    return CSRGraph(n, edges, directed=False)
