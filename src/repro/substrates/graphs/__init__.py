"""Graph substrate: CSR storage, generators, DIMACS I/O and oracle algorithms."""

from repro.substrates.graphs.csr import CSRGraph
from repro.substrates.graphs.generators import (
    grid_graph,
    random_graph,
    rmat_graph,
    road_network,
)
from repro.substrates.graphs.algorithms import (
    bfs_levels,
    dijkstra_distances,
    kruskal_mst,
)

__all__ = [
    "CSRGraph",
    "grid_graph",
    "random_graph",
    "rmat_graph",
    "road_network",
    "bfs_levels",
    "dijkstra_distances",
    "kruskal_mst",
]
