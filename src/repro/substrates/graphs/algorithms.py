"""Reference (oracle) graph algorithms.

Every simulated accelerator run is verified against these: the simulator must
compute *the same answer*, not just a timing estimate.  They are also the
sequential software counterparts whose event counts feed the Xeon timing
model of Figure 9.
"""

from __future__ import annotations

import heapq
from collections import deque

import numpy as np

from repro.substrates.dsu import DisjointSet
from repro.substrates.graphs.csr import CSRGraph

INF = np.iinfo(np.int64).max


def bfs_levels(graph: CSRGraph, root: int) -> np.ndarray:
    """Breadth-first levels from ``root``; unreachable vertices get ``INF``.

    Matches Figure 1(a): ``level[v]`` is the number of edges on a shortest
    path from the root, with ``level[root] == 0``.
    """
    levels = np.full(graph.num_vertices, INF, dtype=np.int64)
    levels[root] = 0
    queue: deque[int] = deque([root])
    while queue:
        v = queue.popleft()
        next_level = levels[v] + 1
        for u in graph.neighbors(v):
            if levels[u] == INF:
                levels[u] = next_level
                queue.append(int(u))
    return levels


def dijkstra_distances(graph: CSRGraph, root: int) -> np.ndarray:
    """Single-source shortest path distances (oracle for SPEC-SSSP)."""
    dist = np.full(graph.num_vertices, np.inf, dtype=np.float64)
    dist[root] = 0.0
    heap: list[tuple[float, int]] = [(0.0, root)]
    while heap:
        d, v = heapq.heappop(heap)
        if d > dist[v]:
            continue
        neighbors = graph.neighbors(v)
        weights = graph.neighbor_weights(v)
        for u, w in zip(neighbors, weights):
            candidate = d + w
            if candidate < dist[u]:
                dist[u] = candidate
                heapq.heappush(heap, (candidate, int(u)))
    return dist


def bellman_ford_distances(graph: CSRGraph, root: int) -> np.ndarray:
    """Work-list Bellman-Ford — the algorithm SPEC-SSSP aggressively
    parallelizes.  Functionally identical to Dijkstra on non-negative weights.
    """
    dist = np.full(graph.num_vertices, np.inf, dtype=np.float64)
    dist[root] = 0.0
    worklist: deque[int] = deque([root])
    queued = np.zeros(graph.num_vertices, dtype=bool)
    queued[root] = True
    while worklist:
        v = worklist.popleft()
        queued[v] = False
        base = dist[v]
        for u, w in zip(graph.neighbors(v), graph.neighbor_weights(v)):
            candidate = base + w
            if candidate < dist[u]:
                dist[u] = candidate
                if not queued[u]:
                    worklist.append(int(u))
                    queued[u] = True
    return dist


def kruskal_mst(graph: CSRGraph) -> tuple[list[tuple[int, int, float]], float]:
    """Kruskal's minimum spanning forest (oracle for SPEC-MST).

    Returns the chosen edges and their total weight.  Edges are examined in
    the paper's well-order: sorted by weight with (src, dst) tie-break.
    """
    dsu = DisjointSet(graph.num_vertices)
    chosen: list[tuple[int, int, float]] = []
    total = 0.0
    for src, dst, weight in graph.unique_undirected_edges():
        if dsu.union(src, dst):
            chosen.append((src, dst, weight))
            total += weight
    return chosen, total


def connected_components(graph: CSRGraph) -> np.ndarray:
    """Component label per vertex (used by generator sanity tests)."""
    labels = np.full(graph.num_vertices, -1, dtype=np.int64)
    next_label = 0
    for start in range(graph.num_vertices):
        if labels[start] != -1:
            continue
        labels[start] = next_label
        queue = deque([start])
        while queue:
            v = queue.popleft()
            for u in graph.neighbors(v):
                if labels[u] == -1:
                    labels[u] = next_label
                    queue.append(int(u))
        next_label += 1
    return labels
