"""Compressed sparse row graph storage.

The accelerators in the paper stream adjacency data from DRAM through the
QPI link; CSR is the layout both the handcrafted designs it compares to
(FPGP, GraphOps) and the software counterparts use.  Edges are stored once
per direction: build with ``directed=False`` to symmetrize an edge list.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import InputError


class CSRGraph:
    """A weighted directed graph in compressed sparse row form.

    Parameters
    ----------
    num_vertices:
        Vertex ids are the integers ``0 .. num_vertices - 1``.
    edges:
        Iterable of ``(src, dst)`` or ``(src, dst, weight)`` tuples.  A
        missing weight defaults to 1.
    directed:
        When False every edge is inserted in both directions.
    """

    def __init__(
        self,
        num_vertices: int,
        edges: Iterable[tuple],
        directed: bool = True,
    ) -> None:
        if num_vertices < 0:
            raise InputError(f"num_vertices must be >= 0, got {num_vertices}")
        rows: list[int] = []
        cols: list[int] = []
        weights: list[float] = []
        for edge in edges:
            if len(edge) == 2:
                src, dst = edge
                weight = 1.0
            elif len(edge) == 3:
                src, dst, weight = edge
            else:
                raise InputError(f"edge must be (src, dst[, weight]), got {edge!r}")
            if not (0 <= src < num_vertices and 0 <= dst < num_vertices):
                raise InputError(
                    f"edge ({src}, {dst}) out of range for {num_vertices} vertices"
                )
            rows.append(src)
            cols.append(dst)
            weights.append(float(weight))
            if not directed and src != dst:
                rows.append(dst)
                cols.append(src)
                weights.append(float(weight))

        self.num_vertices = num_vertices
        self.num_edges = len(rows)
        order = np.lexsort((np.asarray(cols, dtype=np.int64),
                            np.asarray(rows, dtype=np.int64)))
        row_arr = np.asarray(rows, dtype=np.int64)[order]
        self.indices = np.asarray(cols, dtype=np.int64)[order]
        self.weights = np.asarray(weights, dtype=np.float64)[order]
        self.indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.add.at(self.indptr, row_arr + 1, 1)
        np.cumsum(self.indptr, out=self.indptr)

    # -- queries -----------------------------------------------------------

    def degree(self, v: int) -> int:
        """Out-degree of vertex ``v``."""
        return int(self.indptr[v + 1] - self.indptr[v])

    def neighbors(self, v: int) -> np.ndarray:
        """Array of the out-neighbours of ``v`` (view into CSR storage)."""
        return self.indices[self.indptr[v]:self.indptr[v + 1]]

    def neighbor_weights(self, v: int) -> np.ndarray:
        """Weights parallel to :meth:`neighbors`."""
        return self.weights[self.indptr[v]:self.indptr[v + 1]]

    def edge_list(self) -> Iterator[tuple[int, int, float]]:
        """Yield every stored ``(src, dst, weight)`` triple."""
        for v in range(self.num_vertices):
            lo, hi = self.indptr[v], self.indptr[v + 1]
            for k in range(lo, hi):
                yield v, int(self.indices[k]), float(self.weights[k])

    def unique_undirected_edges(self) -> list[tuple[int, int, float]]:
        """Each undirected edge once, as ``(min, max, weight)``, sorted by weight."""
        seen: dict[tuple[int, int], float] = {}
        for src, dst, weight in self.edge_list():
            key = (min(src, dst), max(src, dst))
            if key not in seen:
                seen[key] = weight
        return sorted(
            ((a, b, w) for (a, b), w in seen.items()),
            key=lambda e: (e[2], e[0], e[1]),
        )

    @property
    def average_degree(self) -> float:
        """Mean out-degree; road networks sit around 2-4."""
        if self.num_vertices == 0:
            return 0.0
        return self.num_edges / self.num_vertices

    # -- memory footprint (drives the timing models) ------------------------

    def adjacency_bytes(self, index_bytes: int = 8, weight_bytes: int = 8) -> int:
        """Bytes occupied by the CSR arrays, as streamed over QPI."""
        return (
            self.indptr.size * index_bytes
            + self.indices.size * index_bytes
            + self.weights.size * weight_bytes
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRGraph(num_vertices={self.num_vertices}, "
            f"num_edges={self.num_edges})"
        )
