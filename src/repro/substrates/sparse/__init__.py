"""Block-sparse matrix substrate for COOR-LU (BOTS sparselu structure)."""

from repro.substrates.sparse.block import (
    BlockSparseMatrix,
    lu_block_tasks,
    make_sparselu_instance,
    sparse_lu_reference,
)

__all__ = [
    "BlockSparseMatrix",
    "lu_block_tasks",
    "make_sparselu_instance",
    "sparse_lu_reference",
]
