"""Block-sparse matrices and the BOTS-style sparse LU factorization.

The paper's COOR-LU benchmark is the sparse LU kernel from the Barcelona
OpenMP Task Suite [17], coordinated with Kinetic-Dependence-Graph-style
rules [22].  A matrix is a grid of dense ``block_size x block_size`` blocks,
many of them absent; the factorization emits four task kinds over the block
grid (lu0, fwd, bdiv, bmod) whose dependences the rules enforce at runtime.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InputError


class BlockSparseMatrix:
    """A ``grid x grid`` array of optional dense blocks."""

    def __init__(self, grid: int, block_size: int) -> None:
        if grid < 1 or block_size < 1:
            raise InputError("grid and block_size must be positive")
        self.grid = grid
        self.block_size = block_size
        self._blocks: dict[tuple[int, int], np.ndarray] = {}

    def __contains__(self, key: tuple[int, int]) -> bool:
        return key in self._blocks

    def get(self, i: int, j: int) -> np.ndarray | None:
        return self._blocks.get((i, j))

    def set(self, i: int, j: int, block: np.ndarray) -> None:
        if block.shape != (self.block_size, self.block_size):
            raise InputError(
                f"block shape {block.shape} != "
                f"({self.block_size}, {self.block_size})"
            )
        if not (0 <= i < self.grid and 0 <= j < self.grid):
            raise InputError(f"block index ({i}, {j}) out of range")
        self._blocks[(i, j)] = np.array(block, dtype=np.float64)

    def ensure(self, i: int, j: int) -> np.ndarray:
        """Return block (i, j), allocating a zero block (fill-in) if absent."""
        block = self._blocks.get((i, j))
        if block is None:
            block = np.zeros((self.block_size, self.block_size))
            self.set(i, j, block)
        return self._blocks[(i, j)]

    @property
    def nonzero_blocks(self) -> list[tuple[int, int]]:
        return sorted(self._blocks)

    def copy(self) -> "BlockSparseMatrix":
        clone = BlockSparseMatrix(self.grid, self.block_size)
        for (i, j), block in self._blocks.items():
            clone.set(i, j, block)
        return clone

    def to_dense(self) -> np.ndarray:
        n = self.grid * self.block_size
        dense = np.zeros((n, n))
        s = self.block_size
        for (i, j), block in self._blocks.items():
            dense[i * s:(i + 1) * s, j * s:(j + 1) * s] = block
        return dense

    def total_bytes(self) -> int:
        """Bytes of dense block payload (feeds the bandwidth models)."""
        return len(self._blocks) * self.block_size * self.block_size * 8


def make_sparselu_instance(
    grid: int = 8,
    block_size: int = 8,
    density: float = 0.35,
    seed: int = 0,
) -> BlockSparseMatrix:
    """Generate a BOTS-like instance: full diagonal, random off-diagonals.

    Diagonal blocks are made strongly diagonally dominant so the unpivoted
    block LU used by BOTS is numerically stable.
    """
    if not 0.0 <= density <= 1.0:
        raise InputError(f"density must be in [0, 1], got {density}")
    rng = np.random.default_rng(seed)
    matrix = BlockSparseMatrix(grid, block_size)
    for i in range(grid):
        block = rng.standard_normal((block_size, block_size))
        block += np.eye(block_size) * (block_size * grid)
        matrix.set(i, i, block)
    for i in range(grid):
        for j in range(grid):
            if i != j and rng.random() < density:
                matrix.set(i, j, rng.standard_normal((block_size, block_size)))
    return matrix


# -- block kernels (the task bodies) -----------------------------------------

def lu0(diag: np.ndarray) -> None:
    """In-place unpivoted LU of a diagonal block (unit lower diagonal)."""
    n = diag.shape[0]
    for k in range(n):
        pivot = diag[k, k]
        if pivot == 0.0:
            raise InputError("zero pivot in lu0; instance not factorizable")
        diag[k + 1:, k] /= pivot
        diag[k + 1:, k + 1:] -= np.outer(diag[k + 1:, k], diag[k, k + 1:])


def fwd(diag: np.ndarray, row_block: np.ndarray) -> None:
    """Solve L * X = row_block in place (L unit lower from ``diag``)."""
    n = diag.shape[0]
    for k in range(n):
        row_block[k + 1:, :] -= np.outer(diag[k + 1:, k], row_block[k, :])


def bdiv(diag: np.ndarray, col_block: np.ndarray) -> None:
    """Solve X * U = col_block in place (U upper from ``diag``)."""
    n = diag.shape[0]
    for k in range(n):
        col_block[:, k] /= diag[k, k]
        col_block[:, k + 1:] -= np.outer(col_block[:, k], diag[k, k + 1:])


def bmod(row: np.ndarray, col: np.ndarray, inner: np.ndarray) -> None:
    """inner -= col @ row (the trailing update)."""
    inner -= col @ row


@dataclass(frozen=True)
class LUTask:
    """One node of the sparse LU task DAG."""

    kind: str  # "lu0" | "fwd" | "bdiv" | "bmod"
    k: int
    i: int
    j: int

    def reads(self) -> list[tuple[int, int]]:
        """Blocks this task reads (the coordinative rule's watch set)."""
        if self.kind == "lu0":
            return []
        if self.kind == "fwd":
            return [(self.k, self.k)]
        if self.kind == "bdiv":
            return [(self.k, self.k)]
        return [(self.k, self.j), (self.i, self.k)]

    def writes(self) -> tuple[int, int]:
        """The single block this task mutates."""
        if self.kind == "lu0":
            return (self.k, self.k)
        if self.kind == "fwd":
            return (self.k, self.j)
        if self.kind == "bdiv":
            return (self.i, self.k)
        return (self.i, self.j)


def lu_block_tasks(matrix: BlockSparseMatrix) -> list[LUTask]:
    """The sequential well-ordered task list for a given sparsity pattern.

    This enumerates tasks in BOTS order (outer k, then fwd row, bdiv column,
    then the bmod trailing updates); fill-in blocks created by bmod are
    accounted for by pre-computing the symbolic fill.
    """
    present: set[tuple[int, int]] = set(matrix.nonzero_blocks)
    tasks: list[LUTask] = []
    for k in range(matrix.grid):
        tasks.append(LUTask("lu0", k, k, k))
        for j in range(k + 1, matrix.grid):
            if (k, j) in present:
                tasks.append(LUTask("fwd", k, k, j))
        for i in range(k + 1, matrix.grid):
            if (i, k) in present:
                tasks.append(LUTask("bdiv", k, i, k))
        for i in range(k + 1, matrix.grid):
            if (i, k) not in present:
                continue
            for j in range(k + 1, matrix.grid):
                if (k, j) not in present:
                    continue
                tasks.append(LUTask("bmod", k, i, j))
                present.add((i, j))  # fill-in
    return tasks


def apply_lu_task(matrix: BlockSparseMatrix, task: LUTask) -> None:
    """Execute one block kernel against the matrix (shared by all runtimes)."""
    if task.kind == "lu0":
        lu0(matrix.ensure(task.k, task.k))
    elif task.kind == "fwd":
        fwd(matrix.get(task.k, task.k), matrix.ensure(task.k, task.j))
    elif task.kind == "bdiv":
        bdiv(matrix.get(task.k, task.k), matrix.ensure(task.i, task.k))
    elif task.kind == "bmod":
        bmod(
            matrix.get(task.k, task.j),
            matrix.get(task.i, task.k),
            matrix.ensure(task.i, task.j),
        )
    else:
        raise InputError(f"unknown LU task kind {task.kind!r}")


def sparse_lu_reference(matrix: BlockSparseMatrix) -> BlockSparseMatrix:
    """Sequential sparse LU (oracle): returns the factored copy."""
    result = matrix.copy()
    for task in lu_block_tasks(matrix):
        apply_lu_task(result, task)
    return result


def lu_residual(original: BlockSparseMatrix, factored: BlockSparseMatrix) -> float:
    """Relative Frobenius residual || L @ U - A || / || A ||.

    L is unit-lower / U upper, both packed into the factored blocks.
    """
    dense = factored.to_dense()
    lower = np.tril(dense, k=-1) + np.eye(dense.shape[0])
    upper = np.triu(dense)
    a = original.to_dense()
    denom = np.linalg.norm(a)
    if denom == 0.0:
        return 0.0
    return float(np.linalg.norm(lower @ upper - a) / denom)
