"""Disjoint-set union (union-find) with path compression and union by rank.

Used by the MST substrate both as the speculative accelerator's committed
state and as the oracle for Kruskal's algorithm.
"""

from __future__ import annotations


class DisjointSet:
    """Classic union-find over the integers ``0 .. n-1``.

    >>> dsu = DisjointSet(4)
    >>> dsu.union(0, 1)
    True
    >>> dsu.union(1, 0)
    False
    >>> dsu.connected(0, 1)
    True
    """

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"size must be non-negative, got {n}")
        self._parent = list(range(n))
        self._rank = [0] * n
        self._components = n

    def __len__(self) -> int:
        return len(self._parent)

    @property
    def components(self) -> int:
        """Number of disjoint components currently in the structure."""
        return self._components

    def find(self, x: int) -> int:
        """Return the canonical representative of ``x``'s component."""
        root = x
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[x] != root:  # path compression
            self._parent[x], x = root, self._parent[x]
        return root

    def connected(self, a: int, b: int) -> bool:
        """True if ``a`` and ``b`` are in the same component."""
        return self.find(a) == self.find(b)

    def union(self, a: int, b: int) -> bool:
        """Merge the components of ``a`` and ``b``.

        Returns True if a merge happened, False if they were already joined.
        """
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        self._components -= 1
        return True

    def snapshot(self) -> list[int]:
        """Return the current root of every element (for conflict checks)."""
        return [self.find(i) for i in range(len(self._parent))]
