"""Triangular mesh substrate for Delaunay mesh refinement (SPEC-DMR)."""

from repro.substrates.mesh.geometry import incircle, orient2d, triangle_min_angle
from repro.substrates.mesh.delaunay import Mesh, triangulate
from repro.substrates.mesh.refinement import (
    bad_triangles,
    cavity_of,
    random_points,
    refine_mesh,
    retriangulate_cavity,
)

__all__ = [
    "incircle",
    "orient2d",
    "triangle_min_angle",
    "Mesh",
    "triangulate",
    "bad_triangles",
    "cavity_of",
    "random_points",
    "refine_mesh",
    "retriangulate_cavity",
]
