"""Incremental (Bowyer-Watson) Delaunay triangulation.

The mesh keeps stable integer triangle ids: refinement tasks in SPEC-DMR
carry a triangle id, and a task whose triangle has since been destroyed by a
conflicting refinement must be squashed — exactly the rule the paper states
("if a bad triangle doesn't overlap with others anymore, its corresponding
task is squashed").
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import InputError
from repro.substrates.mesh.geometry import Point, incircle, orient2d

Edge = tuple[int, int]


def _edge_key(a: int, b: int) -> Edge:
    return (a, b) if a < b else (b, a)


class Mesh:
    """A triangulation over a fixed, growable list of points.

    Triangles are stored CCW under stable ids.  An edge-to-triangles map
    supports O(1) adjacency walks (needed by cavity expansion).
    """

    def __init__(self, points: list[Point]) -> None:
        self.points: list[Point] = list(points)
        self.triangles: dict[int, tuple[int, int, int]] = {}
        self._edge_map: dict[Edge, set[int]] = {}
        self._next_id = 0

    # -- construction --------------------------------------------------------

    def add_point(self, p: Point) -> int:
        """Append a point; returns its index."""
        self.points.append(p)
        return len(self.points) - 1

    def add_triangle(self, a: int, b: int, c: int) -> int:
        """Insert triangle ``abc`` (normalized to CCW); returns its id."""
        area = orient2d(self.points[a], self.points[b], self.points[c])
        if area == 0.0:
            raise InputError(f"triangle ({a}, {b}, {c}) is degenerate")
        if area < 0.0:
            b, c = c, b
        tri_id = self._next_id
        self._next_id += 1
        self.triangles[tri_id] = (a, b, c)
        for edge in self._edges_of((a, b, c)):
            self._edge_map.setdefault(edge, set()).add(tri_id)
        return tri_id

    def remove_triangle(self, tri_id: int) -> None:
        """Delete a triangle by id."""
        verts = self.triangles.pop(tri_id)
        for edge in self._edges_of(verts):
            owners = self._edge_map[edge]
            owners.discard(tri_id)
            if not owners:
                del self._edge_map[edge]

    @staticmethod
    def _edges_of(verts: tuple[int, int, int]) -> Iterator[Edge]:
        a, b, c = verts
        yield _edge_key(a, b)
        yield _edge_key(b, c)
        yield _edge_key(c, a)

    # -- queries --------------------------------------------------------------

    def __contains__(self, tri_id: int) -> bool:
        return tri_id in self.triangles

    def vertices_of(self, tri_id: int) -> tuple[Point, Point, Point]:
        a, b, c = self.triangles[tri_id]
        return self.points[a], self.points[b], self.points[c]

    def neighbors_of(self, tri_id: int) -> set[int]:
        """Triangles sharing an edge with ``tri_id``."""
        result: set[int] = set()
        for edge in self._edges_of(self.triangles[tri_id]):
            result |= self._edge_map.get(edge, set())
        result.discard(tri_id)
        return result

    def edge_triangles(self, a: int, b: int) -> set[int]:
        return set(self._edge_map.get(_edge_key(a, b), set()))

    def in_circumcircle(self, tri_id: int, p: Point) -> bool:
        """True when ``p`` is strictly inside ``tri_id``'s circumcircle."""
        a, b, c = self.vertices_of(tri_id)
        return incircle(a, b, c, p) > 0.0

    def is_valid_triangulation(self) -> bool:
        """Structural check: every interior edge is shared by <= 2 triangles
        and every triangle is CCW and non-degenerate.
        """
        for owners in self._edge_map.values():
            if len(owners) > 2:
                return False
        for verts in self.triangles.values():
            a, b, c = (self.points[v] for v in verts)
            if orient2d(a, b, c) <= 0.0:
                return False
        return True

    def is_delaunay(self, tolerance: float = 1e-9) -> bool:
        """Empty-circumcircle property over all triangle/vertex pairs.

        Quadratic — intended for test-sized meshes only.
        """
        vertex_ids = {v for verts in self.triangles.values() for v in verts}
        for tri_id, verts in self.triangles.items():
            a, b, c = (self.points[v] for v in verts)
            for v in vertex_ids:
                if v in verts:
                    continue
                if incircle(a, b, c, self.points[v]) > tolerance:
                    return False
        return True


def triangulate(points: Iterable[Point]) -> Mesh:
    """Bowyer-Watson Delaunay triangulation of ``points``.

    A super-triangle enclosing all input points anchors the incremental
    insertion; its vertices and incident triangles are removed at the end, so
    the result triangulates the convex hull interior of the input.
    """
    pts = list(points)
    if len(pts) < 3:
        raise InputError(f"triangulation needs >= 3 points, got {len(pts)}")

    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    span = max(max(xs) - min(xs), max(ys) - min(ys), 1.0)
    cx = (max(xs) + min(xs)) / 2.0
    cy = (max(ys) + min(ys)) / 2.0

    mesh = Mesh(pts)
    s0 = mesh.add_point((cx - 40.0 * span, cy - 40.0 * span))
    s1 = mesh.add_point((cx + 40.0 * span, cy - 40.0 * span))
    s2 = mesh.add_point((cx, cy + 40.0 * span))
    super_ids = {s0, s1, s2}
    mesh.add_triangle(s0, s1, s2)

    for point_id in range(len(pts)):
        if _insert_point(mesh, point_id) is None:
            raise InputError(
                f"point {point_id} produced a degenerate cavity; "
                "jitter the input points"
            )

    doomed = [
        tri_id
        for tri_id, verts in mesh.triangles.items()
        if super_ids & set(verts)
    ]
    for tri_id in doomed:
        mesh.remove_triangle(tri_id)
    return mesh


_DEGENERACY_EPS = 1e-13


def _insert_point(
    mesh: Mesh, point_id: int, cavity: list[int] | None = None
) -> list[int] | None:
    """Insert one existing mesh point into the triangulation.

    Returns the ids of the triangles created, ``[]`` when the point fell
    outside every circumcircle, or None when insertion would create a
    degenerate triangle (the cavity is left untouched in that case — callers
    performing refinement simply skip such circumcenters).

    ``cavity``, when given, is the precomputed list of triangles whose
    circumcircle contains the point (refinement already walked it); omitting
    it falls back to a full scan, which initial triangulation uses since it
    has no locality hint.
    """
    p = mesh.points[point_id]
    if cavity is not None:
        bad = [tri_id for tri_id in cavity if tri_id in mesh.triangles]
    else:
        bad = [
            tri_id for tri_id in mesh.triangles
            if mesh.in_circumcircle(tri_id, p)
        ]
    if not bad:
        # Point outside all circumcircles (e.g. on the hull after the super
        # triangle is gone); nothing to do.
        return []

    # Cavity boundary: edges owned by exactly one bad triangle.
    edge_count: dict[Edge, int] = {}
    edge_dir: dict[Edge, tuple[int, int]] = {}
    for tri_id in bad:
        a, b, c = mesh.triangles[tri_id]
        for u, v in ((a, b), (b, c), (c, a)):
            key = _edge_key(u, v)
            edge_count[key] = edge_count.get(key, 0) + 1
            edge_dir[key] = (u, v)
    boundary = [edge_dir[key] for key, count in edge_count.items() if count == 1]

    # Validate before mutating: each boundary edge (u, v) is stored in the
    # winding of its CCW owner triangle, so a point interior to the cavity
    # must see every edge with positive orientation.  Anything else (the
    # point is outside the cavity, or collinear with an edge) would create a
    # flipped or degenerate triangle — refuse and leave the mesh intact.
    for u, v in boundary:
        if orient2d(mesh.points[u], mesh.points[v], p) < _DEGENERACY_EPS:
            return None

    for tri_id in bad:
        mesh.remove_triangle(tri_id)
    created = []
    for u, v in boundary:
        created.append(mesh.add_triangle(u, v, point_id))
    return created
