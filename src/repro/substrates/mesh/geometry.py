"""2-D geometric predicates for Delaunay triangulation and refinement.

Predicates are evaluated as floating-point determinants.  For the synthetic
point sets this library generates (random points jittered away from exact
degeneracies) this is robust in practice; the generator adds deterministic
jitter so co-circular quadruples do not occur.
"""

from __future__ import annotations

import math

Point = tuple[float, float]


def orient2d(a: Point, b: Point, c: Point) -> float:
    """Twice the signed area of triangle ``abc``.

    Positive when ``a, b, c`` wind counter-clockwise, negative when
    clockwise, zero when collinear.
    """
    return (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0])


def incircle(a: Point, b: Point, c: Point, d: Point) -> float:
    """Positive when ``d`` lies strictly inside the circumcircle of ``abc``.

    ``abc`` must wind counter-clockwise; the caller is responsible for
    orientation (``triangulate`` normalizes all triangles CCW).
    """
    adx, ady = a[0] - d[0], a[1] - d[1]
    bdx, bdy = b[0] - d[0], b[1] - d[1]
    cdx, cdy = c[0] - d[0], c[1] - d[1]
    ad = adx * adx + ady * ady
    bd = bdx * bdx + bdy * bdy
    cd = cdx * cdx + cdy * cdy
    return (
        adx * (bdy * cd - bd * cdy)
        - ady * (bdx * cd - bd * cdx)
        + ad * (bdx * cdy - bdy * cdx)
    )


def circumcenter(a: Point, b: Point, c: Point) -> Point:
    """Circumcenter of triangle ``abc`` (assumes non-degenerate)."""
    d = 2.0 * (a[0] * (b[1] - c[1]) + b[0] * (c[1] - a[1]) + c[0] * (a[1] - b[1]))
    if d == 0.0:
        raise ValueError("degenerate triangle has no circumcenter")
    a2 = a[0] * a[0] + a[1] * a[1]
    b2 = b[0] * b[0] + b[1] * b[1]
    c2 = c[0] * c[0] + c[1] * c[1]
    ux = (a2 * (b[1] - c[1]) + b2 * (c[1] - a[1]) + c2 * (a[1] - b[1])) / d
    uy = (a2 * (c[0] - b[0]) + b2 * (a[0] - c[0]) + c2 * (b[0] - a[0])) / d
    return (ux, uy)


def triangle_min_angle(a: Point, b: Point, c: Point) -> float:
    """Smallest interior angle of ``abc`` in degrees.

    Delaunay mesh refinement labels a triangle *bad* when this falls below a
    quality threshold (the paper follows Kulkarni et al. [33], who use the
    classic ~30 degree bound).
    """
    def side(p: Point, q: Point) -> float:
        return math.hypot(p[0] - q[0], p[1] - q[1])

    la, lb, lc = side(b, c), side(c, a), side(a, b)
    if min(la, lb, lc) == 0.0:
        return 0.0

    def angle(opposite: float, s1: float, s2: float) -> float:
        cos_val = (s1 * s1 + s2 * s2 - opposite * opposite) / (2.0 * s1 * s2)
        return math.degrees(math.acos(max(-1.0, min(1.0, cos_val))))

    return min(angle(la, lb, lc), angle(lb, lc, la), angle(lc, la, lb))
