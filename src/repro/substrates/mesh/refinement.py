"""Delaunay mesh refinement primitives (the SPEC-DMR workload).

Refinement repeatedly picks a *bad* triangle (min angle below a quality
bound), collects the *cavity* of triangles whose circumcircle contains the
bad triangle's circumcenter, and retriangulates the cavity around the newly
inserted circumcenter.  Two refinements conflict exactly when their cavities
share a triangle — the conflict the paper's DMR rule detects at runtime.
"""

from __future__ import annotations

import math

import numpy as np

from repro.substrates.mesh.delaunay import Mesh, _insert_point, triangulate
from repro.substrates.mesh.geometry import (
    Point,
    circumcenter,
    triangle_min_angle,
)

DEFAULT_MIN_ANGLE = 25.0


def random_points(n: int, seed: int = 0, jitter: float = 1e-3) -> list[Point]:
    """Deterministic pseudo-random points in the unit square.

    A small deterministic jitter keeps quadruples off exact co-circularity so
    float predicates stay reliable.
    """
    rng = np.random.default_rng(seed)
    raw = rng.random((n, 2))
    return [
        (float(x + jitter * math.sin(97.0 * i)),
         float(y + jitter * math.cos(53.0 * i)))
        for i, (x, y) in enumerate(raw)
    ]


def is_bad(mesh: Mesh, tri_id: int, min_angle: float = DEFAULT_MIN_ANGLE) -> bool:
    """True when the triangle's smallest angle is below ``min_angle`` degrees."""
    a, b, c = mesh.vertices_of(tri_id)
    return triangle_min_angle(a, b, c) < min_angle


def bad_triangles(mesh: Mesh, min_angle: float = DEFAULT_MIN_ANGLE) -> list[int]:
    """Ids of all current bad triangles (the initial DMR workset)."""
    return [t for t in mesh.triangles if is_bad(mesh, t, min_angle)]


def cavity_of(mesh: Mesh, tri_id: int) -> tuple[Point, list[int]]:
    """Circumcenter of ``tri_id`` and the ids of the cavity triangles.

    The cavity is grown by adjacency from the bad triangle: a neighbour
    joins when the circumcenter lies inside its circumcircle.  This is the
    per-task read set a DMR task declares to the rule engine.
    """
    center = circumcenter(*mesh.vertices_of(tri_id))
    cavity = {tri_id}
    frontier = [tri_id]
    while frontier:
        current = frontier.pop()
        for neighbor in mesh.neighbors_of(current):
            if neighbor in cavity:
                continue
            if mesh.in_circumcircle(neighbor, center):
                cavity.add(neighbor)
                frontier.append(neighbor)
    return center, sorted(cavity)


def retriangulate_cavity(
    mesh: Mesh, center: Point, cavity: list[int] | None = None
) -> list[int] | None:
    """Insert ``center`` as a new mesh point, retriangulating its cavity.

    Returns the ids of the triangles created, or None when the insertion
    would be degenerate (the mesh is left unmodified and the caller should
    skip this circumcenter).  Bowyer-Watson insertion removes exactly the
    cavity triangles, so this *is* the DMR commit operation.  Passing the
    ``cavity`` already computed by :func:`cavity_of` avoids a full-mesh scan.
    """
    point_id = mesh.add_point(center)
    created = _insert_point(mesh, point_id, cavity)
    if created is None:
        # Insertion refused: remove the orphaned point again (it is the
        # last one and nothing references it).
        mesh.points.pop()
        return None
    return created


def refine_mesh(
    mesh: Mesh,
    min_angle: float = DEFAULT_MIN_ANGLE,
    max_insertions: int = 10000,
) -> int:
    """Sequential reference refinement (oracle for SPEC-DMR).

    Processes bad triangles until none remain or ``max_insertions`` points
    have been added.  Returns the number of inserted points.
    """
    inserted = 0
    worklist = bad_triangles(mesh, min_angle)
    while worklist and inserted < max_insertions:
        tri_id = worklist.pop()
        if tri_id not in mesh:
            continue
        if not is_bad(mesh, tri_id, min_angle):
            continue
        center, cavity = cavity_of(mesh, tri_id)
        if not _center_in_bounds(mesh, center):
            # Skip encroaching circumcenters outside the point cloud's hull;
            # a full Ruppert implementation would split boundary segments
            # instead.  Termination still holds for interior refinement.
            continue
        created = retriangulate_cavity(mesh, center, cavity)
        if created is None:
            continue
        inserted += 1
        worklist.extend(t for t in created if is_bad(mesh, t, min_angle))
    return inserted


def _center_in_bounds(mesh: Mesh, center: Point) -> bool:
    """Conservative hull test: is the circumcenter inside any triangle's
    bounding region?  We use the cheap test of lying within the mesh's
    bounding box shrunk by nothing — adequate for unit-square point clouds.
    """
    xs = [p[0] for p in mesh.points]
    ys = [p[1] for p in mesh.points]
    return min(xs) <= center[0] <= max(xs) and min(ys) <= center[1] <= max(ys)


def remaining_bad_fraction(
    mesh: Mesh, min_angle: float = DEFAULT_MIN_ANGLE
) -> float:
    """Fraction of triangles still bad (refinement progress metric)."""
    if not mesh.triangles:
        return 0.0
    return len(bad_triangles(mesh, min_angle)) / len(mesh.triangles)


def make_refinement_instance(
    n_points: int, seed: int = 0
) -> tuple[Mesh, list[int]]:
    """Convenience: triangulated random cloud plus its initial bad worklist."""
    mesh = triangulate(random_points(n_points, seed))
    return mesh, bad_triangles(mesh)
