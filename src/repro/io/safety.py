"""Crash-safe file primitives: locks, durable appends, tolerant reads.

The JSONL stores (result cache, run store, sweep journal) share three
failure modes this module defends against:

* **Interleaved appends** from concurrent writers (a parallel sweep, a
  future HTTP daemon) — solved by an advisory :class:`FileLock` held for
  the duration of each append or rewrite.
* **Torn writes** — a writer killed mid-append leaves a partial final
  line.  :func:`append_line` writes each record as a single buffered
  write, flushes and fsyncs before releasing the lock, and *heals* a
  torn trailing line (no final newline) before appending so one crash
  can never corrupt the next writer's record.  :func:`read_jsonl` skips
  any line that does not parse, warning with the file and line number.
* **Stale locks** — a lock left by a crashed or wedged holder.  In
  ``flock`` mode the kernel releases a dead holder's lock automatically;
  in ``softlock`` mode (no :mod:`fcntl`) acquisition detects a dead
  holder pid or an over-age lock and breaks it with a warning.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path

try:  # POSIX advisory locks; gated so non-POSIX hosts fall back cleanly
    import fcntl
except ImportError:  # pragma: no cover - exercised via mode="softlock"
    fcntl = None

LOCK_SUFFIX = ".lock"
DEFAULT_TIMEOUT = 30.0
DEFAULT_STALE_AFTER = 120.0


@dataclass
class LockTelemetry:
    """Process-wide counters for every :class:`FileLock` acquisition.

    Contention is otherwise invisible: a sweep that spends half its wall
    time queueing on the cache lock looks identical to one that never
    waits.  The accumulator lives here (not in ``obs``) so the io layer
    stays dependency-free; consumers snapshot/delta it around a sweep.
    """

    acquires: int = 0
    contended: int = 0           # acquisitions that did not succeed first try
    wait_seconds: float = 0.0    # total time spent inside acquire()
    max_wait_seconds: float = 0.0
    stale_broken: int = 0
    timeouts: int = 0

    def snapshot(self) -> dict:
        return {
            "acquires": self.acquires,
            "contended": self.contended,
            "wait_seconds": round(self.wait_seconds, 6),
            "max_wait_seconds": round(self.max_wait_seconds, 6),
            "stale_broken": self.stale_broken,
            "timeouts": self.timeouts,
        }


LOCK_TELEMETRY = LockTelemetry()


def lock_telemetry_snapshot() -> dict:
    """Current process-wide lock counters as a plain dict."""
    return LOCK_TELEMETRY.snapshot()


def lock_telemetry_delta(base: dict) -> dict:
    """Counters accumulated since ``base`` (an earlier snapshot)."""
    now = LOCK_TELEMETRY.snapshot()
    delta = {k: now[k] - base.get(k, 0) for k in now}
    delta["wait_seconds"] = round(delta["wait_seconds"], 6)
    # max is not a counter; report the current high-water mark instead.
    delta["max_wait_seconds"] = now["max_wait_seconds"]
    return delta


def reset_lock_telemetry() -> None:
    LOCK_TELEMETRY.__init__()


class LockTimeoutError(TimeoutError):
    """A :class:`FileLock` could not be acquired within its timeout."""


class CorruptLineWarning(UserWarning):
    """A JSONL line was unreadable (torn write / corruption) and skipped."""


class StaleLockWarning(UserWarning):
    """A lock left behind by a dead or wedged holder was broken."""


def pid_alive(pid) -> bool:
    """Best-effort liveness probe for a holder pid (signal 0)."""
    if not isinstance(pid, int) or pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # alive, owned by someone else
        return True
    except OSError:
        return False
    return True


class FileLock:
    """Advisory exclusive lock guarding one data file.

    The lock is a sidecar ``<target>.lock`` file recording its holder
    (pid + wall-clock acquisition time).  Two mechanisms, chosen by
    ``mode``:

    * ``"flock"`` (the default wherever :mod:`fcntl` exists) — kernel
      advisory ``flock`` on the sidecar.  A holder that dies releases
      the lock automatically, so a stale *lock* is impossible; only the
      holder info in the sidecar can go stale, which is harmless.
    * ``"softlock"`` — O_EXCL lockfile creation, for platforms without
      :mod:`fcntl`.  A crashed holder leaves the lockfile behind;
      acquisition detects staleness (holder pid dead, or lock older
      than ``stale_after`` seconds) and breaks it with a
      :class:`StaleLockWarning` instead of deadlocking.

    Not reentrant — keep critical sections short.
    """

    def __init__(
        self,
        target: str | Path,
        timeout: float = DEFAULT_TIMEOUT,
        stale_after: float = DEFAULT_STALE_AFTER,
        poll: float = 0.02,
        mode: str = "auto",
    ) -> None:
        self.target = Path(target)
        self.lock_path = Path(str(target) + LOCK_SUFFIX)
        self.timeout = timeout
        self.stale_after = stale_after
        self.poll = poll
        if mode == "auto":
            mode = "flock" if fcntl is not None else "softlock"
        if mode not in ("flock", "softlock"):
            raise ValueError(f"unknown lock mode {mode!r}")
        if mode == "flock" and fcntl is None:
            raise ValueError("flock mode requires the fcntl module")
        self.mode = mode
        self.broke_stale = 0
        self._fd: int | None = None

    # -- holder info ----------------------------------------------------------

    def holder(self) -> dict:
        """Whatever the sidecar says about the current/last holder."""
        try:
            with open(self.lock_path, "r", encoding="utf-8") as handle:
                data = json.loads(handle.read() or "{}")
        except (OSError, ValueError):
            return {}
        return data if isinstance(data, dict) else {}

    def _stamp(self, fd: int) -> None:
        info = json.dumps(
            {"pid": os.getpid(), "time": time.time(), "mode": self.mode}
        )
        os.ftruncate(fd, 0)
        os.lseek(fd, 0, os.SEEK_SET)
        os.write(fd, info.encode())

    # -- acquisition ----------------------------------------------------------

    def acquire(self) -> "FileLock":
        start = time.monotonic()
        deadline = start + self.timeout
        first_try = True
        while True:
            if self._try_acquire():
                waited = time.monotonic() - start
                LOCK_TELEMETRY.acquires += 1
                LOCK_TELEMETRY.wait_seconds += waited
                if waited > LOCK_TELEMETRY.max_wait_seconds:
                    LOCK_TELEMETRY.max_wait_seconds = waited
                if not first_try:
                    LOCK_TELEMETRY.contended += 1
                return self
            first_try = False
            if self._break_if_stale():
                LOCK_TELEMETRY.stale_broken += 1
                continue
            if time.monotonic() >= deadline:
                holder = self.holder()
                LOCK_TELEMETRY.timeouts += 1
                raise LockTimeoutError(
                    f"could not lock {self.target} within "
                    f"{self.timeout:g}s (held by pid "
                    f"{holder.get('pid', '?')})"
                )
            time.sleep(self.poll)

    def _try_acquire(self) -> bool:
        self.lock_path.parent.mkdir(parents=True, exist_ok=True)
        if self.mode == "flock":
            fd = os.open(self.lock_path, os.O_RDWR | os.O_CREAT, 0o644)
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                os.close(fd)
                return False
            self._fd = fd
            self._stamp(fd)
            return True
        try:
            fd = os.open(
                self.lock_path, os.O_RDWR | os.O_CREAT | os.O_EXCL, 0o644
            )
        except FileExistsError:
            return False
        except OSError:
            return False
        self._fd = fd
        self._stamp(fd)
        return True

    def _break_if_stale(self) -> bool:
        """Remove a softlock whose holder died or wedged; True if broken."""
        if self.mode == "flock":
            # The kernel already released any dead holder's flock; an
            # unacquirable lock means a live process holds it.
            return False
        holder = self.holder()
        pid = holder.get("pid")
        held = holder.get("time")
        age = None
        if isinstance(held, (int, float)):
            age = time.time() - held
        else:
            try:
                age = time.time() - self.lock_path.stat().st_mtime
            except OSError:
                return False  # vanished: the holder released it, retry
        dead = pid is not None and not pid_alive(pid)
        wedged = age is not None and age > self.stale_after
        if not dead and not wedged:
            return False
        why = (f"holder pid {pid} is dead" if dead
               else f"lock is {age:.0f}s old (> {self.stale_after:g}s)")
        warnings.warn(
            f"breaking stale lock {self.lock_path}: {why}",
            StaleLockWarning,
            stacklevel=3,
        )
        try:
            self.lock_path.unlink()
        except OSError:
            pass  # a racing breaker got there first
        self.broke_stale += 1
        return True

    # -- release --------------------------------------------------------------

    def release(self) -> None:
        fd, self._fd = self._fd, None
        if fd is None:
            return
        if self.mode == "flock":
            try:
                fcntl.flock(fd, fcntl.LOCK_UN)
            finally:
                os.close(fd)
        else:
            os.close(fd)
            try:
                self.lock_path.unlink()
            except OSError:
                pass

    def __enter__(self) -> "FileLock":
        return self.acquire()

    def __exit__(self, *exc) -> None:
        self.release()


# ---------------------------------------------------------------------------
# Durable appends and atomic replace
# ---------------------------------------------------------------------------


def _heal_torn_tail(handle) -> bool:
    """If the file's last byte is not a newline (a previous writer died
    mid-append), terminate the torn line so this append starts clean.
    Returns True when healing happened.  Caller holds the lock."""
    handle.flush()
    fd = handle.fileno()
    size = os.fstat(fd).st_size
    if size == 0:
        return False
    if os.pread(fd, 1, size - 1) == b"\n":
        return False
    handle.write("\n")
    return True


def append_line(
    path: str | Path,
    text: str,
    *,
    timeout: float = DEFAULT_TIMEOUT,
    lock: bool = True,
    fsync: bool = True,
) -> None:
    """Durably append one line: a single write + flush + fsync under the
    file's advisory lock.

    ``lock=False`` skips locking for callers already holding the
    :class:`FileLock` for ``path`` (e.g. a read-modify-write section).
    A torn trailing line from an earlier crash is newline-terminated
    before the append so the new record cannot glue onto it.
    """
    path = Path(path)
    guard = FileLock(path, timeout=timeout) if lock else None
    if guard is not None:
        guard.acquire()
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "a+", encoding="utf-8") as handle:
            _heal_torn_tail(handle)
            handle.write(text if text.endswith("\n") else text + "\n")
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
    finally:
        if guard is not None:
            guard.release()


def replace_file(path: str | Path, text: str) -> None:
    """Atomically replace ``path``'s contents: tmp + fsync + rename,
    then fsync the directory so the rename itself is durable."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.tmp.{os.getpid()}")
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        try:
            tmp.unlink()
        except OSError:
            pass
    if hasattr(os, "O_DIRECTORY"):
        try:
            dfd = os.open(path.parent, os.O_DIRECTORY)
        except OSError:
            return
        try:
            os.fsync(dfd)
        except OSError:
            pass
        finally:
            os.close(dfd)


# ---------------------------------------------------------------------------
# Torn-write-tolerant JSONL reading
# ---------------------------------------------------------------------------


@dataclass
class JsonlRead:
    """What :func:`read_jsonl` found: parsed rows plus damage report."""

    rows: list[tuple[int, dict]] = field(default_factory=list)
    skipped: list[int] = field(default_factory=list)  # 1-based line numbers
    lines: int = 0
    missing: bool = False

    @property
    def dicts(self) -> list[dict]:
        return [data for _, data in self.rows]


def read_jsonl(path: str | Path, *, warn: bool = True) -> JsonlRead:
    """Parse a JSONL file, tolerating torn and corrupt lines.

    Every line that fails to parse as a JSON object — including a torn
    trailing line from a writer killed mid-append — is skipped and
    recorded in ``skipped``; with ``warn`` a :class:`CorruptLineWarning`
    names the file and line number.  Never raises on content.
    """
    path = Path(path)
    result = JsonlRead()
    if not path.exists():
        result.missing = True
        return result
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        for lineno, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            result.lines += 1
            try:
                data = json.loads(stripped)
            except json.JSONDecodeError:
                data = None
            if not isinstance(data, dict):
                result.skipped.append(lineno)
                if warn:
                    warnings.warn(
                        f"{path}:{lineno}: skipping corrupt JSONL line "
                        f"({stripped[:40]!r}...)",
                        CorruptLineWarning,
                        stacklevel=2,
                    )
                continue
            result.rows.append((lineno, data))
    return result
