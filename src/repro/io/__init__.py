"""Crash-safe storage primitives shared by the exec/obs JSONL stores.

Everything that persists across a crash in this repo is a JSONL file
(the result cache, the run store, the sweep journal).  This package is
the one place that knows how to write those files so a crash — of this
process, of a pool worker, of a concurrent writer — never loses or
corrupts a committed record:

* :class:`~repro.io.safety.FileLock` — advisory exclusive locks
  (``fcntl.flock`` where available, O_EXCL lockfiles elsewhere) with
  stale-lock detection and breaking;
* :func:`~repro.io.safety.append_line` — durable appends (single write
  + flush + fsync under the lock, healing a torn trailing line first);
* :func:`~repro.io.safety.replace_file` — atomic whole-file replace
  (tmp + fsync + rename + directory fsync), the compaction primitive;
* :func:`~repro.io.safety.read_jsonl` — a torn-write-tolerant reader
  that skips corrupt lines with a :class:`~repro.io.safety.CorruptLineWarning`
  naming the file and line number, never raising.

See docs/robustness.md for the exact guarantees.
"""

from repro.io.safety import (
    CorruptLineWarning,
    FileLock,
    JsonlRead,
    LockTelemetry,
    LockTimeoutError,
    StaleLockWarning,
    append_line,
    lock_telemetry_delta,
    lock_telemetry_snapshot,
    pid_alive,
    read_jsonl,
    replace_file,
    reset_lock_telemetry,
)

__all__ = [
    "CorruptLineWarning",
    "FileLock",
    "JsonlRead",
    "LockTelemetry",
    "LockTimeoutError",
    "StaleLockWarning",
    "append_line",
    "lock_telemetry_delta",
    "lock_telemetry_snapshot",
    "pid_alive",
    "read_jsonl",
    "replace_file",
    "reset_lock_telemetry",
]
