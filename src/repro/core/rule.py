"""Rules: promises evaluated against runtime state (Definition 4.4).

A *rule* is created by a parent task with bound parameters; it observes
events broadcast by the runtime (or the FPGA event bus) and eventually
returns a boolean to its creator, which blocks at a planned *rendezvous*
until the value arrives.  The obligatory ``otherwise`` clause fires when the
parent is the minimum task among all tasks waiting at the rendezvous — the
liveliness guarantee of Section 4.2.1.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.core.events import Event, EventKind
from repro.core.indexing import TaskIndex
from repro.errors import SchedulingError


@dataclass(frozen=True, slots=True)
class EventPattern:
    """One event alternative an ON clause listens for."""

    kind: EventKind
    task_set: str
    label: str

    def matches(self, event: Event) -> bool:
        return event.matches(self.kind, self.task_set, self.label)


Condition = Callable[[Event, Mapping[str, Any]], Any]


@dataclass(frozen=True, slots=True)
class ClauseSpec:
    """A compiled ON/IF/DO clause."""

    patterns: tuple[EventPattern, ...]
    condition: Condition | None
    action: tuple[str, Any]  # ("return", bool) | ("satisfy", flag)

    def triggered_by(self, event: Event) -> bool:
        return any(p.matches(event) for p in self.patterns)

    def condition_holds(self, event: Event, params: Mapping[str, Any]) -> bool:
        if self.condition is None:
            return True
        return bool(self.condition(event, params))


@dataclass(frozen=True)
class RuleType:
    """A compiled rule: the static artifact shared by every instance.

    On FPGA one rule type becomes one rule engine; instances occupy lanes.
    """

    name: str
    params: tuple[str, ...]
    requires: tuple[str, ...]
    clauses: tuple[ClauseSpec, ...]
    otherwise: bool
    # Resolve the promise the moment the parent reaches the rendezvous
    # (optimistic speculation; see the ECA grammar's "otherwise immediately").
    immediate: bool = False
    # Original DSL text when compiled from source (diagnostics, CLI).
    source: str = ""

    def instantiate(
        self, parent_index: TaskIndex, arguments: Mapping[str, Any]
    ) -> "RuleInstance":
        """Bind parameters for a parent task (the AllocRule operation).

        The parameter named ``my_index`` is bound implicitly to the parent
        task's well-order index — every published implementation indexes
        the creator in the rule constructor (Section 4.2.1), so the
        framework provides it rather than making each kernel thread it
        through.
        """
        arguments = dict(arguments)
        if "my_index" in self.params and "my_index" not in arguments:
            arguments["my_index"] = parent_index
        missing = set(self.params) - set(arguments)
        extra = set(arguments) - set(self.params)
        if missing or extra:
            raise SchedulingError(
                f"rule {self.name!r} instantiated with wrong arguments: "
                f"missing={sorted(missing)} extra={sorted(extra)}"
            )
        return RuleInstance(self, parent_index, dict(arguments))

    def event_subscriptions(self) -> set[EventPattern]:
        """All event patterns any clause listens to (sizes the event bus)."""
        return {p for clause in self.clauses for p in clause.patterns}


class RuleVerdict(enum.Enum):
    """How a rule instance produced its return value (for statistics)."""

    PENDING = "pending"
    CLAUSE = "clause"         # an ON clause's return-action fired
    REQUIRES = "requires"     # all requires-flags were satisfied
    OTHERWISE = "otherwise"   # the minimum-waiting-task escape fired


@dataclass(slots=True)
class RuleInstance:
    """A live rule occupying a lane: bound params plus accumulated state."""

    rule_type: RuleType
    parent_index: TaskIndex
    arguments: dict[str, Any]
    satisfied: set[str] = field(default_factory=set)
    value: bool | None = None
    verdict: RuleVerdict = RuleVerdict.PENDING
    # Decision provenance, stamped by the simulator only when a
    # TokenLedger is attached: the cycle the promise resolved and the uid
    # of the token whose event decided it (-1 for otherwise/immediate).
    decided_cycle: int = -1
    decided_by: int = -1

    @property
    def returned(self) -> bool:
        return self.value is not None

    def observe(self, event: Event) -> bool | None:
        """Feed one broadcast event; returns the rule's value if it fires.

        Clauses are evaluated in declaration order; the first return-action
        whose condition holds wins.  ``satisfy`` actions accumulate flags and
        the rule returns true once every declared flag is satisfied.
        """
        if self.returned:
            return self.value
        for clause in self.rule_type.clauses:
            if not clause.triggered_by(event):
                continue
            if not clause.condition_holds(event, self._env()):
                continue
            kind, payload = clause.action
            if kind == "return":
                self._finish(bool(payload), RuleVerdict.CLAUSE)
                return self.value
            self.satisfied.add(payload)
        if self.rule_type.requires and self.satisfied >= set(
            self.rule_type.requires
        ):
            self._finish(True, RuleVerdict.REQUIRES)
        return self.value

    def observe_triggered(
        self,
        event: Event,
        clauses: list[ClauseSpec],
        requires: frozenset[str],
    ) -> bool | None:
        """:meth:`observe` with the event-independent work hoisted out.

        ``clauses`` must be the declaration-order subset of this rule
        type's clauses whose patterns match ``event`` and ``requires`` the
        precomputed flag set — the event bus computes both once per
        broadcast instead of once per lane.
        """
        if self.value is not None:
            return self.value
        for clause in clauses:
            if not clause.condition_holds(event, self.arguments):
                continue
            kind, payload = clause.action
            if kind == "return":
                self._finish(bool(payload), RuleVerdict.CLAUSE)
                return self.value
            self.satisfied.add(payload)
        if requires and self.satisfied >= requires:
            self._finish(True, RuleVerdict.REQUIRES)
        return self.value

    def trigger_otherwise(self) -> bool:
        """Fire the otherwise clause (parent became the minimum waiter)."""
        if not self.returned:
            self._finish(self.rule_type.otherwise, RuleVerdict.OTHERWISE)
        assert self.value is not None
        return self.value

    def _finish(self, value: bool, verdict: RuleVerdict) -> None:
        self.value = value
        self.verdict = verdict

    def _env(self) -> Mapping[str, Any]:
        return self.arguments
