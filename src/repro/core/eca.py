"""The Event-Condition-Action rule grammar (Section 4.2.2).

Rules are written in a small textual DSL and compiled into
:class:`repro.core.rule.RuleType` objects, which both the software runtime
and the synthesized rule engines execute.  The grammar follows the paper's
ECA clause — ``ON event IF condition DO action`` — with the obligatory
``otherwise`` clause that guarantees liveliness:

.. code-block:: text

    rule conflict(my_index, addr):
        on reach update.setLevel
            if event.addr == addr and event.index < my_index
            do return false
        otherwise return true

Extensions the benchmarks need, all synthesizable as lane pipelines:

* ``requires flag1, flag2`` in the header — the rule returns true once every
  flag has been satisfied (multi-event conjunction, used by COOR-LU);
* the ``satisfy <flag>`` action;
* the infix ``overlaps`` operator testing set intersection (used by the DMR
  cavity-conflict rule; on FPGA it maps to a Bloom-filter/CAM template).

Events are limited to task activations (``activate <taskset>``) and tasks
reaching labelled operations (``reach <taskset>.<label>``), combinable with
``or`` — exactly the restriction Section 4.2.2 imposes.  Actions only return
booleans that steer task tokens at the rendezvous.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.core.events import Event, EventKind
from repro.core.rule import ClauseSpec, EventPattern, RuleType
from repro.errors import EcaSemanticError, EcaSyntaxError

# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>\#[^\n]*)
  | (?P<number>\d+(\.\d+)?)
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><=|>=|==|!=|[-+*/<>().,:])
    """,
    re.VERBOSE,
)

KEYWORDS = {
    "rule", "on", "if", "do", "otherwise", "return", "satisfy", "requires",
    "activate", "reach", "and", "or", "not", "true", "false", "overlaps",
    "event", "immediately",
}


@dataclass(frozen=True)
class Token:
    kind: str      # "number" | "name" | "op" | "kw" | "eof"
    text: str
    line: int
    column: int


def tokenize(source: str) -> list[Token]:
    """Split rule source text into tokens; raises on unknown characters."""
    tokens: list[Token] = []
    line = 1
    line_start = 0
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            column = pos - line_start + 1
            raise EcaSyntaxError(
                f"unexpected character {source[pos]!r}", line, column
            )
        text = match.group(0)
        kind = match.lastgroup
        column = pos - line_start + 1
        if kind not in ("ws", "comment"):
            token_kind = kind
            if kind == "name" and text in KEYWORDS:
                token_kind = "kw"
            tokens.append(Token(token_kind, text, line, column))
        newlines = text.count("\n")
        if newlines:
            line += newlines
            line_start = pos + text.rfind("\n") + 1
        pos = match.end()
    tokens.append(Token("eof", "", line, pos - line_start + 1))
    return tokens


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Literal:
    value: Any


@dataclass(frozen=True)
class ParamRef:
    name: str


@dataclass(frozen=True)
class EventField:
    name: str  # "index" or a payload field


@dataclass(frozen=True)
class UnaryOp:
    op: str
    operand: Any


@dataclass(frozen=True)
class BinaryOp:
    op: str
    left: Any
    right: Any


Expr = Literal | ParamRef | EventField | UnaryOp | BinaryOp


@dataclass(frozen=True)
class EventSpec:
    """One alternative of an ON clause's event disjunction."""

    kind: EventKind
    task_set: str
    label: str  # empty for activate events


@dataclass(frozen=True)
class ClauseAst:
    events: tuple[EventSpec, ...]
    condition: Expr | None
    action: tuple[str, Any]  # ("return", bool) | ("satisfy", flag_name)


@dataclass
class RuleAst:
    name: str
    params: list[str]
    requires: list[str] = field(default_factory=list)
    clauses: list[ClauseAst] = field(default_factory=list)
    otherwise: bool | None = None
    # "otherwise immediately return X": the promise resolves as soon as the
    # parent reaches the rendezvous (optimistic speculation) instead of
    # waiting to become the minimum waiting task.  Sound only when commits
    # are monotone/combining or revalidated — the speculative benchmarks.
    immediate: bool = False


# ---------------------------------------------------------------------------
# Parser (recursive descent)
# ---------------------------------------------------------------------------

class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token helpers ------------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != "eof":
            self._pos += 1
        return token

    def _error(self, message: str) -> EcaSyntaxError:
        token = self._peek()
        return EcaSyntaxError(
            f"{message}, found {token.text!r}", token.line, token.column
        )

    def _expect(self, kind: str, text: str | None = None) -> Token:
        token = self._peek()
        if token.kind != kind or (text is not None and token.text != text):
            want = text if text is not None else kind
            raise self._error(f"expected {want!r}")
        return self._advance()

    def _accept(self, kind: str, text: str | None = None) -> Token | None:
        token = self._peek()
        if token.kind == kind and (text is None or token.text == text):
            return self._advance()
        return None

    # -- grammar ------------------------------------------------------------

    def parse_rule(self) -> RuleAst:
        self._expect("kw", "rule")
        name = self._expect("name").text
        self._expect("op", "(")
        params: list[str] = []
        if not self._accept("op", ")"):
            while True:
                params.append(self._expect("name").text)
                if self._accept("op", ")"):
                    break
                self._expect("op", ",")
        ast = RuleAst(name, params)
        if self._accept("kw", "requires"):
            while True:
                ast.requires.append(self._expect("name").text)
                if not self._accept("op", ","):
                    break
        self._expect("op", ":")

        while self._accept("kw", "on"):
            ast.clauses.append(self._parse_clause())
        if self._accept("kw", "otherwise"):
            if self._accept("kw", "immediately"):
                ast.immediate = True
            self._expect("kw", "return")
            ast.otherwise = self._parse_bool_literal()
        self._expect("eof")

        if ast.otherwise is None:
            raise EcaSemanticError(
                f"rule {name!r} lacks the obligatory otherwise clause "
                "(liveliness would be lost)"
            )
        if len(set(params)) != len(params):
            raise EcaSemanticError(f"rule {name!r} has duplicate parameters")
        self._check_semantics(ast)
        return ast

    def _parse_clause(self) -> ClauseAst:
        events = [self._parse_event_spec()]
        while self._accept("kw", "or"):
            # `or` between two event specs continues the disjunction only if
            # the next token starts an event spec; otherwise it belongs to a
            # condition, which is a syntax error here (conditions follow if).
            events.append(self._parse_event_spec())
        condition = None
        if self._accept("kw", "if"):
            condition = self._parse_expr()
        self._expect("kw", "do")
        action = self._parse_action()
        return ClauseAst(tuple(events), condition, action)

    def _parse_event_spec(self) -> EventSpec:
        if self._accept("kw", "activate"):
            task_set = self._expect("name").text
            return EventSpec(EventKind.ACTIVATE, task_set, "")
        if self._accept("kw", "reach"):
            task_set = self._expect("name").text
            self._expect("op", ".")
            label = self._expect("name").text
            return EventSpec(EventKind.REACH, task_set, label)
        raise self._error("expected 'activate' or 'reach'")

    def _parse_action(self) -> tuple[str, Any]:
        if self._accept("kw", "return"):
            return ("return", self._parse_bool_literal())
        if self._accept("kw", "satisfy"):
            return ("satisfy", self._expect("name").text)
        raise self._error("expected 'return' or 'satisfy'")

    def _parse_bool_literal(self) -> bool:
        if self._accept("kw", "true"):
            return True
        if self._accept("kw", "false"):
            return False
        raise self._error("expected 'true' or 'false'")

    # expression precedence: or < and < not < comparison/overlaps < add < mul
    def _parse_expr(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self._accept("kw", "or"):
            left = BinaryOp("or", left, self._parse_and())
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_not()
        while self._accept("kw", "and"):
            left = BinaryOp("and", left, self._parse_not())
        return left

    def _parse_not(self) -> Expr:
        if self._accept("kw", "not"):
            return UnaryOp("not", self._parse_not())
        return self._parse_comparison()

    _COMPARISONS = ("==", "!=", "<=", ">=", "<", ">")

    def _parse_comparison(self) -> Expr:
        left = self._parse_additive()
        token = self._peek()
        if token.kind == "op" and token.text in self._COMPARISONS:
            self._advance()
            return BinaryOp(token.text, left, self._parse_additive())
        if self._accept("kw", "overlaps"):
            return BinaryOp("overlaps", left, self._parse_additive())
        return left

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while True:
            token = self._peek()
            if token.kind == "op" and token.text in ("+", "-"):
                self._advance()
                left = BinaryOp(token.text, left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_primary()
        while True:
            token = self._peek()
            if token.kind == "op" and token.text in ("*", "/"):
                self._advance()
                left = BinaryOp(token.text, left, self._parse_primary())
            else:
                return left

    def _parse_primary(self) -> Expr:
        if self._accept("op", "("):
            inner = self._parse_expr()
            self._expect("op", ")")
            return inner
        if self._accept("kw", "true"):
            return Literal(True)
        if self._accept("kw", "false"):
            return Literal(False)
        token = self._peek()
        if token.kind == "number":
            self._advance()
            value = float(token.text) if "." in token.text else int(token.text)
            return Literal(value)
        if self._accept("kw", "event"):
            self._expect("op", ".")
            return EventField(self._expect("name").text)
        if token.kind == "name":
            self._advance()
            return ParamRef(token.text)
        raise self._error("expected an expression")

    # -- semantic checks -----------------------------------------------------

    def _check_semantics(self, ast: RuleAst) -> None:
        params = set(ast.params)
        flags = set(ast.requires)
        if len(flags) != len(ast.requires):
            raise EcaSemanticError(
                f"rule {ast.name!r} has duplicate requires flags"
            )
        satisfied: set[str] = set()
        for clause in ast.clauses:
            kind, value = clause.action
            if kind == "satisfy":
                if value not in flags:
                    raise EcaSemanticError(
                        f"rule {ast.name!r} satisfies undeclared flag {value!r}"
                    )
                satisfied.add(value)
            if clause.condition is not None:
                _check_expr_names(ast.name, clause.condition, params)
        unsatisfiable = flags - satisfied
        if unsatisfiable:
            raise EcaSemanticError(
                f"rule {ast.name!r} requires flags no clause satisfies: "
                f"{sorted(unsatisfiable)}"
            )


def _check_expr_names(rule_name: str, expr: Expr, params: set[str]) -> None:
    if isinstance(expr, ParamRef):
        if expr.name not in params:
            raise EcaSemanticError(
                f"rule {rule_name!r} references unknown name {expr.name!r}"
            )
    elif isinstance(expr, UnaryOp):
        _check_expr_names(rule_name, expr.operand, params)
    elif isinstance(expr, BinaryOp):
        _check_expr_names(rule_name, expr.left, params)
        _check_expr_names(rule_name, expr.right, params)


def parse_rule(source: str) -> RuleAst:
    """Parse ECA rule source text into an AST."""
    return _Parser(tokenize(source)).parse_rule()


# ---------------------------------------------------------------------------
# Compiler: AST -> executable RuleType
# ---------------------------------------------------------------------------

def _compile_expr(expr: Expr) -> Callable[[Event, Mapping[str, Any]], Any]:
    """Compile an expression into ``f(event, params) -> value``."""
    if isinstance(expr, Literal):
        value = expr.value
        return lambda event, params: value
    if isinstance(expr, ParamRef):
        name = expr.name
        return lambda event, params: params[name]
    if isinstance(expr, EventField):
        name = expr.name
        if name == "index":
            return lambda event, params: event.index
        return lambda event, params: event.payload[name]
    if isinstance(expr, UnaryOp):
        operand = _compile_expr(expr.operand)
        if expr.op == "not":
            return lambda event, params: not operand(event, params)
        raise EcaSemanticError(f"unknown unary operator {expr.op!r}")
    if isinstance(expr, BinaryOp):
        left = _compile_expr(expr.left)
        right = _compile_expr(expr.right)
        op = expr.op
        table: dict[str, Callable[[Any, Any], Any]] = {
            "and": lambda a, b: bool(a) and bool(b),
            "or": lambda a, b: bool(a) or bool(b),
            "==": lambda a, b: a == b,
            "!=": lambda a, b: a != b,
            "<": lambda a, b: a < b,
            "<=": lambda a, b: a <= b,
            ">": lambda a, b: a > b,
            ">=": lambda a, b: a >= b,
            "+": lambda a, b: a + b,
            "-": lambda a, b: a - b,
            "*": lambda a, b: a * b,
            "/": lambda a, b: a / b,
            "overlaps": lambda a, b: bool(set(a) & set(b)),
        }
        if op not in table:
            raise EcaSemanticError(f"unknown binary operator {op!r}")
        fn = table[op]
        return lambda event, params: fn(left(event, params), right(event, params))
    raise EcaSemanticError(f"cannot compile expression node {expr!r}")


def compile_rule(source: str | RuleAst) -> RuleType:
    """Compile ECA source text (or a parsed AST) into a :class:`RuleType`."""
    ast = parse_rule(source) if isinstance(source, str) else source
    clauses: list[ClauseSpec] = []
    for clause in ast.clauses:
        patterns = tuple(
            EventPattern(spec.kind, spec.task_set, spec.label)
            for spec in clause.events
        )
        condition = (
            _compile_expr(clause.condition)
            if clause.condition is not None
            else None
        )
        clauses.append(ClauseSpec(patterns, condition, clause.action))
    return RuleType(
        name=ast.name,
        params=tuple(ast.params),
        requires=tuple(ast.requires),
        clauses=tuple(clauses),
        otherwise=bool(ast.otherwise),
        immediate=ast.immediate,
        source=source if isinstance(source, str) else "",
    )
