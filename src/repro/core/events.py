"""Events broadcast to rules (Section 4.2.2).

The ECA grammar restricts events to (a) activation of tasks, (b) tasks
reaching specific operations in their bodies, or combinations.  When an
event is signalled, the index and data fields of the triggering task are
broadcast to all live rules — on FPGA this is the event bus of Figure 8.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Mapping

from repro.core.indexing import TaskIndex


class EventKind(enum.Enum):
    """What happened to the triggering task."""

    ACTIVATE = "activate"     # a task was pushed into a workset queue
    REACH = "reach"           # a task reached a named operation (store/commit/...)


@dataclass(frozen=True)
class Event:
    """One broadcast on the event bus.

    Attributes
    ----------
    kind / task_set / label:
        ``ACTIVATE`` events name the task set that received the task;
        ``REACH`` events additionally carry the label of the operation
        reached (e.g. ``"setLevel"``) in ``label``.
    index:
        Well-order index of the triggering task.
    payload:
        The triggering task's data fields, plus any operation operands
        (e.g. the address and value of a committing store).
    """

    kind: EventKind
    task_set: str
    label: str
    index: TaskIndex
    payload: Mapping[str, Any]

    def matches(self, kind: EventKind, task_set: str, label: str) -> bool:
        """Does this broadcast trigger a clause declared ON (kind, set, label)?

        An empty declared label matches any REACH label; an empty declared
        task_set matches any set.
        """
        if self.kind is not kind:
            return False
        if task_set and self.task_set != task_set:
            return False
        if label and self.label != label:
            return False
        return True

    def field(self, name: str) -> Any:
        return self.payload[name]
