"""Program state (the Sigma of Definition 4.1) as named memory regions.

Task bodies only touch shared state through LOAD/STORE/CALL primitive ops
against a :class:`MemorySpace`, so every runtime — the functional software
runtime and the cycle-level accelerator simulator — sees the same accesses
and the timing models can account for every byte moved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import SimulationError


@dataclass
class Region:
    """One named region: an indexable array or an opaque object.

    ``element_bytes`` sizes the memory traffic of a LOAD/STORE to one
    element; ``base`` is the region's base byte address in the flat address
    space the cache model indexes.
    """

    name: str
    storage: Any
    element_bytes: int
    base: int

    def address_of(self, index: int) -> int:
        """Flat byte address of element ``index`` (cache-model key)."""
        return self.base + int(index) * self.element_bytes


class MemorySpace:
    """A flat address space of named regions.

    Array regions (numpy arrays or lists) support indexed load/store; opaque
    regions (mesh, disjoint set, block matrices) are manipulated by CALL ops
    that declare their traffic explicitly.
    """

    _ALIGNMENT = 1 << 20  # regions start on 1 MiB boundaries

    def __init__(self) -> None:
        self._regions: dict[str, Region] = {}
        self._next_base = 0

    def add_array(
        self, name: str, storage: Any, element_bytes: int = 8
    ) -> Region:
        """Register an indexable region; returns its descriptor."""
        if name in self._regions:
            raise SimulationError(f"region {name!r} already registered")
        size = len(storage) if hasattr(storage, "__len__") else 0
        span = max(size * element_bytes, 1)
        base = self._next_base
        self._next_base += -(-span // self._ALIGNMENT) * self._ALIGNMENT
        region = Region(name, storage, element_bytes, base)
        self._regions[name] = region
        return region

    def add_object(self, name: str, obj: Any) -> Region:
        """Register an opaque region (accessed only via CALL ops)."""
        if name in self._regions:
            raise SimulationError(f"region {name!r} already registered")
        base = self._next_base
        self._next_base += self._ALIGNMENT
        region = Region(name, obj, 0, base)
        self._regions[name] = region
        return region

    def __contains__(self, name: str) -> bool:
        return name in self._regions

    def region(self, name: str) -> Region:
        try:
            return self._regions[name]
        except KeyError:
            raise SimulationError(f"unknown region {name!r}") from None

    def load(self, name: str, index: int) -> Any:
        region = self.region(name)
        return region.storage[int(index)]

    def store(self, name: str, index: int, value: Any) -> None:
        region = self.region(name)
        region.storage[int(index)] = value

    def object(self, name: str) -> Any:
        """The opaque object behind a region."""
        return self.region(name).storage

    def address(self, name: str, index: int) -> int:
        return self.region(name).address_of(index)

    def names(self) -> list[str]:
        return sorted(self._regions)


def int_array(values: Any, fill: int | None = None, size: int | None = None
              ) -> np.ndarray:
    """Helper to build int64 state arrays (levels, distances as scaled ints)."""
    if fill is not None:
        if size is None:
            raise SimulationError("int_array with fill requires size")
        arr = np.full(size, fill, dtype=np.int64)
        return arr
    return np.asarray(values, dtype=np.int64)
