"""The paper's abstraction (Section 4): well-ordered task sets plus rules.

An irregular application is specified as a collection of task sets — one per
loop construct, classified ``for-all`` or ``for-each`` — whose elements carry
M-tuple indices establishing a well-order, and a set of ECA rules that
aggressively parallelized executions evaluate at runtime to detect and
resolve the dependences that cannot be analyzed at compile time.
"""

from repro.core.indexing import LoopNest, TaskIndex
from repro.core.task import LoopKind, TaskInstance, TaskSetDecl
from repro.core.events import Event, EventKind
from repro.core.rule import RuleInstance, RuleType, RuleVerdict
from repro.core.eca import compile_rule, parse_rule
from repro.core.spec import ApplicationSpec
from repro.core.runtime import (
    CoordinativeRuntime,
    SequentialRuntime,
    SpeculativeRuntime,
)
from repro.core.futures_runtime import FuturesRuntime

__all__ = [
    "LoopNest",
    "TaskIndex",
    "LoopKind",
    "TaskInstance",
    "TaskSetDecl",
    "Event",
    "EventKind",
    "RuleInstance",
    "RuleType",
    "RuleVerdict",
    "compile_rule",
    "parse_rule",
    "ApplicationSpec",
    "SequentialRuntime",
    "SpeculativeRuntime",
    "CoordinativeRuntime",
    "FuturesRuntime",
]
