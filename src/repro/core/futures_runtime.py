"""A threaded runtime built on futures and promises (Section 4.4).

The paper lists the possible software implementations of the abstraction:
"A C++ implementation based on std::thread, std::async and std::future is
provided for debugging ... any language supporting asynchronous programming
paradigms with futures and promises might be used."  This is that
implementation in Python: worker threads execute tasks concurrently, each
rule's return value is a :class:`concurrent.futures.Future` the parent task
blocks on at its rendezvous, and a scheduler lock protects the workset,
the event bus, and the minimum-live bookkeeping that drives the otherwise
clauses.

Like the step-based :class:`~repro.core.runtime.AggressiveRuntime`, this
runtime exists for debugging specifications under *real* concurrency — the
interleavings come from the OS scheduler rather than a deterministic
round-robin, so races that survive both interpreters are very likely
protocol bugs, not luck.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any

from repro.core.events import Event, EventKind
from repro.core.indexing import TaskIndex
from repro.core.kernel import (
    AllocRule,
    Alu,
    Call,
    Const,
    Enqueue,
    Expand,
    Guard,
    Label,
    Load,
    Op,
    Rendezvous,
    Store,
)
from repro.core.rule import RuleInstance
from repro.core.spec import ApplicationSpec
from repro.errors import SchedulingError, SimulationError


@dataclass
class FuturesStats:
    tasks_executed: int = 0
    tasks_committed: int = 0
    tasks_squashed: int = 0
    rules_allocated: int = 0
    events_broadcast: int = 0
    threads: int = 0
    errors: list = field(default_factory=list)


class _LiveRule:
    """A rule instance paired with the future its parent blocks on."""

    def __init__(self, instance: RuleInstance, owner_uid: int) -> None:
        self.instance = instance
        self.owner_uid = owner_uid
        self.future: Future = Future()
        self.awaited = False

    def maybe_resolve(self) -> None:
        if self.instance.returned and not self.future.done():
            self.future.set_result(self.instance.value)


class FuturesRuntime:
    """Thread-pool execution of a specification with future-based rules."""

    def __init__(self, spec: ApplicationSpec, threads: int = 4,
                 timeout_s: float = 120.0) -> None:
        if threads < 1:
            raise SchedulingError("need at least one thread")
        self.spec = spec
        self.threads = threads
        self.timeout_s = timeout_s
        self.state = spec.make_state()
        self.minter = spec.make_loop_nest()
        self.stats = FuturesStats(threads=threads)

        self._lock = threading.RLock()
        self._work_available = threading.Condition(self._lock)
        self._heap: list[tuple[tuple, int, str, dict]] = []
        self._serial = itertools.count()
        self._uid = itertools.count()
        self._executing: dict[int, TaskIndex] = {}
        self._live_rules: list[_LiveRule] = []
        self._outstanding = 0      # queued + executing tasks
        self._stop = False
        self._host_batches = (
            spec.host_feed.batches(self.state)
            if spec.host_feed is not None else None
        )

    # -- scheduling core (all under self._lock) -----------------------------

    def _activate(self, task_set: str, fields: dict[str, Any],
                  parent: TaskIndex | None) -> None:
        index = self.minter.mint(task_set, fields, parent)
        heapq.heappush(
            self._heap,
            (index.positions, next(self._serial), task_set, fields),
        )
        self._outstanding += 1
        self._broadcast(
            Event(EventKind.ACTIVATE, task_set, "", index, dict(fields)),
            source_uid=-1,
        )
        self._work_available.notify_all()

    def _broadcast(self, event: Event, source_uid: int) -> None:
        self.stats.events_broadcast += 1
        for live in self._live_rules:
            if live.owner_uid == source_uid:
                continue
            live.instance.observe(event)
            live.maybe_resolve()

    def _min_live(self) -> TaskIndex | None:
        candidates = list(self._executing.values())
        if self._heap:
            candidates.append(TaskIndex(self._heap[0][0]))
        return min(candidates) if candidates else None

    def _trigger_otherwise(self) -> None:
        minimum = self._min_live()
        for live in list(self._live_rules):
            if not live.awaited or live.instance.returned:
                continue
            parent = live.instance.parent_index
            if minimum is None or not minimum.earlier_than(parent):
                live.instance.trigger_otherwise()
                live.maybe_resolve()

    def _release_rule(self, live: _LiveRule) -> None:
        if live in self._live_rules:
            self._live_rules.remove(live)

    def _feed_host(self) -> bool:
        if self._host_batches is None:
            return False
        batch = next(self._host_batches, None)
        if batch is None:
            self._host_batches = None
            return False
        for task_set, fields in batch:
            self._activate(task_set, dict(fields), parent=None)
        return True

    # -- the worker loop -----------------------------------------------------

    def _worker(self) -> None:
        while True:
            with self._lock:
                while not self._heap and not self._stop:
                    if self._outstanding == 0 and not self._feed_host():
                        self._stop = True
                        self._work_available.notify_all()
                        break
                    if self._heap:
                        break
                    self._work_available.wait(timeout=0.05)
                if self._stop and not self._heap:
                    return
                positions, _, task_set, fields = heapq.heappop(self._heap)
                index = TaskIndex(positions)
                uid = next(self._uid)
                self._executing[uid] = index
                self.stats.tasks_executed += 1
            try:
                self._execute_task(uid, task_set, index, dict(fields))
            except Exception as error:  # propagate to run()
                with self._lock:
                    self.stats.errors.append(error)
                    self._stop = True
                    self._work_available.notify_all()
                return
            finally:
                with self._lock:
                    # completes_task Calls may have released the entry.
                    self._executing.pop(uid, None)
                    self._outstanding -= 1
                    self._trigger_otherwise()
                    self._work_available.notify_all()

    # -- task-body interpreter --------------------------------------------------

    def _execute_task(self, uid: int, task_set: str, index: TaskIndex,
                      env: dict[str, Any]) -> None:
        kernel = self.spec.kernels[task_set]
        committed = self._execute_ops(
            uid, task_set, index, env, list(kernel.ops)
        )
        with self._lock:
            if committed:
                self.stats.tasks_committed += 1

    def _execute_ops(self, uid: int, task_set: str, index: TaskIndex,
                     env: dict[str, Any], ops: list[Op]) -> bool:
        """Run ops; returns False when the token was squashed/dropped."""
        pending_rules: list[_LiveRule] = []
        try:
            for position, op in enumerate(ops):
                if isinstance(op, Const):
                    env[op.dst] = op.value
                elif isinstance(op, Alu):
                    env[op.dst] = op.fn(env)
                elif isinstance(op, Load):
                    with self._lock:
                        env[op.dst] = self.state.load(op.region,
                                                      op.addr(env))
                elif isinstance(op, Store):
                    self._do_store(uid, task_set, index, env, op)
                elif isinstance(op, Label):
                    payload = (
                        {k: env[k] for k in op.payload} if op.payload
                        else dict(env)
                    )
                    with self._lock:
                        self._broadcast(
                            Event(EventKind.REACH, task_set, op.label,
                                  index, payload),
                            source_uid=uid,
                        )
                elif isinstance(op, Guard):
                    if not op.pred(env):
                        self._execute_ops(uid, task_set, index, env,
                                          list(op.else_ops))
                        return False
                elif isinstance(op, Expand):
                    with self._lock:
                        items = list(op.items(env, self.state))
                    rest = ops[position + 1:]
                    for extra in items:
                        child = dict(env)
                        child.update(extra)
                        self._execute_ops(uid, task_set, index, child, rest)
                    return True
                elif isinstance(op, AllocRule):
                    rule_type = self.spec.rules[op.resolve(env)]
                    with self._lock:
                        instance = rule_type.instantiate(
                            index, dict(op.args(env))
                        )
                        live = _LiveRule(instance, uid)
                        self._live_rules.append(live)
                        self.stats.rules_allocated += 1
                    pending_rules.append(live)
                elif isinstance(op, Rendezvous):
                    if not pending_rules:
                        raise SchedulingError(
                            f"rendezvous {op.label!r} without a rule"
                        )
                    live = pending_rules.pop(0)
                    verdict = self._await_rule(live)
                    if not verdict:
                        with self._lock:
                            self.stats.tasks_squashed += 1
                        self._execute_ops(uid, task_set, index, env,
                                          list(op.abort_ops))
                        return False
                elif isinstance(op, Enqueue):
                    if op.when is None or op.when(env):
                        with self._lock:
                            self._activate(op.task_set,
                                           dict(op.fields(env)), index)
                elif isinstance(op, Call):
                    with self._lock:
                        updates = op.fn(env, self.state)
                        if updates:
                            env.update(updates)
                        if op.label:
                            self._broadcast(
                                Event(EventKind.REACH, task_set, op.label,
                                      index, dict(env)),
                                source_uid=uid,
                            )
                        if op.completes_task:
                            self._executing.pop(uid, None)
                            self._trigger_otherwise()
                else:
                    raise SimulationError(f"unknown op {op!r}")
            return True
        finally:
            with self._lock:
                for live in pending_rules:
                    self._release_rule(live)

    def _do_store(self, uid: int, task_set: str, index: TaskIndex,
                  env: dict[str, Any], op: Store) -> None:
        with self._lock:
            addr = op.addr(env)
            value = op.value(env)
            if op.combine is not None or op.dst:
                old = self.state.load(op.region, addr)
                if op.dst:
                    env[op.dst] = old
                if op.combine is not None:
                    value = op.combine(old, value)
            self.state.store(op.region, addr, value)
            payload = {"addr": self.state.address(op.region, addr),
                       "value": value}
            for name in op.extra_payload:
                payload[name] = env[name]
            self._broadcast(
                Event(EventKind.REACH, task_set, op.label or op.region,
                      index, payload),
                source_uid=uid,
            )

    def _await_rule(self, live: _LiveRule) -> bool:
        with self._lock:
            live.awaited = True
            if live.instance.rule_type.immediate and \
                    not live.instance.returned:
                live.instance.trigger_otherwise()
            live.maybe_resolve()
            self._trigger_otherwise()
        try:
            verdict = bool(live.future.result(timeout=self.timeout_s))
        except TimeoutError:
            raise SchedulingError(
                "rendezvous timed out — liveliness violation"
            ) from None
        with self._lock:
            self._release_rule(live)
        return verdict

    # -- entry point --------------------------------------------------------------

    def run(self) -> FuturesStats:
        with self._lock:
            for task_set, fields in self.spec.initial_tasks(self.state):
                self._activate(task_set, dict(fields), parent=None)
            if self._outstanding == 0:
                self._feed_host()
        workers = [
            threading.Thread(target=self._worker, daemon=True,
                             name=f"repro-worker-{i}")
            for i in range(self.threads)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=self.timeout_s)
            if worker.is_alive():
                raise SchedulingError("worker thread hung")
        if self.stats.errors:
            raise self.stats.errors[0]
        self.spec.verify(self.state)
        return self.stats
