"""Tasks and task sets (Definitions 4.1-4.3).

A *task* is one dynamic iteration of a loop body: a partial function from
program states to (program state, new tasks).  Tasks with the same function
form a *task set*, classified by the loop construct that iterates it.  An
*active* task is one sitting in a workset queue, ready to execute.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.indexing import TaskIndex
from repro.errors import SpecificationError


class LoopKind(enum.Enum):
    """The two loop constructs of Section 4.1."""

    FOR_EACH = "for-each"
    FOR_ALL = "for-all"

    @classmethod
    def parse(cls, text: str) -> "LoopKind":
        for member in cls:
            if member.value == text:
                return member
        raise SpecificationError(f"unknown loop kind {text!r}")


@dataclass(frozen=True)
class TaskSetDecl:
    """Declaration of one task set.

    Parameters
    ----------
    name:
        Task-set (loop) name, e.g. ``"visit"``.
    kind:
        Which loop construct iterates the set.
    fields:
        Names of the data fields a task of this set carries, in token
        layout order (this fixes the queue entry width on FPGA).
    field_bits:
        Per-field storage width; defaults to 32 bits each.  Used by the
        synthesis resource model to size queue entries.
    """

    name: str
    kind: LoopKind
    fields: tuple[str, ...]
    field_bits: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecificationError("task set needs a name")
        if len(set(self.fields)) != len(self.fields):
            raise SpecificationError(f"duplicate fields in {self.fields}")
        if self.field_bits and len(self.field_bits) != len(self.fields):
            raise SpecificationError(
                "field_bits must be empty or parallel to fields"
            )

    @property
    def entry_bits(self) -> int:
        """Queue entry width in bits (excluding the index tag)."""
        if self.field_bits:
            return sum(self.field_bits)
        return 32 * len(self.fields)


_task_counter = itertools.count()


@dataclass
class TaskInstance:
    """A dynamic task: data fields plus its well-order index.

    ``uid`` is a globally unique creation stamp used for diagnostics and for
    deterministic tie-breaking among for-all tasks that share an index.
    """

    task_set: str
    index: TaskIndex
    data: dict[str, Any]
    uid: int = field(default_factory=lambda: next(_task_counter))

    def sort_key(self) -> tuple:
        """Well-order key; uid breaks ties among equal (for-all) indices."""
        return (self.index.positions, self.uid)

    def earlier_than(self, other: "TaskInstance") -> bool:
        return self.index.earlier_than(other.index)

    def with_fields(self, **updates: Any) -> "TaskInstance":
        """A copy with some data fields replaced (same index and uid)."""
        merged = dict(self.data)
        merged.update(updates)
        return TaskInstance(self.task_set, self.index, merged, self.uid)

    def __getitem__(self, key: str) -> Any:
        return self.data[key]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TaskInstance({self.task_set}{self.index}, {self.data})"


def validate_task_data(decl: TaskSetDecl, data: Mapping[str, Any]) -> None:
    """Raise if ``data`` does not match the declaration's field list."""
    missing = set(decl.fields) - set(data)
    extra = set(data) - set(decl.fields)
    if missing or extra:
        raise SpecificationError(
            f"task data for {decl.name!r} mismatched: "
            f"missing={sorted(missing)} extra={sorted(extra)}"
        )
