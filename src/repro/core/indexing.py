"""Well-order task indices (Section 4.1, Figure 5).

Given M (juxtaposed or nested) loops, each task carries an M-tuple index —
one natural number per loop, loops ordered left-to-right as they appear in
the program, left positions weighing more in the order.  ``for-each`` loops
index tasks by activation sequence (a per-loop counter); ``for-all`` loops
label every task 0 so all its tasks compare equal at that position.  Indices
of preceding loops are inherited by tasks activated from within them;
positions for loops that are not ancestors are zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import SpecificationError


@dataclass(frozen=True, order=True)
class TaskIndex:
    """An M-tuple well-order index.

    Lexicographic tuple comparison implements the paper's weighting: the
    leftmost position (outermost / earliest loop) dominates.
    """

    positions: tuple[int, ...]

    def __post_init__(self) -> None:
        if any(p < 0 for p in self.positions):
            raise SpecificationError(
                f"index positions must be non-negative, got {self.positions}"
            )

    def __len__(self) -> int:
        return len(self.positions)

    def __iter__(self) -> Iterator[int]:
        return iter(self.positions)

    def earlier_than(self, other: "TaskIndex") -> bool:
        """Strictly earlier in the well-order (plain tuple comparison)."""
        return self.positions < other.positions

    def prefix(self, length: int) -> tuple[int, ...]:
        """The first ``length`` positions (what a child task inherits)."""
        return self.positions[:length]

    def __str__(self) -> str:
        return "{" + ", ".join(str(p) for p in self.positions) + "}"


class LoopNest:
    """Assigns M-tuple indices to tasks activated from a loop arrangement.

    The nest is declared once per application: ``loops`` maps each loop
    (task-set) name to its position 0..M-1 and its kind.  During execution,
    :meth:`index_for` mints the index of a newly activated task given the
    activating parent's index — implementing exactly the scheme of Figure 5:

    * positions of loops at or left of the child's loop that are *ancestors*
      (i.e. the parent's prefix) are inherited,
    * the child's own position gets ``counter++`` for a for-each loop and
      ``0`` for a for-all loop,
    * all positions right of the child's loop are 0.
    """

    def __init__(self, loops: list[tuple[str, str]]) -> None:
        """``loops``: ordered ``(name, kind)`` pairs, kind in {for-each, for-all}."""
        if not loops:
            raise SpecificationError("a loop nest needs at least one loop")
        names = [name for name, _ in loops]
        if len(set(names)) != len(names):
            raise SpecificationError(f"duplicate loop names in {names}")
        for name, kind in loops:
            if kind not in ("for-each", "for-all"):
                raise SpecificationError(
                    f"loop {name!r} kind must be for-each or for-all, got {kind!r}"
                )
        self._order: dict[str, int] = {name: i for i, (name, _) in enumerate(loops)}
        self._kind: dict[str, str] = dict(loops)
        self._counters: dict[str, int] = {name: 0 for name, _ in loops}

    @property
    def width(self) -> int:
        """M — the number of loops, hence tuple width."""
        return len(self._order)

    def kind_of(self, loop: str) -> str:
        try:
            return self._kind[loop]
        except KeyError:
            raise SpecificationError(f"unknown loop {loop!r}") from None

    def position_of(self, loop: str) -> int:
        try:
            return self._order[loop]
        except KeyError:
            raise SpecificationError(f"unknown loop {loop!r}") from None

    def reset(self) -> None:
        """Zero all for-each counters (start of a fresh execution)."""
        for name in self._counters:
            self._counters[name] = 0

    def root_index(self, loop: str) -> TaskIndex:
        """Index for an initial task seeded into ``loop`` before execution."""
        return self.index_for(loop, parent=None)

    def index_for(self, loop: str, parent: TaskIndex | None) -> TaskIndex:
        """Mint the index of a task activated into ``loop``.

        ``parent`` is the index of the activating task (None for initial
        seeding).  Positions left of ``loop`` are inherited from the parent,
        the ``loop`` position is the for-each counter (or 0 for for-all),
        and later positions are zero.
        """
        pos = self.position_of(loop)
        positions = [0] * self.width
        if parent is not None:
            inherited = parent.prefix(pos)
            positions[: len(inherited)] = inherited
        if self._kind[loop] == "for-each":
            positions[pos] = self._counters[loop]
            self._counters[loop] += 1
        return TaskIndex(tuple(positions))
