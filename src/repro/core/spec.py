"""Application specifications: the complete MoC-level artifact.

An :class:`ApplicationSpec` bundles everything the paper's abstraction
captures about one irregular application:

* the loop nest (task sets, their kinds, their well-order),
* one kernel (task body) per task set,
* the compiled ECA rules,
* how to build the initial program state and seed the initial tasks,
* an optional host feed (DMR and COOR-LU stream tasks in from the host),
* a verification oracle establishing Definition 4.3's correctness criterion
  (equivalence with sequential execution).

The same spec is consumed by three interpreters: the sequential reference
runtime, the aggressive software (debug) runtime, and — after lowering to
BDFG and template mapping — the cycle-level accelerator simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping, Sequence

from repro.core.indexing import LoopNest, TaskIndex
from repro.core.kernel import Kernel
from repro.core.rule import RuleType
from repro.core.state import MemorySpace
from repro.core.task import LoopKind, TaskSetDecl
from repro.errors import SpecificationError

# A seeded task: (task_set_name, field dict)
SeedTask = tuple[str, dict[str, Any]]


@dataclass(frozen=True)
class HostFeed:
    """Host-side incremental task injection (Section 6.1, DMR and LU).

    ``batches`` yields successive lists of seed tasks.  The accelerator
    simulator charges each batch's transfer to the QPI channel (host->FPGA
    direction), which is what makes these applications' speedup scale
    linearly with bandwidth in Figure 10.
    """

    batches: Callable[[MemorySpace], Iterator[list[SeedTask]]]
    bytes_per_task: int = 16


@dataclass
class ApplicationSpec:
    """A complete specification of one irregular application."""

    name: str
    mode: str  # "speculative" | "coordinative"
    task_sets: dict[str, TaskSetDecl]
    kernels: dict[str, Kernel]
    rules: dict[str, RuleType]
    make_state: Callable[[], MemorySpace]
    initial_tasks: Callable[[MemorySpace], list[SeedTask]]
    verify: Callable[[MemorySpace], None]
    host_feed: HostFeed | None = None
    priority_fields: dict[str, str] = field(default_factory=dict)
    description: str = ""
    # How the otherwise clause's "minimum waiting task" is scoped on FPGA:
    # "lanes" — minimum over the rule engine's own allocated lanes (the
    # paper's Figure 8 broadcast; deadlock-free, correct for applications
    # whose commits are monotone or revalidating);
    # "global" — minimum over every live task (required when commit order
    # itself is the correctness condition, e.g. Kruskal's weight order;
    # paired with ordered_admission so the minimum can always reach its
    # rendezvous).
    otherwise_scope: str = "lanes"
    # Credit-limit pipeline admission to the rule-lane count and pop the
    # queue minimum-first (a deterministic-reservation window in hardware).
    ordered_admission: bool = False

    def __post_init__(self) -> None:
        if self.mode not in ("speculative", "coordinative"):
            raise SpecificationError(
                f"mode must be speculative or coordinative, got {self.mode!r}"
            )
        if self.otherwise_scope not in ("lanes", "global"):
            raise SpecificationError(
                f"otherwise_scope must be lanes or global, "
                f"got {self.otherwise_scope!r}"
            )
        if set(self.kernels) != set(self.task_sets):
            raise SpecificationError(
                f"spec {self.name!r}: kernels {sorted(self.kernels)} do not "
                f"match task sets {sorted(self.task_sets)}"
            )
        for kernel in self.kernels.values():
            kernel.validate()
        for task_set, fieldname in self.priority_fields.items():
            decl = self.task_sets.get(task_set)
            if decl is None:
                raise SpecificationError(
                    f"priority field for unknown task set {task_set!r}"
                )
            if fieldname not in decl.fields:
                raise SpecificationError(
                    f"priority field {fieldname!r} not a field of {task_set!r}"
                )
        self._loop_order = list(self.task_sets)

    # -- well-order management ------------------------------------------------

    def make_loop_nest(self) -> "IndexMinter":
        """A fresh index minter for one execution of this application."""
        return IndexMinter(self)

    def loop_position(self, task_set: str) -> int:
        return self._loop_order.index(task_set)

    def rule_for_rendezvous(self, kernel: Kernel) -> dict[str, str]:
        """Map rendezvous labels to the rule allocated before them."""
        mapping: dict[str, str] = {}
        pending: list[str] = []
        from repro.core.kernel import AllocRule, Rendezvous

        for op in kernel.ops:
            if isinstance(op, AllocRule):
                pending.append(op.rule_name)
            elif isinstance(op, Rendezvous):
                if not pending:
                    raise SpecificationError(
                        f"kernel {kernel.task_set!r}: rendezvous "
                        f"{op.label!r} has no preceding AllocRule"
                    )
                mapping[op.label] = pending.pop(0)
        return mapping


class IndexMinter:
    """Mints well-order indices for one execution (wraps :class:`LoopNest`).

    Extends the paper's Figure 5 scheme with *priority-indexed* task sets:
    when a task set declares a priority field, the position value is taken
    from that data field instead of an activation counter, so tasks of equal
    priority tie in the well-order (this is how COOR-BFS's "all Visits with
    minimum level execute simultaneously" is expressed — the implicit outer
    loop over levels is the for-each, the Visits within a level the for-all).
    """

    def __init__(self, spec: ApplicationSpec) -> None:
        self._spec = spec
        loops = [
            (name, decl.kind.value) for name, decl in spec.task_sets.items()
        ]
        self._nest = LoopNest(loops)

    @property
    def width(self) -> int:
        return self._nest.width

    def mint(
        self,
        task_set: str,
        fields: Mapping[str, Any],
        parent: TaskIndex | None,
    ) -> TaskIndex:
        priority_field = self._spec.priority_fields.get(task_set)
        index = self._nest.index_for(task_set, parent)
        if priority_field is not None:
            pos = self._nest.position_of(task_set)
            positions = list(index.positions)
            positions[pos] = int(fields[priority_field])
            index = TaskIndex(tuple(positions))
        return index

    def reset(self) -> None:
        self._nest.reset()


def make_task_sets(
    decls: Sequence[tuple[str, str, tuple[str, ...]]]
) -> dict[str, TaskSetDecl]:
    """Convenience builder: ``(name, kind, fields)`` triples, in loop order."""
    result: dict[str, TaskSetDecl] = {}
    for name, kind, fields in decls:
        result[name] = TaskSetDecl(name, LoopKind.parse(kind), tuple(fields))
    return result
