"""Pretty-printer (unparser) for ECA rule ASTs.

Produces canonical rule source text from a parsed/compiled rule, used by
diagnostics (``repro.cli`` prints every rule of an application) and by the
round-trip property tests: ``parse(format(ast))`` must reproduce the AST.
"""

from __future__ import annotations

from repro.core.eca import (
    BinaryOp,
    ClauseAst,
    EventField,
    EventSpec,
    Expr,
    Literal,
    ParamRef,
    RuleAst,
    UnaryOp,
)
from repro.core.events import EventKind
from repro.errors import SpecificationError

# Precedence levels matching the parser (higher binds tighter).
_PRECEDENCE = {
    "or": 1,
    "and": 2,
    "not": 3,
    "==": 4, "!=": 4, "<": 4, "<=": 4, ">": 4, ">=": 4, "overlaps": 4,
    "+": 5, "-": 5,
    "*": 6, "/": 6,
}


def format_expr(expr: Expr, parent_precedence: int = 0) -> str:
    """Render an expression with minimal parentheses."""
    if isinstance(expr, Literal):
        if isinstance(expr.value, bool):
            return "true" if expr.value else "false"
        return repr(expr.value)
    if isinstance(expr, ParamRef):
        return expr.name
    if isinstance(expr, EventField):
        return f"event.{expr.name}"
    if isinstance(expr, UnaryOp):
        inner = format_expr(expr.operand, _PRECEDENCE["not"])
        text = f"not {inner}"
        if parent_precedence > _PRECEDENCE["not"]:
            return f"({text})"
        return text
    if isinstance(expr, BinaryOp):
        precedence = _PRECEDENCE[expr.op]
        # Comparisons (and overlaps) are non-associative in the grammar, so
        # an operand at the same precedence must be parenthesized.
        non_associative = precedence == 4
        left = format_expr(
            expr.left, precedence + (1 if non_associative else 0)
        )
        right = format_expr(expr.right, precedence + 1)
        text = f"{left} {expr.op} {right}"
        if parent_precedence > precedence:
            return f"({text})"
        return text
    raise SpecificationError(f"cannot format expression {expr!r}")


def _format_event(spec: EventSpec) -> str:
    if spec.kind is EventKind.ACTIVATE:
        return f"activate {spec.task_set}"
    return f"reach {spec.task_set}.{spec.label}"


def _format_clause(clause: ClauseAst) -> str:
    events = " or ".join(_format_event(e) for e in clause.events)
    parts = [f"    on {events}"]
    if clause.condition is not None:
        parts.append(f"        if {format_expr(clause.condition)}")
    kind, payload = clause.action
    if kind == "return":
        action = f"return {'true' if payload else 'false'}"
    else:
        action = f"satisfy {payload}"
    parts.append(f"        do {action}")
    return "\n".join(parts)


def format_rule(ast: RuleAst) -> str:
    """Render a rule AST back to canonical source text."""
    header = f"rule {ast.name}({', '.join(ast.params)})"
    if ast.requires:
        header += f" requires {', '.join(ast.requires)}"
    lines = [header + ":"]
    for clause in ast.clauses:
        lines.append(_format_clause(clause))
    keyword = "otherwise immediately" if ast.immediate else "otherwise"
    lines.append(
        f"    {keyword} return {'true' if ast.otherwise else 'false'}"
    )
    return "\n".join(lines)
