"""Task-body kernels: the primitive-operation IR of a task set.

A kernel is what the paper's Figure 6 lowers: the loop body of one task set,
expressed as a short program over primitive operations that have direct
hardware templates (Section 5.2).  The same kernel is executed functionally
by the software debug runtime and cycle-by-cycle by the accelerator
simulator, so a specification is *one* artifact with two interpreters.

Primitive operations
--------------------

=============  ==============================================================
``Const``      bind a token field to a constant
``Alu``        combinational function of token fields
``Load``       read ``region[addr]`` into a field (variable latency on FPGA)
``Store``      write ``region[addr]``; broadcasts a REACH event (its label)
``Guard``      predicate steering: token dies (or runs else-ops) when false
``Expand``     data-dependent token multiplication (e.g. neighbour iteration)
``AllocRule``  create a rule instance bound to this task
``Rendezvous`` wait for the rule's value; steer commit vs abort paths
``Enqueue``    activate a new task (push into a workset queue)
``Call``       opaque heavyweight operation with declared cost and traffic
``Label``      no-op marker that broadcasts a REACH event when crossed
=============  ==============================================================

Fields are read and written on the token's environment (a dict); ``Expand``
and branch paths keep the IR expressive enough for all six benchmarks while
every op still maps onto one template.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.errors import SpecificationError

Env = dict[str, Any]
# Semantics callables receive (env, state) where state is the MemorySpace.
FieldFn = Callable[[Env], Any]


@dataclass(frozen=True)
class Op:
    """Base class for primitive operations."""

    def op_name(self) -> str:
        return type(self).__name__.lower()


@dataclass(frozen=True)
class Const(Op):
    dst: str
    value: Any


@dataclass(frozen=True)
class Alu(Op):
    """``dst = fn(env)`` — a combinational function of token fields."""

    dst: str
    fn: FieldFn
    reads: tuple[str, ...] = ()
    latency: int = 1


@dataclass(frozen=True)
class Load(Op):
    """``dst = region[addr(env)]`` with the element's byte traffic."""

    dst: str
    region: str
    addr: FieldFn


@dataclass(frozen=True)
class Store(Op):
    """``region[addr(env)] = value(env)``; reaching it broadcasts ``label``.

    ``combine``, when given, makes the store a read-modify-write commit
    unit: the stored value is ``combine(old, new)``.  Handcrafted SSSP
    accelerators implement exactly such fused compare-and-store commit
    stages; the template costs one extra read port.  ``dst`` optionally
    receives the previous value on the token (to predicate later ops on
    whether the commit improved the location).
    """

    region: str
    addr: FieldFn
    value: FieldFn
    label: str = ""
    extra_payload: tuple[str, ...] = ()
    combine: Callable[[Any, Any], Any] | None = None
    dst: str = ""


@dataclass(frozen=True)
class Guard(Op):
    """Steer on a predicate of token fields; the false path runs
    ``else_ops`` and then the token dies (maps to a switch actor + sink).
    """

    pred: FieldFn
    else_ops: tuple["Op", ...] = ()


@dataclass(frozen=True)
class Expand(Op):
    """Replace the token by one child token per yielded field-dict.

    ``items`` is called as ``items(env, state)`` and must return an iterable
    of dicts merged into copies of the parent environment.  On FPGA this is
    the dynamic-rate actor feeding neighbour iteration.  ``traffic_bytes``
    estimates the sequential-stream bytes fetched per *parent* token (e.g.
    one CSR row); ``per_item_cycles`` is the emission rate (1 = one child
    per cycle).
    """

    items: Callable[[Env, Any], Iterable[Mapping[str, Any]]]
    traffic: Callable[[Env, Any], int] | None = None
    per_item_cycles: int = 1


@dataclass(frozen=True)
class AllocRule(Op):
    """Instantiate rule ``rule_name`` with arguments computed from the env.

    The instance handle is stored on the token; the matching ``Rendezvous``
    consumes it.  Stalls on FPGA when no rule-engine lane is free.

    ``rule_name`` may be a callable of the env, selecting among several rule
    types at runtime — hardware-wise a demux in front of the per-type rule
    engines (COOR-LU allocates a different gate per block-kernel kind).
    """

    rule_name: str | Callable[[Env], str]
    args: Callable[[Env], Mapping[str, Any]]

    def resolve(self, env: Env) -> str:
        if callable(self.rule_name):
            return self.rule_name(env)
        return self.rule_name


@dataclass(frozen=True)
class Rendezvous(Op):
    """Block until the task's rule returns; steer on the boolean.

    True continues to the following ops (commit path); false runs
    ``abort_ops`` and the token dies.  ``label`` names the rendezvous for
    statistics and for the minimum-waiting-index broadcast.
    """

    label: str
    abort_ops: tuple["Op", ...] = ()


@dataclass(frozen=True)
class Enqueue(Op):
    """Activate a new task of ``task_set`` with fields from the env.

    Broadcasts an ACTIVATE event carrying the new task's fields.  ``when``
    (optional) suppresses the activation when false — a fused guard, used
    where the synthesized pipeline would merge the switch into the queue
    port.
    """

    task_set: str
    fields: Callable[[Env], Mapping[str, Any]]
    when: FieldFn | None = None


@dataclass(frozen=True)
class Call(Op):
    """Opaque operation: ``fn(env, state) -> dict`` of field updates.

    Heavyweight problem-specific work (cavity computation, dense block
    kernels) that synthesizes to a pipelined function unit.  ``cycles``
    and ``traffic`` parameterize its template's latency and memory traffic
    (both may inspect the env so data-dependent costs are expressible).
    ``label``, when set, broadcasts a REACH event after execution with the
    updated fields as payload.
    """

    fn: Callable[[Env, Any], Mapping[str, Any] | None]
    cycles: Callable[[Env], int] | int = 1
    traffic: Callable[[Env], int] | int = 0
    label: str = ""
    # Hardware profile of the function unit's template: "light" (pointer
    # walker / comparator tree), "geometry" (floating-point predicate
    # pipeline), or "macc" (dense multiply-accumulate array).
    profile: str = "light"
    # This operation commits the task's result: its well-order obligation
    # ends the moment the operation issues, so the minimum-live broadcast
    # can move on without waiting for the token to drain the pipeline.
    completes_task: bool = False


@dataclass(frozen=True)
class Label(Op):
    """Marker op: broadcasts a REACH event with the current fields."""

    label: str
    payload: tuple[str, ...] = ()


@dataclass
class Kernel:
    """The body of one task set: a sequence of primitive ops.

    ``rendezvous`` labels must be unique; branch paths (guard else-ops and
    rendezvous abort-ops) must not contain further control ops — they are
    short commit/retry epilogues, which is all the benchmarks (and the
    paper's pipelines) need.
    """

    task_set: str
    ops: list[Op] = dataclass_field(default_factory=list)

    def validate(self) -> None:
        labels: list[str] = []
        alloc_count = 0
        rendezvous_count = 0
        for op in self.ops:
            if isinstance(op, AllocRule):
                alloc_count += 1
            if isinstance(op, Rendezvous):
                rendezvous_count += 1
                labels.append(op.label)
                self._check_epilogue(op.abort_ops, "abort path")
            if isinstance(op, Guard):
                self._check_epilogue(op.else_ops, "guard else path")
        if len(set(labels)) != len(labels):
            raise SpecificationError(
                f"kernel {self.task_set!r} has duplicate rendezvous labels"
            )
        if rendezvous_count > alloc_count:
            raise SpecificationError(
                f"kernel {self.task_set!r} has a rendezvous without a "
                "preceding AllocRule"
            )

    @staticmethod
    def _check_epilogue(ops: Sequence[Op], where: str) -> None:
        for op in ops:
            if isinstance(op, (Rendezvous, Guard, Expand, AllocRule)):
                raise SpecificationError(
                    f"{where} may only contain straight-line ops, "
                    f"found {op.op_name()}"
                )

    def op_counts(self) -> dict[str, int]:
        """Histogram of op kinds (drives the resource model)."""
        counts: dict[str, int] = {}

        def visit(ops: Sequence[Op]) -> None:
            for op in ops:
                counts[op.op_name()] = counts.get(op.op_name(), 0) + 1
                if isinstance(op, Guard):
                    visit(op.else_ops)
                if isinstance(op, Rendezvous):
                    visit(op.abort_ops)

        visit(self.ops)
        return counts
